#include "storage/segment.h"

#include <cinttypes>
#include <cstdio>

#include "common/coding.h"
#include "common/crc32c.h"
#include "crypto/sha256.h"

namespace medvault::storage {

namespace {
constexpr size_t kFrameHeaderSize = 8;  // crc32c(4) + length(4)
}  // namespace

std::string EntryHandle::Encode() const {
  std::string out;
  PutVarint64(&out, segment_id);
  PutVarint64(&out, offset);
  PutVarint32(&out, length);
  return out;
}

Result<EntryHandle> EntryHandle::Decode(const Slice& data) {
  Slice in = data;
  EntryHandle h;
  if (!GetVarint64(&in, &h.segment_id) || !GetVarint64(&in, &h.offset) ||
      !GetVarint32(&in, &h.length) || !in.empty()) {
    return Status::Corruption("malformed entry handle");
  }
  return h;
}

SegmentStore::SegmentStore(Env* env, std::string dir, Options options)
    : env_(env), dir_(std::move(dir)), options_(options) {}

std::string SegmentStore::SegmentFileName(uint64_t segment_id) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "seg-%08" PRIu64, segment_id);
  return dir_ + "/" + buf;
}

Status SegmentStore::Open() {
  MEDVAULT_RETURN_IF_ERROR(env_->CreateDirIfMissing(dir_));
  std::vector<std::string> children;
  MEDVAULT_RETURN_IF_ERROR(env_->GetChildren(dir_, &children));

  uint64_t max_id = 0;
  for (const std::string& name : children) {
    uint64_t id = 0;
    if (sscanf(name.c_str(), "seg-%08" PRIu64, &id) == 1) {
      uint64_t size = 0;
      MEDVAULT_RETURN_IF_ERROR(env_->GetFileSize(dir_ + "/" + name, &size));
      segments_[id] = SegmentInfo{size, true};  // re-opened => sealed
      if (id > max_id) max_id = id;
    }
  }

  // The highest-numbered segment was the active one at shutdown; an
  // unclean shutdown can leave a torn frame at its tail. Cut the tail
  // back to the last whole frame (complete frames with bad CRCs are
  // tamper evidence and are left in place for the read path to catch).
  // Lower-numbered segments were sealed with a durability barrier and
  // cannot be torn.
  if (max_id > 0) {
    const std::string name = SegmentFileName(max_id);
    std::string contents;
    MEDVAULT_RETURN_IF_ERROR(ReadFileToString(env_, name, &contents));
    uint64_t offset = 0;
    while (offset + kFrameHeaderSize <= contents.size()) {
      uint32_t length = DecodeFixed32(contents.data() + offset + 4);
      if (offset + kFrameHeaderSize + length > contents.size()) break;
      offset += kFrameHeaderSize + length;
    }
    if (offset < contents.size()) {
      MEDVAULT_RETURN_IF_ERROR(env_->Truncate(name, offset));
      segments_[max_id].bytes = offset;
    }
  }

  // Start a fresh active segment after the highest existing one.
  active_id_ = max_id + 1;
  segments_[active_id_] = SegmentInfo{0, false};
  MEDVAULT_RETURN_IF_ERROR(
      env_->NewWritableFile(SegmentFileName(active_id_), &active_file_));
  active_offset_ = 0;
  open_ = true;
  return Status::OK();
}

Status SegmentStore::RollSegment() {
  MEDVAULT_RETURN_IF_ERROR(SealActive());
  return Status::OK();
}

Status SegmentStore::SealActive() {
  if (!open_) return Status::FailedPrecondition("segment store not open");
  // Create the successor file before touching any state: if creation
  // fails (disk full, injected fault) the store is exactly as it was
  // and the seal can be retried. The old order flipped `sealed` and
  // bumped `active_id_` first, leaving the store wedged — no active
  // file, ids desynced — after a failed creation.
  const uint64_t next_id = active_id_ + 1;
  std::unique_ptr<WritableFile> next_file;
  MEDVAULT_RETURN_IF_ERROR(
      env_->NewWritableFile(SegmentFileName(next_id), &next_file));
  if (active_file_) {
    Status s = active_file_->Sync();
    if (s.ok()) s = active_file_->Close();
    if (!s.ok()) {
      (void)next_file->Close();
      (void)env_->RemoveFile(SegmentFileName(next_id));
      return s;
    }
    active_file_.reset();
  }
  segments_[active_id_].sealed = true;
  active_id_ = next_id;
  segments_[active_id_] = SegmentInfo{0, false};
  active_file_ = std::move(next_file);
  active_offset_ = 0;
  return Status::OK();
}

Status SegmentStore::SyncActive() {
  if (!open_) return Status::FailedPrecondition("segment store not open");
  if (active_file_) return active_file_->Sync();
  return Status::OK();
}

bool SegmentStore::Contains(const EntryHandle& handle) const {
  auto it = segments_.find(handle.segment_id);
  if (it == segments_.end()) return false;
  return handle.offset + kFrameHeaderSize + handle.length <=
         it->second.bytes;
}

Result<EntryHandle> SegmentStore::Append(const Slice& payload) {
  if (!open_) return Status::FailedPrecondition("segment store not open");
  if (active_offset_ + kFrameHeaderSize + payload.size() >
          options_.max_segment_bytes &&
      active_offset_ > 0) {
    MEDVAULT_RETURN_IF_ERROR(RollSegment());
  }

  char header[kFrameHeaderSize];
  EncodeFixed32(header, crc32c::Mask(crc32c::Value(payload)));
  EncodeFixed32(header + 4, static_cast<uint32_t>(payload.size()));

  EntryHandle handle;
  handle.segment_id = active_id_;
  handle.offset = active_offset_;
  handle.length = static_cast<uint32_t>(payload.size());

  // One Append for header + payload: a failed write must not leave a
  // partial frame behind, or active_offset_ desyncs from the file and
  // every later handle in this segment points at the wrong bytes.
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  frame.append(header, sizeof(header));
  frame.append(payload.data(), payload.size());
  MEDVAULT_RETURN_IF_ERROR(active_file_->Append(Slice(frame)));
  if (options_.sync_on_append) {
    MEDVAULT_RETURN_IF_ERROR(active_file_->Sync());
  }
  active_offset_ += kFrameHeaderSize + payload.size();
  segments_[active_id_].bytes = active_offset_;
  return handle;
}

Result<std::string> SegmentStore::Read(const EntryHandle& handle) const {
  if (!open_) return Status::FailedPrecondition("segment store not open");
  auto it = segments_.find(handle.segment_id);
  if (it == segments_.end()) {
    return Status::NotFound("no such segment");
  }
  std::unique_ptr<RandomAccessFile> file;
  MEDVAULT_RETURN_IF_ERROR(
      env_->NewRandomAccessFile(SegmentFileName(handle.segment_id), &file));
  std::string frame;
  MEDVAULT_RETURN_IF_ERROR(
      file->Read(handle.offset, kFrameHeaderSize + handle.length, &frame));
  if (frame.size() != kFrameHeaderSize + handle.length) {
    return Status::Corruption("segment entry truncated");
  }
  uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(frame.data()));
  uint32_t stored_length = DecodeFixed32(frame.data() + 4);
  if (stored_length != handle.length) {
    return Status::Corruption("segment entry length mismatch");
  }
  Slice payload(frame.data() + kFrameHeaderSize, handle.length);
  if (crc32c::Value(payload) != expected_crc) {
    return Status::Corruption("segment entry checksum mismatch");
  }
  return payload.ToString();
}

Status SegmentStore::ForEachEntry(
    const std::function<bool(const EntryHandle&, const Slice&)>& fn) const {
  for (const auto& [id, info] : segments_) {
    if (info.bytes == 0 && !env_->FileExists(SegmentFileName(id))) continue;
    std::string contents;
    MEDVAULT_RETURN_IF_ERROR(
        ReadFileToString(env_, SegmentFileName(id), &contents));
    uint64_t offset = 0;
    while (offset + kFrameHeaderSize <= contents.size()) {
      uint32_t expected_crc =
          crc32c::Unmask(DecodeFixed32(contents.data() + offset));
      uint32_t length = DecodeFixed32(contents.data() + offset + 4);
      if (offset + kFrameHeaderSize + length > contents.size()) {
        return Status::Corruption("segment ends mid-entry");
      }
      Slice payload(contents.data() + offset + kFrameHeaderSize, length);
      if (crc32c::Value(payload) != expected_crc) {
        return Status::Corruption("segment entry checksum mismatch");
      }
      EntryHandle handle{id, offset, length};
      if (!fn(handle, payload)) return Status::OK();
      offset += kFrameHeaderSize + length;
    }
    if (offset != contents.size()) {
      return Status::Corruption("trailing garbage in segment");
    }
  }
  return Status::OK();
}

Result<std::string> SegmentStore::SegmentHash(uint64_t segment_id) const {
  std::string contents;
  MEDVAULT_RETURN_IF_ERROR(
      ReadFileToString(env_, SegmentFileName(segment_id), &contents));
  return crypto::Sha256Digest(contents);
}

std::vector<uint64_t> SegmentStore::SegmentIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(segments_.size());
  for (const auto& [id, info] : segments_) ids.push_back(id);
  return ids;
}

bool SegmentStore::IsSealed(uint64_t segment_id) const {
  auto it = segments_.find(segment_id);
  return it != segments_.end() && it->second.sealed;
}

Status SegmentStore::DropSegment(uint64_t segment_id) {
  auto it = segments_.find(segment_id);
  if (it == segments_.end()) return Status::NotFound("no such segment");
  if (!it->second.sealed) {
    return Status::WormViolation("cannot drop the active segment");
  }
  MEDVAULT_RETURN_IF_ERROR(env_->RemoveFile(SegmentFileName(segment_id)));
  segments_.erase(it);
  return Status::OK();
}

uint64_t SegmentStore::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [id, info] : segments_) total += info.bytes;
  return total;
}

}  // namespace medvault::storage
