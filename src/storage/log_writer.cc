#include "storage/log_writer.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace medvault::storage::log {

Writer::Writer(std::unique_ptr<WritableFile> dest, uint64_t initial_offset)
    : dest_(std::move(dest)),
      block_offset_(static_cast<int>(initial_offset % kBlockSize)),
      file_offset_(initial_offset) {}

Status Writer::AddRecord(const Slice& payload) {
  const char* ptr = payload.data();
  size_t left = payload.size();

  bool begin = true;
  do {
    const int leftover = kBlockSize - block_offset_;
    if (leftover < kHeaderSize) {
      if (leftover > 0) {
        // Fill trailer with zeros.
        static const char kZeros[kHeaderSize] = {0};
        MEDVAULT_RETURN_IF_ERROR(dest_->Append(Slice(kZeros, leftover)));
        file_offset_ += leftover;
      }
      block_offset_ = 0;
    }

    const size_t avail = kBlockSize - block_offset_ - kHeaderSize;
    const size_t fragment_length = (left < avail) ? left : avail;

    RecordType type;
    const bool end = (left == fragment_length);
    if (begin && end) {
      type = RecordType::kFull;
    } else if (begin) {
      type = RecordType::kFirst;
    } else if (end) {
      type = RecordType::kLast;
    } else {
      type = RecordType::kMiddle;
    }

    MEDVAULT_RETURN_IF_ERROR(EmitPhysicalRecord(type, ptr, fragment_length));
    ptr += fragment_length;
    left -= fragment_length;
    begin = false;
  } while (left > 0);
  return Status::OK();
}

Status Writer::EmitPhysicalRecord(RecordType type, const char* ptr,
                                  size_t length) {
  char header[kHeaderSize];
  header[4] = static_cast<char>(length & 0xff);
  header[5] = static_cast<char>(length >> 8);
  header[6] = static_cast<char>(type);

  // CRC over type byte + payload.
  uint32_t crc = crc32c::Value(&header[6], 1);
  crc = crc32c::Extend(crc, ptr, length);
  EncodeFixed32(header, crc32c::Mask(crc));

  MEDVAULT_RETURN_IF_ERROR(dest_->Append(Slice(header, kHeaderSize)));
  MEDVAULT_RETURN_IF_ERROR(dest_->Append(Slice(ptr, length)));
  block_offset_ += kHeaderSize + static_cast<int>(length);
  file_offset_ += kHeaderSize + length;
  return Status::OK();
}

}  // namespace medvault::storage::log
