#include "storage/log_writer.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace medvault::storage::log {

Writer::Writer(std::unique_ptr<WritableFile> dest, uint64_t initial_offset)
    : dest_(std::move(dest)),
      block_offset_(static_cast<int>(initial_offset % kBlockSize)),
      file_offset_(initial_offset) {}

void Writer::FrameRecord(const Slice& payload, std::string* out,
                         int* block_offset) {
  const char* ptr = payload.data();
  size_t left = payload.size();

  bool begin = true;
  do {
    const int leftover = kBlockSize - *block_offset;
    if (leftover < kHeaderSize) {
      if (leftover > 0) {
        // Fill trailer with zeros.
        out->append(static_cast<size_t>(leftover), '\0');
      }
      *block_offset = 0;
    }

    const size_t avail = kBlockSize - *block_offset - kHeaderSize;
    const size_t fragment_length = (left < avail) ? left : avail;

    RecordType type;
    const bool end = (left == fragment_length);
    if (begin && end) {
      type = RecordType::kFull;
    } else if (begin) {
      type = RecordType::kFirst;
    } else if (end) {
      type = RecordType::kLast;
    } else {
      type = RecordType::kMiddle;
    }

    char header[kHeaderSize];
    header[4] = static_cast<char>(fragment_length & 0xff);
    header[5] = static_cast<char>(fragment_length >> 8);
    header[6] = static_cast<char>(type);

    // CRC over type byte + payload.
    uint32_t crc = crc32c::Value(&header[6], 1);
    crc = crc32c::Extend(crc, ptr, fragment_length);
    EncodeFixed32(header, crc32c::Mask(crc));

    out->append(header, kHeaderSize);
    out->append(ptr, fragment_length);
    *block_offset += kHeaderSize + static_cast<int>(fragment_length);

    ptr += fragment_length;
    left -= fragment_length;
    begin = false;
  } while (left > 0);
}

Status Writer::AddRecord(const Slice& payload) {
  return AddRecords(&payload, 1);
}

Status Writer::AddRecords(const Slice* payloads, size_t n) {
  std::string buf;
  // Typical case: everything fits in the current block, so framing adds
  // exactly one header per record.
  size_t expect = 0;
  for (size_t i = 0; i < n; ++i) expect += payloads[i].size() + kHeaderSize;
  buf.reserve(expect);

  int block_offset = block_offset_;
  for (size_t i = 0; i < n; ++i) {
    FrameRecord(payloads[i], &buf, &block_offset);
  }

  // Single buffered write: offsets only advance if the append succeeds,
  // matching the old per-fragment failure behavior at record granularity.
  MEDVAULT_RETURN_IF_ERROR(dest_->Append(Slice(buf)));
  block_offset_ = block_offset;
  file_offset_ += buf.size();
  return Status::OK();
}

}  // namespace medvault::storage::log
