#ifndef MEDVAULT_STORAGE_BPTREE_H_
#define MEDVAULT_STORAGE_BPTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/env.h"

namespace medvault::storage {

/// A paged, disk-backed B+tree mapping byte-string keys to byte-string
/// values. This is the storage substrate of the *relational baseline*
/// (paper §4: "relational databases are geared more towards performance
/// rather than security"): update-in-place, no tamper evidence beyond a
/// per-page checksum, no history.
///
/// Layout: 4096-byte pages on a RandomRWFile. Page 0 is the meta page
/// (magic, root id, page count). Interior pages hold separator keys and
/// child ids; leaf pages hold key/value cells and a next-leaf link for
/// range scans. Nodes are (de)serialized whole — simple and crash-honest
/// for a baseline, not a production OLTP engine.
///
/// Limits: key.size() + value.size() <= kMaxCellSize. Deletes remove the
/// cell without rebalancing (pages may become sparse; fine for the
/// workloads here).
class BpTree {
 public:
  static constexpr size_t kPageSize = 4096;
  static constexpr size_t kMaxCellSize = 1024;

  BpTree(Env* env, std::string path);
  ~BpTree();

  BpTree(const BpTree&) = delete;
  BpTree& operator=(const BpTree&) = delete;

  /// Opens or creates the tree file.
  Status Open();

  /// Inserts or overwrites.
  Status Put(const Slice& key, const Slice& value);

  Result<std::string> Get(const Slice& key) const;

  /// Removes a key. NotFound if absent.
  Status Delete(const Slice& key);

  /// In-order scan from `start` (inclusive); `fn` returns false to stop.
  Status Scan(const Slice& start,
              const std::function<bool(const Slice&, const Slice&)>& fn) const;

  /// Writes all dirty pages (and the meta page) to the file.
  Status Flush();

  uint64_t KeyCount() const { return key_count_; }

 private:
  struct Node {
    bool leaf = true;
    std::vector<std::string> keys;
    // leaf: values[i] pairs with keys[i]; next_leaf links the chain.
    std::vector<std::string> values;
    uint64_t next_leaf = 0;
    // interior: children.size() == keys.size() + 1
    std::vector<uint64_t> children;
  };

  Result<Node*> LoadNode(uint64_t page_id) const;
  uint64_t AllocPage();
  void MarkDirty(uint64_t page_id);
  Status WriteNode(uint64_t page_id, const Node& node);
  Status WriteMeta();

  static std::string SerializeNode(const Node& node);
  static Result<Node> DeserializeNode(const Slice& data);

  /// Splits child `child_idx` of interior node `parent_id` if oversized.
  struct SplitResult {
    bool split = false;
    std::string separator;
    uint64_t right_id = 0;
  };
  Result<SplitResult> InsertInto(uint64_t page_id, const Slice& key,
                                 const Slice& value, bool* inserted);

  static size_t NodeSerializedSize(const Node& node);

  Env* env_;
  std::string path_;
  std::unique_ptr<RandomRWFile> file_;
  bool open_ = false;

  uint64_t root_ = 0;
  uint64_t page_count_ = 1;  // page 0 = meta
  uint64_t key_count_ = 0;

  mutable std::unordered_map<uint64_t, Node> cache_;
  std::unordered_set<uint64_t> dirty_;
};

}  // namespace medvault::storage

#endif  // MEDVAULT_STORAGE_BPTREE_H_
