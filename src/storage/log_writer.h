#ifndef MEDVAULT_STORAGE_LOG_WRITER_H_
#define MEDVAULT_STORAGE_LOG_WRITER_H_

#include <memory>

#include "common/slice.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/log_format.h"

namespace medvault::storage::log {

/// Appends logical records to a log file (see log_format.h). Not
/// thread-safe; callers serialize.
class Writer {
 public:
  /// `dest` must be positioned at the start of a file or at a block
  /// boundary continuation; `initial_offset` is the current file size.
  explicit Writer(std::unique_ptr<WritableFile> dest,
                  uint64_t initial_offset = 0);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& payload);

  Status Flush() { return dest_->Flush(); }
  Status Sync() { return dest_->Sync(); }
  Status Close() { return dest_->Close(); }

  /// Bytes written through this writer plus the initial offset.
  uint64_t FileOffset() const { return file_offset_; }

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  std::unique_ptr<WritableFile> dest_;
  int block_offset_;  // current offset within the block
  uint64_t file_offset_;
};

}  // namespace medvault::storage::log

#endif  // MEDVAULT_STORAGE_LOG_WRITER_H_
