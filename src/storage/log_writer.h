#ifndef MEDVAULT_STORAGE_LOG_WRITER_H_
#define MEDVAULT_STORAGE_LOG_WRITER_H_

#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/log_format.h"

namespace medvault::storage::log {

/// Appends logical records to a log file (see log_format.h). Not
/// thread-safe; callers serialize.
class Writer {
 public:
  /// `dest` must be positioned at the start of a file or at a block
  /// boundary continuation; `initial_offset` is the current file size.
  explicit Writer(std::unique_ptr<WritableFile> dest,
                  uint64_t initial_offset = 0);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& payload);

  /// Appends `n` logical records with their framing coalesced into a
  /// single buffered file Append — the batched-ingest fast path (one
  /// syscall/copy per batch instead of two per fragment).
  Status AddRecords(const Slice* payloads, size_t n);

  Status Flush() { return dest_->Flush(); }
  Status Sync() { return dest_->Sync(); }
  Status Close() { return dest_->Close(); }

  /// Bytes written through this writer plus the initial offset.
  uint64_t FileOffset() const { return file_offset_; }

  /// The underlying file — exposed so commit paths can batch several
  /// writers' durability barriers into one Env::SubmitSyncs wave. The
  /// caller must not close or append through it; the writer stays the
  /// only appender.
  WritableFile* file() { return dest_.get(); }

 private:
  /// Frames one logical record into `out`, tracking the block position
  /// in `block_offset` (same fragmenting rules as the incremental path).
  static void FrameRecord(const Slice& payload, std::string* out,
                          int* block_offset);

  std::unique_ptr<WritableFile> dest_;
  int block_offset_;  // current offset within the block
  uint64_t file_offset_;
};

}  // namespace medvault::storage::log

#endif  // MEDVAULT_STORAGE_LOG_WRITER_H_
