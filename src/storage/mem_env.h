#ifndef MEDVAULT_STORAGE_MEM_ENV_H_
#define MEDVAULT_STORAGE_MEM_ENV_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "storage/env.h"

namespace medvault::storage {

/// In-memory Env. Used by tests, benchmarks, and as the "off-site
/// facility" in backup experiments. Supports UnsafeOverwrite/UnsafeTruncate
/// so the adversary simulator can tamper with raw bytes.
class MemEnv : public Env {
 public:
  MemEnv() = default;

  MemEnv(const MemEnv&) = delete;
  MemEnv& operator=(const MemEnv&) = delete;

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override;
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* file) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* file) override;

  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;

  Status UnsafeOverwrite(const std::string& fname, uint64_t offset,
                         const Slice& data) override;
  Status UnsafeTruncate(const std::string& fname, uint64_t size) override;

  /// Total bytes across all files (used by cost experiments).
  uint64_t TotalBytes();

 private:
  struct FileState {
    std::string contents;
  };

  std::shared_ptr<FileState> Find(const std::string& fname);

  std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileState>> files_;
};

}  // namespace medvault::storage

#endif  // MEDVAULT_STORAGE_MEM_ENV_H_
