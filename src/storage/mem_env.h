#ifndef MEDVAULT_STORAGE_MEM_ENV_H_
#define MEDVAULT_STORAGE_MEM_ENV_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "storage/env.h"

namespace medvault::storage {

/// How much of the unsynced write-back data a simulated power cut keeps
/// (the synced prefix always survives — that is what Sync promises).
enum class CrashMode {
  kDropUnsynced,  ///< everything after the last Sync is lost
  kKeepAll,       ///< the kernel happened to flush everything anyway
  kKeepPartial,   ///< a seeded per-file prefix of the unsynced tail lands
};

/// In-memory Env. Used by tests, benchmarks, and as the "off-site
/// facility" in backup experiments. Supports UnsafeOverwrite/UnsafeTruncate
/// so the adversary simulator can tamper with raw bytes.
///
/// Power-fail simulation: with SetCrashTrackingEnabled(true), every file
/// carries a `persisted` snapshot updated on Sync (the bytes that made it
/// to stable media). CrashAndRecover() then models pulling the plug:
/// unsynced data is dropped (or partially kept, per CrashMode) and the
/// snapshot becomes the new file contents. Metadata operations (create,
/// rename, remove) are treated as immediately durable, like a journaled
/// filesystem. Tracking is opt-in because the per-Sync snapshot copy is
/// O(file size) and would distort benchmarks.
class MemEnv : public Env {
 public:
  MemEnv() = default;

  MemEnv(const MemEnv&) = delete;
  MemEnv& operator=(const MemEnv&) = delete;

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override;
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* file) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* file) override;

  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  Status Truncate(const std::string& fname, uint64_t size) override;

  Status UnsafeOverwrite(const std::string& fname, uint64_t offset,
                         const Slice& data) override;
  Status UnsafeTruncate(const std::string& fname, uint64_t size) override;

  /// Turns power-fail tracking on or off. Enabling snapshots the current
  /// contents of every file as persisted (everything so far is treated
  /// as on stable media).
  void SetCrashTrackingEnabled(bool enabled);

  /// Simulates a power cut followed by a reboot: every file reverts to
  /// its persisted snapshot plus, depending on `mode`, some prefix of
  /// the unsynced tail (`seed` makes kKeepPartial deterministic).
  /// Requires crash tracking to be enabled. Outstanding file handles
  /// from "before the crash" must not be used afterwards.
  void CrashAndRecover(CrashMode mode, uint32_t seed = 0);

  /// Total bytes across all files (used by cost experiments).
  uint64_t TotalBytes();

  /// Makes every file Sync() sleep this long before completing —
  /// benchmark realism on in-memory storage, where a barrier would
  /// otherwise be free and batching one sync per window would measure
  /// nothing. The sleep happens *outside* the env lock, so concurrent
  /// syncs overlap exactly as real fsyncs on independent files do.
  /// 0 (the default) disables the delay.
  void SetSyncDelayMicros(uint64_t micros) {
    sync_delay_micros_.store(micros, std::memory_order_relaxed);
  }
  uint64_t sync_delay_micros() const {
    return sync_delay_micros_.load(std::memory_order_relaxed);
  }

 private:
  struct FileState {
    std::string contents;
    std::string persisted;  ///< bytes on "stable media"; tracking only
  };

  class MemWritableFile;
  class MemRandomRWFile;
  friend class MemWritableFile;
  friend class MemRandomRWFile;

  std::shared_ptr<FileState> Find(const std::string& fname);

  std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileState>> files_;
  bool crash_tracking_ = false;  // guarded by mu_
  std::atomic<uint64_t> sync_delay_micros_{0};
};

}  // namespace medvault::storage

#endif  // MEDVAULT_STORAGE_MEM_ENV_H_
