#include "storage/fault_env.h"

namespace medvault::storage {

namespace {

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base,
                    FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    MEDVAULT_RETURN_IF_ERROR(env_->ConsumeWriteCredit());
    return base_->Append(data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    env_->CountSync();
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

class FaultRandomRWFile : public RandomRWFile {
 public:
  FaultRandomRWFile(std::unique_ptr<RandomRWFile> base, FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status WriteAt(uint64_t offset, const Slice& data) override {
    MEDVAULT_RETURN_IF_ERROR(env_->ConsumeWriteCredit());
    return base_->WriteAt(offset, data);
  }
  Status ReadAt(uint64_t offset, size_t n,
                std::string* result) const override {
    env_->CountRead();
    return base_->ReadAt(offset, n, result);
  }
  Status Sync() override {
    env_->CountSync();
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RandomRWFile> base_;
  FaultInjectionEnv* env_;
};

class FaultSequentialFile : public SequentialFile {
 public:
  FaultSequentialFile(std::unique_ptr<SequentialFile> base,
                      FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(size_t n, std::string* result) override {
    env_->CountRead();
    return base_->Read(n, result);
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  FaultInjectionEnv* env_;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                        FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, std::string* result) const override {
    env_->CountRead();
    return base_->Read(offset, n, result);
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FaultInjectionEnv* env_;
};

}  // namespace

Status FaultInjectionEnv::ConsumeWriteCredit() {
  writes_++;
  if (fail_writes_.load()) {
    return Status::IoError("injected write failure");
  }
  if (limited_) {
    uint64_t remaining = writes_allowed_.load();
    if (remaining == 0) return Status::IoError("injected write failure");
    writes_allowed_.store(remaining - 1);
  }
  return Status::OK();
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* file) {
  std::unique_ptr<SequentialFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewSequentialFile(fname, &base));
  *file = std::make_unique<FaultSequentialFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* file) {
  std::unique_ptr<RandomAccessFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &base));
  *file = std::make_unique<FaultRandomAccessFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* file) {
  std::unique_ptr<WritableFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewWritableFile(fname, &base));
  *file = std::make_unique<FaultWritableFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewAppendableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* file) {
  std::unique_ptr<WritableFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewAppendableFile(fname, &base));
  *file = std::make_unique<FaultWritableFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomRWFile(
    const std::string& fname, std::unique_ptr<RandomRWFile>* file) {
  std::unique_ptr<RandomRWFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewRandomRWFile(fname, &base));
  *file = std::make_unique<FaultRandomRWFile>(std::move(base), this);
  return Status::OK();
}

}  // namespace medvault::storage
