#include "storage/fault_env.h"

namespace medvault::storage {

namespace {

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base,
                    FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    size_t torn = 0;
    Status s = env_->BeforeWrite(data.size(), &torn);
    if (!s.ok()) {
      // A crash mid-write leaves a prefix of the payload on disk; the
      // caller still sees the error and must not count the write.
      if (torn > 0) (void)base_->Append(Slice(data.data(), torn));
      return s;
    }
    return base_->Append(data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    MEDVAULT_RETURN_IF_ERROR(env_->BeforeSync());
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

class FaultRandomRWFile : public RandomRWFile {
 public:
  FaultRandomRWFile(std::unique_ptr<RandomRWFile> base, FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status WriteAt(uint64_t offset, const Slice& data) override {
    size_t torn = 0;
    Status s = env_->BeforeWrite(data.size(), &torn);
    if (!s.ok()) {
      if (torn > 0) (void)base_->WriteAt(offset, Slice(data.data(), torn));
      return s;
    }
    return base_->WriteAt(offset, data);
  }
  Status ReadAt(uint64_t offset, size_t n,
                std::string* result) const override {
    MEDVAULT_RETURN_IF_ERROR(env_->BeforeRead());
    return base_->ReadAt(offset, n, result);
  }
  Status Sync() override {
    MEDVAULT_RETURN_IF_ERROR(env_->BeforeSync());
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RandomRWFile> base_;
  FaultInjectionEnv* env_;
};

class FaultSequentialFile : public SequentialFile {
 public:
  FaultSequentialFile(std::unique_ptr<SequentialFile> base,
                      FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(size_t n, std::string* result) override {
    MEDVAULT_RETURN_IF_ERROR(env_->BeforeRead());
    return base_->Read(n, result);
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  FaultInjectionEnv* env_;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                        FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, std::string* result) const override {
    MEDVAULT_RETURN_IF_ERROR(env_->BeforeRead());
    return base_->Read(offset, n, result);
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FaultInjectionEnv* env_;
};

}  // namespace

Status FaultInjectionEnv::BeforeWrite(size_t size, size_t* torn_prefix) {
  *torn_prefix = 0;
  const uint64_t op = ops_.fetch_add(1);
  writes_++;
  if (crashed_.load(std::memory_order_acquire)) {
    return Status::IoError("simulated power failure: env is crashed");
  }
  if (crash_armed_.load(std::memory_order_acquire) && op >= crash_at_.load()) {
    crashed_.store(true, std::memory_order_release);
    // Deterministic torn length: some prefix of the payload made it out
    // of the drive's write buffer before the power died.
    *torn_prefix = static_cast<size_t>((op * 2654435761ull) % (size + 1));
    return Status::IoError("simulated power failure: torn write");
  }
  if (fail_writes_.load()) {
    return Status::IoError("injected write failure");
  }
  uint64_t wk = writes_to_fail_.load();
  while (wk > 0) {
    if (writes_to_fail_.compare_exchange_weak(wk, wk - 1)) {
      return Status::IoError("injected transient write failure");
    }
  }
  if (limited_.load(std::memory_order_acquire)) {
    uint64_t remaining = writes_allowed_.load();
    while (true) {
      if (remaining == 0) return Status::IoError("injected write failure");
      // CAS so concurrent writers cannot both spend the last credit.
      if (writes_allowed_.compare_exchange_weak(remaining, remaining - 1)) {
        break;
      }
    }
  }
  return Status::OK();
}

Status FaultInjectionEnv::BeforeSync() {
  const uint64_t op = ops_.fetch_add(1);
  syncs_++;
  if (crashed_.load(std::memory_order_acquire)) {
    return Status::IoError("simulated power failure: env is crashed");
  }
  if (crash_armed_.load(std::memory_order_acquire) && op >= crash_at_.load()) {
    crashed_.store(true, std::memory_order_release);
    return Status::IoError("simulated power failure: sync did not complete");
  }
  uint64_t k = syncs_to_fail_.load();
  while (k > 0) {
    if (syncs_to_fail_.compare_exchange_weak(k, k - 1)) {
      return Status::IoError("injected sync failure");
    }
  }
  return Status::OK();
}

Status FaultInjectionEnv::BeforeRead() {
  reads_++;
  if (fail_reads_.load(std::memory_order_acquire)) {
    return Status::IoError("injected persistent read failure");
  }
  uint64_t k = reads_to_fail_.load();
  while (k > 0) {
    if (reads_to_fail_.compare_exchange_weak(k, k - 1)) {
      return Status::IoError("injected transient read failure");
    }
  }
  return Status::OK();
}

Status FaultInjectionEnv::FlipBit(const std::string& fname, uint64_t offset,
                                  int bit) {
  if (bit < 0 || bit > 7) {
    return Status::InvalidArgument("bit must be in [0,7]");
  }
  // Read the current byte through the base env so read-fault knobs do
  // not interfere with the corruption being staged.
  std::string contents;
  MEDVAULT_RETURN_IF_ERROR(ReadFileToString(base_, fname, &contents));
  if (offset >= contents.size()) {
    return Status::InvalidArgument("FlipBit offset beyond EOF");
  }
  char flipped = static_cast<char>(contents[offset] ^ (1u << bit));
  return UnsafeOverwrite(fname, offset, Slice(&flipped, 1));
}

Status FaultInjectionEnv::CheckMutationAllowed() {
  if (crashed_.load(std::memory_order_acquire)) {
    return Status::IoError("simulated power failure: env is crashed");
  }
  return Status::OK();
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* file) {
  std::unique_ptr<SequentialFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewSequentialFile(fname, &base));
  *file = std::make_unique<FaultSequentialFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* file) {
  std::unique_ptr<RandomAccessFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &base));
  *file = std::make_unique<FaultRandomAccessFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* file) {
  MEDVAULT_RETURN_IF_ERROR(CheckMutationAllowed());
  if (fail_file_creation_.load()) {
    return Status::IoError("injected file creation failure");
  }
  std::unique_ptr<WritableFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewWritableFile(fname, &base));
  *file = std::make_unique<FaultWritableFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewAppendableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* file) {
  MEDVAULT_RETURN_IF_ERROR(CheckMutationAllowed());
  if (fail_file_creation_.load() && !base_->FileExists(fname)) {
    return Status::IoError("injected file creation failure");
  }
  std::unique_ptr<WritableFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewAppendableFile(fname, &base));
  *file = std::make_unique<FaultWritableFile>(std::move(base), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomRWFile(
    const std::string& fname, std::unique_ptr<RandomRWFile>* file) {
  MEDVAULT_RETURN_IF_ERROR(CheckMutationAllowed());
  if (fail_file_creation_.load() && !base_->FileExists(fname)) {
    return Status::IoError("injected file creation failure");
  }
  std::unique_ptr<RandomRWFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewRandomRWFile(fname, &base));
  *file = std::make_unique<FaultRandomRWFile>(std::move(base), this);
  return Status::OK();
}

}  // namespace medvault::storage
