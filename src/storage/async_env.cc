#include "storage/async_env.h"

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#ifdef MEDVAULT_HAVE_LIBURING
#include <liburing.h>

#include <cstring>
#endif

namespace medvault::storage {

namespace {

unsigned DefaultThreads() {
  // Enough to overlap one vault's commit wave (segment + side logs)
  // even when hardware_concurrency() is 1 — the threads spend their
  // time parked in fsync (or simulated sync latency), not on a core.
  unsigned hw = std::thread::hardware_concurrency();
  return std::max(4u, std::min(hw, 16u));
}

}  // namespace

#ifdef MEDVAULT_HAVE_LIBURING

/// One SQ/CQ ring, serialized by a mutex: submissions are already
/// batched waves, so ring-level concurrency buys nothing and the lock
/// keeps SQE accounting trivial. The wave is submitted in one
/// io_uring_submit and reaped to completion before returning — the
/// overlap happens in the kernel, which is the point.
struct AsyncEnv::UringState {
  std::mutex mu;
  struct io_uring ring;
  bool live = false;

  explicit UringState(unsigned entries) {
    live = io_uring_queue_init(entries, &ring, 0) == 0;
  }
  ~UringState() {
    if (live) io_uring_queue_exit(&ring);
  }
};

#else

struct AsyncEnv::UringState {};  // never instantiated without liburing

#endif  // MEDVAULT_HAVE_LIBURING

AsyncEnv::AsyncEnv(Env* base) : AsyncEnv(base, Options()) {}

AsyncEnv::AsyncEnv(Env* base, Options options)
    : base_(base),
      pool_(options.threads > 0 ? options.threads : DefaultThreads()) {
  obs::MetricsRegistry* metrics =
      options.metrics != nullptr ? options.metrics : obs::MetricsRegistry::Default();
  batched_syncs_ = metrics->GetCounter("env.sync.batched");
  batched_writes_ = metrics->GetCounter("env.write.batched");
#ifdef MEDVAULT_HAVE_LIBURING
  if (options.try_io_uring) {
    auto state = std::make_unique<UringState>(/*entries=*/256);
    if (state->live) uring_ = std::move(state);
  }
#else
  (void)options.try_io_uring;
#endif
}

AsyncEnv::~AsyncEnv() = default;

bool AsyncEnv::IoUringCompiledIn() {
#ifdef MEDVAULT_HAVE_LIBURING
  return true;
#else
  return false;
#endif
}

const char* AsyncEnv::backend_name() const {
  return uring_ != nullptr ? "io_uring" : "thread-pool";
}

Status AsyncEnv::NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* file) {
  return base_->NewSequentialFile(fname, file);
}
Status AsyncEnv::NewRandomAccessFile(const std::string& fname,
                                     std::unique_ptr<RandomAccessFile>* file) {
  return base_->NewRandomAccessFile(fname, file);
}
Status AsyncEnv::NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* file) {
  return base_->NewWritableFile(fname, file);
}
Status AsyncEnv::NewAppendableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* file) {
  return base_->NewAppendableFile(fname, file);
}
Status AsyncEnv::NewRandomRWFile(const std::string& fname,
                                 std::unique_ptr<RandomRWFile>* file) {
  return base_->NewRandomRWFile(fname, file);
}
bool AsyncEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}
Status AsyncEnv::GetChildren(const std::string& dir,
                             std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}
Status AsyncEnv::RemoveFile(const std::string& fname) {
  return base_->RemoveFile(fname);
}
Status AsyncEnv::CreateDirIfMissing(const std::string& dirname) {
  return base_->CreateDirIfMissing(dirname);
}
Status AsyncEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return base_->GetFileSize(fname, size);
}
Status AsyncEnv::RenameFile(const std::string& src, const std::string& target) {
  return base_->RenameFile(src, target);
}
Status AsyncEnv::Truncate(const std::string& fname, uint64_t size) {
  return base_->Truncate(fname, size);
}
Status AsyncEnv::UnsafeOverwrite(const std::string& fname, uint64_t offset,
                                 const Slice& data) {
  return base_->UnsafeOverwrite(fname, offset, data);
}
Status AsyncEnv::UnsafeTruncate(const std::string& fname, uint64_t size) {
  return base_->UnsafeTruncate(fname, size);
}

void AsyncEnv::SubmitWrites(WriteRequest* requests, size_t n,
                            BatchCompletion* done) {
  if (n == 0) return;
  batched_writes_->Increment(n);
  // Group slots by file: a file's appends must land in slot order, so
  // each file's run of requests becomes one pooled task; distinct files
  // overlap.
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < n; ++i) {
    size_t g = groups.size();
    for (size_t j = 0; j < groups.size(); ++j) {
      if (requests[groups[j].front()].file == requests[i].file) {
        g = j;
        break;
      }
    }
    if (g == groups.size()) groups.emplace_back();
    groups[g].push_back(i);
  }
  for (auto& group : groups) {
    pool_.Submit([requests, done, group = std::move(group)] {
      for (size_t i : group) {
        done->Fulfill(i, requests[i].file->Append(requests[i].data));
      }
    });
  }
}

void AsyncEnv::SubmitSyncs(WritableFile* const* files, size_t n,
                           BatchCompletion* done) {
  if (n == 0) return;
  batched_syncs_->Increment(n);
#ifdef MEDVAULT_HAVE_LIBURING
  if (uring_ != nullptr) {
    // Split the wave: descriptor-backed files ride the ring, the rest
    // (decorated/in-memory files) take the pool.
    std::vector<size_t> ring_slots;
    ring_slots.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (files[i]->FileDescriptor() >= 0) {
        ring_slots.push_back(i);
      } else {
        pool_.Submit([files, done, i] { done->Fulfill(i, files[i]->Sync()); });
      }
    }
    if (!ring_slots.empty()) {
      std::lock_guard<std::mutex> lock(uring_->mu);
      size_t submitted = 0;
      while (submitted < ring_slots.size()) {
        size_t chunk = 0;
        struct io_uring_sqe* sqe;
        while (submitted + chunk < ring_slots.size() &&
               (sqe = io_uring_get_sqe(&uring_->ring)) != nullptr) {
          size_t slot = ring_slots[submitted + chunk];
          io_uring_prep_fsync(sqe, files[slot]->FileDescriptor(), 0);
          io_uring_sqe_set_data64(sqe, static_cast<uint64_t>(slot));
          ++chunk;
        }
        io_uring_submit_and_wait(&uring_->ring, static_cast<unsigned>(chunk));
        for (size_t c = 0; c < chunk; ++c) {
          struct io_uring_cqe* cqe = nullptr;
          io_uring_wait_cqe(&uring_->ring, &cqe);
          size_t slot = static_cast<size_t>(io_uring_cqe_get_data64(cqe));
          Status s = cqe->res < 0
                         ? Status::IoError("io_uring fsync: " +
                                           std::string(strerror(-cqe->res)))
                         : Status::OK();
          io_uring_cqe_seen(&uring_->ring, cqe);
          done->Fulfill(slot, std::move(s));
        }
        submitted += chunk;
      }
    }
    return;
  }
#endif  // MEDVAULT_HAVE_LIBURING
  for (size_t i = 0; i < n; ++i) {
    pool_.Submit([files, done, i] { done->Fulfill(i, files[i]->Sync()); });
  }
}

}  // namespace medvault::storage
