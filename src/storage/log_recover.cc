#include "storage/log_recover.h"

#include "storage/log_reader.h"

namespace medvault::storage::log {

Status OpenLogForAppend(Env* env, const std::string& path,
                        const std::function<Status(const Slice&)>& replay,
                        LogOpenResult* result) {
  result->writer.reset();
  result->valid_size = 0;
  result->dropped_bytes = 0;

  if (env->FileExists(path)) {
    uint64_t file_size = 0;
    MEDVAULT_RETURN_IF_ERROR(env->GetFileSize(path, &file_size));

    std::unique_ptr<SequentialFile> src;
    MEDVAULT_RETURN_IF_ERROR(env->NewSequentialFile(path, &src));
    Reader reader(std::move(src));
    std::string record;
    while (reader.ReadRecord(&record)) {
      MEDVAULT_RETURN_IF_ERROR(replay(Slice(record)));
    }
    MEDVAULT_RETURN_IF_ERROR(reader.status());

    result->valid_size = reader.ValidEnd();
    if (result->valid_size < file_size) {
      // Torn tail from an unclean shutdown: the bytes past the last
      // complete record never parsed as a record, so no acknowledged
      // write is lost by cutting them.
      result->dropped_bytes = file_size - result->valid_size;
      MEDVAULT_RETURN_IF_ERROR(env->Truncate(path, result->valid_size));
    }
  }

  std::unique_ptr<WritableFile> dest;
  MEDVAULT_RETURN_IF_ERROR(env->NewAppendableFile(path, &dest));
  result->writer =
      std::make_unique<Writer>(std::move(dest), result->valid_size);
  return Status::OK();
}

}  // namespace medvault::storage::log
