#include "storage/log_reader.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace medvault::storage::log {

Reader::Reader(std::unique_ptr<SequentialFile> src) : src_(std::move(src)) {}

bool Reader::MaybeRefill() {
  if (buffer_.size() >= kHeaderSize || eof_) return !buffer_.empty();
  // Drop any block trailer smaller than a header and read the next block.
  backing_.clear();
  Status s = src_->Read(kBlockSize, &backing_);
  if (!s.ok()) {
    status_ = s;
    eof_ = true;
    buffer_ = Slice();
    return false;
  }
  if (backing_.empty()) {
    eof_ = true;
    buffer_ = Slice();
    return false;
  }
  if (backing_.size() < kBlockSize) eof_ = true;
  bytes_consumed_ += backing_.size();
  buffer_ = Slice(backing_);
  return true;
}

int Reader::ReadPhysicalRecord(Slice* fragment) {
  while (true) {
    if (buffer_.size() < kHeaderSize) {
      if (eof_) {
        // A partial header at EOF means a torn final write, treated as a
        // clean end (standard WAL recovery semantics).
        buffer_ = Slice();
        return kEof;
      }
      buffer_ = Slice();
      if (!MaybeRefill()) return kEof;
      continue;
    }

    const char* header = buffer_.data();
    const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(header));
    const uint32_t length = static_cast<unsigned char>(header[4]) |
                            (static_cast<unsigned char>(header[5]) << 8);
    const int type = static_cast<unsigned char>(header[6]);

    if (type == static_cast<int>(RecordType::kZero) && length == 0) {
      // Block trailer; skip the rest of this block.
      buffer_ = Slice();
      if (!MaybeRefill()) return kEof;
      continue;
    }

    if (kHeaderSize + length > buffer_.size()) {
      if (eof_) {
        // Torn final record.
        buffer_ = Slice();
        return kEof;
      }
      return kBadRecord;
    }

    uint32_t actual_crc = crc32c::Value(header + 6, 1);
    actual_crc = crc32c::Extend(actual_crc, header + kHeaderSize, length);
    if (actual_crc != expected_crc) {
      buffer_ = Slice();
      return kBadRecord;
    }

    *fragment = Slice(header + kHeaderSize, length);
    buffer_.RemovePrefix(kHeaderSize + length);

    if (type < 1 || type > kMaxRecordType) return kBadRecord;
    return type;
  }
}

bool Reader::ReadRecord(std::string* record) {
  record->clear();
  if (!status_.ok()) return false;

  std::string assembled;
  bool in_fragmented = false;

  while (true) {
    Slice fragment;
    int type = ReadPhysicalRecord(&fragment);
    switch (type) {
      case static_cast<int>(RecordType::kFull):
        if (in_fragmented) {
          status_ = Status::Corruption("full record amid fragments");
          return false;
        }
        record->assign(fragment.data(), fragment.size());
        last_record_end_ = bytes_consumed_ - buffer_.size();
        return true;
      case static_cast<int>(RecordType::kFirst):
        if (in_fragmented) {
          status_ = Status::Corruption("two first fragments in a row");
          return false;
        }
        in_fragmented = true;
        assembled.assign(fragment.data(), fragment.size());
        break;
      case static_cast<int>(RecordType::kMiddle):
        if (!in_fragmented) {
          status_ = Status::Corruption("middle fragment without first");
          return false;
        }
        assembled.append(fragment.data(), fragment.size());
        break;
      case static_cast<int>(RecordType::kLast):
        if (!in_fragmented) {
          status_ = Status::Corruption("last fragment without first");
          return false;
        }
        assembled.append(fragment.data(), fragment.size());
        *record = std::move(assembled);
        last_record_end_ = bytes_consumed_ - buffer_.size();
        return true;
      case kEof:
        if (in_fragmented) {
          // Torn multi-fragment record at EOF: drop it silently,
          // consistent with torn-single-record handling.
          record->clear();
        }
        return false;
      case kBadRecord:
        status_ = Status::Corruption("checksum mismatch or malformed record");
        return false;
      default:
        status_ = Status::Corruption("unknown record type");
        return false;
    }
  }
}

}  // namespace medvault::storage::log
