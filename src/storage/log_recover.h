#ifndef MEDVAULT_STORAGE_LOG_RECOVER_H_
#define MEDVAULT_STORAGE_LOG_RECOVER_H_

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/env.h"
#include "storage/log_writer.h"

namespace medvault::storage::log {

/// Outcome of OpenLogForAppend.
struct LogOpenResult {
  /// Appendable writer positioned at the end of the valid prefix.
  std::unique_ptr<Writer> writer;
  /// Log size after recovery (== ValidEnd of the replayed reader).
  uint64_t valid_size = 0;
  /// Bytes of torn tail cut off (0 on a clean log or a fresh file).
  uint64_t dropped_bytes = 0;
};

/// Opens a record log for append with crash recovery — the one shared
/// open path for every MedVault log (state, audit, provenance, index
/// postings, version catalog, key log).
///
/// If `path` is missing, yields a fresh writer at offset 0. Otherwise
/// replays every complete record through `replay` (non-OK aborts the
/// open), then handles an unclean-shutdown tail: when the reader hit a
/// torn final record (clean-EOF semantics with bytes left past
/// ValidEnd), the tail is cut off with Env::Truncate so the next append
/// lands on a well-formed log. Mid-file damage is different — the
/// reader reports kCorruption, which propagates as-is; recovery never
/// truncates what the tamper-evidence layer needs to see.
Status OpenLogForAppend(Env* env, const std::string& path,
                        const std::function<Status(const Slice&)>& replay,
                        LogOpenResult* result);

}  // namespace medvault::storage::log

#endif  // MEDVAULT_STORAGE_LOG_RECOVER_H_
