#include "storage/retry_env.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace medvault::storage {

namespace {

class RetrySequentialFile : public SequentialFile {
 public:
  RetrySequentialFile(std::unique_ptr<SequentialFile> base, RetryEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(size_t n, std::string* result) override {
    return env_->RunWithRetry(env_->read_retry_counter(),
                              [&] { return base_->Read(n, result); });
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  RetryEnv* env_;
};

class RetryRandomAccessFile : public RandomAccessFile {
 public:
  RetryRandomAccessFile(std::unique_ptr<RandomAccessFile> base, RetryEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, std::string* result) const override {
    return env_->RunWithRetry(env_->read_retry_counter(), [&] {
      return base_->Read(offset, n, result);
    });
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  RetryEnv* env_;
};

class RetryWritableFile : public WritableFile {
 public:
  RetryWritableFile(std::unique_ptr<WritableFile> base, RetryEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    return env_->RunWithRetry(env_->write_retry_counter(),
                              [&] { return base_->Append(data); });
  }
  Status Flush() override {
    return env_->RunWithRetry(env_->write_retry_counter(),
                              [&] { return base_->Flush(); });
  }
  Status Sync() override {
    return env_->RunWithRetry(env_->sync_retry_counter(),
                              [&] { return base_->Sync(); });
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  RetryEnv* env_;
};

class RetryRandomRWFile : public RandomRWFile {
 public:
  RetryRandomRWFile(std::unique_ptr<RandomRWFile> base, RetryEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status WriteAt(uint64_t offset, const Slice& data) override {
    return env_->RunWithRetry(env_->write_retry_counter(), [&] {
      return base_->WriteAt(offset, data);
    });
  }
  Status ReadAt(uint64_t offset, size_t n,
                std::string* result) const override {
    return env_->RunWithRetry(env_->read_retry_counter(), [&] {
      return base_->ReadAt(offset, n, result);
    });
  }
  Status Sync() override {
    return env_->RunWithRetry(env_->sync_retry_counter(),
                              [&] { return base_->Sync(); });
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RandomRWFile> base_;
  RetryEnv* env_;
};

}  // namespace

RetryEnv::RetryEnv(Env* base, RetryOptions options,
                   obs::MetricsRegistry* metrics)
    : base_(base), options_(std::move(options)) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (metrics == nullptr) metrics = obs::MetricsRegistry::Default();
  retry_reads_ = metrics->GetCounter("env.retry.reads");
  retry_writes_ = metrics->GetCounter("env.retry.writes");
  retry_syncs_ = metrics->GetCounter("env.retry.syncs");
  retry_exhausted_ = metrics->GetCounter("env.retry.exhausted");
}

Status RetryEnv::RunWithRetry(obs::Counter* kind_counter,
                              const std::function<Status()>& op) {
  uint64_t backoff = options_.initial_backoff_micros;
  Status s = op();
  for (int attempt = 1; attempt < options_.max_attempts && s.IsIoError();
       ++attempt) {
    if (options_.sleeper) {
      options_.sleeper(backoff);
    } else if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
    backoff = std::min(backoff * 2, options_.max_backoff_micros);
    kind_counter->Increment();
    s = op();
  }
  if (s.IsIoError()) retry_exhausted_->Increment();
  return s;
}

Status RetryEnv::NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* file) {
  std::unique_ptr<SequentialFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewSequentialFile(fname, &base));
  *file = std::make_unique<RetrySequentialFile>(std::move(base), this);
  return Status::OK();
}

Status RetryEnv::NewRandomAccessFile(const std::string& fname,
                                     std::unique_ptr<RandomAccessFile>* file) {
  std::unique_ptr<RandomAccessFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &base));
  *file = std::make_unique<RetryRandomAccessFile>(std::move(base), this);
  return Status::OK();
}

Status RetryEnv::NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* file) {
  std::unique_ptr<WritableFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewWritableFile(fname, &base));
  *file = std::make_unique<RetryWritableFile>(std::move(base), this);
  return Status::OK();
}

Status RetryEnv::NewAppendableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* file) {
  std::unique_ptr<WritableFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewAppendableFile(fname, &base));
  *file = std::make_unique<RetryWritableFile>(std::move(base), this);
  return Status::OK();
}

Status RetryEnv::NewRandomRWFile(const std::string& fname,
                                 std::unique_ptr<RandomRWFile>* file) {
  std::unique_ptr<RandomRWFile> base;
  MEDVAULT_RETURN_IF_ERROR(base_->NewRandomRWFile(fname, &base));
  *file = std::make_unique<RetryRandomRWFile>(std::move(base), this);
  return Status::OK();
}

bool RetryEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status RetryEnv::GetChildren(const std::string& dir,
                             std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status RetryEnv::RemoveFile(const std::string& fname) {
  return base_->RemoveFile(fname);
}

Status RetryEnv::CreateDirIfMissing(const std::string& dirname) {
  return base_->CreateDirIfMissing(dirname);
}

Status RetryEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status RetryEnv::RenameFile(const std::string& src, const std::string& target) {
  return base_->RenameFile(src, target);
}

Status RetryEnv::Truncate(const std::string& fname, uint64_t size) {
  return base_->Truncate(fname, size);
}

Status RetryEnv::UnsafeOverwrite(const std::string& fname, uint64_t offset,
                                 const Slice& data) {
  return base_->UnsafeOverwrite(fname, offset, data);
}

Status RetryEnv::UnsafeTruncate(const std::string& fname, uint64_t size) {
  return base_->UnsafeTruncate(fname, size);
}

void RetryEnv::SubmitWrites(WriteRequest* requests, size_t n,
                            BatchCompletion* done) {
  base_->SubmitWrites(requests, n, done);
}

void RetryEnv::SubmitSyncs(WritableFile* const* files, size_t n,
                           BatchCompletion* done) {
  base_->SubmitSyncs(files, n, done);
}

}  // namespace medvault::storage
