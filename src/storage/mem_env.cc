#include "storage/mem_env.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace medvault::storage {

namespace {

class MemSequentialFile : public SequentialFile {
 public:
  MemSequentialFile(std::shared_ptr<std::string> contents, std::mutex* mu)
      : contents_(std::move(contents)), mu_(mu) {}

  Status Read(size_t n, std::string* result) override {
    std::lock_guard<std::mutex> lock(*mu_);
    result->clear();
    if (pos_ >= contents_->size()) return Status::OK();  // EOF
    size_t take = std::min(n, contents_->size() - pos_);
    result->assign(contents_->data() + pos_, take);
    pos_ += take;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    std::lock_guard<std::mutex> lock(*mu_);
    pos_ = std::min<uint64_t>(contents_->size(), pos_ + n);
    return Status::OK();
  }

 private:
  std::shared_ptr<std::string> contents_;
  std::mutex* mu_;
  uint64_t pos_ = 0;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  MemRandomAccessFile(std::shared_ptr<std::string> contents, std::mutex* mu)
      : contents_(std::move(contents)), mu_(mu) {}

  Status Read(uint64_t offset, size_t n, std::string* result) const override {
    std::lock_guard<std::mutex> lock(*mu_);
    result->clear();
    if (offset >= contents_->size()) return Status::OK();
    size_t take = std::min<uint64_t>(n, contents_->size() - offset);
    result->assign(contents_->data() + offset, take);
    return Status::OK();
  }

 private:
  std::shared_ptr<std::string> contents_;
  std::mutex* mu_;
};

void SimulateSyncLatency(MemEnv* env) {
  uint64_t micros = env->sync_delay_micros();
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

}  // namespace

class MemEnv::MemWritableFile : public WritableFile {
 public:
  MemWritableFile(std::shared_ptr<FileState> state, MemEnv* env)
      : state_(std::move(state)), env_(env) {}

  Status Append(const Slice& data) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    state_->contents.append(data.data(), data.size());
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override {
    // Simulated barrier latency sleeps before the lock so concurrent
    // syncs of different files overlap (see SetSyncDelayMicros).
    SimulateSyncLatency(env_);
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->crash_tracking_) state_->persisted = state_->contents;
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<FileState> state_;
  MemEnv* env_;
};

class MemEnv::MemRandomRWFile : public RandomRWFile {
 public:
  MemRandomRWFile(std::shared_ptr<FileState> state, MemEnv* env)
      : state_(std::move(state)), env_(env) {}

  Status WriteAt(uint64_t offset, const Slice& data) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    std::string* target = &state_->contents;
    if (offset + data.size() > target->size()) {
      target->resize(offset + data.size(), '\0');
    }
    memcpy(target->data() + offset, data.data(), data.size());
    return Status::OK();
  }

  Status ReadAt(uint64_t offset, size_t n,
                std::string* result) const override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    const std::string* target = &state_->contents;
    result->clear();
    if (offset >= target->size()) return Status::OK();
    size_t take = std::min<uint64_t>(n, target->size() - offset);
    result->assign(target->data() + offset, take);
    return Status::OK();
  }

  Status Sync() override {
    SimulateSyncLatency(env_);
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->crash_tracking_) state_->persisted = state_->contents;
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<FileState> state_;
  MemEnv* env_;
};

std::shared_ptr<MemEnv::FileState> MemEnv::Find(const std::string& fname) {
  auto it = files_.find(fname);
  return it == files_.end() ? nullptr : it->second;
}

Status MemEnv::NewSequentialFile(const std::string& fname,
                                 std::unique_ptr<SequentialFile>* file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto state = Find(fname);
  if (!state) return Status::NotFound(fname);
  *file = std::make_unique<MemSequentialFile>(
      std::shared_ptr<std::string>(state, &state->contents), &mu_);
  return Status::OK();
}

Status MemEnv::NewRandomAccessFile(const std::string& fname,
                                   std::unique_ptr<RandomAccessFile>* file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto state = Find(fname);
  if (!state) return Status::NotFound(fname);
  *file = std::make_unique<MemRandomAccessFile>(
      std::shared_ptr<std::string>(state, &state->contents), &mu_);
  return Status::OK();
}

Status MemEnv::NewWritableFile(const std::string& fname,
                               std::unique_ptr<WritableFile>* file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto state = std::make_shared<FileState>();
  files_[fname] = state;
  *file = std::make_unique<MemWritableFile>(std::move(state), this);
  return Status::OK();
}

Status MemEnv::NewAppendableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto state = Find(fname);
  if (!state) {
    state = std::make_shared<FileState>();
    files_[fname] = state;
  }
  *file = std::make_unique<MemWritableFile>(std::move(state), this);
  return Status::OK();
}

Status MemEnv::NewRandomRWFile(const std::string& fname,
                               std::unique_ptr<RandomRWFile>* file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto state = Find(fname);
  if (!state) {
    state = std::make_shared<FileState>();
    files_[fname] = state;
  }
  *file = std::make_unique<MemRandomRWFile>(std::move(state), this);
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(fname) > 0;
}

Status MemEnv::GetChildren(const std::string& dir,
                           std::vector<std::string>* result) {
  std::lock_guard<std::mutex> lock(mu_);
  result->clear();
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  for (const auto& [name, state] : files_) {
    if (name.size() > prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0) {
      std::string rest = name.substr(prefix.size());
      // Direct files verbatim; deeper paths contribute their first
      // component (an implicit subdirectory), deduplicated.
      auto slash = rest.find('/');
      if (slash != std::string::npos) rest.resize(slash);
      if (std::find(result->begin(), result->end(), rest) ==
          result->end()) {
        result->push_back(rest);
      }
    }
  }
  return Status::OK();
}

Status MemEnv::RemoveFile(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(fname) == 0) return Status::NotFound(fname);
  return Status::OK();
}

Status MemEnv::CreateDirIfMissing(const std::string& dirname) {
  return Status::OK();  // directories are implicit
}

Status MemEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto state = Find(fname);
  if (!state) return Status::NotFound(fname);
  *size = state->contents.size();
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& src, const std::string& target) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(src);
  if (it == files_.end()) return Status::NotFound(src);
  files_[target] = it->second;
  files_.erase(it);
  return Status::OK();
}

Status MemEnv::Truncate(const std::string& fname, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto state = Find(fname);
  if (!state) return Status::NotFound(fname);
  if (size > state->contents.size()) {
    return Status::InvalidArgument("Truncate would extend file");
  }
  state->contents.resize(size);
  // A sanctioned (recovery) truncation is durable like other metadata
  // operations: the cut tail must not resurrect after the next crash.
  if (state->persisted.size() > size) state->persisted.resize(size);
  return Status::OK();
}

Status MemEnv::UnsafeOverwrite(const std::string& fname, uint64_t offset,
                               const Slice& data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto state = Find(fname);
  if (!state) return Status::NotFound(fname);
  if (offset + data.size() > state->contents.size()) {
    return Status::InvalidArgument("UnsafeOverwrite beyond EOF");
  }
  memcpy(state->contents.data() + offset, data.data(), data.size());
  // The adversary writes to the platters directly; mirror into the
  // persisted region it touches so a later crash cannot undo tampering.
  if (offset < state->persisted.size()) {
    size_t n = std::min<uint64_t>(data.size(),
                                  state->persisted.size() - offset);
    memcpy(state->persisted.data() + offset, data.data(), n);
  }
  return Status::OK();
}

Status MemEnv::UnsafeTruncate(const std::string& fname, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto state = Find(fname);
  if (!state) return Status::NotFound(fname);
  if (size > state->contents.size()) {
    return Status::InvalidArgument("UnsafeTruncate would extend file");
  }
  state->contents.resize(size);
  if (state->persisted.size() > size) state->persisted.resize(size);
  return Status::OK();
}

void MemEnv::SetCrashTrackingEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  if (enabled && !crash_tracking_) {
    // Everything written so far counts as already on stable media.
    for (auto& [name, state] : files_) state->persisted = state->contents;
  }
  crash_tracking_ = enabled;
}

void MemEnv::CrashAndRecover(CrashMode mode, uint32_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, state] : files_) {
    std::string& contents = state->contents;
    std::string& persisted = state->persisted;
    switch (mode) {
      case CrashMode::kKeepAll:
        break;
      case CrashMode::kDropUnsynced:
        contents = persisted;
        break;
      case CrashMode::kKeepPartial: {
        const bool append_only =
            contents.size() >= persisted.size() &&
            contents.compare(0, persisted.size(), persisted) == 0;
        if (!append_only) {
          // In-place rewrites (RW files) can't keep a meaningful
          // partial tail; fall back to the synced snapshot.
          contents = persisted;
          break;
        }
        uint64_t extra = contents.size() - persisted.size();
        uint64_t keep =
            extra == 0
                ? 0
                : (std::hash<std::string>{}(name) ^ seed) % (extra + 1);
        contents.resize(persisted.size() + keep);
        break;
      }
    }
    persisted = contents;
  }
}

uint64_t MemEnv::TotalBytes() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, state] : files_) total += state->contents.size();
  return total;
}

}  // namespace medvault::storage
