#ifndef MEDVAULT_STORAGE_INSTRUMENTED_ENV_H_
#define MEDVAULT_STORAGE_INSTRUMENTED_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "storage/env.h"

namespace medvault::storage {

/// Plain-value snapshot of IoStats (see below).
struct IoStatsSnapshot {
  uint64_t reads = 0;        ///< read calls (sequential/random/rw)
  uint64_t read_bytes = 0;   ///< bytes actually returned by reads
  uint64_t writes = 0;       ///< Append + WriteAt calls
  uint64_t write_bytes = 0;  ///< bytes handed to Append/WriteAt
  uint64_t syncs = 0;        ///< durability barriers issued
  uint64_t flushes = 0;
  uint64_t file_opens = 0;   ///< New*File calls that succeeded
  uint64_t deletes = 0;
  uint64_t renames = 0;
  /// Barriers/appends that arrived through the batch API (SubmitSyncs/
  /// SubmitWrites). Counted *in addition to* syncs/writes — the wrapped
  /// file still tallies the per-op count when the backend executes it —
  /// so batched vs. unbatched traffic stays separable and the fsync/op
  /// curve is measurable.
  uint64_t batched_syncs = 0;
  uint64_t batched_writes = 0;
};

/// Lock-free I/O tally shared by an InstrumentedEnv and every file it
/// hands out. Several InstrumentedEnvs may feed one IoStats (process-
/// wide accounting across many vault Envs); the stats object must
/// outlive every file opened through the envs that use it.
struct IoStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> read_bytes{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> write_bytes{0};
  std::atomic<uint64_t> syncs{0};
  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> file_opens{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> renames{0};
  std::atomic<uint64_t> batched_syncs{0};
  std::atomic<uint64_t> batched_writes{0};

  IoStatsSnapshot TakeSnapshot() const {
    IoStatsSnapshot s;
    s.reads = reads.load(std::memory_order_relaxed);
    s.read_bytes = read_bytes.load(std::memory_order_relaxed);
    s.writes = writes.load(std::memory_order_relaxed);
    s.write_bytes = write_bytes.load(std::memory_order_relaxed);
    s.syncs = syncs.load(std::memory_order_relaxed);
    s.flushes = flushes.load(std::memory_order_relaxed);
    s.file_opens = file_opens.load(std::memory_order_relaxed);
    s.deletes = deletes.load(std::memory_order_relaxed);
    s.renames = renames.load(std::memory_order_relaxed);
    s.batched_syncs = batched_syncs.load(std::memory_order_relaxed);
    s.batched_writes = batched_writes.load(std::memory_order_relaxed);
    return s;
  }
};

/// Pass-through Env decorator that counts calls and bytes — the storage
/// half of the observability layer. Wrapping a vault's Env makes I/O
/// amplification measurable: logical bytes ingested vs physical
/// read/write/sync traffic (HealthReport reports both). The wrapper
/// adds two relaxed atomic adds per I/O call, so it is cheap enough to
/// leave on in experiments; semantics (including the Unsafe* adversary
/// hooks and Truncate) are forwarded unchanged.
class InstrumentedEnv : public Env {
 public:
  /// Counts into `stats` when given (caller keeps ownership; must
  /// outlive the env and all files opened through it), else into an
  /// internal instance.
  explicit InstrumentedEnv(Env* base, IoStats* stats = nullptr)
      : base_(base), stats_(stats != nullptr ? stats : &own_stats_) {}

  IoStats* stats() { return stats_; }
  const IoStats* stats() const { return stats_; }
  Env* base() { return base_; }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override;
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* file) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* file) override;

  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  Status Truncate(const std::string& fname, uint64_t size) override;
  Status UnsafeOverwrite(const std::string& fname, uint64_t offset,
                         const Slice& data) override;
  Status UnsafeTruncate(const std::string& fname, uint64_t size) override;

  /// Batch API: tallies batched_writes/batched_syncs, then forwards the
  /// same (instrumented) files to the base env's backend — each op the
  /// backend executes still lands in writes/syncs via the file wrapper,
  /// so batched traffic is counted distinctly, never doubly.
  void SubmitWrites(WriteRequest* requests, size_t n,
                    BatchCompletion* done) override;
  void SubmitSyncs(WritableFile* const* files, size_t n,
                   BatchCompletion* done) override;

 private:
  Env* base_;
  IoStats* stats_;
  IoStats own_stats_;
};

}  // namespace medvault::storage

#endif  // MEDVAULT_STORAGE_INSTRUMENTED_ENV_H_
