#include "storage/instrumented_env.h"

#include <utility>

namespace medvault::storage {

namespace {

class CountingSequentialFile : public SequentialFile {
 public:
  CountingSequentialFile(std::unique_ptr<SequentialFile> base, IoStats* stats)
      : base_(std::move(base)), stats_(stats) {}

  Status Read(size_t n, std::string* result) override {
    Status s = base_->Read(n, result);
    stats_->reads.fetch_add(1, std::memory_order_relaxed);
    if (s.ok()) {
      stats_->read_bytes.fetch_add(result->size(), std::memory_order_relaxed);
    }
    return s;
  }

  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  IoStats* stats_;
};

class CountingRandomAccessFile : public RandomAccessFile {
 public:
  CountingRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                           IoStats* stats)
      : base_(std::move(base)), stats_(stats) {}

  Status Read(uint64_t offset, size_t n, std::string* result) const override {
    Status s = base_->Read(offset, n, result);
    stats_->reads.fetch_add(1, std::memory_order_relaxed);
    if (s.ok()) {
      stats_->read_bytes.fetch_add(result->size(), std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  IoStats* stats_;
};

class CountingWritableFile : public WritableFile {
 public:
  CountingWritableFile(std::unique_ptr<WritableFile> base, IoStats* stats)
      : base_(std::move(base)), stats_(stats) {}

  Status Append(const Slice& data) override {
    Status s = base_->Append(data);
    stats_->writes.fetch_add(1, std::memory_order_relaxed);
    if (s.ok()) {
      stats_->write_bytes.fetch_add(data.size(), std::memory_order_relaxed);
    }
    return s;
  }

  Status Flush() override {
    stats_->flushes.fetch_add(1, std::memory_order_relaxed);
    return base_->Flush();
  }

  Status Sync() override {
    stats_->syncs.fetch_add(1, std::memory_order_relaxed);
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  IoStats* stats_;
};

class CountingRandomRWFile : public RandomRWFile {
 public:
  CountingRandomRWFile(std::unique_ptr<RandomRWFile> base, IoStats* stats)
      : base_(std::move(base)), stats_(stats) {}

  Status WriteAt(uint64_t offset, const Slice& data) override {
    Status s = base_->WriteAt(offset, data);
    stats_->writes.fetch_add(1, std::memory_order_relaxed);
    if (s.ok()) {
      stats_->write_bytes.fetch_add(data.size(), std::memory_order_relaxed);
    }
    return s;
  }

  Status ReadAt(uint64_t offset, size_t n,
                std::string* result) const override {
    Status s = base_->ReadAt(offset, n, result);
    stats_->reads.fetch_add(1, std::memory_order_relaxed);
    if (s.ok()) {
      stats_->read_bytes.fetch_add(result->size(), std::memory_order_relaxed);
    }
    return s;
  }

  Status Sync() override {
    stats_->syncs.fetch_add(1, std::memory_order_relaxed);
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RandomRWFile> base_;
  IoStats* stats_;
};

}  // namespace

Status InstrumentedEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* file) {
  std::unique_ptr<SequentialFile> inner;
  MEDVAULT_RETURN_IF_ERROR(base_->NewSequentialFile(fname, &inner));
  stats_->file_opens.fetch_add(1, std::memory_order_relaxed);
  *file = std::make_unique<CountingSequentialFile>(std::move(inner), stats_);
  return Status::OK();
}

Status InstrumentedEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* file) {
  std::unique_ptr<RandomAccessFile> inner;
  MEDVAULT_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &inner));
  stats_->file_opens.fetch_add(1, std::memory_order_relaxed);
  *file = std::make_unique<CountingRandomAccessFile>(std::move(inner), stats_);
  return Status::OK();
}

Status InstrumentedEnv::NewWritableFile(const std::string& fname,
                                        std::unique_ptr<WritableFile>* file) {
  std::unique_ptr<WritableFile> inner;
  MEDVAULT_RETURN_IF_ERROR(base_->NewWritableFile(fname, &inner));
  stats_->file_opens.fetch_add(1, std::memory_order_relaxed);
  *file = std::make_unique<CountingWritableFile>(std::move(inner), stats_);
  return Status::OK();
}

Status InstrumentedEnv::NewAppendableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* file) {
  std::unique_ptr<WritableFile> inner;
  MEDVAULT_RETURN_IF_ERROR(base_->NewAppendableFile(fname, &inner));
  stats_->file_opens.fetch_add(1, std::memory_order_relaxed);
  *file = std::make_unique<CountingWritableFile>(std::move(inner), stats_);
  return Status::OK();
}

Status InstrumentedEnv::NewRandomRWFile(const std::string& fname,
                                        std::unique_ptr<RandomRWFile>* file) {
  std::unique_ptr<RandomRWFile> inner;
  MEDVAULT_RETURN_IF_ERROR(base_->NewRandomRWFile(fname, &inner));
  stats_->file_opens.fetch_add(1, std::memory_order_relaxed);
  *file = std::make_unique<CountingRandomRWFile>(std::move(inner), stats_);
  return Status::OK();
}

bool InstrumentedEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status InstrumentedEnv::GetChildren(const std::string& dir,
                                    std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status InstrumentedEnv::RemoveFile(const std::string& fname) {
  stats_->deletes.fetch_add(1, std::memory_order_relaxed);
  return base_->RemoveFile(fname);
}

Status InstrumentedEnv::CreateDirIfMissing(const std::string& dirname) {
  return base_->CreateDirIfMissing(dirname);
}

Status InstrumentedEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status InstrumentedEnv::RenameFile(const std::string& src,
                                   const std::string& target) {
  stats_->renames.fetch_add(1, std::memory_order_relaxed);
  return base_->RenameFile(src, target);
}

Status InstrumentedEnv::Truncate(const std::string& fname, uint64_t size) {
  return base_->Truncate(fname, size);
}

Status InstrumentedEnv::UnsafeOverwrite(const std::string& fname,
                                        uint64_t offset, const Slice& data) {
  return base_->UnsafeOverwrite(fname, offset, data);
}

Status InstrumentedEnv::UnsafeTruncate(const std::string& fname,
                                       uint64_t size) {
  return base_->UnsafeTruncate(fname, size);
}

void InstrumentedEnv::SubmitWrites(WriteRequest* requests, size_t n,
                                   BatchCompletion* done) {
  stats_->batched_writes.fetch_add(n, std::memory_order_relaxed);
  base_->SubmitWrites(requests, n, done);
}

void InstrumentedEnv::SubmitSyncs(WritableFile* const* files, size_t n,
                                  BatchCompletion* done) {
  stats_->batched_syncs.fetch_add(n, std::memory_order_relaxed);
  base_->SubmitSyncs(files, n, done);
}

}  // namespace medvault::storage
