#ifndef MEDVAULT_STORAGE_ASYNC_ENV_H_
#define MEDVAULT_STORAGE_ASYNC_ENV_H_

#include <memory>
#include <string>

#include "common/worker_pool.h"
// obs/metrics depends only on common (see src/CMakeLists.txt), so the
// storage layer may report into a registry without a layering cycle.
#include "obs/metrics.h"
#include "storage/env.h"

namespace medvault::storage {

/// An Env decorator that gives SubmitWrites/SubmitSyncs a genuinely
/// concurrent completion backend, so one commit window's syncs overlap
/// instead of queueing behind each other. Two backends:
///
///  - io_uring (compiled when CMake finds liburing, MEDVAULT_IO_URING=ON):
///    syncs on files that expose an OS descriptor (PosixEnv) are
///    submitted as one SQE batch and reaped as a wave — the kernel
///    overlaps the fsyncs. Files without a descriptor (decorated or
///    in-memory files) fall back per-file to the thread pool, so a
///    mixed batch still completes correctly.
///  - thread pool (always available, the only backend when liburing is
///    absent or MEDVAULT_IO_URING=OFF): each barrier runs as a pooled
///    task. Behavior and tests are identical across backends.
///
/// Batched appends always use the pool: appends are buffered and cheap,
/// and per-file slot order must be preserved (requests are grouped by
/// file; groups run concurrently, a file's requests run in slot order).
///
/// Everything outside the batch API forwards to the base env untouched,
/// so AsyncEnv composes anywhere in a decorator stack. Batched work is
/// counted in the metrics registry:
///   env.sync.batched   barriers completed through the batch API
///   env.write.batched  appends completed through the batch API
class AsyncEnv : public Env {
 public:
  struct Options {
    /// Completion threads; 0 picks a small default (enough to overlap
    /// one vault's sync wave even on a single-core host, where the
    /// overlap comes from threads parked in fsync/simulated latency).
    unsigned threads = 0;
    /// Permit the io_uring backend when compiled in. The fallback is
    /// used regardless when liburing was not found at configure time.
    bool try_io_uring = true;
    /// Null uses the process-wide registry.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// `base` is borrowed and must outlive this env.
  explicit AsyncEnv(Env* base);
  AsyncEnv(Env* base, Options options);
  ~AsyncEnv() override;

  AsyncEnv(const AsyncEnv&) = delete;
  AsyncEnv& operator=(const AsyncEnv&) = delete;

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override;
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* file) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* file) override;

  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src, const std::string& target) override;
  Status Truncate(const std::string& fname, uint64_t size) override;
  Status UnsafeOverwrite(const std::string& fname, uint64_t offset,
                         const Slice& data) override;
  Status UnsafeTruncate(const std::string& fname, uint64_t size) override;

  void SubmitWrites(WriteRequest* requests, size_t n,
                    BatchCompletion* done) override;
  void SubmitSyncs(WritableFile* const* files, size_t n,
                   BatchCompletion* done) override;

  /// "io_uring" or "thread-pool" — what SubmitSyncs actually uses.
  const char* backend_name() const;

  /// True when this build carries the io_uring backend at all.
  static bool IoUringCompiledIn();

  unsigned thread_count() const { return pool_.thread_count(); }

 private:
  struct UringState;

  Env* base_;
  WorkerPool pool_;
  obs::Counter* batched_syncs_;
  obs::Counter* batched_writes_;
  std::unique_ptr<UringState> uring_;  // null unless the backend is live
};

}  // namespace medvault::storage

#endif  // MEDVAULT_STORAGE_ASYNC_ENV_H_
