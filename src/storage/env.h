#ifndef MEDVAULT_STORAGE_ENV_H_
#define MEDVAULT_STORAGE_ENV_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace medvault::storage {

class WritableFile;

/// Completion handle for one batched submission (Env::SubmitWrites /
/// Env::SubmitSyncs). The backend fulfills each slot exactly once —
/// possibly from another thread, possibly before the submit call
/// returns — and the caller blocks in Wait() until every slot is
/// fulfilled. Single-use: the handle must outlive the submission and
/// must not be reused for a second batch.
class BatchCompletion {
 public:
  explicit BatchCompletion(size_t n)
      : statuses_(n), remaining_(n) {}

  BatchCompletion(const BatchCompletion&) = delete;
  BatchCompletion& operator=(const BatchCompletion&) = delete;

  /// Backend side: records the outcome of slot `index`.
  void Fulfill(size_t index, Status status);

  /// Caller side: blocks until every slot has been fulfilled.
  void Wait();

  /// Valid after Wait(): per-slot outcome.
  const Status& status(size_t index) const { return statuses_[index]; }

  /// Valid after Wait(): the first non-OK status in slot order, or OK.
  Status Aggregate() const;

  size_t size() const { return statuses_.size(); }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Status> statuses_;
  size_t remaining_;
};

/// One append in a batched submission. `file` is borrowed and must stay
/// open until the batch completes; `data` is owned by the request so
/// the backend may complete it asynchronously.
struct WriteRequest {
  WritableFile* file = nullptr;
  std::string data;
};

/// Sequential read-only file.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes. A short (possibly empty) result means EOF.
  virtual Status Read(size_t n, std::string* result) = 0;

  /// Skips `n` bytes.
  virtual Status Skip(uint64_t n) = 0;
};

/// Positional read-only file.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset`. Short result means EOF.
  virtual Status Read(uint64_t offset, size_t n,
                      std::string* result) const = 0;
};

/// Append-only writable file (log/segment discipline).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  /// Durability barrier. MemEnv treats it as a no-op.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;

  /// OS-level file descriptor when this file is backed by one, else -1.
  /// Lets completion backends (io_uring) reach the kernel object without
  /// unwrapping decorator stacks; decorators deliberately do not forward
  /// it, so a wrapped file falls back to the portable path and keeps its
  /// interposition.
  virtual int FileDescriptor() const { return -1; }
};

/// Random-write file (B+tree pages). Kept separate from WritableFile so
/// append-only stores cannot accidentally acquire overwrite ability.
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;

  virtual Status WriteAt(uint64_t offset, const Slice& data) = 0;
  virtual Status ReadAt(uint64_t offset, size_t n,
                        std::string* result) const = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Filesystem abstraction (RocksDB idiom). Everything in MedVault does
/// I/O through an Env, so tests run on MemEnv, fault tests on
/// FaultInjectionEnv, and production on PosixEnv.
class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* file) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* file) = 0;
  /// Creates/truncates.
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* file) = 0;
  /// Opens for append, creating if missing.
  virtual Status NewAppendableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* file) = 0;
  /// Opens for random read/write, creating if missing.
  virtual Status NewRandomRWFile(const std::string& fname,
                                 std::unique_ptr<RandomRWFile>* file) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDirIfMissing(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  /// Sanctioned truncation, used exclusively by crash recovery to cut a
  /// torn tail off a log after an unclean shutdown. Unlike
  /// UnsafeTruncate (the adversary's tool, which leaves the durability
  /// snapshot alone so tampering stays detectable), this is an honest
  /// durable operation. May not shrink-to-extend; `size` must be at most
  /// the current file size.
  virtual Status Truncate(const std::string& fname, uint64_t size) {
    (void)fname;
    (void)size;
    return Status::NotSupported("Truncate not supported by this Env");
  }

  /// Overwrites `data.size()` bytes at `offset` in an existing file,
  /// bypassing every append-only / WORM discipline in the layers above.
  ///
  /// This exists to *model the adversary*: the paper's threat is a
  /// malicious insider "with direct disk access" (§4). Production code
  /// must never call it; the simulator does. The default refuses.
  virtual Status UnsafeOverwrite(const std::string& fname, uint64_t offset,
                                 const Slice& data) {
    return Status::NotSupported("UnsafeOverwrite not supported by this Env");
  }

  /// Truncates a file to `size` bytes (adversary: log truncation attack).
  virtual Status UnsafeTruncate(const std::string& fname, uint64_t size) {
    return Status::NotSupported("UnsafeTruncate not supported by this Env");
  }

  /// Batched appends. Fulfills `done` slot i with the outcome of
  /// `requests[i].file->Append(requests[i].data)`. Appends to the *same*
  /// file keep their slot order; appends to distinct files may run
  /// concurrently. The default executes inline, sequentially, in slot
  /// order — correct for every Env, coalesced only by backends that
  /// override it (AsyncEnv).
  virtual void SubmitWrites(WriteRequest* requests, size_t n,
                            BatchCompletion* done);

  /// Batched durability barriers. Fulfills `done` slot i with the
  /// outcome of `files[i]->Sync()`; barriers in one batch may run
  /// concurrently. Default: inline, sequential, slot order.
  virtual void SubmitSyncs(WritableFile* const* files, size_t n,
                           BatchCompletion* done);
};

/// Convenience: reads a whole file into `*data`.
Status ReadFileToString(Env* env, const std::string& fname,
                        std::string* data);

/// Convenience: atomically-ish writes `data` as the new file contents.
Status WriteStringToFile(Env* env, const Slice& data,
                         const std::string& fname, bool sync);

/// Convenience: submits all `files` as one sync batch, waits, and
/// returns the first error in slot order. Null entries are skipped.
Status SyncFilesBatch(Env* env, WritableFile* const* files, size_t n);
inline Status SyncFilesBatch(Env* env,
                             const std::vector<WritableFile*>& files) {
  return SyncFilesBatch(env, files.data(), files.size());
}

}  // namespace medvault::storage

#endif  // MEDVAULT_STORAGE_ENV_H_
