#ifndef MEDVAULT_STORAGE_LOG_READER_H_
#define MEDVAULT_STORAGE_LOG_READER_H_

#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/log_format.h"

namespace medvault::storage::log {

/// Sequentially reads logical records written by log::Writer.
///
/// Corruption handling: a bad checksum or malformed fragment sequence
/// stops iteration and is reported via status() as kCorruption (callers
/// in the audit path escalate that to tamper evidence).
class Reader {
 public:
  explicit Reader(std::unique_ptr<SequentialFile> src);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Reads the next logical record into *record. Returns false at EOF or
  /// on corruption; check status() to distinguish.
  bool ReadRecord(std::string* record);

  /// OK at clean EOF; kCorruption if the log was damaged.
  const Status& status() const { return status_; }

 private:
  /// Reads the next physical record; returns the type or an eof/bad marker.
  int ReadPhysicalRecord(Slice* fragment);

  /// Refills buffer_ from the file if it holds less than a header.
  bool MaybeRefill();

  std::unique_ptr<SequentialFile> src_;
  std::string backing_;
  Slice buffer_;
  bool eof_ = false;
  Status status_;

  static constexpr int kEof = kMaxRecordType + 1;
  static constexpr int kBadRecord = kMaxRecordType + 2;
};

}  // namespace medvault::storage::log

#endif  // MEDVAULT_STORAGE_LOG_READER_H_
