#ifndef MEDVAULT_STORAGE_LOG_READER_H_
#define MEDVAULT_STORAGE_LOG_READER_H_

#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/log_format.h"

namespace medvault::storage::log {

/// Sequentially reads logical records written by log::Writer.
///
/// Corruption handling: a bad checksum or malformed fragment sequence
/// stops iteration and is reported via status() as kCorruption (callers
/// in the audit path escalate that to tamper evidence).
class Reader {
 public:
  explicit Reader(std::unique_ptr<SequentialFile> src);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Reads the next logical record into *record. Returns false at EOF or
  /// on corruption; check status() to distinguish.
  bool ReadRecord(std::string* record);

  /// OK at clean EOF; kCorruption if the log was damaged.
  const Status& status() const { return status_; }

  /// File offset just past the last complete logical record returned by
  /// ReadRecord (0 if none yet). After draining the log, recovery
  /// truncates a torn tail down to this offset — but only while
  /// status() is OK; a kCorruption mid-file is tamper evidence, never
  /// cut away. May land before a block trailer the reader skipped;
  /// that is fine, log::Writer re-derives its block phase from the
  /// resulting size.
  uint64_t ValidEnd() const { return last_record_end_; }

 private:
  /// Reads the next physical record; returns the type or an eof/bad marker.
  int ReadPhysicalRecord(Slice* fragment);

  /// Refills buffer_ from the file if it holds less than a header.
  bool MaybeRefill();

  std::unique_ptr<SequentialFile> src_;
  std::string backing_;
  Slice buffer_;
  bool eof_ = false;
  Status status_;
  uint64_t bytes_consumed_ = 0;   ///< total bytes read from src_
  uint64_t last_record_end_ = 0;  ///< see ValidEnd()

  static constexpr int kEof = kMaxRecordType + 1;
  static constexpr int kBadRecord = kMaxRecordType + 2;
};

}  // namespace medvault::storage::log

#endif  // MEDVAULT_STORAGE_LOG_READER_H_
