#ifndef MEDVAULT_STORAGE_POSIX_ENV_H_
#define MEDVAULT_STORAGE_POSIX_ENV_H_

#include <memory>
#include <string>

#include "storage/env.h"

namespace medvault::storage {

/// Env backed by the local POSIX filesystem. One process-wide instance.
///
/// UnsafeOverwrite/UnsafeTruncate are implemented (pwrite/truncate) so the
/// insider-adversary experiments can also run against real disks.
class PosixEnv : public Env {
 public:
  /// Shared process-wide instance (never deleted).
  static PosixEnv* Default();

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override;
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* file) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* file) override;

  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  Status Truncate(const std::string& fname, uint64_t size) override;

  Status UnsafeOverwrite(const std::string& fname, uint64_t offset,
                         const Slice& data) override;
  Status UnsafeTruncate(const std::string& fname, uint64_t size) override;
};

}  // namespace medvault::storage

#endif  // MEDVAULT_STORAGE_POSIX_ENV_H_
