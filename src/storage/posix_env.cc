#include "storage/posix_env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace medvault::storage {

namespace {

Status PosixError(const std::string& context, int err) {
  std::string msg = context + ": " + strerror(err);
  if (err == ENOENT) return Status::NotFound(msg);
  return Status::IoError(msg);
}

// Positional read of exactly `n` bytes unless EOF intervenes: retries
// EINTR and loops on short preads, so a signal or a partial kernel read
// can never masquerade as EOF (upstream log readers treat a short
// result as end-of-file and would silently stop replaying).
Status PreadFully(int fd, const std::string& fname, uint64_t offset,
                  size_t n, std::string* result) {
  result->resize(n);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::pread(fd, result->data() + got, n - got,
                        static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return PosixError(fname, errno);
    }
    if (r == 0) break;  // EOF
    got += static_cast<size_t>(r);
  }
  result->resize(got);
  return Status::OK();
}

// Full-length positional write: loops on partial writes and retries
// EINTR. A bare `w >= 0` success check would report success while
// silently dropping the unwritten tail.
Status PwriteFully(int fd, const std::string& fname, uint64_t offset,
                   const Slice& data) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t w = ::pwrite(fd, p, left, static_cast<off_t>(offset));
    if (w < 0) {
      if (errno == EINTR) continue;
      return PosixError(fname, errno);
    }
    p += w;
    offset += static_cast<uint64_t>(w);
    left -= static_cast<size_t>(w);
  }
  return Status::OK();
}

class PosixSequentialFile : public SequentialFile {
 public:
  explicit PosixSequentialFile(int fd, std::string fname)
      : fd_(fd), fname_(std::move(fname)) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, std::string* result) override {
    // Same contract as PreadFully: only EOF may shorten the result.
    result->resize(n);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::read(fd_, result->data() + got, n - got);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      if (r == 0) break;  // EOF
      got += static_cast<size_t>(r);
    }
    result->resize(got);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) < 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string fname_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  explicit PosixRandomAccessFile(int fd, std::string fname)
      : fd_(fd), fname_(std::move(fname)) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, std::string* result) const override {
    return PreadFully(fd_, fname_, offset, n, result);
  }

 private:
  int fd_;
  std::string fname_;
};

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(int fd, std::string fname)
      : fd_(fd), fname_(std::move(fname)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const Slice& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t w = ::write(fd_, p, left);
      if (w < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += w;
      left -= w;
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    if (::fsync(fd_) < 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) < 0) {
      fd_ = -1;
      return PosixError(fname_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

  int FileDescriptor() const override { return fd_; }

 private:
  int fd_;
  std::string fname_;
};

class PosixRandomRWFile : public RandomRWFile {
 public:
  explicit PosixRandomRWFile(int fd, std::string fname)
      : fd_(fd), fname_(std::move(fname)) {}
  ~PosixRandomRWFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status WriteAt(uint64_t offset, const Slice& data) override {
    return PwriteFully(fd_, fname_, offset, data);
  }

  Status ReadAt(uint64_t offset, size_t n,
                std::string* result) const override {
    return PreadFully(fd_, fname_, offset, n, result);
  }

  Status Sync() override {
    if (::fsync(fd_) < 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) < 0) {
      fd_ = -1;
      return PosixError(fname_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  int fd_;
  std::string fname_;
};

}  // namespace

PosixEnv* PosixEnv::Default() {
  static PosixEnv* env = new PosixEnv();  // intentionally leaked singleton
  return env;
}

Status PosixEnv::NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* file) {
  int fd = ::open(fname.c_str(), O_RDONLY);
  if (fd < 0) return PosixError(fname, errno);
  *file = std::make_unique<PosixSequentialFile>(fd, fname);
  return Status::OK();
}

Status PosixEnv::NewRandomAccessFile(const std::string& fname,
                                     std::unique_ptr<RandomAccessFile>* file) {
  int fd = ::open(fname.c_str(), O_RDONLY);
  if (fd < 0) return PosixError(fname, errno);
  *file = std::make_unique<PosixRandomAccessFile>(fd, fname);
  return Status::OK();
}

Status PosixEnv::NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* file) {
  int fd = ::open(fname.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return PosixError(fname, errno);
  *file = std::make_unique<PosixWritableFile>(fd, fname);
  return Status::OK();
}

Status PosixEnv::NewAppendableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* file) {
  int fd = ::open(fname.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return PosixError(fname, errno);
  *file = std::make_unique<PosixWritableFile>(fd, fname);
  return Status::OK();
}

Status PosixEnv::NewRandomRWFile(const std::string& fname,
                                 std::unique_ptr<RandomRWFile>* file) {
  int fd = ::open(fname.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return PosixError(fname, errno);
  *file = std::make_unique<PosixRandomRWFile>(fd, fname);
  return Status::OK();
}

bool PosixEnv::FileExists(const std::string& fname) {
  return ::access(fname.c_str(), F_OK) == 0;
}

Status PosixEnv::GetChildren(const std::string& dir,
                             std::vector<std::string>* result) {
  result->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return PosixError(dir, errno);
  struct dirent* entry;
  while ((entry = ::readdir(d)) != nullptr) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") result->push_back(name);
  }
  ::closedir(d);
  return Status::OK();
}

Status PosixEnv::RemoveFile(const std::string& fname) {
  if (::unlink(fname.c_str()) < 0) return PosixError(fname, errno);
  return Status::OK();
}

Status PosixEnv::CreateDirIfMissing(const std::string& dirname) {
  if (::mkdir(dirname.c_str(), 0755) < 0 && errno != EEXIST) {
    return PosixError(dirname, errno);
  }
  return Status::OK();
}

Status PosixEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  struct stat st;
  if (::stat(fname.c_str(), &st) < 0) return PosixError(fname, errno);
  *size = static_cast<uint64_t>(st.st_size);
  return Status::OK();
}

Status PosixEnv::RenameFile(const std::string& src,
                            const std::string& target) {
  if (::rename(src.c_str(), target.c_str()) < 0) {
    return PosixError(src, errno);
  }
  return Status::OK();
}

Status PosixEnv::Truncate(const std::string& fname, uint64_t size) {
  uint64_t current = 0;
  MEDVAULT_RETURN_IF_ERROR(GetFileSize(fname, &current));
  if (size > current) {
    return Status::InvalidArgument("Truncate would extend file");
  }
  if (::truncate(fname.c_str(), static_cast<off_t>(size)) < 0) {
    return PosixError(fname, errno);
  }
  return Status::OK();
}

Status PosixEnv::UnsafeOverwrite(const std::string& fname, uint64_t offset,
                                 const Slice& data) {
  uint64_t size = 0;
  MEDVAULT_RETURN_IF_ERROR(GetFileSize(fname, &size));
  if (offset + data.size() > size) {
    return Status::InvalidArgument("UnsafeOverwrite beyond EOF");
  }
  int fd = ::open(fname.c_str(), O_WRONLY);
  if (fd < 0) return PosixError(fname, errno);
  Status s = PwriteFully(fd, fname, offset, data);
  ::close(fd);
  return s;
}

Status PosixEnv::UnsafeTruncate(const std::string& fname, uint64_t size) {
  if (::truncate(fname.c_str(), static_cast<off_t>(size)) < 0) {
    return PosixError(fname, errno);
  }
  return Status::OK();
}

}  // namespace medvault::storage
