#include "storage/bptree.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32c.h"

namespace medvault::storage {

namespace {

constexpr uint32_t kMetaMagic = 0x4d564254;  // "MVBT"

}  // namespace

BpTree::BpTree(Env* env, std::string path)
    : env_(env), path_(std::move(path)) {}

BpTree::~BpTree() {
  if (open_) Flush();
}

Status BpTree::Open() {
  MEDVAULT_RETURN_IF_ERROR(env_->NewRandomRWFile(path_, &file_));
  uint64_t size = 0;
  Status s = env_->GetFileSize(path_, &size);
  if (!s.ok()) size = 0;

  if (size >= kPageSize) {
    std::string meta;
    MEDVAULT_RETURN_IF_ERROR(file_->ReadAt(0, kPageSize, &meta));
    if (meta.size() < 32) return Status::Corruption("meta page truncated");
    Slice in(meta.data(), 32);
    uint32_t magic = 0;
    if (!GetFixed32(&in, &magic) || magic != kMetaMagic) {
      return Status::Corruption("bad B+tree magic");
    }
    uint32_t unused = 0;
    GetFixed32(&in, &unused);
    GetFixed64(&in, &root_);
    GetFixed64(&in, &page_count_);
    GetFixed64(&in, &key_count_);
  } else {
    root_ = 0;
    page_count_ = 1;
    key_count_ = 0;
    MEDVAULT_RETURN_IF_ERROR(WriteMeta());
  }
  open_ = true;
  return Status::OK();
}

Status BpTree::WriteMeta() {
  std::string meta;
  PutFixed32(&meta, kMetaMagic);
  PutFixed32(&meta, 0);
  PutFixed64(&meta, root_);
  PutFixed64(&meta, page_count_);
  PutFixed64(&meta, key_count_);
  meta.resize(kPageSize, '\0');
  return file_->WriteAt(0, meta);
}

std::string BpTree::SerializeNode(const Node& node) {
  std::string payload;
  payload.push_back(node.leaf ? 1 : 2);
  PutVarint32(&payload, static_cast<uint32_t>(node.keys.size()));
  if (node.leaf) {
    PutFixed64(&payload, node.next_leaf);
    for (size_t i = 0; i < node.keys.size(); i++) {
      PutLengthPrefixed(&payload, node.keys[i]);
      PutLengthPrefixed(&payload, node.values[i]);
    }
  } else {
    for (const std::string& key : node.keys) {
      PutLengthPrefixed(&payload, key);
    }
    for (uint64_t child : node.children) {
      PutVarint64(&payload, child);
    }
  }
  std::string page;
  PutFixed32(&page, crc32c::Mask(crc32c::Value(payload)));
  PutFixed32(&page, static_cast<uint32_t>(payload.size()));
  page.append(payload);
  return page;
}

size_t BpTree::NodeSerializedSize(const Node& node) {
  size_t size = 1 + 5 + 8;  // type + count varint + next_leaf/slack
  if (node.leaf) {
    for (size_t i = 0; i < node.keys.size(); i++) {
      size += VarintLength(node.keys[i].size()) + node.keys[i].size();
      size += VarintLength(node.values[i].size()) + node.values[i].size();
    }
  } else {
    for (const std::string& key : node.keys) {
      size += VarintLength(key.size()) + key.size();
    }
    size += node.children.size() * 10;
  }
  return size + 8;  // frame header
}

Result<BpTree::Node> BpTree::DeserializeNode(const Slice& data) {
  Slice in = data;
  uint32_t expected_crc = 0, payload_len = 0;
  if (!GetFixed32(&in, &expected_crc) || !GetFixed32(&in, &payload_len) ||
      in.size() < payload_len) {
    return Status::Corruption("B+tree page frame malformed");
  }
  Slice payload(in.data(), payload_len);
  if (crc32c::Unmask(expected_crc) != crc32c::Value(payload)) {
    return Status::Corruption("B+tree page checksum mismatch");
  }
  Node node;
  if (payload.empty()) return Status::Corruption("empty B+tree page");
  uint8_t type = static_cast<uint8_t>(payload[0]);
  payload.RemovePrefix(1);
  uint32_t count = 0;
  if (!GetVarint32(&payload, &count)) {
    return Status::Corruption("B+tree page count malformed");
  }
  if (type == 1) {
    node.leaf = true;
    if (!GetFixed64(&payload, &node.next_leaf)) {
      return Status::Corruption("B+tree leaf link malformed");
    }
    node.keys.reserve(count);
    node.values.reserve(count);
    for (uint32_t i = 0; i < count; i++) {
      std::string key, value;
      if (!GetLengthPrefixedString(&payload, &key) ||
          !GetLengthPrefixedString(&payload, &value)) {
        return Status::Corruption("B+tree leaf cell malformed");
      }
      node.keys.push_back(std::move(key));
      node.values.push_back(std::move(value));
    }
  } else if (type == 2) {
    node.leaf = false;
    node.keys.reserve(count);
    for (uint32_t i = 0; i < count; i++) {
      std::string key;
      if (!GetLengthPrefixedString(&payload, &key)) {
        return Status::Corruption("B+tree interior key malformed");
      }
      node.keys.push_back(std::move(key));
    }
    node.children.reserve(count + 1);
    for (uint32_t i = 0; i < count + 1; i++) {
      uint64_t child = 0;
      if (!GetVarint64(&payload, &child)) {
        return Status::Corruption("B+tree interior child malformed");
      }
      node.children.push_back(child);
    }
  } else {
    return Status::Corruption("unknown B+tree page type");
  }
  return node;
}

Result<BpTree::Node*> BpTree::LoadNode(uint64_t page_id) const {
  auto it = cache_.find(page_id);
  if (it != cache_.end()) return &it->second;
  std::string page;
  MEDVAULT_RETURN_IF_ERROR(file_->ReadAt(page_id * kPageSize, kPageSize,
                                         &page));
  if (page.empty()) return Status::Corruption("missing B+tree page");
  MEDVAULT_ASSIGN_OR_RETURN(Node node, DeserializeNode(page));
  auto [pos, ok] = cache_.emplace(page_id, std::move(node));
  return &pos->second;
}

uint64_t BpTree::AllocPage() { return page_count_++; }

void BpTree::MarkDirty(uint64_t page_id) { dirty_.insert(page_id); }

Status BpTree::WriteNode(uint64_t page_id, const Node& node) {
  std::string page = SerializeNode(node);
  if (page.size() > kPageSize) {
    return Status::Corruption("B+tree node overflows page");
  }
  page.resize(kPageSize, '\0');
  return file_->WriteAt(page_id * kPageSize, page);
}

Status BpTree::Flush() {
  if (!open_) return Status::OK();
  for (uint64_t page_id : dirty_) {
    auto it = cache_.find(page_id);
    if (it == cache_.end()) continue;
    MEDVAULT_RETURN_IF_ERROR(WriteNode(page_id, it->second));
  }
  dirty_.clear();
  MEDVAULT_RETURN_IF_ERROR(WriteMeta());
  return file_->Sync();
}

Result<BpTree::SplitResult> BpTree::InsertInto(uint64_t page_id,
                                               const Slice& key,
                                               const Slice& value,
                                               bool* inserted) {
  MEDVAULT_ASSIGN_OR_RETURN(Node* node, LoadNode(page_id));

  if (node->leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(),
                               key.ToStringView());
    size_t idx = it - node->keys.begin();
    if (it != node->keys.end() && *it == key.ToStringView()) {
      node->values[idx] = value.ToString();
      *inserted = false;
    } else {
      node->keys.insert(it, key.ToString());
      node->values.insert(node->values.begin() + idx, value.ToString());
      *inserted = true;
    }
    MarkDirty(page_id);

    if (NodeSerializedSize(*node) > kPageSize && node->keys.size() >= 2) {
      // Split leaf: right half moves to a new page.
      uint64_t right_id = AllocPage();
      size_t mid = node->keys.size() / 2;
      Node right;
      right.leaf = true;
      right.keys.assign(node->keys.begin() + mid, node->keys.end());
      right.values.assign(node->values.begin() + mid, node->values.end());
      right.next_leaf = node->next_leaf;
      node->keys.resize(mid);
      node->values.resize(mid);
      node->next_leaf = right_id;
      std::string separator = right.keys.front();
      cache_[right_id] = std::move(right);
      MarkDirty(right_id);
      // cache_ may have rehashed; node pointer could be stale. Re-load.
      MEDVAULT_ASSIGN_OR_RETURN(node, LoadNode(page_id));
      (void)node;
      return SplitResult{true, std::move(separator), right_id};
    }
    return SplitResult{};
  }

  // Interior node: find child to descend into.
  auto it = std::upper_bound(node->keys.begin(), node->keys.end(),
                             key.ToStringView());
  size_t child_idx = it - node->keys.begin();
  uint64_t child_id = node->children[child_idx];
  MEDVAULT_ASSIGN_OR_RETURN(SplitResult child_split,
                            InsertInto(child_id, key, value, inserted));
  if (!child_split.split) return SplitResult{};

  // Child split: reload (recursion may have invalidated the pointer).
  MEDVAULT_ASSIGN_OR_RETURN(node, LoadNode(page_id));
  node->keys.insert(node->keys.begin() + child_idx, child_split.separator);
  node->children.insert(node->children.begin() + child_idx + 1,
                        child_split.right_id);
  MarkDirty(page_id);

  if (NodeSerializedSize(*node) > kPageSize && node->keys.size() >= 3) {
    uint64_t right_id = AllocPage();
    size_t mid = node->keys.size() / 2;
    std::string separator = node->keys[mid];
    Node right;
    right.leaf = false;
    right.keys.assign(node->keys.begin() + mid + 1, node->keys.end());
    right.children.assign(node->children.begin() + mid + 1,
                          node->children.end());
    node->keys.resize(mid);
    node->children.resize(mid + 1);
    cache_[right_id] = std::move(right);
    MarkDirty(right_id);
    MEDVAULT_ASSIGN_OR_RETURN(node, LoadNode(page_id));
    (void)node;
    return SplitResult{true, std::move(separator), right_id};
  }
  return SplitResult{};
}

Status BpTree::Put(const Slice& key, const Slice& value) {
  if (!open_) return Status::FailedPrecondition("B+tree not open");
  if (key.size() + value.size() > kMaxCellSize) {
    return Status::InvalidArgument("B+tree cell too large");
  }
  if (root_ == 0) {
    root_ = AllocPage();
    Node leaf;
    leaf.leaf = true;
    cache_[root_] = std::move(leaf);
    MarkDirty(root_);
  }
  bool inserted = false;
  MEDVAULT_ASSIGN_OR_RETURN(SplitResult split,
                            InsertInto(root_, key, value, &inserted));
  if (split.split) {
    uint64_t new_root = AllocPage();
    Node root_node;
    root_node.leaf = false;
    root_node.keys.push_back(split.separator);
    root_node.children.push_back(root_);
    root_node.children.push_back(split.right_id);
    cache_[new_root] = std::move(root_node);
    MarkDirty(new_root);
    root_ = new_root;
  }
  if (inserted) key_count_++;
  return Status::OK();
}

Result<std::string> BpTree::Get(const Slice& key) const {
  if (!open_) return Status::FailedPrecondition("B+tree not open");
  if (root_ == 0) return Status::NotFound("empty tree");
  uint64_t page_id = root_;
  while (true) {
    MEDVAULT_ASSIGN_OR_RETURN(Node* node, LoadNode(page_id));
    if (node->leaf) {
      auto it = std::lower_bound(node->keys.begin(), node->keys.end(),
                                 key.ToStringView());
      if (it != node->keys.end() && *it == key.ToStringView()) {
        return node->values[it - node->keys.begin()];
      }
      return Status::NotFound("key not in tree");
    }
    auto it = std::upper_bound(node->keys.begin(), node->keys.end(),
                               key.ToStringView());
    page_id = node->children[it - node->keys.begin()];
  }
}

Status BpTree::Delete(const Slice& key) {
  if (!open_) return Status::FailedPrecondition("B+tree not open");
  if (root_ == 0) return Status::NotFound("empty tree");
  uint64_t page_id = root_;
  while (true) {
    MEDVAULT_ASSIGN_OR_RETURN(Node* node, LoadNode(page_id));
    if (node->leaf) {
      auto it = std::lower_bound(node->keys.begin(), node->keys.end(),
                                 key.ToStringView());
      if (it == node->keys.end() || *it != key.ToStringView()) {
        return Status::NotFound("key not in tree");
      }
      size_t idx = it - node->keys.begin();
      node->keys.erase(it);
      node->values.erase(node->values.begin() + idx);
      MarkDirty(page_id);
      key_count_--;
      return Status::OK();
    }
    auto it = std::upper_bound(node->keys.begin(), node->keys.end(),
                               key.ToStringView());
    page_id = node->children[it - node->keys.begin()];
  }
}

Status BpTree::Scan(
    const Slice& start,
    const std::function<bool(const Slice&, const Slice&)>& fn) const {
  if (!open_) return Status::FailedPrecondition("B+tree not open");
  if (root_ == 0) return Status::OK();

  // Descend to the leaf containing `start`.
  uint64_t page_id = root_;
  while (true) {
    MEDVAULT_ASSIGN_OR_RETURN(Node* node, LoadNode(page_id));
    if (node->leaf) break;
    auto it = std::upper_bound(node->keys.begin(), node->keys.end(),
                               start.ToStringView());
    page_id = node->children[it - node->keys.begin()];
  }

  while (page_id != 0) {
    MEDVAULT_ASSIGN_OR_RETURN(Node* node, LoadNode(page_id));
    uint64_t next = node->next_leaf;
    for (size_t i = 0; i < node->keys.size(); i++) {
      if (Slice(node->keys[i]).compare(start) < 0) continue;
      if (!fn(node->keys[i], node->values[i])) return Status::OK();
    }
    page_id = next;
  }
  return Status::OK();
}

}  // namespace medvault::storage
