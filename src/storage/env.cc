#include "storage/env.h"

namespace medvault::storage {

Status ReadFileToString(Env* env, const std::string& fname,
                        std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  MEDVAULT_RETURN_IF_ERROR(env->NewSequentialFile(fname, &file));
  std::string chunk;
  constexpr size_t kChunk = 64 * 1024;
  while (true) {
    MEDVAULT_RETURN_IF_ERROR(file->Read(kChunk, &chunk));
    if (chunk.empty()) break;
    data->append(chunk);
  }
  return Status::OK();
}

Status WriteStringToFile(Env* env, const Slice& data,
                         const std::string& fname, bool sync) {
  std::unique_ptr<WritableFile> file;
  MEDVAULT_RETURN_IF_ERROR(env->NewWritableFile(fname, &file));
  MEDVAULT_RETURN_IF_ERROR(file->Append(data));
  if (sync) MEDVAULT_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

}  // namespace medvault::storage
