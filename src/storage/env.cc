#include "storage/env.h"

#include <cassert>

namespace medvault::storage {

void BatchCompletion::Fulfill(size_t index, Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(index < statuses_.size());
  assert(remaining_ > 0);
  statuses_[index] = std::move(status);
  if (--remaining_ == 0) cv_.notify_all();
}

void BatchCompletion::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return remaining_ == 0; });
}

Status BatchCompletion::Aggregate() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Status& s : statuses_) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

void Env::SubmitWrites(WriteRequest* requests, size_t n,
                       BatchCompletion* done) {
  for (size_t i = 0; i < n; ++i) {
    done->Fulfill(i, requests[i].file->Append(requests[i].data));
  }
}

void Env::SubmitSyncs(WritableFile* const* files, size_t n,
                      BatchCompletion* done) {
  for (size_t i = 0; i < n; ++i) {
    done->Fulfill(i, files[i]->Sync());
  }
}

Status SyncFilesBatch(Env* env, WritableFile* const* files, size_t n) {
  std::vector<WritableFile*> live;
  live.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (files[i] != nullptr) live.push_back(files[i]);
  }
  if (live.empty()) return Status::OK();
  BatchCompletion done(live.size());
  env->SubmitSyncs(live.data(), live.size(), &done);
  done.Wait();
  return done.Aggregate();
}

Status ReadFileToString(Env* env, const std::string& fname,
                        std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  MEDVAULT_RETURN_IF_ERROR(env->NewSequentialFile(fname, &file));
  std::string chunk;
  constexpr size_t kChunk = 64 * 1024;
  while (true) {
    MEDVAULT_RETURN_IF_ERROR(file->Read(kChunk, &chunk));
    if (chunk.empty()) break;
    data->append(chunk);
  }
  return Status::OK();
}

Status WriteStringToFile(Env* env, const Slice& data,
                         const std::string& fname, bool sync) {
  std::unique_ptr<WritableFile> file;
  MEDVAULT_RETURN_IF_ERROR(env->NewWritableFile(fname, &file));
  MEDVAULT_RETURN_IF_ERROR(file->Append(data));
  if (sync) MEDVAULT_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

}  // namespace medvault::storage
