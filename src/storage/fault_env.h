#ifndef MEDVAULT_STORAGE_FAULT_ENV_H_
#define MEDVAULT_STORAGE_FAULT_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "storage/env.h"

namespace medvault::storage {

/// An Env decorator that injects I/O failures, for crash/fault testing.
///
/// Modes:
///  - FailAfterWrites(n): the n+1-th and later Append/WriteAt calls fail
///    with kIoError (models a full or dying disk mid-operation).
///  - FailWrites(bool): hard on/off switch.
///
/// Counters (writes, syncs, reads) let tests assert I/O behaviour, e.g.
/// "backup verification reads every byte".
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  FaultInjectionEnv(const FaultInjectionEnv&) = delete;
  FaultInjectionEnv& operator=(const FaultInjectionEnv&) = delete;

  /// Writes beyond the next `n` fail. Resets the write counter.
  void FailAfterWrites(uint64_t n) {
    writes_allowed_.store(n);
    limited_ = true;
  }
  void FailWrites(bool fail) { fail_writes_.store(fail); }
  void Reset() {
    fail_writes_ = false;
    limited_ = false;
    writes_ = syncs_ = reads_ = 0;
  }

  uint64_t writes() const { return writes_.load(); }
  uint64_t syncs() const { return syncs_.load(); }
  uint64_t reads() const { return reads_.load(); }

  /// Returns kIoError if the next write should fail; otherwise consumes
  /// one write credit. Called by the wrapped file objects.
  Status ConsumeWriteCredit();
  void CountSync() { syncs_++; }
  void CountRead() { reads_++; }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override;
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* file) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* file) override;

  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDirIfMissing(const std::string& dirname) override {
    return base_->CreateDirIfMissing(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  Status UnsafeOverwrite(const std::string& fname, uint64_t offset,
                         const Slice& data) override {
    return base_->UnsafeOverwrite(fname, offset, data);
  }
  Status UnsafeTruncate(const std::string& fname, uint64_t size) override {
    return base_->UnsafeTruncate(fname, size);
  }

 private:
  Env* base_;
  std::atomic<bool> fail_writes_{false};
  bool limited_ = false;
  std::atomic<uint64_t> writes_allowed_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> reads_{0};
};

}  // namespace medvault::storage

#endif  // MEDVAULT_STORAGE_FAULT_ENV_H_
