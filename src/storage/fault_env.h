#ifndef MEDVAULT_STORAGE_FAULT_ENV_H_
#define MEDVAULT_STORAGE_FAULT_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "storage/env.h"

namespace medvault::storage {

/// An Env decorator that injects I/O failures, for crash/fault testing.
///
/// Modes:
///  - FailAfterWrites(n): the n+1-th and later Append/WriteAt calls fail
///    with kIoError (models a full or dying disk mid-operation).
///  - FailWrites(bool): hard on/off switch.
///  - FailNextSyncs(k): the next k Sync() calls fail (data reached the
///    page cache but the durability barrier broke).
///  - FailNextReads(k) / FailNextWrites(k): the next k read/write calls
///    fail with kIoError, then the path recovers — a *transient* media
///    fault, the kind RetryEnv is expected to absorb.
///  - FailReads(bool): *persistent* read failure (dying media); every
///    read fails until cleared, so bounded retries must give up.
///  - FailFileCreation(bool): creating new files fails (ENOSPC-style).
///  - FlipBit(fname, offset, bit): silent single-bit rot injected via
///    the unsafe channel — exactly what Scrub exists to localize.
///  - PlanCrash(k): power cut at I/O boundary k — see below.
///
/// Counters (writes, syncs, reads, unsafe_writes) let tests assert I/O
/// behaviour, e.g. "backup verification reads every byte". All knobs and
/// counters are atomics, safe to poke while worker threads do I/O.
///
/// Crash simulation: every Append/WriteAt/Sync across all files is one
/// I/O boundary, numbered from 0 in call order. After PlanCrash(k), the
/// op at boundary k fails — an Append lands a deterministic prefix of
/// its payload first (torn write), a Sync fails without persisting — and
/// every later mutating operation (writes, syncs, file creation, rename,
/// remove, truncate) fails until Reset(), as if the machine lost power.
/// Run the workload once fault-free and read ops() to size a crash
/// matrix. Pair with MemEnv::CrashAndRecover to discard unsynced bytes
/// before "rebooting".
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  FaultInjectionEnv(const FaultInjectionEnv&) = delete;
  FaultInjectionEnv& operator=(const FaultInjectionEnv&) = delete;

  /// Writes beyond the next `n` fail. Resets the write counter.
  void FailAfterWrites(uint64_t n) {
    writes_allowed_.store(n);
    limited_.store(true);
  }
  void FailWrites(bool fail) { fail_writes_.store(fail); }
  /// The next `k` Sync() calls fail with kIoError.
  void FailNextSyncs(uint64_t k) { syncs_to_fail_.store(k); }
  /// Transient read fault: the next `k` SequentialFile::Read /
  /// RandomAccessFile::Read / RandomRWFile::ReadAt calls fail with
  /// kIoError, after which reads succeed again.
  void FailNextReads(uint64_t k) { reads_to_fail_.store(k); }
  /// Persistent read fault: while set, every read fails with kIoError.
  void FailReads(bool fail) { fail_reads_.store(fail); }
  /// Transient write fault: the next `k` sanctioned Append/WriteAt
  /// calls fail cleanly (no torn prefix), after which writes succeed.
  void FailNextWrites(uint64_t k) { writes_to_fail_.store(k); }
  /// While set, NewWritableFile/NewAppendableFile/NewRandomRWFile fail.
  /// Opening existing files for read is unaffected.
  void FailFileCreation(bool fail) { fail_file_creation_.store(fail); }

  /// Arms a power cut at I/O boundary `k` (0-based; every Append,
  /// WriteAt, and Sync counts as one boundary).
  void PlanCrash(uint64_t k) {
    crash_at_.store(k);
    crash_armed_.store(true);
  }
  /// True once an armed crash has fired.
  bool crashed() const { return crashed_.load(); }
  /// Total I/O boundaries seen since the last Reset().
  uint64_t ops() const { return ops_.load(); }

  /// Flips bit `bit` (0-7) of the byte at `offset` in `fname` through
  /// the unsafe channel — models silent bit-rot / an insider with disk
  /// access. Counted as one unsafe write; never consumes fault credits.
  Status FlipBit(const std::string& fname, uint64_t offset, int bit);

  void Reset() {
    fail_writes_.store(false);
    limited_.store(false);
    writes_allowed_.store(0);
    syncs_to_fail_.store(0);
    reads_to_fail_.store(0);
    fail_reads_.store(false);
    writes_to_fail_.store(0);
    fail_file_creation_.store(false);
    crash_armed_.store(false);
    crashed_.store(false);
    crash_at_.store(0);
    writes_ = syncs_ = reads_ = unsafe_writes_ = ops_ = 0;
  }

  uint64_t writes() const { return writes_.load(); }
  uint64_t syncs() const { return syncs_.load(); }
  uint64_t reads() const { return reads_.load(); }
  /// UnsafeOverwrite/UnsafeTruncate calls (adversary channel). Counted
  /// separately from writes(): unsafe ops bypass the sanctioned write
  /// path, so they never consume fault credits or trip a planned crash.
  uint64_t unsafe_writes() const { return unsafe_writes_.load(); }

  /// Gate for a sanctioned write of `size` bytes. On kIoError,
  /// *torn_prefix says how many leading bytes still reach the file
  /// (non-zero only when a planned crash fires mid-write). Called by
  /// the wrapped file objects.
  Status BeforeWrite(size_t size, size_t* torn_prefix);
  /// Gate for a Sync. On kIoError the barrier must not be forwarded.
  Status BeforeSync();
  /// Gate for a read: counts it, then applies the transient
  /// (FailNextReads) and persistent (FailReads) fault knobs.
  Status BeforeRead();

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override;
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* file) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* file) override;

  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    MEDVAULT_RETURN_IF_ERROR(CheckMutationAllowed());
    return base_->RemoveFile(fname);
  }
  Status CreateDirIfMissing(const std::string& dirname) override {
    return base_->CreateDirIfMissing(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    MEDVAULT_RETURN_IF_ERROR(CheckMutationAllowed());
    return base_->RenameFile(src, target);
  }
  Status Truncate(const std::string& fname, uint64_t size) override {
    MEDVAULT_RETURN_IF_ERROR(CheckMutationAllowed());
    return base_->Truncate(fname, size);
  }
  Status UnsafeOverwrite(const std::string& fname, uint64_t offset,
                         const Slice& data) override {
    unsafe_writes_++;
    return base_->UnsafeOverwrite(fname, offset, data);
  }
  Status UnsafeTruncate(const std::string& fname, uint64_t size) override {
    unsafe_writes_++;
    return base_->UnsafeTruncate(fname, size);
  }

  /// Batch API, pinned to the inline-sequential default: each coalesced
  /// op runs through this env's own (gated) file wrappers in slot
  /// order, so every completion in a batch stays one numbered crash
  /// boundary and PlanCrash can kill *between* coalesced completions —
  /// even if the env underneath has a concurrent backend.
  void SubmitWrites(WriteRequest* requests, size_t n,
                    BatchCompletion* done) override {
    Env::SubmitWrites(requests, n, done);
  }
  void SubmitSyncs(WritableFile* const* files, size_t n,
                   BatchCompletion* done) override {
    Env::SubmitSyncs(files, n, done);
  }

 private:
  /// Refuses metadata mutations once a planned crash has fired.
  Status CheckMutationAllowed();

  Env* base_;
  std::atomic<bool> fail_writes_{false};
  std::atomic<bool> limited_{false};
  std::atomic<uint64_t> writes_allowed_{0};
  std::atomic<uint64_t> syncs_to_fail_{0};
  std::atomic<uint64_t> reads_to_fail_{0};
  std::atomic<bool> fail_reads_{false};
  std::atomic<uint64_t> writes_to_fail_{0};
  std::atomic<bool> fail_file_creation_{false};
  std::atomic<bool> crash_armed_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> crash_at_{0};
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> unsafe_writes_{0};
};

}  // namespace medvault::storage

#endif  // MEDVAULT_STORAGE_FAULT_ENV_H_
