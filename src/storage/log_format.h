#ifndef MEDVAULT_STORAGE_LOG_FORMAT_H_
#define MEDVAULT_STORAGE_LOG_FORMAT_H_

namespace medvault::storage::log {

/// Record-oriented log format (LevelDB WAL discipline): the file is a
/// sequence of 32KB blocks; each block holds physical records
///
///   checksum (4, masked CRC32C of type+payload) | length (2) | type (1)
///
/// and a logical record larger than a block is split into
/// kFirst/kMiddle/kLast fragments. A zero-length trailer pads block ends
/// smaller than the header.
enum class RecordType : unsigned char {
  kZero = 0,  // preallocated/trailer filler
  kFull = 1,
  kFirst = 2,
  kMiddle = 3,
  kLast = 4,
};

constexpr int kBlockSize = 32768;
constexpr int kHeaderSize = 4 + 2 + 1;
constexpr int kMaxRecordType = static_cast<int>(RecordType::kLast);

}  // namespace medvault::storage::log

#endif  // MEDVAULT_STORAGE_LOG_FORMAT_H_
