#ifndef MEDVAULT_STORAGE_RETRY_ENV_H_
#define MEDVAULT_STORAGE_RETRY_ENV_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

// obs/metrics depends only on common (see src/CMakeLists.txt), so the
// storage layer may report into a registry without a layering cycle.
#include "obs/metrics.h"
#include "storage/env.h"

namespace medvault::storage {

/// Retry policy for RetryEnv: bounded attempts with exponential
/// backoff. Defaults absorb a handful of transient faults in well
/// under 100ms while a persistent fault (dying media) still surfaces
/// quickly.
struct RetryOptions {
  /// Total attempts per operation (1 initial try + max_attempts-1
  /// retries). Must be >= 1.
  int max_attempts = 4;
  /// Backoff before the first retry; doubles per retry.
  uint64_t initial_backoff_micros = 100;
  /// Backoff ceiling.
  uint64_t max_backoff_micros = 10000;
  /// Injectable sleep (tests pass a recorder so retries are instant and
  /// the backoff sequence is assertable). Null sleeps the thread.
  std::function<void(uint64_t micros)> sleeper;
};

/// An Env decorator that retries *transient* I/O faults — the EINTR/EIO
/// blips long-horizon archival media exhibit — with bounded exponential
/// backoff, so a single transient fault does not surface as a failed
/// clinical read. Only kIoError is retried: NotFound, Corruption and
/// TamperDetected are deterministic verdicts that retrying cannot (and
/// must not) change. Retried paths: file Read/ReadAt, Append/WriteAt/
/// Flush, and Sync. A failed write is assumed side-effect free (true of
/// MemEnv and the fault-injection knobs this is tested under); a torn
/// physical write after power loss is crash recovery's job, not ours.
///
/// Every retry is counted in the metrics registry, so retry pressure —
/// the early-warning signal for dying media — is visible in any
/// HealthReport built from the same registry:
///   env.retry.reads / env.retry.writes / env.retry.syncs
///       retries performed (per op class)
///   env.retry.exhausted
///       operations that still failed after the attempt bound
class RetryEnv : public Env {
 public:
  /// `base` and `metrics` are not owned and must outlive the env. Null
  /// `metrics` uses the process-wide registry.
  explicit RetryEnv(Env* base, RetryOptions options = {},
                    obs::MetricsRegistry* metrics = nullptr);

  RetryEnv(const RetryEnv&) = delete;
  RetryEnv& operator=(const RetryEnv&) = delete;

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* file) override;
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* file) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* file) override;
  Status NewRandomRWFile(const std::string& fname,
                         std::unique_ptr<RandomRWFile>* file) override;

  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src, const std::string& target) override;
  Status Truncate(const std::string& fname, uint64_t size) override;
  // The unsafe adversary channel passes through unretried: injected
  // tampering must behave identically with or without this decorator.
  Status UnsafeOverwrite(const std::string& fname, uint64_t offset,
                         const Slice& data) override;
  Status UnsafeTruncate(const std::string& fname, uint64_t size) override;

  /// Batch API: forwards the same (retrying) files to the base env's
  /// backend. Each file wrapper retries internally when the backend
  /// executes its op, so a transient fault inside a coalesced wave is
  /// absorbed exactly as it would be on the unbatched path.
  void SubmitWrites(WriteRequest* requests, size_t n,
                    BatchCompletion* done) override;
  void SubmitSyncs(WritableFile* const* files, size_t n,
                   BatchCompletion* done) override;

  /// Runs `op`, retrying kIoError up to the attempt bound with
  /// exponential backoff; bumps `kind_counter` once per retry and the
  /// exhausted counter if the bound is hit. Used by the file wrappers;
  /// exposed for them, not for general callers.
  Status RunWithRetry(obs::Counter* kind_counter,
                      const std::function<Status()>& op);

  obs::Counter* read_retry_counter() const { return retry_reads_; }
  obs::Counter* write_retry_counter() const { return retry_writes_; }
  obs::Counter* sync_retry_counter() const { return retry_syncs_; }
  obs::Counter* exhausted_counter() const { return retry_exhausted_; }

 private:
  Env* base_;
  RetryOptions options_;
  obs::Counter* retry_reads_;
  obs::Counter* retry_writes_;
  obs::Counter* retry_syncs_;
  obs::Counter* retry_exhausted_;
};

}  // namespace medvault::storage

#endif  // MEDVAULT_STORAGE_RETRY_ENV_H_
