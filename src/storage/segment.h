#ifndef MEDVAULT_STORAGE_SEGMENT_H_
#define MEDVAULT_STORAGE_SEGMENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/env.h"
#include "storage/log_writer.h"

namespace medvault::storage {

/// Location of one entry inside a SegmentStore.
struct EntryHandle {
  uint64_t segment_id = 0;
  uint64_t offset = 0;  ///< byte offset of the entry frame in the segment
  uint32_t length = 0;  ///< payload length

  std::string Encode() const;
  static Result<EntryHandle> Decode(const Slice& data);

  bool operator==(const EntryHandle& other) const = default;
};

/// Append-only segment store: MedVault's software WORM media.
///
/// Entries are framed as  crc32c(4) | length(4) | payload  and appended
/// to numbered segment files (`seg-000001`). When a segment reaches the
/// size limit it is *sealed*: its content hash is recorded in the
/// manifest and the store never opens it for writing again. There is no
/// update or delete API at this layer — by construction. (A malicious
/// insider bypasses this class via Env::UnsafeOverwrite; detection then
/// falls to the frame CRC and the cryptographic layers above.)
class SegmentStore {
 public:
  struct Options {
    uint64_t max_segment_bytes = 4 * 1024 * 1024;
    bool sync_on_append = false;
  };

  SegmentStore(Env* env, std::string dir, Options options);

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Creates the directory / scans existing segments. Must be called
  /// before any other method.
  Status Open();

  /// Appends one entry; returns its handle.
  Result<EntryHandle> Append(const Slice& payload);

  /// Reads an entry, verifying its frame CRC (kCorruption on mismatch).
  Result<std::string> Read(const EntryHandle& handle) const;

  /// Seals the active segment regardless of size (e.g. at checkpoint).
  /// On failure nothing has changed and the call may simply be retried.
  Status SealActive();

  /// Durability barrier on the active segment (no-op if it has none).
  Status SyncActive();

  /// The active segment file for batched sync waves; null when no
  /// segment is open (nothing to sync).
  WritableFile* ActiveSyncTarget() { return active_file_.get(); }

  /// True if `handle` points at bytes structurally present in the store
  /// (segment exists and the frame lies within its recovered size).
  /// Recovery uses this to spot catalog entries whose segment frame was
  /// lost to a torn tail; it does not verify the frame CRC.
  bool Contains(const EntryHandle& handle) const;

  /// Iterates every entry in segment order. `fn` returns false to stop.
  /// Corrupt frames surface as kCorruption.
  Status ForEachEntry(
      const std::function<bool(const EntryHandle&, const Slice&)>& fn) const;

  /// SHA-256 over a sealed segment's bytes (for migration verification).
  Result<std::string> SegmentHash(uint64_t segment_id) const;

  /// Ids of all segments, ascending; the last may be active (unsealed).
  std::vector<uint64_t> SegmentIds() const;
  bool IsSealed(uint64_t segment_id) const;

  /// Physically removes a sealed segment's file. Only the retention
  /// manager calls this, after crypto-shredding; the WORM discipline for
  /// *content* is preserved because shredded ciphertext is unreadable
  /// either way. Returns kWormViolation for the active segment.
  Status DropSegment(uint64_t segment_id);

  uint64_t TotalBytes() const;

  const std::string& dir() const { return dir_; }
  std::string SegmentFileName(uint64_t segment_id) const;

 private:
  Status RollSegment();  // seals active, starts the next

  Env* env_;
  std::string dir_;
  Options options_;

  struct SegmentInfo {
    uint64_t bytes = 0;
    bool sealed = false;
  };
  std::map<uint64_t, SegmentInfo> segments_;
  uint64_t active_id_ = 0;
  std::unique_ptr<WritableFile> active_file_;
  uint64_t active_offset_ = 0;
  bool open_ = false;
};

}  // namespace medvault::storage

#endif  // MEDVAULT_STORAGE_SEGMENT_H_
