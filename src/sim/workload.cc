#include "sim/workload.h"

#include <cmath>
#include <cstdio>

namespace medvault::sim {

namespace {

const char* const kConditions[] = {
    "hypertension", "diabetes",   "asthma",       "cancer",
    "influenza",    "pneumonia",  "fracture",     "migraine",
    "arthritis",    "bronchitis", "anemia",       "dermatitis",
    "appendicitis", "sepsis",     "tachycardia",  "epilepsy",
    "glaucoma",     "hepatitis",  "nephritis",    "obesity",
};
constexpr size_t kNumConditions = sizeof(kConditions) / sizeof(kConditions[0]);

const char* const kNoteFillers[] = {
    "patient presents with stable vitals and no acute distress",
    "follow up scheduled in two weeks with primary care",
    "medication dosage adjusted per latest lab results",
    "no adverse reactions reported since last visit",
    "recommended continued physical therapy and monitoring",
    "dietary changes discussed and care plan updated",
    "imaging reviewed with radiology no new findings",
    "symptoms improving under current treatment regimen",
};
constexpr size_t kNumFillers = sizeof(kNoteFillers) / sizeof(kNoteFillers[0]);

}  // namespace

Zipf::Zipf(uint64_t n, double s, uint64_t seed) : rng_(seed) {
  cdf_.reserve(n);
  double total = 0;
  for (uint64_t i = 1; i <= n; i++) {
    total += 1.0 / std::pow(static_cast<double>(i), s);
    cdf_.push_back(total);
  }
  for (double& v : cdf_) v /= total;
}

uint64_t Zipf::Next() {
  double u = rng_.NextDouble();
  // Binary search the CDF.
  size_t lo = 0, hi = cdf_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

EhrGenerator::EhrGenerator(uint64_t seed, Options options)
    : options_(options),
      rng_(seed),
      patient_zipf_(options.num_patients, options.zipf_s, seed ^ 0x5151),
      condition_zipf_(kNumConditions, options.zipf_s, seed ^ 0xa7a7) {}

const std::vector<std::string>& EhrGenerator::Conditions() {
  static const std::vector<std::string>* conditions = [] {
    auto* v = new std::vector<std::string>();
    for (size_t i = 0; i < kNumConditions; i++) v->push_back(kConditions[i]);
    return v;
  }();
  return *conditions;
}

EhrRecord EhrGenerator::Next() {
  EhrRecord record;
  uint64_t patient = patient_zipf_.Next();
  record.patient_id = "patient-" + std::to_string(patient);

  // 1-3 diagnoses, Zipf-skewed so common conditions dominate.
  size_t diag_count = 1 + rng_.Uniform(3);
  for (size_t i = 0; i < diag_count; i++) {
    std::string condition = kConditions[condition_zipf_.Next()];
    record.keywords.push_back(condition);
  }

  char header[160];
  snprintf(header, sizeof(header),
           "MRN:%06llu VISIT:%llu AGE:%llu BP:%llu/%llu HR:%llu DX:",
           static_cast<unsigned long long>(patient),
           static_cast<unsigned long long>(visit_counter_++),
           static_cast<unsigned long long>(18 + rng_.Uniform(80)),
           static_cast<unsigned long long>(95 + rng_.Uniform(60)),
           static_cast<unsigned long long>(55 + rng_.Uniform(45)),
           static_cast<unsigned long long>(50 + rng_.Uniform(70)));
  record.text = header;
  for (const std::string& kw : record.keywords) {
    record.text += kw;
    record.text += ' ';
  }
  record.text += "NOTE: ";
  while (record.text.size() < options_.note_bytes) {
    record.text += kNoteFillers[rng_.Uniform(kNumFillers)];
    record.text += ". ";
  }
  record.text.resize(options_.note_bytes);
  return record;
}

std::string EhrGenerator::QueryTerm() {
  return kConditions[condition_zipf_.Next()];
}

}  // namespace medvault::sim
