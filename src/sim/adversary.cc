#include "sim/adversary.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace medvault::sim {

Result<int> InsiderAdversary::TamperRandomBytes(
    const std::vector<std::string>& files, int count) {
  // Collect tamperable files with their sizes.
  std::vector<std::pair<std::string, uint64_t>> targets;
  uint64_t total = 0;
  for (const std::string& file : files) {
    uint64_t size = 0;
    if (!env_->GetFileSize(file, &size).ok() || size == 0) continue;
    targets.emplace_back(file, size);
    total += size;
  }
  if (targets.empty() || total == 0) {
    return Status::FailedPrecondition("nothing to tamper with");
  }

  int applied = 0;
  for (int i = 0; i < count; i++) {
    // Pick a byte position uniformly over the combined size.
    uint64_t pos = rng_.Uniform(total);
    size_t file_idx = 0;
    while (pos >= targets[file_idx].second) {
      pos -= targets[file_idx].second;
      file_idx++;
    }
    const std::string& file = targets[file_idx].first;

    std::unique_ptr<storage::RandomAccessFile> reader;
    MEDVAULT_RETURN_IF_ERROR(env_->NewRandomAccessFile(file, &reader));
    std::string byte;
    MEDVAULT_RETURN_IF_ERROR(reader->Read(pos, 1, &byte));
    if (byte.empty()) continue;
    char flipped = static_cast<char>(byte[0] ^ (1 + rng_.Uniform(255)));
    MEDVAULT_RETURN_IF_ERROR(
        env_->UnsafeOverwrite(file, pos, Slice(&flipped, 1)));
    applied++;
  }
  return applied;
}

Status InsiderAdversary::TamperAt(const std::string& file, uint64_t offset,
                                  const Slice& bytes) {
  return env_->UnsafeOverwrite(file, offset, bytes);
}

Status InsiderAdversary::Truncate(const std::string& file, uint64_t bytes) {
  uint64_t size = 0;
  MEDVAULT_RETURN_IF_ERROR(env_->GetFileSize(file, &size));
  if (bytes > size) bytes = size;
  return env_->UnsafeTruncate(file, size - bytes);
}

Status InsiderAdversary::SmartTamperSegmentEntry(const std::string& file,
                                                 uint64_t frame_offset,
                                                 uint64_t payload_byte,
                                                 char new_value) {
  // Frame layout (storage::SegmentStore): crc32c(4) | length(4) | payload.
  std::unique_ptr<storage::RandomAccessFile> reader;
  MEDVAULT_RETURN_IF_ERROR(env_->NewRandomAccessFile(file, &reader));
  std::string header;
  MEDVAULT_RETURN_IF_ERROR(reader->Read(frame_offset, 8, &header));
  if (header.size() != 8) {
    return Status::InvalidArgument("no frame at offset");
  }
  uint32_t length = DecodeFixed32(header.data() + 4);
  if (payload_byte >= length) {
    return Status::InvalidArgument("payload byte outside entry");
  }
  std::string payload;
  MEDVAULT_RETURN_IF_ERROR(
      reader->Read(frame_offset + 8, length, &payload));
  if (payload.size() != length) {
    return Status::InvalidArgument("entry truncated");
  }
  payload[payload_byte] = new_value;
  char new_crc[4];
  EncodeFixed32(new_crc, crc32c::Mask(crc32c::Value(payload)));
  MEDVAULT_RETURN_IF_ERROR(
      env_->UnsafeOverwrite(file, frame_offset, Slice(new_crc, 4)));
  return env_->UnsafeOverwrite(file, frame_offset + 8 + payload_byte,
                               Slice(&payload[payload_byte], 1));
}

Result<bool> InsiderAdversary::ScanForKeyword(
    const std::vector<std::string>& files, const std::string& keyword) {
  for (const std::string& file : files) {
    std::string contents;
    Status s = storage::ReadFileToString(env_, file, &contents);
    if (!s.ok()) continue;
    if (contents.find(keyword) != std::string::npos) return true;
  }
  return false;
}

}  // namespace medvault::sim
