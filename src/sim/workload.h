#ifndef MEDVAULT_SIM_WORKLOAD_H_
#define MEDVAULT_SIM_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace medvault::sim {

/// Zipf(s≈1) sampler over ranks [0, n) — access skew for realistic
/// query/read workloads (a few patients/terms are hot).
class Zipf {
 public:
  Zipf(uint64_t n, double s, uint64_t seed);

  uint64_t Next();

 private:
  std::vector<double> cdf_;
  Random rng_;
};

/// One synthetic EHR entry. Content shape mimics a clinical note:
/// demographics header, diagnosis codes, vitals, free-text narrative.
/// No real patient data anywhere (repro substitution; see DESIGN.md).
struct EhrRecord {
  std::string patient_id;      ///< "patient-<n>"
  std::string text;            ///< the note body
  std::vector<std::string> keywords;  ///< diagnosis terms etc.
};

/// Deterministic synthetic EHR workload generator.
class EhrGenerator {
 public:
  struct Options {
    uint64_t num_patients = 1000;
    size_t note_bytes = 512;   ///< approximate note size
    double zipf_s = 1.0;       ///< patient access skew
  };

  EhrGenerator(uint64_t seed, Options options);

  /// Next admission/progress note for a (Zipf-skewed) patient.
  EhrRecord Next();

  /// A diagnosis term suitable for keyword queries, Zipf-skewed the same
  /// way the generator assigns diagnoses.
  std::string QueryTerm();

  /// All diagnosis terms the generator can emit.
  static const std::vector<std::string>& Conditions();

 private:
  Options options_;
  Random rng_;
  Zipf patient_zipf_;
  Zipf condition_zipf_;
  uint64_t visit_counter_ = 0;
};

}  // namespace medvault::sim

#endif  // MEDVAULT_SIM_WORKLOAD_H_
