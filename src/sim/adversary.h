#ifndef MEDVAULT_SIM_ADVERSARY_H_
#define MEDVAULT_SIM_ADVERSARY_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "storage/env.h"

namespace medvault::sim {

/// The paper's adversary (§3/§4): a *malicious insider with direct disk
/// access*. They bypass every software API and mutate raw bytes through
/// Env::UnsafeOverwrite / UnsafeTruncate — exactly what a rogue DBA or
/// storage admin can do. The tamper-detection experiments measure which
/// storage models notice.
class InsiderAdversary {
 public:
  InsiderAdversary(storage::Env* env, uint64_t seed)
      : env_(env), rng_(seed) {}

  InsiderAdversary(const InsiderAdversary&) = delete;
  InsiderAdversary& operator=(const InsiderAdversary&) = delete;

  /// Flips `count` random bytes spread over the given files
  /// (skips zero-length files). Returns how many flips were applied.
  Result<int> TamperRandomBytes(const std::vector<std::string>& files,
                                int count);

  /// Overwrites bytes at a specific location.
  Status TamperAt(const std::string& file, uint64_t offset,
                  const Slice& bytes);

  /// Cuts the last `bytes` off a file (log-truncation attack).
  Status Truncate(const std::string& file, uint64_t bytes);

  /// A *sophisticated* insider: rewrites the payload byte at `offset`
  /// inside the segment-store entry frame starting at `frame_offset` in
  /// `file`, then recomputes the frame's CRC32C so checksum-only
  /// defenses pass. Models an attacker who knows the on-disk format.
  Status SmartTamperSegmentEntry(const std::string& file,
                                 uint64_t frame_offset,
                                 uint64_t payload_byte, char new_value);

  /// Scans raw file bytes for a plaintext keyword — the "mere existence
  /// of a word in a document can leak information" attack (§3). Returns
  /// true if the keyword is visible anywhere.
  Result<bool> ScanForKeyword(const std::vector<std::string>& files,
                              const std::string& keyword);

 private:
  storage::Env* env_;
  Random rng_;
};

}  // namespace medvault::sim

#endif  // MEDVAULT_SIM_ADVERSARY_H_
