#include "server/http.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstring>

namespace medvault::server {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::string HttpRequest::Path() const {
  size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string HttpRequest::Query() const {
  size_t q = target.find('?');
  return q == std::string::npos ? "" : target.substr(q + 1);
}

std::string HttpRequest::QueryParam(const std::string& key) const {
  std::string query = Query();
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

bool HttpRequest::KeepAlive() const {
  auto it = headers.find("connection");
  std::string conn = it == headers.end() ? "" : ToLower(it->second);
  if (version == "HTTP/1.0") return conn == "keep-alive";
  return conn != "close";
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 410: return "Gone";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: " + response.content_type + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  if (response.close) out += "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

ReadOutcome ParseHttpRequest(std::string* buffer, size_t header_end,
                             const HttpLimits& limits, HttpRequest* out) {
  // Request line.
  const std::string head = buffer->substr(0, header_end);
  size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return ReadOutcome::kMalformed;
  {
    const std::string line = head.substr(0, line_end);
    size_t sp1 = line.find(' ');
    size_t sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1) return ReadOutcome::kMalformed;
    out->method = line.substr(0, sp1);
    out->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    out->version = line.substr(sp2 + 1);
    if (out->method.empty() || out->target.empty() ||
        out->version.rfind("HTTP/", 0) != 0) {
      return ReadOutcome::kMalformed;
    }
  }

  // Header fields.
  out->headers.clear();
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string::npos) return ReadOutcome::kMalformed;
    const std::string name = ToLower(Trim(line.substr(0, colon)));
    // Repeated Content-Length is the classic request-smuggling vector:
    // any two parsers that disagree on which copy frames the body can
    // be made to see different requests. Reject outright rather than
    // pick one — even identical duplicates buy nothing legitimate.
    if (name == "content-length" && out->headers.count(name) > 0) {
      return ReadOutcome::kMalformed;
    }
    out->headers[name] = Trim(line.substr(colon + 1));
  }

  // Body length. Transfer-Encoding is deliberately unsupported: a
  // compliance API has no use for chunked uploads, and rejecting them
  // keeps request framing single-pass and cap-checkable up front. That
  // also closes the TE+CL smuggling pair — a request carrying both can
  // never get two different framings out of this parser.
  if (out->headers.count("transfer-encoding") > 0) {
    return ReadOutcome::kMalformed;
  }
  size_t content_length = 0;
  auto cl = out->headers.find("content-length");
  if (cl != out->headers.end()) {
    const std::string& v = cl->second;
    auto [ptr, ec] =
        std::from_chars(v.data(), v.data() + v.size(), content_length, 10);
    if (ec != std::errc() || ptr != v.data() + v.size()) {
      return ReadOutcome::kMalformed;
    }
  }
  if (content_length > limits.max_body_bytes) {
    return ReadOutcome::kBodyTooLarge;
  }

  const size_t frame = header_end + 4 + content_length;
  if (buffer->size() < frame) return ReadOutcome::kMalformed;  // caller bug
  out->body = buffer->substr(header_end + 4, content_length);
  buffer->erase(0, frame);
  return ReadOutcome::kOk;
}

ReadOutcome ReadHttpRequest(int fd, const HttpLimits& limits,
                            std::string* leftover, HttpRequest* out) {
  std::string& buffer = *leftover;
  char chunk[4096];

  // Phase 1: accumulate until the header terminator.
  size_t header_end;
  size_t scan_from = 0;
  while (true) {
    size_t found = buffer.find("\r\n\r\n", scan_from);
    if (found != std::string::npos) {
      header_end = found;
      break;
    }
    if (buffer.size() > limits.max_header_bytes) {
      return ReadOutcome::kHeadersTooLarge;
    }
    scan_from = buffer.size() < 3 ? 0 : buffer.size() - 3;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      // Clean EOF only between requests; mid-header it is malformed.
      return buffer.empty() ? ReadOutcome::kEof : ReadOutcome::kMalformed;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return ReadOutcome::kTimeout;
      }
      return ReadOutcome::kError;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  // Phase 2: the body. Peek at Content-Length cheaply by parsing once
  // the frame is complete; to know the frame size we need the header
  // parsed, so parse against a copy-free view: find content-length in
  // the raw header block.
  size_t content_length = 0;
  {
    // Lower-case scan of the header block for "content-length:".
    std::string head = ToLower(buffer.substr(0, header_end + 2));
    size_t at = head.find("\r\ncontent-length:");
    if (at == std::string::npos && head.rfind("content-length:", 0) == 0) {
      at = 0;  // first header line (no leading CRLF)
    } else if (at != std::string::npos) {
      at += 2;
    }
    if (at != std::string::npos) {
      // This pre-framing scan honors the FIRST Content-Length while the
      // header map in ParseHttpRequest keeps the LAST — a second copy
      // would let the two framings disagree about where the body ends
      // (request smuggling). Reject before reading a single body byte.
      if (head.find("\r\ncontent-length:", at) != std::string::npos) {
        return ReadOutcome::kMalformed;
      }
      size_t vstart = head.find(':', at) + 1;
      size_t vend = head.find("\r\n", vstart);
      std::string v = Trim(head.substr(vstart, vend - vstart));
      auto [ptr, ec] =
          std::from_chars(v.data(), v.data() + v.size(), content_length, 10);
      if (ec != std::errc() || ptr != v.data() + v.size()) {
        return ReadOutcome::kMalformed;
      }
      if (content_length > limits.max_body_bytes) {
        return ReadOutcome::kBodyTooLarge;
      }
    }
  }
  const size_t frame = header_end + 4 + content_length;
  while (buffer.size() < frame) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadOutcome::kMalformed;  // truncated body
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return ReadOutcome::kTimeout;
      }
      return ReadOutcome::kError;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  return ParseHttpRequest(&buffer, header_end, limits, out);
}

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace medvault::server
