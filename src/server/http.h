#ifndef MEDVAULT_SERVER_HTTP_H_
#define MEDVAULT_SERVER_HTTP_H_

#include <cstddef>
#include <map>
#include <string>

namespace medvault::server {

/// One parsed HTTP/1.1 request. Header names are lowercased (HTTP
/// headers are case-insensitive); values keep their bytes, leading and
/// trailing whitespace stripped.
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string target;   ///< request target as sent ("/v1/records/r-1?v=2")
  std::string version;  ///< "HTTP/1.1"
  std::map<std::string, std::string> headers;
  std::string body;

  /// `target` split at the first '?': path and raw query string.
  std::string Path() const;
  std::string Query() const;
  /// Value of query parameter `key` ("" when absent; no %-decoding —
  /// the API's ids and numbers never need it).
  std::string QueryParam(const std::string& key) const;
  /// True unless the client asked for "Connection: close" (or speaks
  /// HTTP/1.0 without "keep-alive").
  bool KeepAlive() const;
};

/// One HTTP response to serialize. Content-Length is derived from
/// `body`; `headers` carries anything extra (Retry-After, ...).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::map<std::string, std::string> headers;
  std::string body;
  bool close = false;  ///< emit "Connection: close"
};

/// Standard reason phrase for the handful of codes the server emits.
const char* HttpReasonPhrase(int status);

/// Full wire form of `response` (status line, headers, body).
std::string SerializeHttpResponse(const HttpResponse& response);

/// Input caps. Oversized inputs are rejected *deterministically* (413 /
/// 431), never buffered without bound — an unauthenticated client must
/// not be able to balloon server memory.
struct HttpLimits {
  size_t max_header_bytes = 8 * 1024;
  size_t max_body_bytes = 1 * 1024 * 1024;
};

/// Outcome of reading one request off a connection.
enum class ReadOutcome {
  kOk = 0,
  kEof,           ///< peer closed cleanly between requests
  kMalformed,     ///< unparsable request (-> 400, close)
  kHeadersTooLarge,  ///< header block over the cap (-> 431, close)
  kBodyTooLarge,  ///< declared body over the cap (-> 413, close)
  kTimeout,       ///< blocking read timed out (idle connection)
  kError,         ///< socket error
};

/// Reads and parses one request from blocking socket `fd`. `leftover`
/// is the connection's carry-over buffer: bytes of the *next* pipelined
/// request that arrived with this one are left there, so pass the same
/// string for every request on a connection (start empty).
ReadOutcome ReadHttpRequest(int fd, const HttpLimits& limits,
                            std::string* leftover, HttpRequest* out);

/// Parses a complete request already in memory (tests, and the reader
/// above once it has the full frame). Returns kOk/kMalformed/
/// kBodyTooLarge and consumes the parsed bytes from `buffer`.
ReadOutcome ParseHttpRequest(std::string* buffer, size_t header_end,
                             const HttpLimits& limits, HttpRequest* out);

/// Writes all of `data` to blocking socket `fd`; false on error.
bool WriteAll(int fd, const std::string& data);

}  // namespace medvault::server

#endif  // MEDVAULT_SERVER_HTTP_H_
