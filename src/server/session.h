#ifndef MEDVAULT_SERVER_SESSION_H_
#define MEDVAULT_SERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/result.h"
#include "core/record.h"
#include "crypto/drbg.h"

namespace medvault::server {

/// Bearer-token sessions mapping HTTP clients onto RBAC principals.
///
/// A token is 32 hex chars of DRBG output — pure capability, carrying
/// no principal data, so nothing about who is logged in leaks through
/// the token itself. Sessions are in-memory only and die with the
/// process: re-authentication after a restart is the conservative
/// choice for a compliance front door (and mirrors how break-glass
/// *grants* — which DO survive restarts — differ from mere logins).
///
/// Thread safety: all operations serialize on one internal mutex; the
/// table holds only live sessions (expired entries are pruned on every
/// lookup pass, same discipline as AccessController's grant table).
class SessionManager {
 public:
  /// `entropy` seeds the token DRBG; `ttl_micros` is each session's
  /// lifetime from issue.
  SessionManager(const Slice& entropy, const Clock* clock,
                 uint64_t ttl_micros);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Issues a fresh token for `principal` (caller has already
  /// authenticated them).
  std::string Issue(const core::PrincipalId& principal);

  /// Principal behind `token`; kPermissionDenied for unknown, expired,
  /// and revoked tokens (deliberately indistinguishable). The match is
  /// a constant-time scan of the live table, not a map lookup, so
  /// response timing leaks nothing about partial token matches.
  Result<core::PrincipalId> Lookup(const std::string& token);

  /// Ends a session; false if the token was not live.
  bool Revoke(const std::string& token);

  size_t ActiveSessions();

 private:
  struct Session {
    core::PrincipalId principal;
    Timestamp expires_at = 0;
  };

  void PruneLocked(Timestamp now);
  /// Constant-time scan for `token`; nullptr if no live session matches.
  const Session* FindLocked(const std::string& token) const;

  const Clock* clock_;
  uint64_t ttl_micros_;
  std::mutex mu_;
  crypto::HmacDrbg drbg_;              // guarded by mu_
  std::map<std::string, Session> sessions_;  // guarded by mu_
};

}  // namespace medvault::server

#endif  // MEDVAULT_SERVER_SESSION_H_
