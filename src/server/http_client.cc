#include "server/http_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstring>

namespace medvault::server {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  leftover_.clear();
}

Status HttpClient::Connect(uint16_t port, uint64_t timeout_micros) {
  Close();
  port_ = port;
  timeout_micros_ = timeout_micros;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IoError("socket: " + std::string(strerror(errno)));
  if (timeout_micros_ > 0) {
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(timeout_micros_ / 1000000);
    tv.tv_usec = static_cast<suseconds_t>(timeout_micros_ % 1000000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IoError("connect: " + std::string(strerror(errno)));
    Close();
    return s;
  }
  return Status::OK();
}

Status HttpClient::SendRaw(const std::string& data) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (!WriteAll(fd_, data)) {
    return Status::IoError("send failed");
  }
  return Status::OK();
}

Result<ClientResponse> HttpClient::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  char chunk[4096];

  size_t header_end;
  while (true) {
    size_t found = leftover_.find("\r\n\r\n");
    if (found != std::string::npos) {
      header_end = found;
      break;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::IoError("connection closed mid-response");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("recv: " + std::string(strerror(errno)));
    }
    leftover_.append(chunk, static_cast<size_t>(n));
  }

  ClientResponse out;
  const std::string head = leftover_.substr(0, header_end);
  size_t line_end = head.find("\r\n");
  const std::string status_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  {
    size_t sp1 = status_line.find(' ');
    if (sp1 == std::string::npos) {
      return Status::Corruption("malformed status line");
    }
    const char* first = status_line.data() + sp1 + 1;
    const char* last = status_line.data() + status_line.size();
    auto [ptr, ec] = std::from_chars(first, last, out.status, 10);
    if (ec != std::errc()) return Status::Corruption("malformed status code");
  }
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    out.headers[ToLower(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
  }

  size_t content_length = 0;
  auto cl = out.headers.find("content-length");
  if (cl != out.headers.end()) {
    const std::string& v = cl->second;
    auto [ptr, ec] =
        std::from_chars(v.data(), v.data() + v.size(), content_length, 10);
    if (ec != std::errc()) return Status::Corruption("bad content-length");
  }
  const size_t frame = header_end + 4 + content_length;
  while (leftover_.size() < frame) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::IoError("connection closed mid-body");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("recv: " + std::string(strerror(errno)));
    }
    leftover_.append(chunk, static_cast<size_t>(n));
  }
  out.body = leftover_.substr(header_end + 4, content_length);
  leftover_.erase(0, frame);

  auto conn = out.headers.find("connection");
  if (conn != out.headers.end() && ToLower(conn->second) == "close") {
    Close();
  }
  return out;
}

Result<ClientResponse> HttpClient::DoOnce(const std::string& wire) {
  MEDVAULT_RETURN_IF_ERROR(SendRaw(wire));
  return ReadResponse();
}

Result<ClientResponse> HttpClient::Do(const std::string& method,
                                      const std::string& target,
                                      const std::string& body,
                                      const std::string& bearer) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: 127.0.0.1\r\n";
  if (!bearer.empty()) wire += "Authorization: Bearer " + bearer + "\r\n";
  if (!body.empty() || method == "POST") {
    wire += "Content-Type: application/json\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;

  if (fd_ < 0) MEDVAULT_RETURN_IF_ERROR(Connect(port_, timeout_micros_));
  Result<ClientResponse> first = DoOnce(wire);
  if (first.ok()) return first;
  // The server may have dropped an idle keep-alive connection between
  // requests; one reconnect covers that without masking real failures.
  MEDVAULT_RETURN_IF_ERROR(Connect(port_, timeout_micros_));
  return DoOnce(wire);
}

}  // namespace medvault::server
