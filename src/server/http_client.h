#ifndef MEDVAULT_SERVER_HTTP_CLIENT_H_
#define MEDVAULT_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/result.h"
#include "server/http.h"

namespace medvault::server {

/// A response as seen by the client.
struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< lowercased names
  std::string body;
};

/// Minimal blocking HTTP/1.1 client over a single keep-alive
/// connection — just enough for server_test and bench_serve to drive
/// the front door without external tooling. Not thread-safe; one
/// client per thread.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  // Movable: the moved-from client is disconnected, not double-closed.
  HttpClient(HttpClient&& other) noexcept { *this = std::move(other); }
  HttpClient& operator=(HttpClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      port_ = other.port_;
      timeout_micros_ = other.timeout_micros_;
      leftover_ = std::move(other.leftover_);
      other.fd_ = -1;
      other.leftover_.clear();
    }
    return *this;
  }

  /// Connects to 127.0.0.1:`port`. `timeout_micros` bounds connect and
  /// every subsequent socket read (0 = no timeout).
  Status Connect(uint16_t port, uint64_t timeout_micros = 5 * 1000 * 1000);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// One request/response round trip. `bearer` non-empty adds an
  /// Authorization header. Reconnects transparently if the server
  /// closed the previous keep-alive exchange.
  Result<ClientResponse> Do(const std::string& method,
                            const std::string& target,
                            const std::string& body = "",
                            const std::string& bearer = "");

  /// Sends raw bytes on the connection without reading a response
  /// (tests use this to park a connection mid-request in a worker).
  Status SendRaw(const std::string& data);

  /// Reads one response off the wire (pairs with SendRaw).
  Result<ClientResponse> ReadResponse();

 private:
  Result<ClientResponse> DoOnce(const std::string& wire);

  int fd_ = -1;
  uint16_t port_ = 0;
  uint64_t timeout_micros_ = 0;
  std::string leftover_;
};

}  // namespace medvault::server

#endif  // MEDVAULT_SERVER_HTTP_CLIENT_H_
