#include "server/admission.h"

#include <unistd.h>

namespace medvault::server {

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         obs::MetricsRegistry* metrics)
    : options_(options),
      queued_(metrics->GetCounter("server.queued")),
      shed_timeout_(metrics->GetCounter("server.shed_timeout")),
      depth_(metrics->GetGauge("server.queue_depth")) {}

bool AdmissionController::Offer(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ || queue_.size() >= options_.max_queue) return false;
    queue_.emplace_back(fd, std::chrono::steady_clock::now());
    depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  queued_->Increment();
  cv_.notify_one();
  return true;
}

bool AdmissionController::Dequeue(Ticket* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return stopped_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // stopped and drained
  auto [fd, enqueued_at] = queue_.front();
  queue_.pop_front();
  depth_->Set(static_cast<int64_t>(queue_.size()));
  lock.unlock();

  out->fd = fd;
  out->waited_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - enqueued_at)
          .count());
  out->timed_out = options_.max_queue_wait_micros != 0 &&
                   out->waited_micros > options_.max_queue_wait_micros;
  if (out->timed_out) shed_timeout_->Increment();
  return true;
}

void AdmissionController::Stop() {
  std::deque<std::pair<int, TimePoint>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    orphans.swap(queue_);
    depth_->Set(0);
  }
  cv_.notify_all();
  for (auto& [fd, at] : orphans) ::close(fd);
}

size_t AdmissionController::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace medvault::server
