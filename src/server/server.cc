#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "common/hex.h"
#include "core/replication.h"
#include "core/transparency.h"
#include "crypto/hmac.h"
#include "obs/health.h"
#include "obs/json.h"

namespace medvault::server {

namespace {

using obs::json::Value;

const char* const kRouteNames[] = {
    "health",  "login",        "logout", "create_record", "read_record",
    "correct", "history",      "dispose", "search",       "record_audit",
    "audit",   "checkpoint",   "break_glass", "replication", "repl_cut",
    "transparency", "transparency_checkpoint", "transparency_consistency",
    "transparency_proof", "disclosures",
    "consent_grant", "consent_revoke", "consent_list",
};

HttpResponse JsonResponse(int status, const Value& v) {
  HttpResponse r;
  r.status = status;
  r.body = v.Dump() + "\n";
  return r;
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  Value::Object o;
  o["error"] = Value(message);
  return JsonResponse(status, Value(std::move(o)));
}

HttpResponse ErrorFromStatus(const Status& s) {
  return ErrorResponse(MedVaultServer::MapStatusToHttp(s), s.ToString());
}

Result<Value> ParseJsonObject(const std::string& body) {
  MEDVAULT_ASSIGN_OR_RETURN(Value v, Value::Parse(body));
  if (!v.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  return v;
}

Result<std::string> RequireString(const Value::Object& o, const char* key) {
  auto it = o.find(key);
  if (it == o.end() || !it->second.is_string()) {
    return Status::InvalidArgument(std::string("missing string field \"") +
                                   key + "\"");
  }
  return it->second.as_string();
}

Result<int64_t> RequireInt(const Value::Object& o, const char* key) {
  auto it = o.find(key);
  if (it == o.end() || !it->second.is_int()) {
    return Status::InvalidArgument(std::string("missing integer field \"") +
                                   key + "\"");
  }
  return it->second.as_int();
}

std::string OptionalString(const Value::Object& o, const char* key,
                           const std::string& fallback) {
  auto it = o.find(key);
  if (it == o.end() || !it->second.is_string()) return fallback;
  return it->second.as_string();
}

Result<std::vector<std::string>> StringArray(const Value::Object& o,
                                             const char* key) {
  std::vector<std::string> out;
  auto it = o.find(key);
  if (it == o.end()) return out;
  if (!it->second.is_array()) {
    return Status::InvalidArgument(std::string("field \"") + key +
                                   "\" must be an array of strings");
  }
  for (const Value& v : it->second.as_array()) {
    if (!v.is_string()) {
      return Status::InvalidArgument(std::string("field \"") + key +
                                     "\" must be an array of strings");
    }
    out.push_back(v.as_string());
  }
  return out;
}

Value VersionHeaderJson(const core::VersionHeader& h) {
  Value::Object o;
  o["record_id"] = Value(h.record_id);
  o["version"] = Value(static_cast<uint64_t>(h.version));
  o["author"] = Value(h.author);
  o["created_at"] = Value(h.created_at);
  o["content_type"] = Value(h.content_type);
  o["reason"] = Value(h.reason);
  o["prev_version_hash"] = Value(HexEncode(h.prev_version_hash));
  return Value(std::move(o));
}

Value AuditEventJson(const core::AuditEvent& e) {
  Value::Object o;
  o["seq"] = Value(e.seq);
  o["timestamp"] = Value(e.timestamp);
  o["actor"] = Value(e.actor);
  o["action"] = Value(core::AuditActionName(e.action));
  o["record_id"] = Value(e.record_id);
  o["details"] = Value(e.details);
  o["prev_hash"] = Value(HexEncode(e.prev_hash));
  return Value(std::move(o));
}

Value CheckpointJson(const core::SignedCheckpoint& cp) {
  Value::Object o;
  o["tree_size"] = Value(cp.tree_size);
  o["root"] = Value(HexEncode(cp.root));
  o["timestamp"] = Value(cp.timestamp);
  o["signature"] = Value(HexEncode(cp.signature));
  return Value(std::move(o));
}

Value CosignedCheckpointJson(const core::CosignedCheckpoint& cc) {
  Value::Object o = CheckpointJson(cc.checkpoint).as_object();
  Value::Array sigs;
  for (const core::WitnessCosignature& cosig : cc.cosignatures) {
    Value::Object s;
    s["witness_id"] = Value(cosig.witness_id);
    s["signature"] = Value(HexEncode(cosig.signature));
    sigs.push_back(Value(std::move(s)));
  }
  o["cosignatures"] = Value(std::move(sigs));
  return Value(std::move(o));
}

Value HexPathJson(const std::vector<std::string>& path) {
  Value::Array arr;
  for (const std::string& node : path) arr.push_back(Value(HexEncode(node)));
  return Value(std::move(arr));
}

/// Decimal uint64 query parameter. Absent and empty both yield
/// `fallback` when `required` is false; anything non-numeric is a 400.
Result<uint64_t> Uint64Param(const HttpRequest& request, const char* name,
                             bool required, uint64_t fallback = 0) {
  const std::string v = request.QueryParam(name);
  if (v.empty()) {
    if (required) {
      return Status::InvalidArgument(std::string("missing query parameter \"") +
                                     name + "\"");
    }
    return fallback;
  }
  uint64_t n = 0;
  for (char c : v) {
    if (c < '0' || c > '9' || n > (UINT64_MAX - 9) / 10) {
      return Status::InvalidArgument(std::string("query parameter \"") + name +
                                     "\" must be a decimal integer");
    }
    n = n * 10 + static_cast<uint64_t>(c - '0');
  }
  return n;
}

}  // namespace

int MedVaultServer::MapStatusToHttp(const Status& status) {
  switch (status.code()) {
    case Status::Code::kOk: return 200;
    case Status::Code::kNotFound: return 404;
    case Status::Code::kAlreadyExists: return 409;
    case Status::Code::kInvalidArgument: return 400;
    case Status::Code::kIoError: return 500;
    case Status::Code::kCorruption: return 500;
    case Status::Code::kTamperDetected: return 500;
    case Status::Code::kPermissionDenied: return 403;
    case Status::Code::kWormViolation: return 409;
    case Status::Code::kRetentionViolation: return 409;
    case Status::Code::kKeyDestroyed: return 410;
    case Status::Code::kNotSupported: return 501;
    // A quarantined shard is a temporary capacity loss, not a client
    // error: clients should retry once the shard rejoins.
    case Status::Code::kFailedPrecondition: return 503;
    case Status::Code::kBackupChainBroken: return 500;
  }
  return 500;
}

Result<std::unique_ptr<MedVaultServer>> MedVaultServer::Start(
    core::ShardedVault* vault, const ServerOptions& options) {
  if (vault == nullptr) {
    return Status::InvalidArgument("server requires a vault");
  }
  if (options.session_entropy.empty()) {
    return Status::InvalidArgument("server requires session entropy");
  }
  std::unique_ptr<MedVaultServer> server(new MedVaultServer(vault, options));
  MEDVAULT_RETURN_IF_ERROR(server->Init());
  return server;
}

MedVaultServer::MedVaultServer(core::ShardedVault* vault,
                               const ServerOptions& options)
    : vault_(vault),
      options_(options),
      metrics_(vault->metrics_registry()),
      conns_total_(metrics_->GetCounter("server.conns")),
      accepted_(metrics_->GetCounter("server.accepted")),
      shed_(metrics_->GetCounter("server.shed")),
      requests_(metrics_->GetCounter("server.requests")),
      active_(metrics_->GetGauge("server.active")) {
  if (options_.worker_threads == 0) options_.worker_threads = 1;
  for (const char* route : kRouteNames) {
    route_hist_[route] =
        metrics_->GetHistogram(std::string("server.req.") + route);
  }
}

MedVaultServer::~MedVaultServer() { Stop(); }

core::Vault* MedVaultServer::AnyShard() const {
  for (uint32_t k = 0; k < vault_->num_shards(); ++k) {
    if (core::Vault* shard = vault_->shard(k)) return shard;
  }
  return nullptr;
}

Status MedVaultServer::Init() {
  const Clock* clock = options_.clock;
  if (clock == nullptr) {
    core::Vault* shard = AnyShard();
    if (shard == nullptr) {
      return Status::FailedPrecondition("all shards quarantined");
    }
    clock = shard->options().clock;
  }
  sessions_ = std::make_unique<SessionManager>(
      options_.session_entropy, clock, options_.session_ttl_micros);
  admission_ =
      std::make_unique<AdmissionController>(options_.admission, metrics_);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket: " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IoError("bind: " + std::string(strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status s = Status::IoError("listen: " + std::string(strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  pool_ = std::make_unique<WorkerPool>(options_.worker_threads);
  workers_ = std::make_unique<TaskGroup>(pool_.get());
  for (unsigned i = 0; i < options_.worker_threads; ++i) {
    workers_->Submit([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void MedVaultServer::Stop() {
  if (!started_ || stopping_.exchange(true)) return;
  // Wake the acceptor out of accept(2), then the workers out of both
  // the admission queue and any in-flight recv.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  admission_->Stop();
  {
    std::lock_guard<std::mutex> lock(active_fds_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  workers_->Wait();
  workers_.reset();
  pool_.reset();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MedVaultServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load(std::memory_order_relaxed)) break;
      // Transient accept failure (EMFILE and friends): shed by doing
      // nothing; the kernel backlog absorbs the blip.
      continue;
    }
    conns_total_->Increment();
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.idle_timeout_micros > 0) {
      struct timeval tv;
      tv.tv_sec = static_cast<time_t>(options_.idle_timeout_micros / 1000000);
      tv.tv_usec =
          static_cast<suseconds_t>(options_.idle_timeout_micros % 1000000);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    if (!admission_->Offer(fd)) {
      // Overload shedding happens HERE, on the acceptor: a full queue
      // costs one serialized 503 write, never a worker slot.
      shed_->Increment();
      HttpResponse r = ErrorResponse(503, "server overloaded, retry later");
      r.headers["Retry-After"] = std::to_string(options_.retry_after_seconds);
      r.close = true;
      WriteAll(fd, SerializeHttpResponse(r));
      ::close(fd);
    }
  }
}

void MedVaultServer::WorkerLoop() {
  AdmissionController::Ticket ticket;
  while (admission_->Dequeue(&ticket)) {
    ServeConnection(ticket);
  }
}

void MedVaultServer::ServeConnection(
    const AdmissionController::Ticket& ticket) {
  const int fd = ticket.fd;
  active_->Add(1);
  {
    std::lock_guard<std::mutex> lock(active_fds_mu_);
    active_fds_.insert(fd);
  }

  if (ticket.timed_out) {
    // Waited past the queue limit: its client has likely timed out
    // already — answer 503 rather than spend vault work on it.
    shed_->Increment();
    HttpResponse r = ErrorResponse(503, "queue wait exceeded, retry later");
    r.headers["Retry-After"] = std::to_string(options_.retry_after_seconds);
    r.close = true;
    WriteAll(fd, SerializeHttpResponse(r));
  } else {
    accepted_->Increment();
    std::string leftover;
    while (!stopping_.load(std::memory_order_relaxed)) {
      HttpRequest request;
      ReadOutcome rc =
          ReadHttpRequest(fd, options_.limits, &leftover, &request);
      if (rc == ReadOutcome::kOk) {
        HttpResponse response = Handle(request);
        response.close = response.close || !request.KeepAlive() ||
                         stopping_.load(std::memory_order_relaxed);
        if (!WriteAll(fd, SerializeHttpResponse(response))) break;
        if (response.close) break;
        continue;
      }
      if (rc == ReadOutcome::kMalformed) {
        HttpResponse r = ErrorResponse(400, "malformed HTTP request");
        r.close = true;
        WriteAll(fd, SerializeHttpResponse(r));
      } else if (rc == ReadOutcome::kHeadersTooLarge) {
        HttpResponse r = ErrorResponse(431, "request headers too large");
        r.close = true;
        WriteAll(fd, SerializeHttpResponse(r));
      } else if (rc == ReadOutcome::kBodyTooLarge) {
        HttpResponse r = ErrorResponse(413, "request body too large");
        r.close = true;
        WriteAll(fd, SerializeHttpResponse(r));
      }
      // kEof / kTimeout / kError: nothing useful to say; just close.
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(active_fds_mu_);
    active_fds_.erase(fd);
  }
  ::close(fd);
  active_->Add(-1);
}

Status MedVaultServer::CommitIfDurable() {
  if (!options_.durable_writes) return Status::OK();
  // Group commit: concurrent handlers coalesce into one sync wave per
  // commit window, so per-request durability does not mean
  // per-request fsync.
  return vault_->SyncAll();
}

HttpResponse MedVaultServer::Handle(const HttpRequest& request) {
  requests_->Increment();
  const std::string path = request.Path();

  auto timed = [&](const char* route,
                   auto&& handler) -> HttpResponse {
    obs::ScopedOpTimer timer(metrics_, route_hist_.at(route), route);
    return handler();
  };

  // Unauthenticated endpoints.
  if (path == "/v1/health") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return timed("health", [&] { return HandleHealth(); });
  }
  if (path == "/v1/login") {
    if (request.method != "POST") return ErrorResponse(405, "use POST");
    return timed("login", [&] { return HandleLogin(request); });
  }
  if (path == "/v1/replication") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return timed("replication", [&] { return HandleReplicationStatus(); });
  }
  // Cut requests authenticate themselves: the cursor in the body is
  // HMAC-signed under the replication key, which only a legitimate
  // replica (same vault entropy) can produce.
  constexpr const char kCutPrefix[] = "/v1/replication/cut/";
  if (path.rfind(kCutPrefix, 0) == 0) {
    if (request.method != "POST") return ErrorResponse(405, "use POST");
    const std::string shard_str = path.substr(sizeof(kCutPrefix) - 1);
    return timed("repl_cut",
                 [&] { return HandleReplicationCut(shard_str, request); });
  }
  // Transparency posture, checkpoints, and consistency proofs are
  // public by design: they disclose only tree sizes, roots, and
  // signatures, and external witnesses/monitors must be able to fetch
  // them without holding a clinical session. Inclusion proofs and
  // disclosure reports carry event contents, so those two fall through
  // to the authenticated block below.
  if (path == "/v1/transparency") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return timed("transparency", [&] { return HandleTransparencyStatus(); });
  }
  if (path == "/v1/transparency/checkpoint") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return timed("transparency_checkpoint",
                 [&] { return HandleTransparencyCheckpoint(request); });
  }
  if (path == "/v1/transparency/consistency") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return timed("transparency_consistency",
                 [&] { return HandleTransparencyConsistency(request); });
  }

  // Everything else requires a live session.
  core::PrincipalId actor;
  {
    auto it = request.headers.find("authorization");
    if (it == request.headers.end() || it->second.rfind("Bearer ", 0) != 0) {
      HttpResponse r = ErrorResponse(401, "missing bearer token");
      r.headers["WWW-Authenticate"] = "Bearer";
      return r;
    }
    Result<core::PrincipalId> who = sessions_->Lookup(it->second.substr(7));
    if (!who.ok()) {
      HttpResponse r = ErrorResponse(401, who.status().ToString());
      r.headers["WWW-Authenticate"] = "Bearer";
      return r;
    }
    actor = *std::move(who);
  }

  if (path == "/v1/logout") {
    if (request.method != "POST") return ErrorResponse(405, "use POST");
    return timed("logout", [&] { return HandleLogout(request); });
  }
  if (path == "/v1/records") {
    if (request.method != "POST") return ErrorResponse(405, "use POST");
    return timed("create_record",
                 [&] { return HandleCreateRecord(actor, request); });
  }
  if (path == "/v1/search") {
    if (request.method != "POST") return ErrorResponse(405, "use POST");
    return timed("search", [&] { return HandleSearch(actor, request); });
  }
  if (path == "/v1/audit") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return timed("audit", [&] { return HandleAuditTrail(actor); });
  }
  if (path == "/v1/audit/checkpoint") {
    if (request.method != "POST") return ErrorResponse(405, "use POST");
    return timed("checkpoint", [&] { return HandleCheckpoint(actor); });
  }
  if (path == "/v1/break-glass") {
    if (request.method != "POST") return ErrorResponse(405, "use POST");
    return timed("break_glass",
                 [&] { return HandleBreakGlass(actor, request); });
  }
  if (path == "/v1/consent") {
    if (request.method == "POST") {
      return timed("consent_grant",
                   [&] { return HandleConsentGrant(actor, request); });
    }
    if (request.method == "GET") {
      return timed("consent_list",
                   [&] { return HandleConsentList(actor, request); });
    }
    return ErrorResponse(405, "use POST or GET");
  }
  if (path == "/v1/consent/revoke") {
    if (request.method != "POST") return ErrorResponse(405, "use POST");
    return timed("consent_revoke",
                 [&] { return HandleConsentRevoke(actor, request); });
  }
  if (path == "/v1/transparency/proof") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return timed("transparency_proof",
                 [&] { return HandleTransparencyProof(actor, request); });
  }
  if (path == "/v1/transparency/disclosures") {
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return timed("disclosures",
                 [&] { return HandleDisclosures(actor, request); });
  }

  constexpr const char kRecordsPrefix[] = "/v1/records/";
  if (path.rfind(kRecordsPrefix, 0) == 0) {
    std::string rest = path.substr(sizeof(kRecordsPrefix) - 1);
    auto sub_at = rest.rfind('/');
    std::string action =
        sub_at == std::string::npos ? "" : rest.substr(sub_at + 1);
    if (action == "correct" || action == "history" || action == "dispose" ||
        action == "audit") {
      const core::RecordId record_id = rest.substr(0, sub_at);
      if (action == "correct") {
        if (request.method != "POST") return ErrorResponse(405, "use POST");
        return timed("correct", [&] {
          return HandleCorrectRecord(actor, record_id, request);
        });
      }
      if (action == "history") {
        if (request.method != "GET") return ErrorResponse(405, "use GET");
        return timed("history",
                     [&] { return HandleHistory(actor, record_id); });
      }
      if (action == "dispose") {
        if (request.method != "POST") return ErrorResponse(405, "use POST");
        return timed("dispose",
                     [&] { return HandleDispose(actor, record_id); });
      }
      if (request.method != "GET") return ErrorResponse(405, "use GET");
      return timed("record_audit",
                   [&] { return HandleRecordAudit(actor, record_id); });
    }
    if (request.method != "GET") return ErrorResponse(405, "use GET");
    return timed("read_record",
                 [&] { return HandleReadRecord(actor, rest, request); });
  }

  return ErrorResponse(404, "no such endpoint: " + path);
}

HttpResponse MedVaultServer::HandleHealth() {
  obs::HealthReport report = obs::CollectHealth(*vault_);
  obs::FillReplicationHealth(&report, options_.repl_source,
                             options_.repl_applier);
  obs::FillTransparencyHealth(&report, options_.transparency);
  return JsonResponse(200, report.ToJson());
}

HttpResponse MedVaultServer::HandleReplicationStatus() {
  const core::ShardedReplicationSource* source = options_.repl_source;
  const core::ShardedReplicaApplier* applier = options_.repl_applier;
  if (source == nullptr && applier == nullptr) {
    return ErrorResponse(404, "replication not configured");
  }
  Value::Object o;
  o["role"] = Value(source != nullptr ? "primary" : "replica");
  if (source != nullptr) {
    o["num_shards"] = Value(static_cast<uint64_t>(source->num_shards()));
    o["shipped_batches"] = Value(source->batches_shipped());
    o["shipped_bytes"] = Value(source->bytes_shipped());
    o["lag_bytes"] = Value(source->lag_bytes());
  }
  if (applier != nullptr) {
    o["num_shards"] = Value(static_cast<uint64_t>(applier->num_shards()));
    o["applied_batches"] = Value(applier->applied_batches());
    o["lag_bytes"] = Value(applier->lag_bytes());
    o["quarantined_shards"] =
        Value(static_cast<uint64_t>(applier->quarantined_shards()));
  }
  return JsonResponse(200, Value(std::move(o)));
}

HttpResponse MedVaultServer::HandleReplicationCut(const std::string& shard_str,
                                                  const HttpRequest& request) {
  if (options_.repl_source == nullptr) {
    return ErrorResponse(404, "this endpoint does not ship batches");
  }
  if (shard_str.empty() ||
      shard_str.find_first_not_of("0123456789") != std::string::npos) {
    return ErrorResponse(400, "bad shard index: " + shard_str);
  }
  const unsigned long shard = std::strtoul(shard_str.c_str(), nullptr, 10);
  if (shard >= options_.repl_source->num_shards()) {
    return ErrorResponse(404, "no such shard: " + shard_str);
  }
  Result<std::string> batch = options_.repl_source->HandleCutRequest(
      static_cast<uint32_t>(shard), Slice(request.body));
  if (!batch.ok()) return ErrorFromStatus(batch.status());
  HttpResponse r;
  r.status = 200;
  r.headers["Content-Type"] = "application/octet-stream";
  r.body = *std::move(batch);
  return r;
}

HttpResponse MedVaultServer::HandleLogin(const HttpRequest& request) {
  Result<Value> body = ParseJsonObject(request.body);
  if (!body.ok()) return ErrorFromStatus(body.status());
  const Value::Object& o = body->as_object();
  Result<std::string> principal = RequireString(o, "principal");
  if (!principal.ok()) return ErrorFromStatus(principal.status());
  Result<std::string> secret = RequireString(o, "secret");
  if (!secret.ok()) return ErrorFromStatus(secret.status());

  // Deliberately one failure mode: whether the secret is wrong, the
  // principal unknown, or logins disabled, the client learns only
  // "login failed".
  bool ok = !options_.api_secret.empty() &&
            crypto::ConstantTimeEqual(*secret, options_.api_secret);
  core::Principal who;
  if (ok) {
    core::Vault* shard = AnyShard();
    if (shard == nullptr) {
      return ErrorResponse(503, "all shards quarantined");
    }
    Result<core::Principal> found = shard->access()->GetPrincipal(*principal);
    if (!found.ok()) {
      ok = false;
    } else {
      who = *std::move(found);
    }
  }
  if (!ok) return ErrorResponse(403, "login failed");

  Value::Object out;
  out["token"] = Value(sessions_->Issue(who.id));
  out["principal"] = Value(who.id);
  out["role"] = Value(core::RoleName(who.role));
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleLogout(const HttpRequest& request) {
  auto it = request.headers.find("authorization");
  // Authenticated already, so the header is present and well-formed.
  sessions_->Revoke(it->second.substr(7));
  Value::Object out;
  out["ok"] = Value(true);
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleCreateRecord(const core::PrincipalId& actor,
                                                const HttpRequest& request) {
  Result<Value> body = ParseJsonObject(request.body);
  if (!body.ok()) return ErrorFromStatus(body.status());
  const Value::Object& o = body->as_object();
  Result<std::string> patient = RequireString(o, "patient_id");
  if (!patient.ok()) return ErrorFromStatus(patient.status());
  Result<std::string> content = RequireString(o, "content");
  if (!content.ok()) return ErrorFromStatus(content.status());
  Result<std::vector<std::string>> keywords = StringArray(o, "keywords");
  if (!keywords.ok()) return ErrorFromStatus(keywords.status());

  Result<core::RecordId> id = vault_->CreateRecord(
      actor, *patient, OptionalString(o, "content_type", "text/plain"),
      *content, *keywords, OptionalString(o, "retention_policy", "hipaa-6y"));
  if (!id.ok()) return ErrorFromStatus(id.status());
  Status durable = CommitIfDurable();
  if (!durable.ok()) return ErrorFromStatus(durable);

  Value::Object out;
  out["record_id"] = Value(*id);
  return JsonResponse(201, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleReadRecord(const core::PrincipalId& actor,
                                              const core::RecordId& record_id,
                                              const HttpRequest& request) {
  Result<core::RecordVersion> version = [&]() -> Result<core::RecordVersion> {
    const std::string v = request.QueryParam("version");
    if (v.empty()) return vault_->ReadRecord(actor, record_id);
    uint32_t n = 0;
    for (char c : v) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("version must be a number");
      }
      n = n * 10 + static_cast<uint32_t>(c - '0');
    }
    return vault_->ReadRecordVersion(actor, record_id, n);
  }();
  if (!version.ok()) return ErrorFromStatus(version.status());

  Value header = VersionHeaderJson(version->header);
  Value::Object out = header.as_object();
  out["content"] = Value(version->plaintext);
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleCorrectRecord(
    const core::PrincipalId& actor, const core::RecordId& record_id,
    const HttpRequest& request) {
  Result<Value> body = ParseJsonObject(request.body);
  if (!body.ok()) return ErrorFromStatus(body.status());
  const Value::Object& o = body->as_object();
  Result<std::string> content = RequireString(o, "content");
  if (!content.ok()) return ErrorFromStatus(content.status());
  Result<std::string> reason = RequireString(o, "reason");
  if (!reason.ok()) return ErrorFromStatus(reason.status());
  Result<std::vector<std::string>> keywords = StringArray(o, "keywords");
  if (!keywords.ok()) return ErrorFromStatus(keywords.status());

  Result<core::VersionHeader> header =
      vault_->CorrectRecord(actor, record_id, *content, *reason, *keywords);
  if (!header.ok()) return ErrorFromStatus(header.status());
  Status durable = CommitIfDurable();
  if (!durable.ok()) return ErrorFromStatus(durable);
  return JsonResponse(200, VersionHeaderJson(*header));
}

HttpResponse MedVaultServer::HandleHistory(const core::PrincipalId& actor,
                                           const core::RecordId& record_id) {
  Result<std::vector<core::VersionHeader>> history =
      vault_->RecordHistory(actor, record_id);
  if (!history.ok()) return ErrorFromStatus(history.status());
  Value::Array versions;
  for (const core::VersionHeader& h : *history) {
    versions.push_back(VersionHeaderJson(h));
  }
  Value::Object out;
  out["versions"] = Value(std::move(versions));
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleDispose(const core::PrincipalId& actor,
                                           const core::RecordId& record_id) {
  Result<core::DisposalCertificate> cert =
      vault_->DisposeRecord(actor, record_id);
  if (!cert.ok()) return ErrorFromStatus(cert.status());
  Status durable = CommitIfDurable();
  if (!durable.ok()) return ErrorFromStatus(durable);

  Value::Object out;
  out["record_id"] = Value(cert->record_id);
  out["authorizer"] = Value(cert->authorizer);
  out["policy"] = Value(cert->policy);
  out["disposed_at"] = Value(cert->disposed_at);
  out["custody_head"] = Value(HexEncode(cert->custody_head));
  out["signature"] = Value(HexEncode(cert->signature));
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleSearch(const core::PrincipalId& actor,
                                          const HttpRequest& request) {
  Result<Value> body = ParseJsonObject(request.body);
  if (!body.ok()) return ErrorFromStatus(body.status());
  Result<std::vector<std::string>> terms =
      StringArray(body->as_object(), "terms");
  if (!terms.ok()) return ErrorFromStatus(terms.status());
  if (terms->empty()) {
    return ErrorResponse(400, "search requires at least one term");
  }

  Result<std::vector<core::RecordId>> ids =
      terms->size() == 1 ? vault_->SearchKeyword(actor, terms->front())
                         : vault_->SearchKeywordsAll(actor, *terms);
  if (!ids.ok()) return ErrorFromStatus(ids.status());
  Value::Array arr;
  for (const core::RecordId& id : *ids) arr.push_back(Value(id));
  Value::Object out;
  out["record_ids"] = Value(std::move(arr));
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleRecordAudit(
    const core::PrincipalId& actor, const core::RecordId& record_id) {
  Result<std::vector<core::AuditEvent>> events =
      vault_->ReadAuditTrail(actor, record_id);
  if (!events.ok()) return ErrorFromStatus(events.status());
  Value::Array arr;
  for (const core::AuditEvent& e : *events) arr.push_back(AuditEventJson(e));
  Value::Object out;
  out["events"] = Value(std::move(arr));
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleAuditTrail(const core::PrincipalId& actor) {
  Result<std::vector<core::AuditEvent>> events =
      vault_->ReadAuditTrail(actor, "");
  if (!events.ok()) return ErrorFromStatus(events.status());
  Value::Array arr;
  for (const core::AuditEvent& e : *events) arr.push_back(AuditEventJson(e));
  Value::Object out;
  out["events"] = Value(std::move(arr));
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleCheckpoint(const core::PrincipalId& actor) {
  // Checkpointing is an auditor/admin act; the vault has no per-shard
  // access gate for it, so enforce the kReadAudit role here. (This
  // replaces an earlier gate that materialized the entire merged audit
  // trail just to learn "yes/no".)
  core::Vault* shard = AnyShard();
  if (shard == nullptr) {
    return ErrorResponse(503, "all shards quarantined");
  }
  Status gate = shard->CheckAuditAccess(actor);
  if (!gate.ok()) return ErrorFromStatus(gate);

  Result<std::vector<core::SignedCheckpoint>> checkpoints =
      vault_->CheckpointAudit();
  if (!checkpoints.ok()) return ErrorFromStatus(checkpoints.status());
  Status durable = CommitIfDurable();
  if (!durable.ok()) return ErrorFromStatus(durable);

  Value::Array arr;
  for (size_t i = 0; i < checkpoints->size(); ++i) {
    const core::SignedCheckpoint& cp = (*checkpoints)[i];
    Value::Object o;
    o["shard"] = Value(static_cast<uint64_t>(i));
    o["tree_size"] = Value(cp.tree_size);
    o["root"] = Value(HexEncode(cp.root));
    o["timestamp"] = Value(cp.timestamp);
    o["signature"] = Value(HexEncode(cp.signature));
    arr.push_back(Value(std::move(o)));
  }
  Value::Object out;
  out["checkpoints"] = Value(std::move(arr));
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleBreakGlass(const core::PrincipalId& actor,
                                              const HttpRequest& request) {
  Result<Value> body = ParseJsonObject(request.body);
  if (!body.ok()) return ErrorFromStatus(body.status());
  const Value::Object& o = body->as_object();
  Result<std::string> patient = RequireString(o, "patient_id");
  if (!patient.ok()) return ErrorFromStatus(patient.status());
  Result<std::string> justification = RequireString(o, "justification");
  if (!justification.ok()) return ErrorFromStatus(justification.status());
  Result<int64_t> duration = RequireInt(o, "duration_micros");
  if (!duration.ok()) return ErrorFromStatus(duration.status());

  Result<std::string> grant =
      vault_->BreakGlass(actor, *patient, *justification, *duration);
  if (!grant.ok()) return ErrorFromStatus(grant.status());
  // The grant is both audited and state-logged; the durability barrier
  // makes it survive a crash the instant the client sees the grant id.
  Status durable = CommitIfDurable();
  if (!durable.ok()) return ErrorFromStatus(durable);

  Value::Object out;
  out["grant_id"] = Value(*grant);
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleConsentGrant(const core::PrincipalId& actor,
                                                const HttpRequest& request) {
  Result<Value> body = ParseJsonObject(request.body);
  if (!body.ok()) return ErrorFromStatus(body.status());
  const Value::Object& o = body->as_object();
  Result<std::string> grantee = RequireString(o, "grantee");
  if (!grantee.ok()) return ErrorFromStatus(grantee.status());
  Result<std::string> purpose = RequireString(o, "purpose");
  if (!purpose.ok()) return ErrorFromStatus(purpose.status());
  Result<int64_t> duration = RequireInt(o, "duration_micros");
  if (!duration.ok()) return ErrorFromStatus(duration.status());
  // Omitting record_id makes the grant patient-scoped (all of the
  // caller's records, current and future).
  const std::string record_id = OptionalString(o, "record_id", "");

  Result<core::ConsentGrant> grant =
      vault_->GrantConsent(actor, *grantee, record_id, *purpose, *duration);
  if (!grant.ok()) return ErrorFromStatus(grant.status());
  // The grant is signed, state-logged, and audited; the durability
  // barrier makes it survive a crash the instant the client sees it.
  Status durable = CommitIfDurable();
  if (!durable.ok()) return ErrorFromStatus(durable);

  Value::Object out;
  out["grant_id"] = Value(grant->grant_id);
  out["grantee"] = Value(grant->grantee);
  out["scope"] = Value(core::ConsentScopeName(grant->scope));
  out["expires_at"] = Value(grant->expires_at);
  return JsonResponse(201, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleConsentRevoke(const core::PrincipalId& actor,
                                                 const HttpRequest& request) {
  Result<Value> body = ParseJsonObject(request.body);
  if (!body.ok()) return ErrorFromStatus(body.status());
  const Value::Object& o = body->as_object();
  Result<std::string> grant_id = RequireString(o, "grant_id");
  if (!grant_id.ok()) return ErrorFromStatus(grant_id.status());

  Status revoked = vault_->RevokeConsent(actor, *grant_id);
  if (!revoked.ok()) return ErrorFromStatus(revoked);
  // Revocation must be durable before it is acknowledged: once the
  // client sees this response, no crash may resurrect the grant.
  Status durable = CommitIfDurable();
  if (!durable.ok()) return ErrorFromStatus(durable);

  Value::Object out;
  out["ok"] = Value(true);
  out["grant_id"] = Value(*grant_id);
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleConsentList(const core::PrincipalId& actor,
                                               const HttpRequest& request) {
  // Defaults to the caller's own grants; ?patient= lets auditors and
  // admins pull another patient's (the vault's RBAC refuses everyone
  // else).
  std::string patient = request.QueryParam("patient");
  if (patient.empty()) patient = actor;
  Result<std::vector<core::ConsentGrant>> grants =
      vault_->ListConsents(actor, patient);
  if (!grants.ok()) return ErrorFromStatus(grants.status());
  Value::Array arr;
  for (const core::ConsentGrant& g : *grants) {
    Value::Object o;
    o["grant_id"] = Value(g.grant_id);
    o["patient"] = Value(g.patient);
    o["grantee"] = Value(g.grantee);
    if (!g.record_id.empty()) o["record_id"] = Value(g.record_id);
    o["scope"] = Value(core::ConsentScopeName(g.scope));
    o["purpose"] = Value(g.purpose);
    o["issued_at"] = Value(g.issued_at);
    o["expires_at"] = Value(g.expires_at);
    arr.push_back(Value(std::move(o)));
  }
  Value::Object out;
  out["patient"] = Value(patient);
  out["grants"] = Value(std::move(arr));
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleTransparencyStatus() {
  core::ShardedTransparencyService* svc = options_.transparency;
  if (svc == nullptr) {
    return ErrorResponse(404, "transparency not configured");
  }
  Value::Array shards;
  for (uint32_t k = 0; k < svc->num_shards(); ++k) {
    Value::Object o;
    o["shard"] = Value(static_cast<uint64_t>(k));
    Result<core::TransparencyLog*> log = svc->log(k);
    if (!log.ok()) {
      o["quarantined"] = Value(true);
      shards.push_back(Value(std::move(o)));
      continue;
    }
    Result<core::CosignedCheckpoint> latest = svc->LatestCosigned(k);
    if (latest.ok()) {
      o["tree_size"] = Value(latest->checkpoint.tree_size);
      o["root"] = Value(HexEncode(latest->checkpoint.root));
      o["cosignatures"] =
          Value(static_cast<uint64_t>(latest->cosignatures.size()));
    } else {
      o["tree_size"] = Value(static_cast<uint64_t>(0));
    }
    shards.push_back(Value(std::move(o)));
  }
  Value::Object out;
  out["num_shards"] = Value(static_cast<uint64_t>(svc->num_shards()));
  out["witnesses"] = Value(static_cast<uint64_t>(svc->witness_count()));
  out["shards"] = Value(std::move(shards));
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleTransparencyCheckpoint(
    const HttpRequest& request) {
  core::ShardedTransparencyService* svc = options_.transparency;
  if (svc == nullptr) {
    return ErrorResponse(404, "transparency not configured");
  }
  Result<uint64_t> shard = Uint64Param(request, "shard", /*required=*/false);
  if (!shard.ok()) return ErrorFromStatus(shard.status());
  Result<core::CosignedCheckpoint> latest =
      svc->LatestCosigned(static_cast<uint32_t>(*shard));
  if (!latest.ok()) return ErrorFromStatus(latest.status());
  Value::Object out = CosignedCheckpointJson(*latest).as_object();
  out["shard"] = Value(*shard);
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleTransparencyConsistency(
    const HttpRequest& request) {
  core::ShardedTransparencyService* svc = options_.transparency;
  if (svc == nullptr) {
    return ErrorResponse(404, "transparency not configured");
  }
  Result<uint64_t> shard = Uint64Param(request, "shard", /*required=*/false);
  if (!shard.ok()) return ErrorFromStatus(shard.status());
  Result<uint64_t> from = Uint64Param(request, "from", /*required=*/true);
  if (!from.ok()) return ErrorFromStatus(from.status());
  Result<uint64_t> to = Uint64Param(request, "to", /*required=*/true);
  if (!to.ok()) return ErrorFromStatus(to.status());

  Result<core::ConsistencyBundle> bundle =
      svc->ConsistencyBetween(static_cast<uint32_t>(*shard), *from, *to);
  if (!bundle.ok()) return ErrorFromStatus(bundle.status());
  Value::Object out;
  out["shard"] = Value(*shard);
  out["from"] = CheckpointJson(bundle->from);
  out["to"] = CheckpointJson(bundle->to);
  out["proof"] = HexPathJson(bundle->proof);
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleTransparencyProof(
    const core::PrincipalId& actor, const HttpRequest& request) {
  core::ShardedTransparencyService* svc = options_.transparency;
  if (svc == nullptr) {
    return ErrorResponse(404, "transparency not configured");
  }
  Result<uint64_t> shard = Uint64Param(request, "shard", /*required=*/false);
  if (!shard.ok()) return ErrorFromStatus(shard.status());
  Result<uint64_t> seq = Uint64Param(request, "seq", /*required=*/true);
  if (!seq.ok()) return ErrorFromStatus(seq.status());

  Result<core::TransparencyLog*> log =
      svc->log(static_cast<uint32_t>(*shard));
  if (!log.ok()) return ErrorFromStatus(log.status());

  // Default to the latest *published* size: proofs are only servable
  // against checkpointed sizes, where the client holds a signed root.
  Result<uint64_t> size = Uint64Param(request, "size", /*required=*/false);
  if (!size.ok()) return ErrorFromStatus(size.status());
  if (*size == 0) {
    Result<core::CosignedCheckpoint> latest =
        svc->LatestCosigned(static_cast<uint32_t>(*shard));
    if (!latest.ok()) return ErrorFromStatus(latest.status());
    size = latest->checkpoint.tree_size;
  }

  Result<core::EventProof> proof =
      svc->ProveEventAt(static_cast<uint32_t>(*shard), *seq, *size);
  if (!proof.ok()) return ErrorFromStatus(proof.status());

  // RBAC: the proof carries the event's contents. Patients may prove
  // events about themselves — their own actions, or disclosures of
  // their own records; everyone else needs audit-read privileges
  // (checked and audited by the shard, denial included).
  core::Vault* any = AnyShard();
  if (any == nullptr) return ErrorResponse(503, "all shards quarantined");
  Result<core::Principal> who = any->access()->GetPrincipal(actor);
  if (!who.ok()) return ErrorFromStatus(who.status());
  bool own_event = false;
  if (who->role == core::Role::kPatient) {
    const core::AuditEvent& e = proof->event;
    if (e.actor == actor) {
      own_event = true;
    } else if (!e.record_id.empty()) {
      Result<core::RecordMeta> meta = vault_->GetRecordMeta(e.record_id);
      own_event = meta.ok() && meta->patient_id == actor;
    }
  }
  if (!own_event) {
    Status gate = (*log)->vault()->CheckAuditAccess(actor);
    if (!gate.ok()) return ErrorFromStatus(gate);
  }

  Value::Object out;
  out["shard"] = Value(*shard);
  out["event"] = AuditEventJson(proof->event);
  out["tree_size"] = Value(proof->tree_size);
  out["path"] = HexPathJson(proof->path);
  // Ship the matching signed checkpoint so the client can verify the
  // proof end-to-end from this one response.
  Result<core::SignedCheckpoint> cp =
      (*log)->vault()->audit()->CheckpointAt(proof->tree_size);
  if (cp.ok()) out["checkpoint"] = CheckpointJson(*cp);
  return JsonResponse(200, Value(std::move(out)));
}

HttpResponse MedVaultServer::HandleDisclosures(const core::PrincipalId& actor,
                                               const HttpRequest& request) {
  // HIPAA §164.528 accounting of disclosures. Defaults to the caller's
  // own accounting; ?patient= lets auditors/admins pull another
  // patient's (the vault's RBAC refuses everyone else).
  std::string patient = request.QueryParam("patient");
  if (patient.empty()) patient = actor;
  Result<std::vector<core::AuditEvent>> events =
      vault_->AccountingOfDisclosures(actor, patient);
  if (!events.ok()) return ErrorFromStatus(events.status());
  Value::Array arr;
  for (const core::AuditEvent& e : *events) arr.push_back(AuditEventJson(e));
  Value::Object out;
  out["patient"] = Value(patient);
  out["events"] = Value(std::move(arr));
  return JsonResponse(200, Value(std::move(out)));
}

}  // namespace medvault::server
