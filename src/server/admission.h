#ifndef MEDVAULT_SERVER_ADMISSION_H_
#define MEDVAULT_SERVER_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "obs/metrics.h"

namespace medvault::server {

/// Admission policy for one connection pool (after NaviServer's design:
/// a bounded wait queue in front of a fixed worker pool, with explicit
/// shedding instead of unbounded queueing).
struct AdmissionOptions {
  /// Connections allowed to wait for a worker. An accept beyond this is
  /// shed immediately (503 + Retry-After) — the queue never grows
  /// without bound, so latency for admitted work stays bounded too.
  size_t max_queue = 64;
  /// A connection that waited longer than this before a worker picked
  /// it up is answered 503 instead of served: its client has likely
  /// given up, and serving it would only delay fresher work. 0 disables
  /// the wait limit.
  uint64_t max_queue_wait_micros = 2 * 1000 * 1000;
};

/// Hand-off point between the acceptor thread and the worker pool.
///
/// The acceptor Offer()s each accepted socket; workers block in
/// Dequeue() for the next one. Offer never blocks: when the queue is
/// full the socket is refused (shed) and the *acceptor* writes the 503,
/// so overload costs one syscall per shed connection instead of a
/// worker. Telemetry: server.queued / server.shed counters and the
/// server.queue_depth gauge.
class AdmissionController {
 public:
  AdmissionController(const AdmissionOptions& options,
                      obs::MetricsRegistry* metrics);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Queues `fd` for a worker. False = queue full (or stopped): the
  /// caller still owns the socket and must shed it.
  bool Offer(int fd);

  /// One admitted connection, as handed to a worker.
  struct Ticket {
    int fd = -1;
    uint64_t waited_micros = 0;
    /// Exceeded max_queue_wait_micros: respond 503 and close instead
    /// of serving.
    bool timed_out = false;
  };

  /// Blocks until a connection is available or Stop() was called.
  /// False = stopped and drained; the worker loop should exit.
  bool Dequeue(Ticket* out);

  /// Wakes every waiting worker and closes any sockets still queued
  /// (their clients get a reset — shutdown is not graceful for work
  /// that never started).
  void Stop();

  size_t QueueDepth() const;

 private:
  using TimePoint = std::chrono::steady_clock::time_point;

  AdmissionOptions options_;
  obs::Counter* queued_;
  obs::Counter* shed_timeout_;
  obs::Gauge* depth_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::pair<int, TimePoint>> queue_;
  bool stopped_ = false;
};

}  // namespace medvault::server

#endif  // MEDVAULT_SERVER_ADMISSION_H_
