#include "server/session.h"

#include "common/hex.h"

namespace medvault::server {

SessionManager::SessionManager(const Slice& entropy, const Clock* clock,
                               uint64_t ttl_micros)
    : clock_(clock), ttl_micros_(ttl_micros), drbg_(entropy) {}

void SessionManager::PruneLocked(Timestamp now) {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.expires_at <= now) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string SessionManager::Issue(const core::PrincipalId& principal) {
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked(now);
  std::string token = HexEncode(drbg_.Generate(16));
  sessions_[token] =
      Session{principal, now + static_cast<Timestamp>(ttl_micros_)};
  return token;
}

Result<core::PrincipalId> SessionManager::Lookup(const std::string& token) {
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked(now);
  auto it = sessions_.find(token);
  if (it == sessions_.end()) {
    return Status::PermissionDenied("invalid or expired session");
  }
  return it->second.principal;
}

bool SessionManager::Revoke(const std::string& token) {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.erase(token) > 0;
}

size_t SessionManager::ActiveSessions() {
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked(now);
  return sessions_.size();
}

}  // namespace medvault::server
