#include "server/session.h"

#include "common/hex.h"
#include "crypto/hmac.h"

namespace medvault::server {

SessionManager::SessionManager(const Slice& entropy, const Clock* clock,
                               uint64_t ttl_micros)
    : clock_(clock), ttl_micros_(ttl_micros), drbg_(entropy) {}

void SessionManager::PruneLocked(Timestamp now) {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.expires_at <= now) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

const SessionManager::Session* SessionManager::FindLocked(
    const std::string& token) const {
  // A map lookup's comparisons stop at the first mismatching byte, so
  // its timing tells an attacker how much of a guessed token matches a
  // live one — the same side channel the login-secret compare already
  // closes with ConstantTimeEqual. Scan every session with the
  // constant-time compare and never break early; the table only holds
  // live logins, so the full pass is cheap.
  const Session* found = nullptr;
  for (const auto& [candidate, session] : sessions_) {
    if (crypto::ConstantTimeEqual(Slice(candidate), Slice(token))) {
      found = &session;
    }
  }
  return found;
}

std::string SessionManager::Issue(const core::PrincipalId& principal) {
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked(now);
  std::string token = HexEncode(drbg_.Generate(16));
  sessions_[token] =
      Session{principal, now + static_cast<Timestamp>(ttl_micros_)};
  return token;
}

Result<core::PrincipalId> SessionManager::Lookup(const std::string& token) {
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked(now);
  const Session* found = FindLocked(token);
  if (found == nullptr) {
    // One message for unknown, expired, and revoked alike: the error
    // must not help a caller distinguish a never-issued token from one
    // that was just logged out.
    return Status::PermissionDenied("invalid or expired session");
  }
  return found->principal;
}

bool SessionManager::Revoke(const std::string& token) {
  std::lock_guard<std::mutex> lock(mu_);
  const Session* found = FindLocked(token);
  if (found == nullptr) return false;
  // Erase by the matched entry's own key, not the caller's bytes, so
  // the erase path inherits the constant-time match above.
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (&it->second == found) {
      sessions_.erase(it);
      return true;
    }
  }
  return false;
}

size_t SessionManager::ActiveSessions() {
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked(now);
  return sessions_.size();
}

}  // namespace medvault::server
