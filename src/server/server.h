#ifndef MEDVAULT_SERVER_SERVER_H_
#define MEDVAULT_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/result.h"
#include "common/worker_pool.h"
#include "core/sharded_vault.h"
#include "obs/metrics.h"
#include "server/admission.h"
#include "server/http.h"
#include "server/session.h"

namespace medvault::core {
class ShardedReplicationSource;
class ShardedReplicaApplier;
class ShardedTransparencyService;
}  // namespace medvault::core

namespace medvault::server {

/// Configuration of the HTTP front door.
struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (tests/benches
  /// read it back via port()).
  uint16_t port = 0;
  /// Worker threads serving admitted connections — the pool's
  /// max-connections limit in NaviServer terms: at most this many
  /// connections are in service at once; the rest wait in the
  /// admission queue or are shed. Clamped to >= 1.
  unsigned worker_threads = 4;
  AdmissionOptions admission;
  HttpLimits limits;
  /// Shared API secret required by POST /v1/login alongside a known
  /// principal id. Empty refuses every login (health-only server).
  std::string api_secret;
  /// Entropy for session-token generation (required non-empty).
  std::string session_entropy;
  /// Clock for session expiry. Null uses the vault's clock (tests pass
  /// the same ManualClock they opened the vault with).
  const Clock* clock = nullptr;
  uint64_t session_ttl_micros = 8ull * 3600 * 1000 * 1000;  ///< 8 hours
  /// Sync the vault after every mutating endpoint before answering —
  /// an acknowledged write survives power failure. Concurrent handlers
  /// coalesce into one group-commit wave, so durability costs one
  /// fsync per window, not per request.
  bool durable_writes = true;
  /// Blocking-read timeout on connection sockets: an idle keep-alive
  /// connection is closed after this long. 0 = no timeout.
  uint64_t idle_timeout_micros = 30ull * 1000 * 1000;
  /// Seconds suggested to shed clients via Retry-After.
  unsigned retry_after_seconds = 1;
  /// Replication endpoints this process runs (both borrowed; either or
  /// both may be null). A primary sets `repl_source` and serves
  /// POST /v1/replication/cut/<shard>; a standby that fronts its
  /// applier sets `repl_applier`. Either role reports posture on
  /// GET /v1/replication and in /v1/health's `repl` section.
  core::ShardedReplicationSource* repl_source = nullptr;
  core::ShardedReplicaApplier* repl_applier = nullptr;
  /// Audit-transparency service (borrowed; may be null). When set, the
  /// server serves GET /v1/transparency* — latest cosigned checkpoint,
  /// inclusion/consistency proofs, and per-patient disclosure reports —
  /// and /v1/health gains a `transparency` section.
  core::ShardedTransparencyService* transparency = nullptr;
};

/// HTTP/1.1 front-end for one ShardedVault: record lifecycle, audit
/// access, and break-glass as JSON over REST, with NaviServer-style
/// admission control in front of a fixed worker pool.
///
/// Architecture: one acceptor thread accepts and either queues the
/// socket (AdmissionController) or sheds it with 503 + Retry-After;
/// `worker_threads` long-running loop tasks on a WorkerPool each
/// dequeue admitted connections and serve them to completion
/// (keep-alive supported). All handler work happens on workers, so a
/// saturated vault back-pressures into the bounded queue and then into
/// shedding — memory and admitted-request latency stay bounded under
/// any offered load.
///
/// Trust boundary: the server authenticates sessions and maps them to
/// RBAC principals, but transport security (TLS) is outside this
/// process — and outside the vault's tamper-evidence boundary (see
/// DESIGN.md). Bind is loopback-only by construction.
///
/// Status -> HTTP mapping is deterministic (MapStatusToHttp): policy
/// denials 403, retention/WORM conflicts 409, crypto-shredded content
/// 410, quarantined shards 503, integrity failures 500.
class MedVaultServer {
 public:
  /// Binds, spawns acceptor + workers, returns once the port is
  /// listening. `vault` is borrowed and must outlive the server.
  static Result<std::unique_ptr<MedVaultServer>> Start(
      core::ShardedVault* vault, const ServerOptions& options);

  ~MedVaultServer();

  MedVaultServer(const MedVaultServer&) = delete;
  MedVaultServer& operator=(const MedVaultServer&) = delete;

  /// Bound port (useful with options.port == 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, sheds the queue, interrupts in-flight
  /// connections, joins everything. Idempotent.
  void Stop();

  /// Routes one parsed request — exposed so tests can exercise the
  /// routing table without sockets. `session_principal` handling,
  /// access checks and audit all happen inside (via the vault).
  HttpResponse Handle(const HttpRequest& request);

  SessionManager* sessions() { return sessions_.get(); }

  /// Deterministic Status -> HTTP status code mapping.
  static int MapStatusToHttp(const Status& status);

 private:
  MedVaultServer(core::ShardedVault* vault, const ServerOptions& options);

  Status Init();
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(const AdmissionController::Ticket& ticket);

  /// First healthy shard (principals are replicated to every shard);
  /// null only when ALL shards are quarantined.
  core::Vault* AnyShard() const;
  /// Group-committed durability barrier after a mutation (no-op when
  /// durable_writes is off).
  Status CommitIfDurable();

  // ---- Route handlers (authenticated unless noted) --------------------
  HttpResponse HandleHealth();             // unauthenticated
  HttpResponse HandleReplicationStatus();  // unauthenticated
  /// Cursor-authenticated (the encoded cursor in the body carries its
  /// own HMAC under the replication key), so no session is required.
  HttpResponse HandleReplicationCut(const std::string& shard_str,
                                    const HttpRequest& request);
  HttpResponse HandleLogin(const HttpRequest& request);
  HttpResponse HandleLogout(const HttpRequest& request);
  HttpResponse HandleCreateRecord(const core::PrincipalId& actor,
                                  const HttpRequest& request);
  HttpResponse HandleReadRecord(const core::PrincipalId& actor,
                                const core::RecordId& record_id,
                                const HttpRequest& request);
  HttpResponse HandleCorrectRecord(const core::PrincipalId& actor,
                                   const core::RecordId& record_id,
                                   const HttpRequest& request);
  HttpResponse HandleHistory(const core::PrincipalId& actor,
                             const core::RecordId& record_id);
  HttpResponse HandleDispose(const core::PrincipalId& actor,
                             const core::RecordId& record_id);
  HttpResponse HandleSearch(const core::PrincipalId& actor,
                            const HttpRequest& request);
  HttpResponse HandleRecordAudit(const core::PrincipalId& actor,
                                 const core::RecordId& record_id);
  HttpResponse HandleAuditTrail(const core::PrincipalId& actor);
  HttpResponse HandleCheckpoint(const core::PrincipalId& actor);
  HttpResponse HandleBreakGlass(const core::PrincipalId& actor,
                                const HttpRequest& request);
  // Patient-driven sharing: grant/revoke/list delegated consent.
  // Grants and revocations are durability-barriered like break-glass —
  // a revocation is total the moment the client sees the response.
  HttpResponse HandleConsentGrant(const core::PrincipalId& actor,
                                  const HttpRequest& request);
  HttpResponse HandleConsentRevoke(const core::PrincipalId& actor,
                                   const HttpRequest& request);
  HttpResponse HandleConsentList(const core::PrincipalId& actor,
                                 const HttpRequest& request);
  // Transparency endpoints. Checkpoints, consistency proofs, and the
  // service posture are public: they disclose only sizes, roots, and
  // signatures — the whole point is that anyone can verify them.
  // Inclusion proofs carry event contents and disclosure reports are
  // per-patient, so both are session-authenticated with RBAC inside.
  HttpResponse HandleTransparencyStatus();                       // unauth
  HttpResponse HandleTransparencyCheckpoint(const HttpRequest& request);
  HttpResponse HandleTransparencyConsistency(const HttpRequest& request);
  HttpResponse HandleTransparencyProof(const core::PrincipalId& actor,
                                       const HttpRequest& request);
  HttpResponse HandleDisclosures(const core::PrincipalId& actor,
                                 const HttpRequest& request);

  core::ShardedVault* vault_;
  ServerOptions options_;
  obs::MetricsRegistry* metrics_;
  std::unique_ptr<SessionManager> sessions_;
  std::unique_ptr<AdmissionController> admission_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;

  obs::Counter* conns_total_;
  obs::Counter* accepted_;
  obs::Counter* shed_;
  obs::Counter* requests_;
  obs::Gauge* active_;
  /// Per-endpoint latency histograms ("server.req.<route>"), resolved
  /// once at Start so the hot path never takes the registry mutex.
  std::map<std::string, obs::Histogram*> route_hist_;

  std::unique_ptr<WorkerPool> pool_;
  std::unique_ptr<TaskGroup> workers_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  /// Sockets currently being served; Stop() shutdown()s them so
  /// workers blocked in recv return promptly.
  std::mutex active_fds_mu_;
  std::set<int> active_fds_;
};

}  // namespace medvault::server

#endif  // MEDVAULT_SERVER_SERVER_H_
