#ifndef MEDVAULT_CRYPTO_WOTS_H_
#define MEDVAULT_CRYPTO_WOTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace medvault::crypto {

/// Winternitz one-time signatures (WOTS+-style), the building block of the
/// XMSS-style scheme in xmss.h.
///
/// Why hash-based signatures here: HIPAA/OSHA retention reaches 30 years.
/// Archival signatures must stay verifiable for the full retention period,
/// and hash-based schemes rest only on the preimage resistance of SHA-256
/// (and are post-quantum), which is the conservative choice for that
/// horizon. This is a from-scratch, structurally faithful implementation
/// (chained hashing with domain-separated keyed steps); it intentionally
/// simplifies the RFC 8391 bitmask addressing scheme, which changes tags,
/// not structure. See DESIGN.md.
///
/// Parameters: n = 32 (SHA-256), Winternitz w = 16, so 64 message digits +
/// 3 checksum digits = 67 hash chains.
class Wots {
 public:
  static constexpr int kN = 32;        ///< hash output bytes
  static constexpr int kW = 16;        ///< Winternitz parameter
  static constexpr int kLen1 = 64;     ///< message digits (256 / log2(16))
  static constexpr int kLen2 = 3;      ///< checksum digits
  static constexpr int kLen = kLen1 + kLen2;  ///< total chains

  /// A WOTS signature: kLen chain values of kN bytes each.
  using Signature = std::vector<std::string>;

  /// Derives the one-time private key chains for address `leaf_index`
  /// from `secret_seed`, and the chain-step keying from `public_seed`.
  Wots(const Slice& secret_seed, const Slice& public_seed,
       uint32_t leaf_index);

  /// Compressed public key: SHA-256 over the kLen chain tops.
  std::string PublicKey() const;

  /// Signs a 32-byte message digest. A WOTS key must sign at most once;
  /// the XMSS layer enforces that.
  Result<Signature> Sign(const Slice& digest) const;

  /// Recomputes the compressed public key from a signature + digest.
  /// Stateless: needs only the public seed and leaf index.
  static Result<std::string> PublicKeyFromSignature(const Slice& digest,
                                                    const Signature& sig,
                                                    const Slice& public_seed,
                                                    uint32_t leaf_index);

  /// Full verification against a known public key.
  static Status Verify(const Slice& digest, const Signature& sig,
                       const Slice& public_key, const Slice& public_seed,
                       uint32_t leaf_index);

  /// Serializes a signature (kLen * kN bytes).
  static std::string EncodeSignature(const Signature& sig);
  static Result<Signature> DecodeSignature(const Slice& data);

 private:
  /// Applies `steps` chain iterations starting from `value` at position
  /// `start` in chain `chain_index`.
  static std::string Chain(const Slice& public_seed, uint32_t leaf_index,
                           int chain_index, int start, int steps,
                           std::string value);

  /// Message digest -> kLen base-w digits (message + checksum).
  static Result<std::vector<int>> Digits(const Slice& digest);

  std::string public_seed_;
  uint32_t leaf_index_;
  std::vector<std::string> secret_chains_;
};

}  // namespace medvault::crypto

#endif  // MEDVAULT_CRYPTO_WOTS_H_
