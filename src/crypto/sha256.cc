#include "crypto/sha256.h"

#include <cstring>

#include "crypto/cpu_features.h"
#include "crypto/sha256_kernels.h"

namespace medvault::crypto {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

inline uint32_t LoadBe32(const uint8_t* p) {
  uint32_t v;
  memcpy(&v, p, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  return v;
#else
  return __builtin_bswap32(v);
#endif
}

}  // namespace

namespace internal {

void Sha256BlocksScalar(uint32_t state[8], const uint8_t* blocks,
                        size_t nblocks) {
  uint32_t w[64];
  while (nblocks > 0) {
    // Message schedule: whole-word loads + byte swap instead of four
    // per-byte shifts per word.
    for (int i = 0; i < 16; i++) w[i] = LoadBe32(blocks + i * 4);
    for (int i = 16; i < 64; i++) {
      uint32_t s0 =
          Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 =
          Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    // One round, written so eight rounds unroll without the h..a
    // register rotation (each invocation permutes the names instead).
#define MEDVAULT_SHA256_ROUND(a, b, c, d, e, f, g, h, i)                 \
  do {                                                                   \
    uint32_t t1 = (h) + (Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25)) +       \
                  (((e) & (f)) ^ (~(e) & (g))) + kK[i] + w[i];           \
    uint32_t t2 = (Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22)) +             \
                  (((a) & (b)) ^ ((a) & (c)) ^ ((b) & (c)));             \
    (d) += t1;                                                           \
    (h) = t1 + t2;                                                       \
  } while (0)

    for (int i = 0; i < 64; i += 8) {
      MEDVAULT_SHA256_ROUND(a, b, c, d, e, f, g, h, i + 0);
      MEDVAULT_SHA256_ROUND(h, a, b, c, d, e, f, g, i + 1);
      MEDVAULT_SHA256_ROUND(g, h, a, b, c, d, e, f, i + 2);
      MEDVAULT_SHA256_ROUND(f, g, h, a, b, c, d, e, i + 3);
      MEDVAULT_SHA256_ROUND(e, f, g, h, a, b, c, d, i + 4);
      MEDVAULT_SHA256_ROUND(d, e, f, g, h, a, b, c, i + 5);
      MEDVAULT_SHA256_ROUND(c, d, e, f, g, h, a, b, i + 6);
      MEDVAULT_SHA256_ROUND(b, c, d, e, f, g, h, a, i + 7);
    }
#undef MEDVAULT_SHA256_ROUND

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
    blocks += 64;
    nblocks--;
  }
}

namespace {

Sha256BlockFn ResolveSha256Kernel() {
  if (!ForceScalarCrypto()) {
#if defined(__x86_64__) && defined(MEDVAULT_HAVE_SHA_NI)
    const CpuFeatures& f = GetCpuFeatures();
    if (f.sha_ni && f.ssse3 && f.sse41) return &Sha256BlocksShaNi;
#endif
  }
  return &Sha256BlocksScalar;
}

}  // namespace

Sha256BlockFn ActiveSha256Kernel() {
  // Function-local static: resolved once, safe across translation-unit
  // initialization order and threads.
  static const Sha256BlockFn fn = ResolveSha256Kernel();
  return fn;
}

bool Sha256Accelerated() {
  return ActiveSha256Kernel() != &Sha256BlocksScalar;
}

}  // namespace internal

void Sha256::Reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha256::Update(const Slice& data) {
  const auto* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
  if (n == 0) return;
  total_len_ += n;
  const internal::Sha256BlockFn process = internal::ActiveSha256Kernel();

  if (buffer_len_ > 0) {
    size_t take = 64 - buffer_len_;
    if (take > n) take = n;
    memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == 64) {
      process(state_, buffer_, 1);
      buffer_len_ = 0;
    }
  }
  if (n >= 64) {
    // All whole blocks in one kernel call: hardware kernels amortize
    // their state load/store across the run.
    const size_t whole = n / 64;
    process(state_, p, whole);
    p += whole * 64;
    n -= whole * 64;
  }
  if (n > 0) {
    memcpy(buffer_, p, n);
    buffer_len_ = n;
  }
}

std::string Sha256::Finish() {
  uint64_t bit_len = total_len_ * 8;

  // Padding: 0x80, zeros, 8-byte big-endian bit length.
  uint8_t pad[72];
  size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_)
                                      : (120 - buffer_len_);
  pad[0] = 0x80;
  memset(pad + 1, 0, pad_len - 1);
  for (int i = 0; i < 8; i++) {
    pad[pad_len + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(Slice(reinterpret_cast<char*>(pad), pad_len + 8));

  std::string digest(kDigestSize, '\0');
  for (int i = 0; i < 8; i++) {
    digest[i * 4] = static_cast<char>(state_[i] >> 24);
    digest[i * 4 + 1] = static_cast<char>(state_[i] >> 16);
    digest[i * 4 + 2] = static_cast<char>(state_[i] >> 8);
    digest[i * 4 + 3] = static_cast<char>(state_[i]);
  }
  return digest;
}

std::string Sha256Digest(const Slice& data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

std::string Sha256Concat(const Slice& a, const Slice& b) {
  Sha256 h;
  h.Update(a);
  h.Update(b);
  return h.Finish();
}

}  // namespace medvault::crypto
