#include "crypto/cpu_features.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define MEDVAULT_CPU_X86 1
#elif defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#define MEDVAULT_CPU_AARCH64 1
#endif

namespace medvault::crypto {

namespace {

CpuFeatures Detect() {
  CpuFeatures f;
#if defined(MEDVAULT_CPU_X86)
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.ssse3 = (ecx & (1u << 9)) != 0;
    f.sse41 = (ecx & (1u << 19)) != 0;
    f.aes_ni = (ecx & (1u << 25)) != 0;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.sha_ni = (ebx & (1u << 29)) != 0;
  }
#elif defined(MEDVAULT_CPU_AARCH64)
  // HWCAP bits per arch/arm64/include/uapi/asm/hwcap.h.
  unsigned long hwcap = getauxval(AT_HWCAP);
  constexpr unsigned long kHwcapAes = 1ul << 3;
  constexpr unsigned long kHwcapSha2 = 1ul << 6;
  f.aes_ni = (hwcap & kHwcapAes) != 0;
  f.sha_ni = (hwcap & kHwcapSha2) != 0;
#endif
  return f;
}

}  // namespace

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

bool ForceScalarCrypto() {
  static const bool force = [] {
    const char* env = std::getenv("MEDVAULT_FORCE_SCALAR");
    return env != nullptr && env[0] != '\0' && strcmp(env, "0") != 0;
  }();
  return force;
}

}  // namespace medvault::crypto
