// AES block kernels using x86 AES-NI. Compiled as its own translation
// unit with -maes -mssse3; only ever called after runtime CPUID
// detection (see aes.cc dispatch). Key expansion stays in the portable
// code — these kernels consume the byte-array round keys directly.

#if defined(__x86_64__) && defined(MEDVAULT_HAVE_AES_NI)

#include <immintrin.h>

#include "crypto/aes_kernels.h"

namespace medvault::crypto::internal {

namespace {

inline __m128i LoadKey(const uint8_t rk[16]) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk));
}

}  // namespace

void AesNiEncryptBlocks(const uint8_t round_keys[][16], int rounds,
                        const uint8_t* in, uint8_t* out, size_t nblocks) {
  __m128i rk[15];
  for (int r = 0; r <= rounds; r++) rk[r] = LoadKey(round_keys[r]);

  // Four independent blocks per iteration keep the AES unit's pipeline
  // full (aesenc latency ~4 cycles, throughput 1/cycle).
  while (nblocks >= 4) {
    __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
    __m128i b1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16));
    __m128i b2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 32));
    __m128i b3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 48));
    b0 = _mm_xor_si128(b0, rk[0]);
    b1 = _mm_xor_si128(b1, rk[0]);
    b2 = _mm_xor_si128(b2, rk[0]);
    b3 = _mm_xor_si128(b3, rk[0]);
    for (int r = 1; r < rounds; r++) {
      b0 = _mm_aesenc_si128(b0, rk[r]);
      b1 = _mm_aesenc_si128(b1, rk[r]);
      b2 = _mm_aesenc_si128(b2, rk[r]);
      b3 = _mm_aesenc_si128(b3, rk[r]);
    }
    b0 = _mm_aesenclast_si128(b0, rk[rounds]);
    b1 = _mm_aesenclast_si128(b1, rk[rounds]);
    b2 = _mm_aesenclast_si128(b2, rk[rounds]);
    b3 = _mm_aesenclast_si128(b3, rk[rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16), b1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 32), b2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 48), b3);
    in += 64;
    out += 64;
    nblocks -= 4;
  }
  while (nblocks > 0) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
    b = _mm_xor_si128(b, rk[0]);
    for (int r = 1; r < rounds; r++) b = _mm_aesenc_si128(b, rk[r]);
    b = _mm_aesenclast_si128(b, rk[rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
    in += 16;
    out += 16;
    nblocks--;
  }
}

void AesNiDecryptBlock(const uint8_t round_keys[][16], int rounds,
                       const uint8_t in[16], uint8_t out[16]) {
  // Equivalent inverse cipher: aesdec wants InvMixColumns-transformed
  // round keys; transform on the fly (decryption is off the hot path —
  // CTR mode only ever encrypts counter blocks).
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  b = _mm_xor_si128(b, LoadKey(round_keys[rounds]));
  for (int r = rounds - 1; r >= 1; r--) {
    b = _mm_aesdec_si128(b, _mm_aesimc_si128(LoadKey(round_keys[r])));
  }
  b = _mm_aesdeclast_si128(b, LoadKey(round_keys[0]));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
}

}  // namespace medvault::crypto::internal

#endif  // __x86_64__ && MEDVAULT_HAVE_AES_NI
