#ifndef MEDVAULT_CRYPTO_HKDF_H_
#define MEDVAULT_CRYPTO_HKDF_H_

#include <cstddef>
#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace medvault::crypto {

/// HKDF-SHA256 (RFC 5869). Used by the key hierarchy to derive
/// purpose-separated keys (encryption vs MAC vs index blinding) from one
/// secret.
///
/// `length` must be <= 255 * 32.
Result<std::string> HkdfSha256(const Slice& ikm, const Slice& salt,
                               const Slice& info, size_t length);

/// Extract step only: PRK = HMAC(salt, ikm).
std::string HkdfExtract(const Slice& salt, const Slice& ikm);

/// Expand step only.
Result<std::string> HkdfExpand(const Slice& prk, const Slice& info,
                               size_t length);

}  // namespace medvault::crypto

#endif  // MEDVAULT_CRYPTO_HKDF_H_
