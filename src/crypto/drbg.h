#ifndef MEDVAULT_CRYPTO_DRBG_H_
#define MEDVAULT_CRYPTO_DRBG_H_

#include <string>

#include "common/slice.h"

namespace medvault::crypto {

/// HMAC-DRBG over SHA-256 (NIST SP 800-90A, simplified: no personalization
/// security-strength bookkeeping). This is the *only* sanctioned source of
/// key material in MedVault. Deterministic given the seed, which lets the
/// test suite reproduce key schedules exactly.
class HmacDrbg {
 public:
  /// Seeds from entropy (any length; tests pass fixed strings).
  explicit HmacDrbg(const Slice& seed);

  HmacDrbg(const HmacDrbg&) = delete;
  HmacDrbg& operator=(const HmacDrbg&) = delete;

  /// Generates `n` pseudorandom bytes and advances the state.
  std::string Generate(size_t n);

  /// Mixes fresh entropy into the state.
  void Reseed(const Slice& entropy);

 private:
  void Update(const Slice& provided);

  std::string key_;  // K, 32 bytes
  std::string v_;    // V, 32 bytes
};

}  // namespace medvault::crypto

#endif  // MEDVAULT_CRYPTO_DRBG_H_
