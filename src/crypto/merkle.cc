#include "crypto/merkle.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace medvault::crypto {

namespace {

/// Largest power of two strictly less than n (n >= 2).
uint64_t SplitPoint(uint64_t n) {
  uint64_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}

}  // namespace

std::string MerkleTree::HashLeaf(const Slice& data) {
  Sha256 h;
  h.Update(Slice("\x00", 1));
  h.Update(data);
  return h.Finish();
}

std::string MerkleTree::HashNode(const Slice& left, const Slice& right) {
  Sha256 h;
  h.Update(Slice("\x01", 1));
  h.Update(left);
  h.Update(right);
  return h.Finish();
}

std::string MerkleTree::EmptyRoot() { return Sha256Digest(Slice()); }

uint64_t MerkleTree::Append(const Slice& leaf_data) {
  return AppendLeafHash(HashLeaf(leaf_data));
}

uint64_t MerkleTree::AppendLeafHash(std::string leaf_hash) {
  leaf_hashes_.push_back(std::move(leaf_hash));
  if (memoize_) {
    // Complete any power-of-two blocks the new leaf closes: level k
    // gains a node whenever 2^(k+1) consecutive entries are complete.
    uint64_t n = leaf_hashes_.size();
    if (n % 2 == 0) {
      if (memo_.empty()) memo_.emplace_back();
      memo_[0].push_back(
          HashNode(leaf_hashes_[n - 2], leaf_hashes_[n - 1]));
      size_t level = 0;
      while (memo_[level].size() % 2 == 0 &&
             (memo_[level].size() / 2) >
                 (memo_.size() > level + 1 ? memo_[level + 1].size() : 0)) {
        if (memo_.size() == level + 1) memo_.emplace_back();
        size_t m = memo_[level].size();
        memo_[level + 1].push_back(
            HashNode(memo_[level][m - 2], memo_[level][m - 1]));
        level++;
      }
    }
  }
  return leaf_hashes_.size() - 1;
}

std::string MerkleTree::SubtreeRoot(uint64_t begin, uint64_t n) const {
  if (n == 0) return EmptyRoot();
  if (n == 1) return leaf_hashes_[begin];
  if (memoize_ && (n & (n - 1)) == 0 && begin % n == 0) {
    // Complete aligned block: O(1) from the memo if present.
    size_t level = 0;
    uint64_t width = 2;
    while (width < n) {
      width <<= 1;
      level++;
    }
    if (level < memo_.size() && begin / n < memo_[level].size()) {
      return memo_[level][begin / n];
    }
  }
  uint64_t k = SplitPoint(n);
  return HashNode(SubtreeRoot(begin, k), SubtreeRoot(begin + k, n - k));
}

std::string MerkleTree::Root() const { return SubtreeRoot(0, size()); }

Result<std::string> MerkleTree::RootAt(uint64_t n) const {
  if (n > size()) return Status::InvalidArgument("RootAt beyond tree size");
  return SubtreeRoot(0, n);
}

Result<std::string> MerkleTree::LeafHash(uint64_t index) const {
  if (index >= size()) return Status::InvalidArgument("leaf index OOB");
  return leaf_hashes_[index];
}

Result<std::vector<std::string>> MerkleTree::InclusionProof(
    uint64_t index, uint64_t tree_size) const {
  if (tree_size > size() || index >= tree_size) {
    return Status::InvalidArgument("inclusion proof parameters out of range");
  }
  std::vector<std::string> proof;
  // Iterative descent over the subtree [begin, begin+n).
  uint64_t begin = 0, n = tree_size, m = index;
  std::vector<std::string> reversed;
  while (n > 1) {
    uint64_t k = SplitPoint(n);
    if (m < k) {
      reversed.push_back(SubtreeRoot(begin + k, n - k));
      n = k;
    } else {
      reversed.push_back(SubtreeRoot(begin, k));
      begin += k;
      m -= k;
      n -= k;
    }
  }
  proof.assign(reversed.rbegin(), reversed.rend());
  return proof;
}

Result<std::vector<std::string>> MerkleTree::ConsistencyProof(
    uint64_t old_size, uint64_t new_size) const {
  if (new_size > size() || old_size > new_size) {
    return Status::InvalidArgument("consistency proof parameters invalid");
  }
  std::vector<std::string> proof;
  if (old_size == 0 || old_size == new_size) return proof;

  // SUBPROOF(m, D[begin:begin+n], complete_subtree) per RFC 6962 §2.1.2,
  // iterative form collecting entries in reverse.
  std::vector<std::string> reversed;
  uint64_t begin = 0, n = new_size, m = old_size;
  bool complete = true;
  while (true) {
    if (m == n) {
      if (!complete) reversed.push_back(SubtreeRoot(begin, m));
      break;
    }
    uint64_t k = SplitPoint(n);
    if (m <= k) {
      reversed.push_back(SubtreeRoot(begin + k, n - k));
      n = k;
    } else {
      reversed.push_back(SubtreeRoot(begin, k));
      begin += k;
      m -= k;
      n -= k;
      complete = false;
    }
  }
  proof.assign(reversed.rbegin(), reversed.rend());
  return proof;
}

Status MerkleTree::VerifyInclusion(const Slice& leaf_hash, uint64_t index,
                                   uint64_t tree_size,
                                   const std::vector<std::string>& proof,
                                   const Slice& root) {
  if (index >= tree_size) {
    return Status::InvalidArgument("leaf index not below tree size");
  }
  // RFC 9162 §2.1.3.2.
  uint64_t fn = index;
  uint64_t sn = tree_size - 1;
  std::string r = leaf_hash.ToString();
  for (const std::string& p : proof) {
    if (sn == 0) return Status::TamperDetected("inclusion proof too long");
    if ((fn & 1) == 1 || fn == sn) {
      r = HashNode(p, r);
      if ((fn & 1) == 0) {
        while ((fn & 1) == 0 && fn != 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      r = HashNode(r, p);
    }
    fn >>= 1;
    sn >>= 1;
  }
  if (sn != 0) return Status::TamperDetected("inclusion proof too short");
  if (!ConstantTimeEqual(r, root)) {
    return Status::TamperDetected("inclusion proof root mismatch");
  }
  return Status::OK();
}

Status MerkleTree::VerifyConsistency(uint64_t old_size, const Slice& old_root,
                                     uint64_t new_size, const Slice& new_root,
                                     const std::vector<std::string>& proof) {
  // RFC 9162 §2.1.4.2.
  if (old_size > new_size) {
    return Status::InvalidArgument("old size exceeds new size");
  }
  if (old_size == new_size) {
    if (!proof.empty()) {
      return Status::TamperDetected("nonempty proof for equal sizes");
    }
    if (!ConstantTimeEqual(old_root, new_root)) {
      return Status::TamperDetected("equal-size roots differ");
    }
    return Status::OK();
  }
  if (old_size == 0) {
    // Any tree is consistent with the empty tree.
    if (!proof.empty()) {
      return Status::TamperDetected("nonempty proof for empty old tree");
    }
    return Status::OK();
  }

  uint64_t fn = old_size - 1;
  uint64_t sn = new_size - 1;
  while ((fn & 1) == 1) {
    fn >>= 1;
    sn >>= 1;
  }

  size_t i = 0;
  std::string fr, sr;
  if (fn == 0) {
    fr = old_root.ToString();
    sr = old_root.ToString();
  } else {
    if (proof.empty()) {
      return Status::TamperDetected("consistency proof too short");
    }
    fr = proof[0];
    sr = proof[0];
    i = 1;
  }

  for (; i < proof.size(); i++) {
    if (sn == 0) return Status::TamperDetected("consistency proof too long");
    const std::string& p = proof[i];
    if ((fn & 1) == 1 || fn == sn) {
      fr = HashNode(p, fr);
      sr = HashNode(p, sr);
      if ((fn & 1) == 0) {
        while ((fn & 1) == 0 && fn != 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      sr = HashNode(sr, p);
    }
    fn >>= 1;
    sn >>= 1;
  }

  if (sn != 0) return Status::TamperDetected("consistency proof too short");
  if (!ConstantTimeEqual(fr, old_root)) {
    return Status::TamperDetected("consistency proof old-root mismatch");
  }
  if (!ConstantTimeEqual(sr, new_root)) {
    return Status::TamperDetected("consistency proof new-root mismatch");
  }
  return Status::OK();
}

}  // namespace medvault::crypto
