#ifndef MEDVAULT_CRYPTO_CTR_H_
#define MEDVAULT_CRYPTO_CTR_H_

#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "crypto/aes.h"

namespace medvault::crypto {

/// Nonce size used by AES-CTR here: 16 bytes (a full initial counter
/// block; the low 64 bits are incremented big-endian per block).
constexpr size_t kCtrNonceSize = 16;

/// AES-CTR keystream cipher. Encryption and decryption are the same
/// operation. CTR provides *no* integrity — always use through Aead.
class AesCtr {
 public:
  AesCtr() = default;

  /// `key` is 16 or 32 bytes.
  Status Init(const Slice& key);

  /// XORs `input` with the keystream for (nonce, starting block 0).
  /// `nonce` must be kCtrNonceSize bytes and must never repeat per key.
  Result<std::string> Crypt(const Slice& nonce, const Slice& input) const;

 private:
  Aes aes_;
};

}  // namespace medvault::crypto

#endif  // MEDVAULT_CRYPTO_CTR_H_
