#ifndef MEDVAULT_CRYPTO_MERKLE_H_
#define MEDVAULT_CRYPTO_MERKLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace medvault::crypto {

/// Append-only Merkle hash tree over a sequence of leaves, following the
/// RFC 6962 (Certificate Transparency) hashing discipline:
///
///   leaf hash  = SHA-256(0x00 || leaf)
///   node hash  = SHA-256(0x01 || left || right)
///   MTH({})    = SHA-256("")
///
/// Provides logarithmic *inclusion proofs* ("entry i is in the tree with
/// root R") and *consistency proofs* ("the tree with root R2 is an
/// append-only extension of the tree with root R1"). These are what make
/// MedVault's audit trail verifiable by an external auditor and its
/// migrations provably exact copies.
class MerkleTree {
 public:
  /// By default, hashes of complete power-of-two subtrees are memoized
  /// incrementally on append, making Root/RootAt/proof generation
  /// O(log n) instead of O(n) per call. Pass memoize=false to get the
  /// naive recompute-everything behaviour (kept for the ablation bench
  /// that quantifies this design choice — see bench_ablation).
  explicit MerkleTree(bool memoize = true) : memoize_(memoize) {}

  MerkleTree(const MerkleTree&) = default;
  MerkleTree& operator=(const MerkleTree&) = default;

  /// Appends a leaf (raw data; the class applies the 0x00-prefix hash).
  /// Returns the index of the new leaf.
  uint64_t Append(const Slice& leaf_data);

  /// Appends a precomputed leaf hash (32 bytes).
  uint64_t AppendLeafHash(std::string leaf_hash);

  /// Number of leaves.
  uint64_t size() const { return leaf_hashes_.size(); }

  /// Root hash over all leaves (empty-tree root if size()==0).
  std::string Root() const;

  /// Root hash over the first `n` leaves. n <= size().
  Result<std::string> RootAt(uint64_t n) const;

  /// Leaf hash at `index`.
  Result<std::string> LeafHash(uint64_t index) const;

  /// Audit path proving leaf `index` is included in the first `tree_size`
  /// leaves. Verify with VerifyInclusion.
  Result<std::vector<std::string>> InclusionProof(uint64_t index,
                                                  uint64_t tree_size) const;

  /// Proof that the first `old_size` leaves are a prefix of the first
  /// `new_size` leaves. Verify with VerifyConsistency.
  Result<std::vector<std::string>> ConsistencyProof(uint64_t old_size,
                                                    uint64_t new_size) const;

  /// Stateless verification of an inclusion proof.
  /// Returns OK or kTamperDetected.
  static Status VerifyInclusion(const Slice& leaf_hash, uint64_t index,
                                uint64_t tree_size,
                                const std::vector<std::string>& proof,
                                const Slice& root);

  /// Stateless verification of a consistency proof.
  static Status VerifyConsistency(uint64_t old_size, const Slice& old_root,
                                  uint64_t new_size, const Slice& new_root,
                                  const std::vector<std::string>& proof);

  /// SHA-256(0x00 || data).
  static std::string HashLeaf(const Slice& data);
  /// SHA-256(0x01 || left || right).
  static std::string HashNode(const Slice& left, const Slice& right);
  /// Root of the empty tree: SHA-256("").
  static std::string EmptyRoot();

 private:
  /// MTH over leaf_hashes_[begin, begin+n).
  std::string SubtreeRoot(uint64_t begin, uint64_t n) const;

  bool memoize_ = true;
  std::vector<std::string> leaf_hashes_;
  /// memo_[k][i] = MTH over the complete block [i*2^(k+1), (i+1)*2^(k+1)).
  /// Level 0 holds pairs of leaves; leaves themselves live in
  /// leaf_hashes_. Populated incrementally on append when memoize_.
  std::vector<std::vector<std::string>> memo_;
};

}  // namespace medvault::crypto

#endif  // MEDVAULT_CRYPTO_MERKLE_H_
