#include "crypto/hkdf.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace medvault::crypto {

std::string HkdfExtract(const Slice& salt, const Slice& ikm) {
  // RFC 5869: an absent salt is a string of HashLen zeros.
  if (salt.empty()) {
    std::string zeros(kDigestSize, '\0');
    return HmacSha256(zeros, ikm);
  }
  return HmacSha256(salt, ikm);
}

Result<std::string> HkdfExpand(const Slice& prk, const Slice& info,
                               size_t length) {
  if (length > 255 * kDigestSize) {
    return Status::InvalidArgument("HKDF output length too large");
  }
  std::string okm;
  okm.reserve(length);
  std::string t;
  uint8_t counter = 1;
  while (okm.size() < length) {
    std::string block = t;
    block.append(info.data(), info.size());
    block.push_back(static_cast<char>(counter));
    t = HmacSha256(prk, block);
    size_t take = std::min(t.size(), length - okm.size());
    okm.append(t.data(), take);
    counter++;
  }
  return okm;
}

Result<std::string> HkdfSha256(const Slice& ikm, const Slice& salt,
                               const Slice& info, size_t length) {
  std::string prk = HkdfExtract(salt, ikm);
  return HkdfExpand(prk, info, length);
}

}  // namespace medvault::crypto
