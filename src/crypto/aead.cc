#include "crypto/aead.h"

#include "common/coding.h"
#include "crypto/ctr.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace medvault::crypto {

Status Aead::Init(const Slice& key) {
  if (key.size() != kAes256KeySize) {
    return Status::InvalidArgument("AEAD key must be 32 bytes");
  }
  MEDVAULT_ASSIGN_OR_RETURN(std::string okm,
                            HkdfSha256(key, Slice(), "medvault-aead-v1", 64));
  cipher_key_ = okm.substr(0, 32);
  mac_key_ = okm.substr(32, 32);
  initialized_ = true;
  return Status::OK();
}

std::string Aead::ComputeTag(const Slice& nonce, const Slice& ciphertext,
                             const Slice& aad) const {
  std::string mac_input;
  PutFixed64(&mac_input, aad.size());
  mac_input.append(aad.data(), aad.size());
  mac_input.append(nonce.data(), nonce.size());
  mac_input.append(ciphertext.data(), ciphertext.size());
  return HmacSha256(mac_key_, mac_input);
}

Result<std::string> Aead::Seal(const Slice& nonce, const Slice& plaintext,
                               const Slice& aad) const {
  if (!initialized_) return Status::FailedPrecondition("Aead not initialized");
  if (nonce.size() != kCtrNonceSize) {
    return Status::InvalidArgument("AEAD nonce must be 16 bytes");
  }
  AesCtr ctr;
  MEDVAULT_RETURN_IF_ERROR(ctr.Init(cipher_key_));
  MEDVAULT_ASSIGN_OR_RETURN(std::string ciphertext,
                            ctr.Crypt(nonce, plaintext));

  std::string out;
  out.reserve(nonce.size() + ciphertext.size() + kDigestSize);
  out.append(nonce.data(), nonce.size());
  out.append(ciphertext);
  out.append(ComputeTag(nonce, ciphertext, aad));
  return out;
}

Result<std::string> Aead::Open(const Slice& sealed, const Slice& aad) const {
  if (!initialized_) return Status::FailedPrecondition("Aead not initialized");
  if (sealed.size() < kOverhead) {
    return Status::TamperDetected("sealed blob shorter than AEAD overhead");
  }
  Slice nonce(sealed.data(), kCtrNonceSize);
  Slice ciphertext(sealed.data() + kCtrNonceSize,
                   sealed.size() - kOverhead);
  Slice tag(sealed.data() + sealed.size() - kDigestSize, kDigestSize);

  std::string expected = ComputeTag(nonce, ciphertext, aad);
  if (!ConstantTimeEqual(expected, tag)) {
    return Status::TamperDetected("AEAD tag mismatch");
  }
  AesCtr ctr;
  MEDVAULT_RETURN_IF_ERROR(ctr.Init(cipher_key_));
  return ctr.Crypt(nonce, ciphertext);
}

}  // namespace medvault::crypto
