#ifndef MEDVAULT_CRYPTO_HMAC_H_
#define MEDVAULT_CRYPTO_HMAC_H_

#include <string>

#include "common/slice.h"

namespace medvault::crypto {

/// HMAC-SHA256 (RFC 2104). Returns a 32-byte tag.
std::string HmacSha256(const Slice& key, const Slice& message);

/// Constant-time equality of two byte strings (length leak only).
/// Use for all MAC/tag comparisons.
bool ConstantTimeEqual(const Slice& a, const Slice& b);

}  // namespace medvault::crypto

#endif  // MEDVAULT_CRYPTO_HMAC_H_
