#ifndef MEDVAULT_CRYPTO_AES_H_
#define MEDVAULT_CRYPTO_AES_H_

#include <cstddef>
#include <cstdint>

#include "common/result.h"
#include "common/slice.h"

namespace medvault::crypto {

/// AES block size in bytes.
constexpr size_t kAesBlockSize = 16;
/// Key sizes supported.
constexpr size_t kAes128KeySize = 16;
constexpr size_t kAes256KeySize = 32;

/// AES-128/256 block cipher (FIPS 197) built from scratch. The round
/// transform is dispatched once per process: AES-NI kernels on x86-64
/// CPUs that support them, otherwise the table-free byte-oriented
/// scalar implementation (MEDVAULT_FORCE_SCALAR pins the fallback).
/// This class is the raw primitive; use AesCtr / Aead for actual data,
/// never ECB-style direct block calls.
class Aes {
 public:
  Aes() = default;

  Aes(const Aes&) = default;
  Aes& operator=(const Aes&) = default;

  /// Expands a 16- or 32-byte key. Any other length is rejected.
  Status Init(const Slice& key);

  bool initialized() const { return rounds_ != 0; }

  /// Encrypts exactly one 16-byte block, in != out allowed to alias.
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  /// Encrypts `nblocks` consecutive 16-byte blocks (ECB over the span;
  /// callers supply unique blocks, e.g. CTR counter runs). The AES-NI
  /// kernel pipelines four blocks at a time, which is where the CTR /
  /// AEAD throughput comes from.
  void EncryptBlocks(const uint8_t* in, uint8_t* out, size_t nblocks) const;

  /// Decrypts exactly one 16-byte block.
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

 private:
  // Round keys: up to 15 rounds (AES-256) * 16 bytes each, plus initial.
  uint8_t round_keys_[15 + 1][16] = {};
  int rounds_ = 0;  // 10 for AES-128, 14 for AES-256; 0 = uninitialized
};

}  // namespace medvault::crypto

#endif  // MEDVAULT_CRYPTO_AES_H_
