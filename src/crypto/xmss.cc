#include "crypto/xmss.h"

#include "common/coding.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace medvault::crypto {

std::string XmssSignature::Encode() const {
  std::string out;
  PutFixed32(&out, leaf_index);
  PutLengthPrefixed(&out, wots_signature);
  PutVarint32(&out, static_cast<uint32_t>(auth_path.size()));
  for (const std::string& node : auth_path) {
    PutLengthPrefixed(&out, node);
  }
  return out;
}

Result<XmssSignature> XmssSignature::Decode(const Slice& data) {
  Slice in = data;
  XmssSignature sig;
  uint32_t path_len = 0;
  if (!GetFixed32(&in, &sig.leaf_index) ||
      !GetLengthPrefixedString(&in, &sig.wots_signature) ||
      !GetVarint32(&in, &path_len)) {
    return Status::Corruption("malformed XMSS signature");
  }
  if (path_len > 64) {
    return Status::Corruption("XMSS auth path implausibly long");
  }
  sig.auth_path.reserve(path_len);
  for (uint32_t i = 0; i < path_len; i++) {
    std::string node;
    if (!GetLengthPrefixedString(&in, &node)) {
      return Status::Corruption("malformed XMSS auth path");
    }
    sig.auth_path.push_back(std::move(node));
  }
  if (!in.empty()) {
    return Status::Corruption("trailing bytes after XMSS signature");
  }
  return sig;
}

XmssSigner::XmssSigner(const Slice& secret_seed, const Slice& public_seed,
                       int height)
    : secret_seed_(secret_seed.ToString()),
      public_seed_(public_seed.ToString()),
      height_(height) {
  const uint64_t num_leaves = 1ULL << height_;
  leaf_hashes_.reserve(num_leaves);
  for (uint64_t i = 0; i < num_leaves; i++) {
    Wots wots(secret_seed_, public_seed_, static_cast<uint32_t>(i));
    leaf_hashes_.push_back(wots.PublicKey());
  }
  // Build the full binary tree bottom-up.
  nodes_.push_back(leaf_hashes_);
  while (nodes_.back().size() > 1) {
    const auto& below = nodes_.back();
    std::vector<std::string> level;
    level.reserve(below.size() / 2);
    for (size_t i = 0; i < below.size(); i += 2) {
      level.push_back(MerkleTree::HashNode(below[i], below[i + 1]));
    }
    nodes_.push_back(std::move(level));
  }
  root_ = nodes_.back()[0];
}

Result<XmssSignature> XmssSigner::Sign(const Slice& message) {
  if (next_leaf_ >= (1ULL << height_)) {
    return Status::FailedPrecondition("XMSS signer exhausted");
  }
  const auto leaf = static_cast<uint32_t>(next_leaf_++);
  std::string digest = Sha256Digest(message);

  Wots wots(secret_seed_, public_seed_, leaf);
  MEDVAULT_ASSIGN_OR_RETURN(Wots::Signature wsig, wots.Sign(digest));

  XmssSignature sig;
  sig.leaf_index = leaf;
  sig.wots_signature = Wots::EncodeSignature(wsig);
  uint64_t idx = leaf;
  for (int level = 0; level < height_; level++) {
    sig.auth_path.push_back(nodes_[level][idx ^ 1]);
    idx >>= 1;
  }
  return sig;
}

Status XmssSigner::RestoreState(uint64_t next_leaf) {
  if (next_leaf < next_leaf_) {
    return Status::InvalidArgument(
        "XMSS state may not rewind (one-time keys would be reused)");
  }
  if (next_leaf > (1ULL << height_)) {
    return Status::InvalidArgument("XMSS state beyond capacity");
  }
  next_leaf_ = next_leaf;
  return Status::OK();
}

Status XmssSigner::Verify(const Slice& message, const XmssSignature& sig,
                          const Slice& public_key, const Slice& public_seed,
                          int height) {
  if (static_cast<int>(sig.auth_path.size()) != height) {
    return Status::TamperDetected("XMSS auth path has wrong length");
  }
  std::string digest = Sha256Digest(message);
  MEDVAULT_ASSIGN_OR_RETURN(Wots::Signature wsig,
                            Wots::DecodeSignature(sig.wots_signature));
  MEDVAULT_ASSIGN_OR_RETURN(
      std::string node,
      Wots::PublicKeyFromSignature(digest, wsig, public_seed,
                                   sig.leaf_index));
  uint64_t idx = sig.leaf_index;
  for (int level = 0; level < height; level++) {
    if ((idx & 1) == 0) {
      node = MerkleTree::HashNode(node, sig.auth_path[level]);
    } else {
      node = MerkleTree::HashNode(sig.auth_path[level], node);
    }
    idx >>= 1;
  }
  if (!ConstantTimeEqual(node, public_key)) {
    return Status::TamperDetected("XMSS signature does not verify");
  }
  return Status::OK();
}

}  // namespace medvault::crypto
