#ifndef MEDVAULT_CRYPTO_CPU_FEATURES_H_
#define MEDVAULT_CRYPTO_CPU_FEATURES_H_

namespace medvault::crypto {

/// Instruction-set extensions relevant to the crypto hot path, probed
/// once at startup (CPUID on x86-64, getauxval on ARM/AArch64).
struct CpuFeatures {
  bool ssse3 = false;
  bool sse41 = false;
  bool aes_ni = false;   ///< x86 AES-NI or ARMv8 AES
  bool sha_ni = false;   ///< x86 SHA extensions or ARMv8 SHA-2
};

/// Cached runtime detection result.
const CpuFeatures& GetCpuFeatures();

/// True when the MEDVAULT_FORCE_SCALAR environment variable is set to a
/// non-empty value other than "0" — pins every primitive to the scalar
/// fallback for differential testing. Read once at first use.
bool ForceScalarCrypto();

}  // namespace medvault::crypto

#endif  // MEDVAULT_CRYPTO_CPU_FEATURES_H_
