#include "crypto/wots.h"

#include "common/coding.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace medvault::crypto {

namespace {

/// PRF for secret chain derivation: HMAC(secret_seed, leaf || chain).
std::string DeriveChainSecret(const Slice& secret_seed, uint32_t leaf_index,
                              int chain_index) {
  std::string msg = "wots-sk";
  PutFixed32(&msg, leaf_index);
  PutFixed32(&msg, static_cast<uint32_t>(chain_index));
  return HmacSha256(secret_seed, msg);
}

}  // namespace

Wots::Wots(const Slice& secret_seed, const Slice& public_seed,
           uint32_t leaf_index)
    : public_seed_(public_seed.ToString()), leaf_index_(leaf_index) {
  secret_chains_.reserve(kLen);
  for (int i = 0; i < kLen; i++) {
    secret_chains_.push_back(DeriveChainSecret(secret_seed, leaf_index, i));
  }
}

std::string Wots::Chain(const Slice& public_seed, uint32_t leaf_index,
                        int chain_index, int start, int steps,
                        std::string value) {
  for (int j = start; j < start + steps; j++) {
    Sha256 h;
    h.Update("wots-chain");
    h.Update(public_seed);
    std::string addr;
    PutFixed32(&addr, leaf_index);
    PutFixed32(&addr, static_cast<uint32_t>(chain_index));
    PutFixed32(&addr, static_cast<uint32_t>(j));
    h.Update(addr);
    h.Update(value);
    value = h.Finish();
  }
  return value;
}

Result<std::vector<int>> Wots::Digits(const Slice& digest) {
  if (digest.size() != kN) {
    return Status::InvalidArgument("WOTS signs 32-byte digests only");
  }
  std::vector<int> digits;
  digits.reserve(kLen);
  // Message digits: two base-16 digits per byte.
  for (int i = 0; i < kN; i++) {
    auto byte = static_cast<unsigned char>(digest[i]);
    digits.push_back(byte >> 4);
    digits.push_back(byte & 0xf);
  }
  // Checksum: sum of (w-1 - digit), encoded base-w in kLen2 digits.
  int checksum = 0;
  for (int d : digits) checksum += (kW - 1) - d;
  for (int i = kLen2 - 1; i >= 0; i--) {
    digits.push_back((checksum >> (4 * i)) & 0xf);
  }
  return digits;
}

std::string Wots::PublicKey() const {
  Sha256 h;
  h.Update("wots-pk");
  for (int i = 0; i < kLen; i++) {
    h.Update(Chain(public_seed_, leaf_index_, i, 0, kW - 1,
                   secret_chains_[i]));
  }
  return h.Finish();
}

Result<Wots::Signature> Wots::Sign(const Slice& digest) const {
  MEDVAULT_ASSIGN_OR_RETURN(std::vector<int> digits, Digits(digest));
  Signature sig;
  sig.reserve(kLen);
  for (int i = 0; i < kLen; i++) {
    sig.push_back(Chain(public_seed_, leaf_index_, i, 0, digits[i],
                        secret_chains_[i]));
  }
  return sig;
}

Result<std::string> Wots::PublicKeyFromSignature(const Slice& digest,
                                                 const Signature& sig,
                                                 const Slice& public_seed,
                                                 uint32_t leaf_index) {
  if (static_cast<int>(sig.size()) != kLen) {
    return Status::InvalidArgument("WOTS signature has wrong chain count");
  }
  MEDVAULT_ASSIGN_OR_RETURN(std::vector<int> digits, Digits(digest));
  Sha256 h;
  h.Update("wots-pk");
  for (int i = 0; i < kLen; i++) {
    if (sig[i].size() != kN) {
      return Status::InvalidArgument("WOTS signature chain has wrong size");
    }
    h.Update(Chain(public_seed, leaf_index, i, digits[i],
                   (kW - 1) - digits[i], sig[i]));
  }
  return h.Finish();
}

Status Wots::Verify(const Slice& digest, const Signature& sig,
                    const Slice& public_key, const Slice& public_seed,
                    uint32_t leaf_index) {
  MEDVAULT_ASSIGN_OR_RETURN(
      std::string pk,
      PublicKeyFromSignature(digest, sig, public_seed, leaf_index));
  if (!ConstantTimeEqual(pk, public_key)) {
    return Status::TamperDetected("WOTS signature does not verify");
  }
  return Status::OK();
}

std::string Wots::EncodeSignature(const Signature& sig) {
  std::string out;
  out.reserve(sig.size() * kN);
  for (const std::string& chain : sig) out.append(chain);
  return out;
}

Result<Wots::Signature> Wots::DecodeSignature(const Slice& data) {
  if (data.size() != static_cast<size_t>(kLen) * kN) {
    return Status::InvalidArgument("encoded WOTS signature has wrong size");
  }
  Signature sig;
  sig.reserve(kLen);
  for (int i = 0; i < kLen; i++) {
    sig.emplace_back(data.data() + i * kN, kN);
  }
  return sig;
}

}  // namespace medvault::crypto
