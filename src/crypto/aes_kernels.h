#ifndef MEDVAULT_CRYPTO_AES_KERNELS_H_
#define MEDVAULT_CRYPTO_AES_KERNELS_H_

// Internal AES round kernels behind the dispatched public Aes class.
// Exposed so the differential tests and benches can pin a specific
// implementation; application code should use crypto/aes.h.

#include <cstddef>
#include <cstdint>

namespace medvault::crypto::internal {

/// True when the process-wide dispatch selected the AES-NI kernels
/// (honors MEDVAULT_FORCE_SCALAR and CPU detection).
bool AesAccelerated();

#if defined(__x86_64__) && defined(MEDVAULT_HAVE_AES_NI)
/// Encrypts `nblocks` 16-byte blocks with the expanded round keys
/// (`rounds` is 10 for AES-128, 14 for AES-256), four blocks pipelined
/// per iteration. in == out aliasing allowed.
void AesNiEncryptBlocks(const uint8_t round_keys[][16], int rounds,
                        const uint8_t* in, uint8_t* out, size_t nblocks);

/// Decrypts one block via the equivalent inverse cipher (aesimc applied
/// to the encryption round keys on the fly).
void AesNiDecryptBlock(const uint8_t round_keys[][16], int rounds,
                       const uint8_t in[16], uint8_t out[16]);
#endif

}  // namespace medvault::crypto::internal

#endif  // MEDVAULT_CRYPTO_AES_KERNELS_H_
