#include "crypto/drbg.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace medvault::crypto {

HmacDrbg::HmacDrbg(const Slice& seed)
    : key_(kDigestSize, '\0'), v_(kDigestSize, '\x01') {
  Update(seed);
}

void HmacDrbg::Update(const Slice& provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  std::string msg = v_;
  msg.push_back('\0');
  msg.append(provided.data(), provided.size());
  key_ = HmacSha256(key_, msg);
  v_ = HmacSha256(key_, v_);
  if (!provided.empty()) {
    msg = v_;
    msg.push_back('\x01');
    msg.append(provided.data(), provided.size());
    key_ = HmacSha256(key_, msg);
    v_ = HmacSha256(key_, v_);
  }
}

std::string HmacDrbg::Generate(size_t n) {
  std::string out;
  out.reserve(n);
  while (out.size() < n) {
    v_ = HmacSha256(key_, v_);
    size_t take = std::min(v_.size(), n - out.size());
    out.append(v_.data(), take);
  }
  Update(Slice());
  return out;
}

void HmacDrbg::Reseed(const Slice& entropy) { Update(entropy); }

}  // namespace medvault::crypto
