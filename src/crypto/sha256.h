#ifndef MEDVAULT_CRYPTO_SHA256_H_
#define MEDVAULT_CRYPTO_SHA256_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/slice.h"

namespace medvault::crypto {

/// Size in bytes of a SHA-256 digest.
constexpr size_t kDigestSize = 32;

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch.
///
///   Sha256 h;
///   h.Update("abc");
///   std::string digest = h.Finish();   // 32 raw bytes
///
/// Finish() may be called once; the object is then exhausted.
///
/// The block compression is dispatched once per process: a SHA-NI
/// kernel on x86-64 CPUs that support it, otherwise a word-aligned
/// scalar fallback (see crypto/sha256_kernels.h). Set the
/// MEDVAULT_FORCE_SCALAR environment variable to pin the fallback.
class Sha256 {
 public:
  Sha256() { Reset(); }

  Sha256(const Sha256&) = default;
  Sha256& operator=(const Sha256&) = default;

  /// Re-initializes to the empty-message state.
  void Reset();

  /// Absorbs `data`.
  void Update(const Slice& data);

  /// Returns the 32-byte digest of everything absorbed so far.
  std::string Finish();

 private:
  uint32_t state_[8];
  uint64_t total_len_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// One-shot convenience: SHA-256(data).
std::string Sha256Digest(const Slice& data);

/// SHA-256(a || b) — common in Merkle/hash-chain code.
std::string Sha256Concat(const Slice& a, const Slice& b);

}  // namespace medvault::crypto

#endif  // MEDVAULT_CRYPTO_SHA256_H_
