#ifndef MEDVAULT_CRYPTO_AEAD_H_
#define MEDVAULT_CRYPTO_AEAD_H_

#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace medvault::crypto {

/// Authenticated encryption with associated data, composed from the
/// primitives in this library: AES-256-CTR for confidentiality plus
/// HMAC-SHA256 over (aad_len || aad || nonce || ciphertext) in
/// encrypt-then-MAC order — the composition with a standard security
/// proof (Bellare & Namprempre).
///
/// Wire format of Seal() output: nonce (16) || ciphertext || tag (32).
///
/// The 32-byte AEAD key is split via HKDF into independent cipher and MAC
/// keys, so a single key object cannot be misused across roles.
class Aead {
 public:
  /// Total bytes Seal() adds to a plaintext.
  static constexpr size_t kOverhead = 16 + 32;  // nonce + tag

  Aead() = default;

  /// `key` must be 32 bytes of uniform randomness.
  Status Init(const Slice& key);

  /// Encrypts and authenticates. `nonce` must be 16 bytes, unique per key.
  /// `aad` is authenticated but not encrypted (e.g. record metadata).
  Result<std::string> Seal(const Slice& nonce, const Slice& plaintext,
                           const Slice& aad) const;

  /// Verifies and decrypts a Seal() output. Returns kTamperDetected if the
  /// tag does not verify — the caller must treat that as an integrity
  /// breach, not a plain error.
  Result<std::string> Open(const Slice& sealed, const Slice& aad) const;

 private:
  std::string mac_key_;
  std::string cipher_key_;
  bool initialized_ = false;

  std::string ComputeTag(const Slice& nonce, const Slice& ciphertext,
                         const Slice& aad) const;
};

}  // namespace medvault::crypto

#endif  // MEDVAULT_CRYPTO_AEAD_H_
