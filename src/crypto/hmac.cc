#include "crypto/hmac.h"

#include <cstring>

#include "crypto/sha256.h"

namespace medvault::crypto {

std::string HmacSha256(const Slice& key, const Slice& message) {
  constexpr size_t kBlockSize = 64;

  // Keys longer than the block size are hashed first.
  std::string key_block;
  if (key.size() > kBlockSize) {
    key_block = Sha256Digest(key);
  } else {
    key_block = key.ToString();
  }
  key_block.resize(kBlockSize, '\0');

  std::string ipad(kBlockSize, '\0');
  std::string opad(kBlockSize, '\0');
  for (size_t i = 0; i < kBlockSize; i++) {
    ipad[i] = static_cast<char>(key_block[i] ^ 0x36);
    opad[i] = static_cast<char>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.Update(ipad);
  inner.Update(message);
  std::string inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  return outer.Finish();
}

bool ConstantTimeEqual(const Slice& a, const Slice& b) {
  if (a.size() != b.size()) return false;
  unsigned char diff = 0;
  for (size_t i = 0; i < a.size(); i++) {
    diff |= static_cast<unsigned char>(a[i]) ^ static_cast<unsigned char>(b[i]);
  }
  return diff == 0;
}

}  // namespace medvault::crypto
