#ifndef MEDVAULT_CRYPTO_SHA256_KERNELS_H_
#define MEDVAULT_CRYPTO_SHA256_KERNELS_H_

// Internal SHA-256 compression kernels behind the dispatched public
// Sha256 class. Exposed so the differential tests and benches can pin a
// specific implementation; application code should use crypto/sha256.h.

#include <cstddef>
#include <cstdint>

namespace medvault::crypto::internal {

/// Compresses `nblocks` consecutive 64-byte blocks into `state`.
using Sha256BlockFn = void (*)(uint32_t state[8], const uint8_t* blocks,
                               size_t nblocks);

/// Portable fallback: word-aligned loads (memcpy + bswap), unrolled
/// rounds. Correct on every target.
void Sha256BlocksScalar(uint32_t state[8], const uint8_t* blocks,
                        size_t nblocks);

#if defined(__x86_64__) && defined(MEDVAULT_HAVE_SHA_NI)
/// SHA-NI kernel (requires SHA + SSSE3 + SSE4.1 at runtime).
void Sha256BlocksShaNi(uint32_t state[8], const uint8_t* blocks,
                       size_t nblocks);
#endif

/// The kernel the process-wide dispatch selected (honors
/// MEDVAULT_FORCE_SCALAR and CPU detection).
Sha256BlockFn ActiveSha256Kernel();

/// True when ActiveSha256Kernel() is a hardware-accelerated kernel.
bool Sha256Accelerated();

}  // namespace medvault::crypto::internal

#endif  // MEDVAULT_CRYPTO_SHA256_KERNELS_H_
