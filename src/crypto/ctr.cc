#include "crypto/ctr.h"

#include <algorithm>
#include <cstring>

namespace medvault::crypto {

namespace {

/// Counter blocks generated (and encrypted) per kernel call: enough for
/// the AES-NI kernel to pipeline, small enough to stay on the stack.
constexpr size_t kCtrBatchBlocks = 64;

inline void XorInto(char* out, const char* in, const uint8_t* keystream,
                    size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t a, b;
    memcpy(&a, in + i, 8);
    memcpy(&b, keystream + i, 8);
    a ^= b;
    memcpy(out + i, &a, 8);
  }
  for (; i < n; i++) {
    out[i] = static_cast<char>(in[i] ^ keystream[i]);
  }
}

}  // namespace

Status AesCtr::Init(const Slice& key) { return aes_.Init(key); }

Result<std::string> AesCtr::Crypt(const Slice& nonce,
                                  const Slice& input) const {
  if (!aes_.initialized()) {
    return Status::FailedPrecondition("AesCtr not initialized");
  }
  if (nonce.size() != kCtrNonceSize) {
    return Status::InvalidArgument("CTR nonce must be 16 bytes");
  }

  uint8_t counter[16];
  memcpy(counter, nonce.data(), 16);

  std::string out(input.size(), '\0');
  uint8_t counters[kCtrBatchBlocks * 16];
  uint8_t keystream[kCtrBatchBlocks * 16];
  size_t off = 0;
  while (off < input.size()) {
    const size_t remaining = input.size() - off;
    const size_t blocks =
        std::min(kCtrBatchBlocks, (remaining + 15) / 16);
    for (size_t b = 0; b < blocks; b++) {
      memcpy(counters + b * 16, counter, 16);
      // Increment low 64 bits big-endian.
      for (int i = 15; i >= 8; i--) {
        if (++counter[i] != 0) break;
      }
    }
    aes_.EncryptBlocks(counters, keystream, blocks);
    const size_t n = std::min(blocks * 16, remaining);
    XorInto(out.data() + off, input.data() + off, keystream, n);
    off += n;
  }
  return out;
}

}  // namespace medvault::crypto
