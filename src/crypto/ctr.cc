#include "crypto/ctr.h"

#include <cstring>

namespace medvault::crypto {

Status AesCtr::Init(const Slice& key) { return aes_.Init(key); }

Result<std::string> AesCtr::Crypt(const Slice& nonce,
                                  const Slice& input) const {
  if (!aes_.initialized()) {
    return Status::FailedPrecondition("AesCtr not initialized");
  }
  if (nonce.size() != kCtrNonceSize) {
    return Status::InvalidArgument("CTR nonce must be 16 bytes");
  }

  uint8_t counter[16];
  memcpy(counter, nonce.data(), 16);

  std::string out(input.size(), '\0');
  uint8_t keystream[16];
  for (size_t off = 0; off < input.size(); off += 16) {
    aes_.EncryptBlock(counter, keystream);
    size_t n = std::min<size_t>(16, input.size() - off);
    for (size_t i = 0; i < n; i++) {
      out[off + i] = static_cast<char>(input[off + i] ^ keystream[i]);
    }
    // Increment low 64 bits big-endian.
    for (int i = 15; i >= 8; i--) {
      if (++counter[i] != 0) break;
    }
  }
  return out;
}

}  // namespace medvault::crypto
