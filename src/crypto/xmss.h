#ifndef MEDVAULT_CRYPTO_XMSS_H_
#define MEDVAULT_CRYPTO_XMSS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "crypto/wots.h"

namespace medvault::crypto {

/// A many-time signature built from WOTS one-time keys under a Merkle
/// tree (XMSS-style, simplified addressing — see wots.h). A signer of
/// height h can produce 2^h signatures; MedVault uses these for audit
/// checkpoints, migration receipts, and disposal certificates, where the
/// 30-year verification horizon argues for hash-based security.
///
/// The signer is *stateful*: each signature consumes one leaf. State loss
/// or duplication is a security failure, so SignaturesRemaining() should
/// be monitored and the state persisted by the caller (Vault stores it in
/// its manifest).
struct XmssSignature {
  uint32_t leaf_index = 0;
  std::string wots_signature;           ///< EncodeSignature output
  std::vector<std::string> auth_path;   ///< bottom-up sibling hashes

  /// Serialization for embedding in receipts/certificates.
  std::string Encode() const;
  static Result<XmssSignature> Decode(const Slice& data);
};

class XmssSigner {
 public:
  /// Builds a signer with 2^height one-time keys derived from
  /// `secret_seed` / `public_seed`. Key generation hashes all leaves, so
  /// cost grows as 2^height; heights 4-10 are practical here.
  XmssSigner(const Slice& secret_seed, const Slice& public_seed, int height);

  XmssSigner(const XmssSigner&) = delete;
  XmssSigner& operator=(const XmssSigner&) = delete;
  XmssSigner(XmssSigner&&) = default;
  XmssSigner& operator=(XmssSigner&&) = default;

  /// The long-lived public key (Merkle root over WOTS public keys).
  const std::string& public_key() const { return root_; }
  const std::string& public_seed() const { return public_seed_; }
  int height() const { return height_; }

  uint64_t SignaturesUsed() const { return next_leaf_; }
  uint64_t SignaturesRemaining() const {
    return (1ULL << height_) - next_leaf_;
  }

  /// Signs an arbitrary message (hashed internally). Consumes one leaf;
  /// fails with kFailedPrecondition when exhausted.
  Result<XmssSignature> Sign(const Slice& message);

  /// Restores signer state (e.g. after reload). `next_leaf` must not
  /// rewind below the current position.
  Status RestoreState(uint64_t next_leaf);

  /// Stateless verification against a public key.
  static Status Verify(const Slice& message, const XmssSignature& sig,
                       const Slice& public_key, const Slice& public_seed,
                       int height);

 private:
  std::string secret_seed_;
  std::string public_seed_;
  int height_;
  uint64_t next_leaf_ = 0;
  std::vector<std::string> leaf_hashes_;  ///< WOTS pk per leaf
  /// nodes_[level][i]: hash of subtree; level 0 = leaves.
  std::vector<std::vector<std::string>> nodes_;
  std::string root_;
};

}  // namespace medvault::crypto

#endif  // MEDVAULT_CRYPTO_XMSS_H_
