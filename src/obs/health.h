#ifndef MEDVAULT_OBS_HEALTH_H_
#define MEDVAULT_OBS_HEALTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/record_cache.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "storage/instrumented_env.h"

namespace medvault::core {
class Vault;
class ShardedVault;
class ShardedReplicationSource;
class ShardedReplicaApplier;
class ShardedTransparencyService;
}  // namespace medvault::core

namespace medvault::obs {

/// Liveness/health facts of one vault shard — the operational numbers a
/// records manager watches over a 30-year horizon: how much is stored,
/// how much disposal work is overdue (retention backlog), and how many
/// one-time XMSS leaves the shard's signer has left before checkpoints
/// and disposal certificates stop being issuable.
struct ShardHealth {
  uint32_t shard = 0;
  uint64_t records = 0;            ///< live (non-disposed) records
  uint64_t disposed = 0;           ///< crypto-shredded tombstones
  uint64_t legal_holds = 0;        ///< live records under litigation hold
  uint64_t retention_backlog = 0;  ///< expired, not held, awaiting disposal
  uint64_t signer_leaves_used = 0;
  uint64_t signer_leaves_remaining = 0;
  /// Shard is offline after a degraded open (media damage); counts
  /// above are zero because the shard cannot be asked.
  bool quarantined = false;
  std::string quarantine_reason;
  /// Most recent Vault::Scrub on this shard (emitted only when one ran).
  bool has_last_scrub = false;
  int64_t last_scrub_at = 0;
  uint64_t last_scrub_corrupt_files = 0;
  uint64_t last_scrub_orphan_files = 0;
  bool last_scrub_clean = false;
};

/// One JSON-dumpable snapshot of everything the observability layer
/// knows: per-op latency histograms and counters (MetricsRegistry),
/// storage-layer I/O tallies (InstrumentedEnv), read-cache efficacy,
/// and per-shard vault health. Purely diagnostic — built from relaxed
/// atomic reads, no integrity claims, never written to the audit log.
struct HealthReport {
  /// Snapshot time in microseconds since epoch, from the vault's Clock
  /// (callers without a vault pass their own; tests use ManualClock so
  /// golden dumps are deterministic).
  int64_t generated_at = 0;

  MetricsRegistry::RegistrySnapshot metrics;

  bool has_env_io = false;
  storage::IoStatsSnapshot env_io;

  bool has_cache = false;
  core::RecordCache::Stats cache;
  uint64_t cache_entries = 0;
  uint64_t cache_charge_bytes = 0;
  uint64_t cache_capacity_bytes = 0;

  std::vector<ShardHealth> shards;

  /// Replication posture. Emitted only when this process runs a
  /// replication endpoint (same conditional convention as env_io/cache,
  /// so golden dumps of unreplicated deployments are unchanged).
  bool has_repl = false;
  bool repl_primary = false;          ///< ships batches (vs applies them)
  uint64_t repl_shipped_batches = 0;  ///< source side
  uint64_t repl_applied_batches = 0;  ///< applier side
  uint64_t repl_lag_bytes = 0;        ///< backlog at last cut/apply
  uint64_t repl_quarantined_shards = 0;

  /// Audit-transparency posture. Emitted only when this process runs a
  /// transparency service (same conditional convention as repl).
  bool has_transparency = false;
  uint64_t transparency_checkpoints = 0;  ///< published since start
  uint64_t transparency_cosigns = 0;
  uint64_t transparency_refusals = 0;     ///< witness refusals (tamper!)
  uint64_t transparency_witnesses = 0;
  uint64_t transparency_tampered_witnesses = 0;
  uint64_t transparency_inclusion_proofs = 0;
  uint64_t transparency_consistency_proofs = 0;
  uint64_t transparency_cache_hits = 0;
  uint64_t transparency_cache_misses = 0;
  uint64_t transparency_latest_sizes_sum = 0;  ///< sum over shards

  /// Patient-driven-sharing posture. Emitted only when the vault has
  /// seen any consent activity (same conditional convention as repl),
  /// so deployments without delegated sharing dump unchanged reports.
  bool has_consent = false;
  uint64_t consent_active = 0;     ///< live, unexpired grants right now
  uint64_t consent_granted = 0;    ///< grants issued since start
  uint64_t consent_revoked = 0;    ///< revocations (user + crypto-shred)
  uint64_t consent_exercised = 0;  ///< reads performed under a grant

  /// Deterministic JSON (sorted keys, integers only). Histograms are
  /// emitted as count/sum/max, p50/p90/p99 bucket upper bounds, and the
  /// non-empty buckets as [upper_bound, count] pairs.
  json::Value ToJson() const;
  std::string Dump() const { return ToJson().Dump(); }

  /// Group-commit Commit() calls in the metrics snapshot — the
  /// denominator of env_io.fsyncs_per_op_milli. Prefers the cross-shard
  /// committer's count when it has run: its waves drive the per-shard
  /// committers, so taking the shard count too would double-count.
  uint64_t CommitOps() const;
};

/// Health of one standalone vault: its registry's metrics, its cache
/// (when configured), and a single ShardHealth entry (shard 0).
/// Pass `io` when the vault's Env is wrapped in an InstrumentedEnv.
HealthReport CollectHealth(core::Vault& vault,
                           const storage::IoStats* io = nullptr);

/// Health of a sharded vault: shared-registry metrics, the shared read
/// cache, and one ShardHealth per shard.
HealthReport CollectHealth(core::ShardedVault& vault,
                           const storage::IoStats* io = nullptr);

/// Process-level health with no vault at hand (bench binaries after the
/// vaults under test have been destroyed): whatever accumulated in
/// `registry` (default: the process-wide registry) plus optional I/O
/// stats. `generated_at` is supplied by the caller.
HealthReport CollectProcessHealth(int64_t generated_at,
                                  MetricsRegistry* registry = nullptr,
                                  const storage::IoStats* io = nullptr);

/// Fills the conditional `repl` section from whichever replication
/// endpoints this process runs. Either pointer may be null; when both
/// are, the report is left untouched.
void FillReplicationHealth(HealthReport* report,
                           const core::ShardedReplicationSource* source,
                           const core::ShardedReplicaApplier* applier);

/// Fills the conditional `transparency` section. Null leaves the report
/// untouched.
void FillTransparencyHealth(HealthReport* report,
                            const core::ShardedTransparencyService* service);

/// Writes `report.Dump()` plus a trailing newline to `path` via `env`.
Status WriteHealthFile(storage::Env* env, const HealthReport& report,
                       const std::string& path);

/// Process-wide I/O tally for bench/tool Envs that want their traffic
/// in CollectProcessHealth reports. Never destroyed.
storage::IoStats* ProcessIoStats();

}  // namespace medvault::obs

#endif  // MEDVAULT_OBS_HEALTH_H_
