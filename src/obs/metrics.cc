#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace medvault::obs {

uint64_t Histogram::Snapshot::PercentileUpperBound(double p) const {
  if (count == 0) return 0;
  if (p <= 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the percentile observation, 1-based, rounded up.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count) / 100.0);
  if (rank * 100 < static_cast<uint64_t>(p * static_cast<double>(count))) {
    rank++;
  }
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; i++) {
    seen += buckets[i];
    if (seen >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumBuckets; i++) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return instance;
}

namespace {

/// Shared lookup for the three metric maps: find-or-create with the
/// cardinality cap routing excess names to the "_overflow" series.
template <typename T>
T* GetSeries(std::map<std::string, std::unique_ptr<T>>* series,
             const std::string& name, Counter* dropped) {
  auto it = series->find(name);
  if (it != series->end()) return it->second.get();
  if (series->size() >= MetricsRegistry::kMaxSeriesPerKind &&
      name != "_overflow") {
    dropped->Increment();
    auto overflow = series->find("_overflow");
    if (overflow == series->end()) {
      overflow = series->emplace("_overflow", std::make_unique<T>()).first;
    }
    return overflow->second.get();
  }
  auto inserted = series->emplace(name, std::make_unique<T>());
  return inserted.first->second.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetSeries(&counters_, name, &series_dropped_);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetSeries(&gauges_, name, &series_dropped_);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetSeries(&histograms_, name, &series_dropped_);
}

MetricsRegistry::RegistrySnapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->TakeSnapshot();
  }
  snap.series_dropped = series_dropped_.Value();
  snap.slow_ops = slow_ops_.Value();
  return snap;
}

void MetricsRegistry::SetSlowOpSink(std::function<void(const SlowOp&)> sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  slow_op_sink_ = std::move(sink);
}

void MetricsRegistry::MaybeTraceSlowOp(const char* op, uint64_t micros) {
  uint64_t threshold = slow_op_threshold_micros_.load(std::memory_order_relaxed);
  if (threshold == 0 || micros < threshold) return;
  slow_ops_.Increment();
  SlowOp slow{op, micros, threshold};
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (slow_op_sink_) {
    slow_op_sink_(slow);
    return;
  }
  // Default sink: one structured line on stderr. This is operator
  // telemetry, not evidence — it deliberately does NOT go through the
  // tamper-evident audit log (see DESIGN.md, Observability).
  fprintf(stderr,
          "{\"slow_op\":{\"op\":\"%s\",\"micros\":%" PRIu64
          ",\"threshold_micros\":%" PRIu64 "}}\n",
          slow.op.c_str(), slow.micros, slow.threshold_micros);
}

VaultOpMetrics VaultOpMetrics::For(MetricsRegistry* registry,
                                   const std::string& prefix) {
  VaultOpMetrics m;
  m.create = registry->GetHistogram(prefix + ".create");
  m.batch_ingest = registry->GetHistogram(prefix + ".batch_ingest");
  m.read = registry->GetHistogram(prefix + ".read");
  m.correct = registry->GetHistogram(prefix + ".correct");
  m.dispose = registry->GetHistogram(prefix + ".dispose");
  m.search = registry->GetHistogram(prefix + ".search");
  m.verify = registry->GetHistogram(prefix + ".verify");
  m.migrate = registry->GetHistogram(prefix + ".migrate");
  m.recover = registry->GetHistogram(prefix + ".recover");
  m.sync = registry->GetHistogram(prefix + ".sync");
  return m;
}

}  // namespace medvault::obs
