#include "obs/health.h"

#include "core/replication.h"
#include "core/sharded_vault.h"
#include "core/transparency.h"
#include "core/vault.h"

namespace medvault::obs {

namespace {

json::Value HistogramToJson(const Histogram::Snapshot& h) {
  json::Value::Object out;
  out["count"] = json::Value(h.count);
  out["sum"] = json::Value(h.sum);
  out["max"] = json::Value(h.max);
  out["p50"] = json::Value(h.PercentileUpperBound(50));
  out["p90"] = json::Value(h.PercentileUpperBound(90));
  out["p99"] = json::Value(h.PercentileUpperBound(99));
  json::Value::Array buckets;
  for (size_t i = 0; i < Histogram::kNumBuckets; i++) {
    if (h.buckets[i] == 0) continue;
    json::Value::Array pair;
    pair.push_back(json::Value(Histogram::BucketUpperBound(i)));
    pair.push_back(json::Value(h.buckets[i]));
    buckets.push_back(json::Value(std::move(pair)));
  }
  out["buckets"] = json::Value(std::move(buckets));
  return json::Value(std::move(out));
}

json::Value ShardToJson(const ShardHealth& s) {
  json::Value::Object out;
  out["shard"] = json::Value(static_cast<uint64_t>(s.shard));
  out["records"] = json::Value(s.records);
  out["disposed"] = json::Value(s.disposed);
  out["legal_holds"] = json::Value(s.legal_holds);
  out["retention_backlog"] = json::Value(s.retention_backlog);
  out["signer_leaves_used"] = json::Value(s.signer_leaves_used);
  out["signer_leaves_remaining"] = json::Value(s.signer_leaves_remaining);
  // Media-fault fields are emitted only when set, so healthy reports —
  // and their golden-JSON tests — are unchanged.
  if (s.quarantined) {
    out["quarantined"] = json::Value(uint64_t{1});
    out["quarantine_reason"] = json::Value(s.quarantine_reason);
  }
  if (s.has_last_scrub) {
    json::Value::Object scrub;
    scrub["at"] = json::Value(s.last_scrub_at);
    scrub["corrupt_files"] = json::Value(s.last_scrub_corrupt_files);
    scrub["orphan_files"] = json::Value(s.last_scrub_orphan_files);
    scrub["clean"] = json::Value(s.last_scrub_clean ? uint64_t{1} : uint64_t{0});
    out["last_scrub"] = json::Value(std::move(scrub));
  }
  return json::Value(std::move(out));
}

ShardHealth FromVaultStats(uint32_t shard_index, const core::Vault& v) {
  ShardHealth s;
  const core::Vault::HealthStats stats = v.CollectHealthStats();
  s.shard = shard_index;
  s.records = stats.records;
  s.disposed = stats.disposed;
  s.legal_holds = stats.legal_holds;
  s.retention_backlog = stats.retention_backlog;
  s.signer_leaves_used = stats.signer_leaves_used;
  s.signer_leaves_remaining = stats.signer_leaves_remaining;
  const core::Vault::ScrubStats scrub = v.LastScrub();
  if (scrub.ran) {
    s.has_last_scrub = true;
    s.last_scrub_at = scrub.at;
    s.last_scrub_corrupt_files = scrub.corrupt_files;
    s.last_scrub_orphan_files = scrub.orphan_files;
    s.last_scrub_clean = scrub.clean;
  }
  return s;
}

void FillCache(HealthReport* report, const core::RecordCache* cache) {
  if (cache == nullptr) return;
  report->has_cache = true;
  report->cache = cache->stats();
  report->cache_entries = cache->entry_count();
  report->cache_charge_bytes = cache->charge_bytes();
  report->cache_capacity_bytes = cache->capacity_bytes();
}

void FillConsent(HealthReport* report, uint64_t active) {
  auto counter = [&](const char* name) -> uint64_t {
    auto it = report->metrics.counters.find(name);
    return it == report->metrics.counters.end() ? 0 : it->second;
  };
  const uint64_t granted = counter("consent.granted");
  const uint64_t revoked = counter("consent.revoked");
  const uint64_t exercised = counter("consent.exercised");
  // Conditional like repl/transparency: a vault that never saw a
  // consent grant keeps a byte-identical report (and golden dumps).
  if (active == 0 && granted == 0 && revoked == 0 && exercised == 0) return;
  report->has_consent = true;
  report->consent_active = active;
  report->consent_granted = granted;
  report->consent_revoked = revoked;
  report->consent_exercised = exercised;
}

}  // namespace

uint64_t HealthReport::CommitOps() const {
  auto it = metrics.counters.find("commit.window.sharded.ops");
  if (it != metrics.counters.end() && it->second > 0) return it->second;
  it = metrics.counters.find("commit.window.ops");
  return it != metrics.counters.end() ? it->second : 0;
}

json::Value HealthReport::ToJson() const {
  json::Value::Object out;
  out["generated_at"] = json::Value(generated_at);

  json::Value::Object ops;
  for (const auto& [name, hist] : metrics.histograms) {
    ops[name] = HistogramToJson(hist);
  }
  out["ops"] = json::Value(std::move(ops));

  json::Value::Object counters;
  for (const auto& [name, value] : metrics.counters) {
    counters[name] = json::Value(value);
  }
  out["counters"] = json::Value(std::move(counters));

  json::Value::Object gauges;
  for (const auto& [name, value] : metrics.gauges) {
    gauges[name] = json::Value(value);
  }
  out["gauges"] = json::Value(std::move(gauges));

  out["series_dropped"] = json::Value(metrics.series_dropped);
  out["slow_ops"] = json::Value(metrics.slow_ops);

  if (has_env_io) {
    json::Value::Object io;
    io["reads"] = json::Value(env_io.reads);
    io["read_bytes"] = json::Value(env_io.read_bytes);
    io["writes"] = json::Value(env_io.writes);
    io["write_bytes"] = json::Value(env_io.write_bytes);
    io["syncs"] = json::Value(env_io.syncs);
    io["flushes"] = json::Value(env_io.flushes);
    io["file_opens"] = json::Value(env_io.file_opens);
    io["deletes"] = json::Value(env_io.deletes);
    io["renames"] = json::Value(env_io.renames);
    // Batched I/O and the fsync/op ratio appear only when the batched
    // path has actually run, so golden dumps of unbatched workloads
    // (and pre-existing consumers) see an unchanged object — the same
    // conditional-field convention as `quarantined`/`last_scrub`.
    if (env_io.batched_syncs > 0) {
      io["batched_syncs"] = json::Value(env_io.batched_syncs);
    }
    if (env_io.batched_writes > 0) {
      io["batched_writes"] = json::Value(env_io.batched_writes);
    }
    const uint64_t commit_ops = CommitOps();
    if (commit_ops > 0) {
      // Integer-milli fixed point keeps the report deterministic (no
      // float formatting). 1000 = one fsync per committed op; group
      // commit drives this toward flat as batch/window size grows.
      io["fsyncs_per_op_milli"] =
          json::Value(env_io.syncs * 1000 / commit_ops);
    }
    out["env_io"] = json::Value(std::move(io));
  }

  if (has_cache) {
    json::Value::Object c;
    c["hits"] = json::Value(cache.hits);
    c["misses"] = json::Value(cache.misses);
    c["bypasses"] = json::Value(cache.bypasses);
    c["evictions"] = json::Value(cache.evictions);
    c["rejections"] = json::Value(cache.rejections);
    c["purges"] = json::Value(cache.purges);
    c["entries"] = json::Value(cache_entries);
    c["charge_bytes"] = json::Value(cache_charge_bytes);
    c["capacity_bytes"] = json::Value(cache_capacity_bytes);
    out["cache"] = json::Value(std::move(c));
  }

  if (has_repl) {
    json::Value::Object repl;
    repl["primary"] = json::Value(repl_primary ? uint64_t{1} : uint64_t{0});
    repl["shipped_batches"] = json::Value(repl_shipped_batches);
    repl["applied_batches"] = json::Value(repl_applied_batches);
    repl["lag_bytes"] = json::Value(repl_lag_bytes);
    repl["quarantined_shards"] = json::Value(repl_quarantined_shards);
    out["repl"] = json::Value(std::move(repl));
  }

  if (has_consent) {
    json::Value::Object c;
    c["active"] = json::Value(consent_active);
    c["granted"] = json::Value(consent_granted);
    c["revoked"] = json::Value(consent_revoked);
    c["exercised"] = json::Value(consent_exercised);
    out["consent"] = json::Value(std::move(c));
  }

  if (has_transparency) {
    json::Value::Object t;
    t["checkpoints"] = json::Value(transparency_checkpoints);
    t["cosigns"] = json::Value(transparency_cosigns);
    t["refusals"] = json::Value(transparency_refusals);
    t["witnesses"] = json::Value(transparency_witnesses);
    t["tampered_witnesses"] = json::Value(transparency_tampered_witnesses);
    t["inclusion_proofs"] = json::Value(transparency_inclusion_proofs);
    t["consistency_proofs"] = json::Value(transparency_consistency_proofs);
    t["cache_hits"] = json::Value(transparency_cache_hits);
    t["cache_misses"] = json::Value(transparency_cache_misses);
    t["latest_sizes_sum"] = json::Value(transparency_latest_sizes_sum);
    out["transparency"] = json::Value(std::move(t));
  }

  json::Value::Array shard_array;
  for (const ShardHealth& s : shards) {
    shard_array.push_back(ShardToJson(s));
  }
  out["shards"] = json::Value(std::move(shard_array));

  return json::Value(std::move(out));
}

HealthReport CollectHealth(core::Vault& vault, const storage::IoStats* io) {
  HealthReport report;
  report.generated_at = vault.Now();
  if (vault.metrics_registry() != nullptr) {
    report.metrics = vault.metrics_registry()->TakeSnapshot();
  }
  if (io != nullptr) {
    report.has_env_io = true;
    report.env_io = io->TakeSnapshot();
  }
  FillCache(&report, vault.options().cache);
  FillConsent(&report, vault.ActiveConsentCount());
  report.shards.push_back(FromVaultStats(0, vault));
  return report;
}

HealthReport CollectHealth(core::ShardedVault& vault,
                           const storage::IoStats* io) {
  HealthReport report;
  // Wrapper-level clock/registry: with degraded opens, shard 0 itself
  // may be quarantined (null), so nothing here may dereference a shard.
  report.generated_at = vault.Now();
  if (vault.metrics_registry() != nullptr) {
    report.metrics = vault.metrics_registry()->TakeSnapshot();
  }
  if (io != nullptr) {
    report.has_env_io = true;
    report.env_io = io->TakeSnapshot();
  }
  FillCache(&report, vault.cache());
  FillConsent(&report, vault.ActiveConsentCount());
  for (uint32_t k = 0; k < vault.num_shards(); k++) {
    const core::Vault* s = vault.shard(k);
    if (s == nullptr) {
      ShardHealth q;
      q.shard = k;
      q.quarantined = true;
      q.quarantine_reason = vault.QuarantineReason(k);
      report.shards.push_back(std::move(q));
      continue;
    }
    report.shards.push_back(FromVaultStats(k, *s));
  }
  return report;
}

HealthReport CollectProcessHealth(int64_t generated_at,
                                  MetricsRegistry* registry,
                                  const storage::IoStats* io) {
  HealthReport report;
  report.generated_at = generated_at;
  if (registry == nullptr) registry = MetricsRegistry::Default();
  report.metrics = registry->TakeSnapshot();
  if (io != nullptr) {
    report.has_env_io = true;
    report.env_io = io->TakeSnapshot();
  }
  return report;
}

void FillReplicationHealth(HealthReport* report,
                           const core::ShardedReplicationSource* source,
                           const core::ShardedReplicaApplier* applier) {
  if (source == nullptr && applier == nullptr) return;
  report->has_repl = true;
  report->repl_primary = source != nullptr;
  if (source != nullptr) {
    report->repl_shipped_batches = source->batches_shipped();
    report->repl_lag_bytes = source->lag_bytes();
  }
  if (applier != nullptr) {
    report->repl_applied_batches = applier->applied_batches();
    report->repl_lag_bytes = applier->lag_bytes();
    report->repl_quarantined_shards = applier->quarantined_shards();
  }
}

void FillTransparencyHealth(HealthReport* report,
                            const core::ShardedTransparencyService* service) {
  if (service == nullptr) return;
  core::ShardedTransparencyService::Stats stats = service->CollectStats();
  report->has_transparency = true;
  report->transparency_checkpoints = stats.checkpoints_published;
  report->transparency_cosigns = stats.cosigns;
  report->transparency_refusals = stats.refusals;
  report->transparency_witnesses = static_cast<uint64_t>(stats.witnesses);
  report->transparency_tampered_witnesses = stats.tampered_witnesses;
  report->transparency_inclusion_proofs = stats.inclusion_proofs;
  report->transparency_consistency_proofs = stats.consistency_proofs;
  report->transparency_cache_hits = stats.cache_hits;
  report->transparency_cache_misses = stats.cache_misses;
  report->transparency_latest_sizes_sum = stats.latest_sizes_sum;
}

Status WriteHealthFile(storage::Env* env, const HealthReport& report,
                       const std::string& path) {
  std::string text = report.Dump();
  text.push_back('\n');
  return storage::WriteStringToFile(env, Slice(text), path, /*sync=*/true);
}

storage::IoStats* ProcessIoStats() {
  static storage::IoStats* stats = new storage::IoStats();
  return stats;
}

}  // namespace medvault::obs
