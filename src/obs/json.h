#ifndef MEDVAULT_OBS_JSON_H_
#define MEDVAULT_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace medvault::obs::json {

/// Minimal JSON value for the observability layer (HealthReport dump
/// and round-trip tests). Deliberately integer-only: every quantity we
/// export (counts, bytes, microseconds, timestamps) is integral, and
/// avoiding floats makes Dump(Parse(x)) == x exact — which is what the
/// golden-JSON tests rely on. Objects are std::map, so key order (and
/// therefore the dumped text) is deterministic.
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(int64_t i) : v_(i) {}
  Value(uint64_t u) : v_(u) {}
  Value(int i) : v_(static_cast<int64_t>(i)) {}
  Value(unsigned u) : v_(static_cast<uint64_t>(u)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const {
    return std::holds_alternative<int64_t>(v_) ||
           std::holds_alternative<uint64_t>(v_);
  }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  /// Signed view of any integer (asserts the value fits).
  int64_t as_int() const;
  uint64_t as_uint() const;
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }
  Object& as_object() { return std::get<Object>(v_); }

  /// Compact deterministic serialization (sorted object keys, no
  /// whitespace).
  std::string Dump() const;

  /// Parses the subset Dump() emits (null, bool, integers, strings
  /// with standard escapes, arrays, objects). Rejects floats, trailing
  /// garbage, and nesting deeper than 64.
  static Result<Value> Parse(const Slice& text);

 private:
  std::variant<std::nullptr_t, bool, int64_t, uint64_t, std::string, Array,
               Object>
      v_;
};

}  // namespace medvault::obs::json

#endif  // MEDVAULT_OBS_JSON_H_
