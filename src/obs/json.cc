#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <limits>

namespace medvault::obs::json {

int64_t Value::as_int() const {
  if (std::holds_alternative<int64_t>(v_)) return std::get<int64_t>(v_);
  uint64_t u = std::get<uint64_t>(v_);
  return static_cast<int64_t>(u);
}

uint64_t Value::as_uint() const {
  if (std::holds_alternative<uint64_t>(v_)) return std::get<uint64_t>(v_);
  return static_cast<uint64_t>(std::get<int64_t>(v_));
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpTo(const Value& v, std::string* out);

void DumpTo(const Value& v, std::string* out) {
  if (v.is_null()) {
    *out += "null";
  } else if (v.is_bool()) {
    *out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    // Negative values only ever live in the int64 alternative.
    int64_t i = v.as_int();
    if (i < 0) {
      *out += std::to_string(i);
    } else {
      *out += std::to_string(v.as_uint());
    }
  } else if (v.is_string()) {
    AppendEscaped(out, v.as_string());
  } else if (v.is_array()) {
    out->push_back('[');
    bool first = true;
    for (const Value& e : v.as_array()) {
      if (!first) out->push_back(',');
      first = false;
      DumpTo(e, out);
    }
    out->push_back(']');
  } else {
    out->push_back('{');
    bool first = true;
    for (const auto& [key, value] : v.as_object()) {
      if (!first) out->push_back(',');
      first = false;
      AppendEscaped(out, key);
      out->push_back(':');
      DumpTo(value, out);
    }
    out->push_back('}');
  }
}

/// Recursive-descent parser over the Dump() subset.
class Parser {
 public:
  explicit Parser(const Slice& text) : p_(text.data()), end_(text.data() + text.size()) {}

  Result<Value> Run() {
    Value v;
    MEDVAULT_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWs();
    if (p_ != end_) return Status::InvalidArgument("trailing JSON content");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      p_++;
    }
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      p_++;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    const char* save = p_;
    for (; *w != '\0'; w++) {
      if (p_ == end_ || *p_ != *w) {
        p_ = save;
        return false;
      }
      p_++;
    }
    return true;
  }

  // Status-plus-out-param (not Result<Value>) so the recursive moves
  // stay transparent to the optimizer.
  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Status::InvalidArgument("JSON too deep");
    SkipWs();
    if (p_ == end_) return Status::InvalidArgument("unexpected end of JSON");
    if (ConsumeWord("null")) {
      *out = Value(nullptr);
      return Status::OK();
    }
    if (ConsumeWord("true")) {
      *out = Value(true);
      return Status::OK();
    }
    if (ConsumeWord("false")) {
      *out = Value(false);
      return Status::OK();
    }
    char c = *p_;
    if (c == '"') {
      std::string s;
      MEDVAULT_RETURN_IF_ERROR(ParseStringInto(&s));
      *out = Value(std::move(s));
      return Status::OK();
    }
    if (c == '[') return ParseArray(out, depth);
    if (c == '{') return ParseObject(out, depth);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Status::InvalidArgument("unexpected JSON character");
  }

  Status ParseNumber(Value* out) {
    bool negative = Consume('-');
    if (p_ == end_ || *p_ < '0' || *p_ > '9') {
      return Status::InvalidArgument("malformed JSON number");
    }
    uint64_t magnitude = 0;
    while (p_ != end_ && *p_ >= '0' && *p_ <= '9') {
      uint64_t digit = static_cast<uint64_t>(*p_ - '0');
      if (magnitude > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
        return Status::InvalidArgument("JSON integer overflow");
      }
      magnitude = magnitude * 10 + digit;
      p_++;
    }
    if (p_ != end_ && (*p_ == '.' || *p_ == 'e' || *p_ == 'E')) {
      return Status::InvalidArgument(
          "floating-point JSON is not supported here");
    }
    if (negative) {
      uint64_t limit =
          static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1;
      if (magnitude > limit) {
        return Status::InvalidArgument("JSON integer overflow");
      }
      *out = Value(static_cast<int64_t>(0 - magnitude));
      return Status::OK();
    }
    *out = Value(magnitude);
    return Status::OK();
  }

  Status ParseStringInto(std::string* out) {
    if (!Consume('"')) return Status::InvalidArgument("expected string");
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) return Status::InvalidArgument("dangling escape");
      char e = *p_++;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (end_ - p_ < 4) return Status::InvalidArgument("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; i++) {
            char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Status::InvalidArgument("bad \\u escape");
          }
          // Dump() only emits \u00XX for control bytes; accept the same.
          if (code > 0xFF) {
            return Status::InvalidArgument("non-latin \\u escape unsupported");
          }
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return Status::InvalidArgument("unknown escape");
      }
    }
    if (!Consume('"')) return Status::InvalidArgument("unterminated string");
    return Status::OK();
  }

  Status ParseArray(Value* out, int depth) {
    Consume('[');
    Value::Array elements;
    SkipWs();
    if (Consume(']')) {
      *out = Value(std::move(elements));
      return Status::OK();
    }
    for (;;) {
      Value element;
      MEDVAULT_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      elements.push_back(std::move(element));
      SkipWs();
      if (Consume(']')) {
        *out = Value(std::move(elements));
        return Status::OK();
      }
      if (!Consume(',')) return Status::InvalidArgument("expected ',' or ']'");
    }
  }

  Status ParseObject(Value* out, int depth) {
    Consume('{');
    Value::Object members;
    SkipWs();
    if (Consume('}')) {
      *out = Value(std::move(members));
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      std::string key;
      MEDVAULT_RETURN_IF_ERROR(ParseStringInto(&key));
      SkipWs();
      if (!Consume(':')) return Status::InvalidArgument("expected ':'");
      Value value;
      MEDVAULT_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      members[std::move(key)] = std::move(value);
      SkipWs();
      if (Consume('}')) {
        *out = Value(std::move(members));
        return Status::OK();
      }
      if (!Consume(',')) return Status::InvalidArgument("expected ',' or '}'");
    }
  }

  const char* p_;
  const char* end_;
};

}  // namespace

std::string Value::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<Value> Value::Parse(const Slice& text) { return Parser(text).Run(); }

}  // namespace medvault::obs::json
