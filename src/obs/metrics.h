#ifndef MEDVAULT_OBS_METRICS_H_
#define MEDVAULT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace medvault::obs {

/// Operational metrics for the vault — the visibility layer the paper's
/// long-horizon operation requirement implies but which is deliberately
/// *separate* from the tamper-evident audit log: metrics and slow-op
/// traces are best-effort operator telemetry with no integrity claims,
/// so losing or rotating them never weakens the compliance story, and
/// recording them never costs an XMSS leaf or an audit append.
///
/// Everything here is hot-path cheap: counters/gauges/histograms are
/// lock-free atomics once looked up; name lookup takes a mutex, so
/// callers cache the returned pointers (see VaultOpMetrics). Pointers
/// remain valid for the registry's lifetime.

/// Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level (queue depths, open handles, backlog sizes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram. Bucket boundaries are powers of two
/// (microseconds): bucket 0 holds the value 0 and bucket i (i >= 1)
/// holds [2^(i-1), 2^i - 1]; the last bucket absorbs everything larger.
/// Fixed buckets keep Record() to three relaxed atomic adds — no
/// allocation, no lock — which is what lets every vault operation be
/// timed unconditionally.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 32;

  /// Inclusive upper bound of bucket `i` (2^i - 1; bucket 0 -> 0). The
  /// last bucket's nominal bound is reported even though it is open.
  static uint64_t BucketUpperBound(size_t i) {
    return (i >= 64) ? ~0ULL : ((1ULL << i) - 1);
  }

  /// Bucket index for `value`: bit_width clamped to the last bucket.
  static size_t BucketIndex(uint64_t value) {
    size_t width = 0;
    while (value != 0) {
      value >>= 1;
      width++;
    }
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    std::array<uint64_t, kNumBuckets> buckets{};

    /// Upper bound of the bucket containing the p-th percentile
    /// (0 < p <= 100) — a conservative estimate, exact to within the
    /// power-of-two bucket width. Returns 0 for an empty histogram.
    uint64_t PercentileUpperBound(double p) const;
  };

  Snapshot TakeSnapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// One slow operation, as handed to the slow-op sink.
struct SlowOp {
  std::string op;
  uint64_t micros = 0;
  uint64_t threshold_micros = 0;
};

/// Named metric registry. There is a process-wide default instance
/// (Default()); vaults may instead be opened with their own registry so
/// multi-tenant processes keep tenants' telemetry apart.
///
/// Label cardinality is bounded: at most kMaxSeriesPerKind distinct
/// names per metric kind (plus the shared "_overflow" series itself).
/// Past the cap, lookups return the overflow series and the drop is
/// counted — an
/// instrumentation bug (unbounded label values) degrades telemetry, it
/// cannot exhaust memory.
class MetricsRegistry {
 public:
  static constexpr size_t kMaxSeriesPerKind = 256;
  /// Default slow-op threshold: 100ms. Any vault operation slower than
  /// this gets one structured trace line (see SetSlowOpSink).
  static constexpr uint64_t kDefaultSlowOpThresholdMicros = 100000;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide instance; never destroyed (metric pointers handed to
  /// callers must outlive static teardown order).
  static MetricsRegistry* Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  struct RegistrySnapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, Histogram::Snapshot> histograms;
    uint64_t series_dropped = 0;  ///< lookups past the cardinality cap
    uint64_t slow_ops = 0;        ///< ops traced over the threshold
  };

  RegistrySnapshot TakeSnapshot() const;

  // ---- Slow-op tracing -------------------------------------------------

  /// 0 disables tracing entirely.
  void SetSlowOpThresholdMicros(uint64_t micros) {
    slow_op_threshold_micros_.store(micros, std::memory_order_relaxed);
  }
  uint64_t SlowOpThresholdMicros() const {
    return slow_op_threshold_micros_.load(std::memory_order_relaxed);
  }

  /// Replaces the slow-op sink (default: one JSON line to stderr).
  /// The sink runs under an internal mutex; keep it cheap.
  void SetSlowOpSink(std::function<void(const SlowOp&)> sink);

  /// Called by ScopedOpTimer; traces iff tracing is enabled and
  /// `micros` >= threshold.
  void MaybeTraceSlowOp(const char* op, uint64_t micros);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  Counter series_dropped_;
  Counter slow_ops_;
  std::atomic<uint64_t> slow_op_threshold_micros_{
      kDefaultSlowOpThresholdMicros};
  std::mutex sink_mu_;
  std::function<void(const SlowOp&)> slow_op_sink_;  // null = stderr
};

/// RAII wall-clock timer for one operation: records elapsed
/// microseconds into `hist` and hands anything over the registry's
/// threshold to the slow-op trace. `op` must outlive the timer
/// (string literals in practice). Null `hist` or `registry` makes the
/// timer inert, so call sites need no conditionals.
class ScopedOpTimer {
 public:
  ScopedOpTimer(MetricsRegistry* registry, Histogram* hist, const char* op)
      : registry_(registry),
        hist_(hist),
        op_(op),
        start_(std::chrono::steady_clock::now()) {}

  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

  ~ScopedOpTimer() {
    if (hist_ == nullptr) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    uint64_t micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
    hist_->Record(micros);
    if (registry_ != nullptr) registry_->MaybeTraceSlowOp(op_, micros);
  }

 private:
  MetricsRegistry* registry_;
  Histogram* hist_;
  const char* op_;
  std::chrono::steady_clock::time_point start_;
};

/// The per-operation histograms a Vault (prefix "vault") or
/// ShardedVault (prefix "sharded") caches at open so the hot path never
/// does a name lookup. Histogram names are "<prefix>.<op>".
struct VaultOpMetrics {
  Histogram* create = nullptr;
  Histogram* batch_ingest = nullptr;
  Histogram* read = nullptr;
  Histogram* correct = nullptr;
  Histogram* dispose = nullptr;
  Histogram* search = nullptr;
  Histogram* verify = nullptr;
  Histogram* migrate = nullptr;
  Histogram* recover = nullptr;
  Histogram* sync = nullptr;

  static VaultOpMetrics For(MetricsRegistry* registry,
                            const std::string& prefix);
};

}  // namespace medvault::obs

#endif  // MEDVAULT_OBS_METRICS_H_
