#ifndef MEDVAULT_COMMON_CODING_H_
#define MEDVAULT_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace medvault {

/// Little-endian fixed-width and varint encodings, plus length-prefixed
/// strings. All on-disk structures in MedVault are built from these.

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Varint length followed by raw bytes.
void PutLengthPrefixed(std::string* dst, const Slice& value);

void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);

uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);

/// Each Get* consumes bytes from `input` on success and returns true;
/// on malformed input returns false with `input` unspecified.
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixed(Slice* input, Slice* result);
/// Copying variant of GetLengthPrefixed.
bool GetLengthPrefixedString(Slice* input, std::string* result);

/// Number of bytes VarintNN encoding of `value` occupies.
int VarintLength(uint64_t value);

}  // namespace medvault

#endif  // MEDVAULT_COMMON_CODING_H_
