#ifndef MEDVAULT_COMMON_WORKER_POOL_H_
#define MEDVAULT_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace medvault {

/// A small persistent pool for fan-out work (cross-shard batches, the
/// AsyncEnv completion backend). With zero threads every submission
/// executes inline in submission order — the deterministic mode the
/// crash matrix uses. Concurrent submitters interleave safely; each
/// TaskGroup / RunAll call tracks its own completion state.
///
/// Re-entrancy: work submitted from one of the pool's own worker
/// threads (a pooled task fanning out again) executes inline on that
/// thread instead of queueing. Queueing would have the worker block on
/// the group condvar while occupying the very slot needed to drain it —
/// with enough re-entrant submitters, every worker waits and no one
/// runs, a guaranteed deadlock once all workers are blocked.
class WorkerPool {
 public:
  /// Spawns `threads` workers; 0 means no workers (inline execution).
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues one fire-and-forget task. The caller must arrange its own
  /// completion signal (TaskGroup, BatchCompletion); the pool only
  /// guarantees the task runs before the pool is destroyed. Executes
  /// inline when the pool has no workers or the caller is a worker.
  void Submit(std::function<void()> task);

  /// Runs every task and returns once all have completed. Tasks may
  /// themselves call RunAll on this pool (see class comment).
  void RunAll(std::vector<std::function<void()>> tasks);

  unsigned thread_count() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// True iff the calling thread is one of this pool's workers.
  bool OnWorkerThread() const { return current_pool_ == this; }

 private:
  void Loop();

  /// The pool the current thread works for, if any — how Submit detects
  /// re-entrant submission from a pooled task.
  static thread_local const WorkerPool* current_pool_;

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

/// Completion handle over a *subset* of a pool's work: submit any
/// number of tasks through the group, then Wait() for exactly those —
/// other submitters' tasks on the same pool are invisible to it. This
/// replaces the per-call ad-hoc completion state each fan-out used to
/// allocate. Concurrent Submit calls on one group are not supported;
/// each fan-out owns its group. The destructor waits for any
/// still-pending tasks so a group cannot dangle.
class TaskGroup {
 public:
  /// `pool` is borrowed and must outlive the group.
  explicit TaskGroup(WorkerPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits one task; runs inline under the pool's inline rules
  /// (no workers, or the caller is a pool worker).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted through this group has finished.
  void Wait();

 private:
  WorkerPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
};

}  // namespace medvault

#endif  // MEDVAULT_COMMON_WORKER_POOL_H_
