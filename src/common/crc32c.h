#ifndef MEDVAULT_COMMON_CRC32C_H_
#define MEDVAULT_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace medvault::crc32c {

/// CRC-32C (Castagnoli) over [data, data+n), extending `init_crc` (which
/// must be the return value of a previous Value/Extend call, or 0).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) {
  return Extend(0, data, n);
}
inline uint32_t Value(const Slice& s) { return Value(s.data(), s.size()); }

/// CRCs stored next to the data they guard are "masked" so that the CRC
/// of a buffer that itself contains CRCs stays well-distributed
/// (LevelDB/RocksDB trick).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace medvault::crc32c

#endif  // MEDVAULT_COMMON_CRC32C_H_
