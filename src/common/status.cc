#include "common/status.h"

namespace medvault {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kTamperDetected:
      return "TamperDetected";
    case Status::Code::kPermissionDenied:
      return "PermissionDenied";
    case Status::Code::kWormViolation:
      return "WormViolation";
    case Status::Code::kRetentionViolation:
      return "RetentionViolation";
    case Status::Code::kKeyDestroyed:
      return "KeyDestroyed";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kBackupChainBroken:
      return "BackupChainBroken";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace medvault
