#ifndef MEDVAULT_COMMON_RESULT_H_
#define MEDVAULT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace medvault {

/// A value-or-Status, in the style of arrow::Result / absl::StatusOr.
///
/// Invariant: exactly one of {value, non-OK status} is present. Accessing
/// value() on an error Result asserts in debug builds and is undefined in
/// release builds — always check ok() (or use MEDVAULT_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. A kOk status is a bug;
  /// it is converted to an InvalidArgument error to keep the invariant.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::InvalidArgument("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : status_;
  }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// MEDVAULT_ASSIGN_OR_RETURN(auto v, expr): evaluates expr (a Result<T>),
/// returns its Status on error, otherwise binds the value.
#define MEDVAULT_ASSIGN_OR_RETURN(decl, expr)                     \
  MEDVAULT_ASSIGN_OR_RETURN_IMPL_(                                \
      MEDVAULT_CONCAT_(_result_tmp_, __LINE__), decl, expr)

#define MEDVAULT_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  decl = std::move(tmp).value()

#define MEDVAULT_CONCAT_(a, b) MEDVAULT_CONCAT_IMPL_(a, b)
#define MEDVAULT_CONCAT_IMPL_(a, b) a##b

}  // namespace medvault

#endif  // MEDVAULT_COMMON_RESULT_H_
