#ifndef MEDVAULT_COMMON_CLOCK_H_
#define MEDVAULT_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace medvault {

/// Microseconds since the Unix epoch.
using Timestamp = int64_t;

constexpr Timestamp kMicrosPerSecond = 1000000;
constexpr Timestamp kMicrosPerDay = 86400LL * kMicrosPerSecond;
/// 365.25-day years; precise calendar math is irrelevant for retention
/// comparisons spanning decades.
constexpr Timestamp kMicrosPerYear = 365LL * kMicrosPerDay + kMicrosPerDay / 4;

/// Source of time. Retention spans 30 years, so everything in MedVault
/// reads time through this interface and tests/benches inject a
/// ManualClock they can advance by decades.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Timestamp Now() const = 0;
};

/// Wall-clock time.
class SystemClock : public Clock {
 public:
  Timestamp Now() const override;
};

/// Test clock: starts at `start` and moves only when told to. Atomic so
/// concurrency tests can share one instance across worker threads.
class ManualClock : public Clock {
 public:
  explicit ManualClock(Timestamp start = 0) : now_(start) {}

  Timestamp Now() const override { return now_.load(std::memory_order_relaxed); }
  void Advance(Timestamp delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void AdvanceYears(int years) {
    now_.fetch_add(years * kMicrosPerYear, std::memory_order_relaxed);
  }
  void Set(Timestamp t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<Timestamp> now_;
};

}  // namespace medvault

#endif  // MEDVAULT_COMMON_CLOCK_H_
