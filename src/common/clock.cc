#include "common/clock.h"

#include <chrono>

namespace medvault {

Timestamp SystemClock::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace medvault
