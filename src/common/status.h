#ifndef MEDVAULT_COMMON_STATUS_H_
#define MEDVAULT_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace medvault {

/// Outcome of an operation that can fail. Library code never throws;
/// every fallible call returns a Status (or a Result<T>, which wraps one).
///
/// Codes are chosen for the compliance-storage domain: in addition to the
/// usual I/O and argument errors there are dedicated codes for policy
/// denials, tamper detection, WORM violations, and retention violations,
/// because callers (and the compliance-matrix harness) branch on them.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound = 1,
    kAlreadyExists = 2,
    kInvalidArgument = 3,
    kIoError = 4,
    kCorruption = 5,        // data failed checksum / parse
    kTamperDetected = 6,    // cryptographic integrity check failed
    kPermissionDenied = 7,  // access-control policy denial
    kWormViolation = 8,     // write/overwrite attempted on sealed media
    kRetentionViolation = 9,  // disposal attempted before retention expiry
    kKeyDestroyed = 10,     // record was crypto-shredded; plaintext gone
    kNotSupported = 11,
    kFailedPrecondition = 12,
    kBackupChainBroken = 13,  // backup chain references a missing/mismatched base
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status TamperDetected(std::string msg) {
    return Status(Code::kTamperDetected, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(Code::kPermissionDenied, std::move(msg));
  }
  static Status WormViolation(std::string msg) {
    return Status(Code::kWormViolation, std::move(msg));
  }
  static Status RetentionViolation(std::string msg) {
    return Status(Code::kRetentionViolation, std::move(msg));
  }
  static Status KeyDestroyed(std::string msg) {
    return Status(Code::kKeyDestroyed, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status BackupChainBroken(std::string msg) {
    return Status(Code::kBackupChainBroken, std::move(msg));
  }

  /// Wraps an error with call-site context while preserving the code
  /// callers branch on. OK passes through untouched.
  static Status WithContext(const Status& s, const std::string& context) {
    if (s.ok()) return s;
    return Status(s.code(), context + ": " + s.message());
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsTamperDetected() const { return code_ == Code::kTamperDetected; }
  bool IsPermissionDenied() const { return code_ == Code::kPermissionDenied; }
  bool IsWormViolation() const { return code_ == Code::kWormViolation; }
  bool IsRetentionViolation() const {
    return code_ == Code::kRetentionViolation;
  }
  bool IsKeyDestroyed() const { return code_ == Code::kKeyDestroyed; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsBackupChainBroken() const {
    return code_ == Code::kBackupChainBroken;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if not OK.
#define MEDVAULT_RETURN_IF_ERROR(expr)             \
  do {                                             \
    ::medvault::Status _s = (expr);                \
    if (!_s.ok()) return _s;                       \
  } while (0)

}  // namespace medvault

#endif  // MEDVAULT_COMMON_STATUS_H_
