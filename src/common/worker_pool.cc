#include "common/worker_pool.h"

#include <utility>

namespace medvault {

thread_local const WorkerPool* WorkerPool::current_pool_ = nullptr;

WorkerPool::WorkerPool(unsigned threads) {
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { Loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  // Inline when there is no one to hand the task to — and, critically,
  // when the submitter IS a pool worker: blocking a worker on a group
  // condvar while its tasks sit behind it in the queue deadlocks as
  // soon as every worker does it (see class comment).
  if (threads_.empty() || OnWorkerThread()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back(std::move(task));
  }
  cv_.notify_one();
}

void WorkerPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.size() == 1) {
    tasks.front()();
    return;
  }
  TaskGroup group(this);
  for (auto& task : tasks) group.Submit(std::move(task));
  group.Wait();
}

void WorkerPool::Loop() {
  current_pool_ = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskGroup::Submit(std::function<void()> task) {
  if (pool_->thread_count() == 0 || pool_->OnWorkerThread()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)] {
    task();
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace medvault
