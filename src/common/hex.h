#ifndef MEDVAULT_COMMON_HEX_H_
#define MEDVAULT_COMMON_HEX_H_

#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace medvault {

/// Lowercase hex encoding of arbitrary bytes.
std::string HexEncode(const Slice& data);

/// Inverse of HexEncode; rejects odd-length or non-hex input.
Result<std::string> HexDecode(const Slice& hex);

}  // namespace medvault

#endif  // MEDVAULT_COMMON_HEX_H_
