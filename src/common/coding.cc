#include "common/coding.h"

#include <cstring>

namespace medvault {

void EncodeFixed32(char* dst, uint32_t value) {
  dst[0] = static_cast<char>(value & 0xff);
  dst[1] = static_cast<char>((value >> 8) & 0xff);
  dst[2] = static_cast<char>((value >> 16) & 0xff);
  dst[3] = static_cast<char>((value >> 24) & 0xff);
}

void EncodeFixed64(char* dst, uint64_t value) {
  for (int i = 0; i < 8; i++) {
    dst[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  dst->append(buf, 8);
}

uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result = 0;
  for (int i = 3; i >= 0; i--) {
    result = (result << 8) | static_cast<unsigned char>(ptr[i]);
  }
  return result;
}

uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result = 0;
  for (int i = 7; i >= 0; i--) {
    result = (result << 8) | static_cast<unsigned char>(ptr[i]);
  }
  return result;
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixed(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->RemovePrefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->RemovePrefix(8);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    auto byte = static_cast<unsigned char>((*input)[0]);
    input->RemovePrefix(1);
    if (byte & 0x80) {
      result |= (static_cast<uint64_t>(byte & 0x7f) << shift);
    } else {
      result |= (static_cast<uint64_t>(byte) << shift);
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v64 = 0;
  if (!GetVarint64(input, &v64) || v64 > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v64);
  return true;
}

bool GetLengthPrefixed(Slice* input, Slice* result) {
  uint64_t len = 0;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->RemovePrefix(len);
  return true;
}

bool GetLengthPrefixedString(Slice* input, std::string* result) {
  Slice s;
  if (!GetLengthPrefixed(input, &s)) return false;
  result->assign(s.data(), s.size());
  return true;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    len++;
  }
  return len;
}

}  // namespace medvault
