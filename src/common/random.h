#ifndef MEDVAULT_COMMON_RANDOM_H_
#define MEDVAULT_COMMON_RANDOM_H_

#include <cstdint>

namespace medvault {

/// Deterministic non-cryptographic PRNG (xorshift64*), used by workload
/// generators and tests for reproducibility. Key material must come from
/// crypto::HmacDrbg, never from this.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ULL
                                                    : seed) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi]. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0) return false;
    if (p >= 1) return true;
    return static_cast<double>(Next() >> 11) *
               (1.0 / 9007199254740992.0) < p;  // 2^53
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace medvault

#endif  // MEDVAULT_COMMON_RANDOM_H_
