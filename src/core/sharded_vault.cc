#include "core/sharded_vault.h"

#include <algorithm>
#include <charconv>
#include <functional>
#include <thread>
#include <utility>

#include "core/scrub.h"
#include "common/worker_pool.h"
#include "crypto/hkdf.h"
#include "crypto/merkle.h"

namespace medvault::core {

// ---------------------------------------------------------------------------
// Open / Init
// ---------------------------------------------------------------------------

ShardedVault::ShardedVault(ShardedVaultOptions options)
    : options_(std::move(options)), router_(options_.num_shards) {}

ShardedVault::~ShardedVault() = default;

Result<std::unique_ptr<ShardedVault>> ShardedVault::Open(
    const ShardedVaultOptions& options) {
  if (options.env == nullptr || options.clock == nullptr) {
    return Status::InvalidArgument("env and clock are required");
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument("dir is required");
  }
  if (options.master_key.size() != 32) {
    return Status::InvalidArgument("master_key must be 32 bytes");
  }
  if (options.entropy.empty()) {
    return Status::InvalidArgument("entropy is required");
  }
  if (options.num_shards < 1 || options.num_shards > 1024) {
    return Status::InvalidArgument("num_shards must be in [1, 1024]");
  }
  auto vault =
      std::unique_ptr<ShardedVault>(new ShardedVault(options));
  MEDVAULT_RETURN_IF_ERROR(vault->Init());
  return vault;
}

Status ShardedVault::Init() {
  storage::Env* env = options_.env;

  metrics_ = options_.metrics != nullptr ? options_.metrics
                                         : obs::MetricsRegistry::Default();
  op_metrics_ = obs::VaultOpMetrics::For(metrics_, "sharded");

  MEDVAULT_RETURN_IF_ERROR(env->CreateDirIfMissing(options_.dir));

  // The shard count is part of the vault's identity: it is persisted at
  // first open and any later open must present the same count, because
  // both the placement hash and the id prefixes bake it in.
  auto persisted = ShardRouter::ReadManifest(env, options_.dir);
  if (persisted.ok()) {
    if (*persisted != options_.num_shards) {
      return Status::InvalidArgument(
          "shard-count mismatch: vault at '" + options_.dir +
          "' was created with " + std::to_string(*persisted) +
          " shards but open requested " +
          std::to_string(options_.num_shards) +
          "; resharding requires migration, not reopening");
    }
  } else if (persisted.status().IsNotFound()) {
    MEDVAULT_RETURN_IF_ERROR(
        ShardRouter::WriteManifest(env, options_.dir, options_.num_shards));
  } else {
    return persisted.status();
  }

  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<RecordCache>(options_.cache_bytes);
  }

  shards_.resize(options_.num_shards);
  quarantine_reasons_.resize(options_.num_shards);
  for (uint32_t k = 0; k < options_.num_shards; ++k) {
    if (options_.open_mode == OpenMode::kDegraded) {
      // Scrub before opening. Vault::Open tolerates torn tails and does
      // not deep-verify, so a shard with a flipped segment byte would
      // "open" and then fail clinical reads; the structural scan spots
      // the damage up front without mutating the directory. A NotFound
      // scrub means a fresh shard directory — open will create it.
      Result<ScrubReport> scrub = Scrubber::ScrubVaultDir(
          env, ShardRouter::ShardDir(options_.dir, k), options_.clock->Now());
      if (!scrub.ok() && !scrub.status().IsNotFound()) {
        quarantine_reasons_[k] =
            "scrub failed: " + scrub.status().ToString();
        continue;
      }
      if (scrub.ok() && !scrub->structurally_clean()) {
        std::string reason = "failed structural scrub: " +
                             std::to_string(scrub->corrupt_files) +
                             " damaged file(s)";
        const auto damaged = scrub->DamagedFiles();
        if (!damaged.empty()) reason += ", first: " + damaged[0];
        quarantine_reasons_[k] = std::move(reason);
        continue;
      }
      Result<std::unique_ptr<Vault>> shard = OpenShard(k);
      if (!shard.ok()) {
        quarantine_reasons_[k] =
            "open failed: " + shard.status().ToString();
        continue;
      }
      shards_[k] = std::move(*shard);
    } else {
      MEDVAULT_ASSIGN_OR_RETURN(shards_[k], OpenShard(k));
    }
  }
  PublishQuarantineGauge();

  unsigned threads = options_.ingest_threads;
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    threads = std::min<unsigned>(options_.num_shards, hw);
  }
  // One thread means "sequential": no pool workers, RunAll runs inline.
  pool_ = std::make_unique<WorkerPool>(threads > 1 ? threads : 0);

  GroupCommitter::Options commit_options;
  commit_options.window_micros = options_.commit_window_micros;
  commit_options.metrics = metrics_;
  commit_options.metric_prefix = "commit.window.sharded";
  committer_ = std::make_unique<GroupCommitter>(
      [this] { return SyncShardsWave(); }, std::move(commit_options));
  return Status::OK();
}

Status ShardedVault::SyncShardsWave() {
  // One wave: every healthy shard's SyncAll fans out over the pool and
  // the wave completes when the slowest shard lands. Inline (0-thread)
  // pools run shard order deterministically for the crash matrix.
  const uint32_t n = num_shards();
  std::vector<Status> statuses(n, Status::OK());
  TaskGroup group(pool_.get());
  for (uint32_t k = 0; k < n; ++k) {
    Vault* s = shard(k);
    if (s == nullptr) continue;  // quarantined: nothing mounted to sync
    group.Submit([s, &statuses, k] { statuses[k] = s->SyncAll(); });
  }
  group.Wait();
  for (uint32_t k = 0; k < n; ++k) {
    if (!statuses[k].ok()) return statuses[k];
  }
  return Status::OK();
}

Result<std::unique_ptr<Vault>> ShardedVault::OpenShard(uint32_t k) {
  // Independent key domains per shard: both the key-wrapping master
  // and the entropy pool (DRBG, signer seed, index blinding) are
  // HKDF-derived with the shard index in the info string.
  MEDVAULT_ASSIGN_OR_RETURN(
      std::string shard_master,
      crypto::HkdfSha256(options_.master_key, Slice(),
                         "medvault-shard-master-" + std::to_string(k), 32));
  MEDVAULT_ASSIGN_OR_RETURN(
      std::string shard_entropy,
      crypto::HkdfSha256(options_.entropy, Slice(),
                         "medvault-shard-entropy-" + std::to_string(k), 64));

  VaultOptions shard_options;
  shard_options.env = options_.env;
  shard_options.dir = ShardRouter::ShardDir(options_.dir, k);
  shard_options.clock = options_.clock;
  shard_options.master_key = std::move(shard_master);
  shard_options.entropy = std::move(shard_entropy);
  shard_options.signer_height = options_.signer_height;
  shard_options.system_id = options_.system_id + "/shard-" + std::to_string(k);
  shard_options.require_dual_disposal = options_.require_dual_disposal;
  shard_options.record_id_prefix = ShardRouter::RecordIdPrefix(k);
  shard_options.consent_id_prefix = ShardRouter::ConsentIdPrefix(k);
  shard_options.cache = cache_.get();
  shard_options.metrics = metrics_;
  return Vault::Open(shard_options);
}

Result<Vault*> ShardedVault::RequireShard(uint32_t k) const {
  std::shared_lock lock(shards_mu_);
  Vault* s = shards_[k].get();
  if (s != nullptr) return s;
  return Status::FailedPrecondition(
      "shard " + std::to_string(k) +
      " is quarantined: " + quarantine_reasons_[k]);
}

bool ShardedVault::IsQuarantined(uint32_t k) const {
  std::shared_lock lock(shards_mu_);
  return shards_[k] == nullptr;
}

std::string ShardedVault::QuarantineReason(uint32_t k) const {
  std::shared_lock lock(shards_mu_);
  return quarantine_reasons_[k];
}

std::vector<uint32_t> ShardedVault::QuarantinedShards() const {
  std::shared_lock lock(shards_mu_);
  std::vector<uint32_t> out;
  for (uint32_t k = 0; k < shards_.size(); ++k) {
    if (shards_[k] == nullptr) out.push_back(k);
  }
  return out;
}

std::string ShardedVault::ShardDirPath(uint32_t k) const {
  return ShardRouter::ShardDir(options_.dir, k);
}

void ShardedVault::PublishQuarantineGauge() const {
  std::shared_lock lock(shards_mu_);
  int64_t quarantined = 0;
  for (const auto& s : shards_) {
    if (s == nullptr) quarantined++;
  }
  metrics_->GetGauge("sharded.quarantined")->Set(quarantined);
}

Result<ScrubReport> ShardedVault::ScrubShard(uint32_t k) {
  if (k >= num_shards()) {
    return Status::InvalidArgument("no such shard: " + std::to_string(k));
  }
  Vault* s = shard(k);
  if (s != nullptr) return s->Scrub();
  // Quarantined: the shard is not open, so only the offline structural
  // scan is possible — which is all repair needs.
  return Scrubber::ScrubVaultDir(options_.env, ShardDirPath(k), Now());
}

Status ShardedVault::RejoinShard(uint32_t k) {
  if (k >= num_shards()) {
    return Status::InvalidArgument("no such shard: " + std::to_string(k));
  }
  if (shard(k) != nullptr) return Status::OK();  // already healthy

  // Gate on a clean structural scrub so a rejoin cannot re-admit the
  // damage that caused the quarantine.
  MEDVAULT_ASSIGN_OR_RETURN(
      ScrubReport report,
      Scrubber::ScrubVaultDir(options_.env, ShardDirPath(k), Now()));
  if (!report.structurally_clean()) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(k) + " is still damaged; repair first (" +
        std::to_string(report.corrupt_files) + " damaged file(s))");
  }
  MEDVAULT_ASSIGN_OR_RETURN(std::unique_ptr<Vault> opened, OpenShard(k));
  MEDVAULT_RETURN_IF_ERROR(opened->VerifyEverything());
  {
    std::unique_lock lock(shards_mu_);
    if (shards_[k] != nullptr) return Status::OK();  // lost a rejoin race
    shards_[k] = std::move(opened);
    quarantine_reasons_[k].clear();
  }
  metrics_->GetCounter("sharded.rejoined")->Increment();
  PublishQuarantineGauge();
  return Status::OK();
}

Result<uint32_t> ShardedVault::RouteRecordId(const RecordId& record_id) const {
  uint32_t shard = 0;
  if (!ShardRouter::ShardOfRecordId(record_id, &shard) ||
      shard >= num_shards()) {
    return Status::NotFound("record not found: '" + record_id +
                            "' does not name a shard of this vault");
  }
  return shard;
}

// ---------------------------------------------------------------------------
// Administration
// ---------------------------------------------------------------------------

Status ShardedVault::RegisterPrincipal(const PrincipalId& actor,
                                       const Principal& principal) {
  // Replication must CONVERGE, not merely fan out: after a crash some
  // shards may already hold the principal while others lost it, so a
  // shard's AlreadyExists is success for that shard and the loop keeps
  // going — otherwise the divergent shards could never be repaired.
  // Quarantined shards are skipped; RejoinShard documents that admin
  // state must be re-replicated after a repair.
  for (uint32_t k = 0; k < num_shards(); ++k) {
    Vault* s = shard(k);
    if (s == nullptr) continue;
    Status status = s->RegisterPrincipal(actor, principal);
    if (!status.ok() && !status.IsAlreadyExists()) return status;
  }
  return Status::OK();
}

Status ShardedVault::AssignCare(const PrincipalId& actor,
                                const PrincipalId& clinician,
                                const PrincipalId& patient) {
  for (uint32_t k = 0; k < num_shards(); ++k) {
    Vault* s = shard(k);
    if (s == nullptr) continue;
    MEDVAULT_RETURN_IF_ERROR(s->AssignCare(actor, clinician, patient));
  }
  return Status::OK();
}

Result<std::string> ShardedVault::BreakGlass(const PrincipalId& clinician,
                                             const PrincipalId& patient,
                                             const std::string& justification,
                                             Timestamp duration) {
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s,
                            RequireShard(router_.ShardOf(patient)));
  return s->BreakGlass(clinician, patient, justification, duration);
}

// ---------------------------------------------------------------------------
// Patient-driven sharing
// ---------------------------------------------------------------------------

Result<ConsentGrant> ShardedVault::GrantConsent(const PrincipalId& actor,
                                                const PrincipalId& grantee,
                                                const RecordId& record_id,
                                                const std::string& purpose,
                                                Timestamp duration) {
  // A grant lives on its granting patient's shard — the same shard as
  // every record it can cover (records are placed by patient id), so
  // the shard-local registry sees all relevant grants. A record-scoped
  // grant id must agree with the actor's shard, or the registry could
  // never match it against a read routed by record id.
  const uint32_t k = router_.ShardOf(actor);
  if (!record_id.empty()) {
    MEDVAULT_ASSIGN_OR_RETURN(uint32_t rk, RouteRecordId(record_id));
    if (rk != k) {
      return Status::PermissionDenied(
          "patients may share only their own records");
    }
  }
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
  return s->GrantConsent(actor, grantee, record_id, purpose, duration);
}

Status ShardedVault::RevokeConsent(const PrincipalId& actor,
                                   const std::string& grant_id) {
  // Grant ids embed their shard ("s<k>-cg-<n>") — route by id alone.
  uint32_t k = 0;
  if (!ShardRouter::ShardOfConsentId(grant_id, &k) || k >= num_shards()) {
    return Status::NotFound("no such consent grant: " + grant_id);
  }
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
  return s->RevokeConsent(actor, grant_id);
}

Result<std::vector<ConsentGrant>> ShardedVault::ListConsents(
    const PrincipalId& actor, const PrincipalId& patient) {
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s,
                            RequireShard(router_.ShardOf(patient)));
  return s->ListConsents(actor, patient);
}

size_t ShardedVault::ActiveConsentCount() const {
  size_t total = 0;
  for (uint32_t k = 0; k < num_shards(); ++k) {
    const Vault* s = shard(k);
    if (s == nullptr) continue;
    total += s->ActiveConsentCount();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Record lifecycle
// ---------------------------------------------------------------------------

Result<RecordId> ShardedVault::CreateRecord(
    const PrincipalId& actor, const PrincipalId& patient_id,
    const std::string& content_type, const Slice& plaintext,
    const std::vector<std::string>& keywords,
    const std::string& retention_policy) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.create, "sharded.create");
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s,
                            RequireShard(router_.ShardOf(patient_id)));
  return s->CreateRecord(actor, patient_id, content_type, plaintext, keywords,
                         retention_policy);
}

Result<std::vector<RecordId>> ShardedVault::CreateRecordsBatch(
    const PrincipalId& actor, const std::vector<Vault::NewRecord>& batch) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.batch_ingest,
                           "sharded.batch_ingest");
  if (batch.empty()) {
    return Status::InvalidArgument("batch is empty");
  }
  const uint32_t n = num_shards();
  if (n == 1) {
    MEDVAULT_ASSIGN_OR_RETURN(Vault * only, RequireShard(0));
    return only->CreateRecordsBatch(actor, batch);
  }

  // Partition by patient shard, remembering each item's original index
  // so the merged id vector lines up with the input order.
  std::vector<std::vector<size_t>> indices(n);
  for (size_t i = 0; i < batch.size(); ++i) {
    indices[router_.ShardOf(batch[i].patient_id)].push_back(i);
  }

  std::vector<Status> statuses(n, Status::OK());
  std::vector<std::vector<RecordId>> ids(n);
  // Refuse the whole batch up front if any involved shard is
  // quarantined: a partial cross-shard ingest that can never complete
  // is worse than a clean failure the caller can re-route.
  std::vector<Vault*> involved(n, nullptr);
  for (uint32_t k = 0; k < n; ++k) {
    if (indices[k].empty()) continue;
    MEDVAULT_ASSIGN_OR_RETURN(involved[k], RequireShard(k));
  }
  TaskGroup group(pool_.get());
  for (uint32_t k = 0; k < n; ++k) {
    Vault* s = involved[k];
    if (s == nullptr) continue;
    group.Submit([s, &actor, &batch, &indices, &statuses, &ids, k] {
      std::vector<Vault::NewRecord> sub;
      sub.reserve(indices[k].size());
      for (size_t i : indices[k]) sub.push_back(batch[i]);
      auto result = s->CreateRecordsBatch(actor, sub);
      if (result.ok()) {
        ids[k] = std::move(*result);
      } else {
        statuses[k] = result.status();
      }
    });
  }
  group.Wait();

  for (uint32_t k = 0; k < n; ++k) {
    if (!statuses[k].ok()) return statuses[k];
  }
  std::vector<RecordId> merged(batch.size());
  for (uint32_t k = 0; k < n; ++k) {
    for (size_t j = 0; j < indices[k].size(); ++j) {
      merged[indices[k][j]] = std::move(ids[k][j]);
    }
  }
  return merged;
}

Result<RecordVersion> ShardedVault::ReadRecord(const PrincipalId& actor,
                                               const RecordId& record_id) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.read, "sharded.read");
  MEDVAULT_ASSIGN_OR_RETURN(uint32_t k, RouteRecordId(record_id));
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
  return s->ReadRecord(actor, record_id);
}

Result<RecordVersion> ShardedVault::ReadRecordVersion(
    const PrincipalId& actor, const RecordId& record_id, uint32_t version) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.read, "sharded.read");
  MEDVAULT_ASSIGN_OR_RETURN(uint32_t k, RouteRecordId(record_id));
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
  return s->ReadRecordVersion(actor, record_id, version);
}

Result<VersionHeader> ShardedVault::CorrectRecord(
    const PrincipalId& actor, const RecordId& record_id,
    const Slice& new_plaintext, const std::string& reason,
    const std::vector<std::string>& keywords) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.correct, "sharded.correct");
  MEDVAULT_ASSIGN_OR_RETURN(uint32_t k, RouteRecordId(record_id));
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
  return s->CorrectRecord(actor, record_id, new_plaintext, reason, keywords);
}

Result<std::vector<RecordId>> ShardedVault::SearchKeyword(
    const PrincipalId& actor, const std::string& term) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.search, "sharded.search");
  // Degraded semantics: quarantined shards are skipped, so results may
  // be partial until every shard rejoins — the price of availability.
  std::vector<RecordId> merged;
  for (uint32_t k = 0; k < num_shards(); ++k) {
    Vault* s = shard(k);
    if (s == nullptr) continue;
    MEDVAULT_ASSIGN_OR_RETURN(auto hits, s->SearchKeyword(actor, term));
    merged.insert(merged.end(), hits.begin(), hits.end());
  }
  return merged;
}

Result<std::vector<RecordId>> ShardedVault::SearchKeywordsAll(
    const PrincipalId& actor, const std::vector<std::string>& terms) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.search, "sharded.search");
  std::vector<RecordId> merged;
  for (uint32_t k = 0; k < num_shards(); ++k) {
    Vault* s = shard(k);
    if (s == nullptr) continue;
    MEDVAULT_ASSIGN_OR_RETURN(auto hits, s->SearchKeywordsAll(actor, terms));
    merged.insert(merged.end(), hits.begin(), hits.end());
  }
  return merged;
}

Result<std::vector<VersionHeader>> ShardedVault::RecordHistory(
    const PrincipalId& actor, const RecordId& record_id) {
  MEDVAULT_ASSIGN_OR_RETURN(uint32_t k, RouteRecordId(record_id));
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
  return s->RecordHistory(actor, record_id);
}

Result<DisposalCertificate> ShardedVault::DisposeRecord(
    const PrincipalId& actor, const RecordId& record_id) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.dispose, "sharded.dispose");
  MEDVAULT_ASSIGN_OR_RETURN(uint32_t k, RouteRecordId(record_id));
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
  return s->DisposeRecord(actor, record_id);
}

Result<std::vector<RecordMeta>> ShardedVault::ListExpiredRecords(
    const PrincipalId& actor) {
  std::vector<RecordMeta> merged;
  for (uint32_t k = 0; k < num_shards(); ++k) {
    Vault* s = shard(k);
    if (s == nullptr) continue;
    MEDVAULT_ASSIGN_OR_RETURN(auto expired, s->ListExpiredRecords(actor));
    merged.insert(merged.end(), std::make_move_iterator(expired.begin()),
                  std::make_move_iterator(expired.end()));
  }
  return merged;
}

Result<int> ShardedVault::ReclaimDisposedMedia(const PrincipalId& actor) {
  int total = 0;
  for (uint32_t k = 0; k < num_shards(); ++k) {
    Vault* s = shard(k);
    if (s == nullptr) continue;
    MEDVAULT_ASSIGN_OR_RETURN(int reclaimed, s->ReclaimDisposedMedia(actor));
    total += reclaimed;
  }
  return total;
}

Status ShardedVault::PlaceLegalHold(const PrincipalId& actor,
                                    const RecordId& record_id,
                                    const std::string& reason) {
  MEDVAULT_ASSIGN_OR_RETURN(uint32_t k, RouteRecordId(record_id));
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
  return s->PlaceLegalHold(actor, record_id, reason);
}

Status ShardedVault::ReleaseLegalHold(const PrincipalId& actor,
                                      const RecordId& record_id,
                                      const std::string& reason) {
  MEDVAULT_ASSIGN_OR_RETURN(uint32_t k, RouteRecordId(record_id));
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
  return s->ReleaseLegalHold(actor, record_id, reason);
}

Result<std::string> ShardedVault::RequestDisposal(const PrincipalId& actor,
                                                  const RecordId& record_id) {
  MEDVAULT_ASSIGN_OR_RETURN(uint32_t shard, RouteRecordId(record_id));
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(shard));
  MEDVAULT_ASSIGN_OR_RETURN(std::string request_id,
                            s->RequestDisposal(actor, record_id));
  std::string qualified = "s";
  qualified += std::to_string(shard);
  qualified += ":";
  qualified += request_id;
  return qualified;
}

Result<DisposalCertificate> ShardedVault::ApproveDisposal(
    const PrincipalId& actor, const std::string& request_id) {
  if (request_id.empty() || request_id[0] != 's') {
    return Status::NotFound("unknown disposal request: " + request_id);
  }
  size_t colon = request_id.find(':');
  if (colon == std::string::npos) {
    return Status::NotFound("unknown disposal request: " + request_id);
  }
  uint32_t shard = 0;
  const char* begin = request_id.data() + 1;
  const char* end = request_id.data() + colon;
  auto [ptr, ec] = std::from_chars(begin, end, shard);
  if (ec != std::errc() || ptr != end || shard >= num_shards()) {
    return Status::NotFound("unknown disposal request: " + request_id);
  }
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(shard));
  return s->ApproveDisposal(actor, request_id.substr(colon + 1));
}

Status ShardedVault::SyncAll() {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.sync, "sharded.sync");
  return committer_->Commit();
}

Result<std::vector<RecordId>> ShardedVault::CreateRecordsBatchDurable(
    const PrincipalId& actor, const std::vector<Vault::NewRecord>& batch) {
  MEDVAULT_ASSIGN_OR_RETURN(std::vector<RecordId> ids,
                            CreateRecordsBatch(actor, batch));
  // One cross-shard wave acknowledges the whole batch; concurrent
  // durable batches ride the same wave when their windows overlap.
  MEDVAULT_RETURN_IF_ERROR(committer_->Commit());
  return ids;
}

// ---------------------------------------------------------------------------
// Audit & custody
// ---------------------------------------------------------------------------

Result<std::vector<SignedCheckpoint>> ShardedVault::CheckpointAudit() {
  std::vector<SignedCheckpoint> checkpoints;
  checkpoints.reserve(num_shards());
  for (uint32_t k = 0; k < num_shards(); ++k) {
    Vault* s = shard(k);
    if (s == nullptr) continue;
    MEDVAULT_ASSIGN_OR_RETURN(auto checkpoint, s->CheckpointAudit());
    checkpoints.push_back(std::move(checkpoint));
  }
  return checkpoints;
}

Status ShardedVault::VerifyAudit() const {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.verify, "sharded.verify");
  for (uint32_t k = 0; k < num_shards(); ++k) {
    const Vault* s = shard(k);
    if (s == nullptr) continue;
    MEDVAULT_RETURN_IF_ERROR(s->VerifyAudit());
  }
  return Status::OK();
}

Result<std::vector<AuditEvent>> ShardedVault::ReadAuditTrail(
    const PrincipalId& actor, const RecordId& record_id) {
  if (!record_id.empty()) {
    MEDVAULT_ASSIGN_OR_RETURN(uint32_t k, RouteRecordId(record_id));
    MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
    return s->ReadAuditTrail(actor, record_id);
  }
  std::vector<AuditEvent> merged;
  for (uint32_t k = 0; k < num_shards(); ++k) {
    Vault* s = shard(k);
    if (s == nullptr) continue;
    MEDVAULT_ASSIGN_OR_RETURN(auto events,
                              s->ReadAuditTrail(actor, record_id));
    merged.insert(merged.end(), std::make_move_iterator(events.begin()),
                  std::make_move_iterator(events.end()));
  }
  return merged;
}

Result<std::vector<CustodyEvent>> ShardedVault::GetCustodyChain(
    const PrincipalId& actor, const RecordId& record_id) {
  MEDVAULT_ASSIGN_OR_RETURN(uint32_t k, RouteRecordId(record_id));
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
  return s->GetCustodyChain(actor, record_id);
}

Result<std::vector<AuditEvent>> ShardedVault::AccountingOfDisclosures(
    const PrincipalId& actor, const PrincipalId& patient_id) {
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s,
                            RequireShard(router_.ShardOf(patient_id)));
  return s->AccountingOfDisclosures(actor, patient_id);
}

Result<std::vector<AuditEvent>> ShardedVault::ListBreakGlassEvents(
    const PrincipalId& actor) {
  std::vector<AuditEvent> merged;
  for (uint32_t k = 0; k < num_shards(); ++k) {
    Vault* s = shard(k);
    if (s == nullptr) continue;
    MEDVAULT_ASSIGN_OR_RETURN(auto events, s->ListBreakGlassEvents(actor));
    merged.insert(merged.end(), std::make_move_iterator(events.begin()),
                  std::make_move_iterator(events.end()));
  }
  return merged;
}

// ---------------------------------------------------------------------------
// Verification & introspection
// ---------------------------------------------------------------------------

Status ShardedVault::VerifyRecord(const RecordId& record_id) const {
  MEDVAULT_ASSIGN_OR_RETURN(uint32_t k, RouteRecordId(record_id));
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
  return s->VerifyRecord(record_id);
}

Status ShardedVault::VerifyEverything() const {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.verify, "sharded.verify");
  // Verifies what is serving: quarantined shards are skipped (their
  // damage is already known and tracked; verify them via ScrubShard).
  for (uint32_t k = 0; k < num_shards(); ++k) {
    const Vault* s = shard(k);
    if (s == nullptr) continue;
    MEDVAULT_RETURN_IF_ERROR(s->VerifyEverything());
  }
  return Status::OK();
}

std::string ShardedVault::ContentRoot() const {
  // NOTE: quarantined shards contribute nothing, so a degraded root is
  // only comparable against another vault with the same quarantine set.
  crypto::MerkleTree tree(/*memoize=*/false);
  for (uint32_t k = 0; k < num_shards(); ++k) {
    const Vault* s = shard(k);
    if (s == nullptr) continue;
    tree.Append(s->ContentRoot());
  }
  return tree.Root();
}

Result<RecordMeta> ShardedVault::GetRecordMeta(
    const RecordId& record_id) const {
  MEDVAULT_ASSIGN_OR_RETURN(uint32_t k, RouteRecordId(record_id));
  MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
  return s->GetRecordMeta(record_id);
}

std::vector<RecordId> ShardedVault::ListRecordIds() const {
  std::vector<RecordId> merged;
  for (uint32_t k = 0; k < num_shards(); ++k) {
    const Vault* s = shard(k);
    if (s == nullptr) continue;
    auto ids = s->ListRecordIds();
    merged.insert(merged.end(), std::make_move_iterator(ids.begin()),
                  std::make_move_iterator(ids.end()));
  }
  return merged;
}

Status ShardedVault::RotateMasterKey(const PrincipalId& actor,
                                     const Slice& new_master_key) {
  if (new_master_key.size() != 32) {
    return Status::InvalidArgument("master key must be 32 bytes");
  }
  // Rotation must reach EVERY shard or none: a quarantined shard would
  // silently stay on the old master and fail to open after rejoin, so
  // RequireShard turns that into an up-front refusal.
  for (uint32_t k = 0; k < num_shards(); ++k) {
    MEDVAULT_ASSIGN_OR_RETURN(Vault * s, RequireShard(k));
    MEDVAULT_ASSIGN_OR_RETURN(
        std::string shard_master,
        crypto::HkdfSha256(new_master_key, Slice(),
                           "medvault-shard-master-" + std::to_string(k), 32));
    MEDVAULT_RETURN_IF_ERROR(s->RotateMasterKey(actor, shard_master));
  }
  return Status::OK();
}

RecordCache::Stats ShardedVault::CacheStats() const {
  if (cache_ == nullptr) return RecordCache::Stats{};
  return cache_->stats();
}

}  // namespace medvault::core
