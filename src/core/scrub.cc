#include "core/scrub.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/coding.h"
#include "common/crc32c.h"
#include "storage/log_format.h"

namespace medvault::core {

namespace {

constexpr size_t kFrameHeaderSize = 8;  // crc32c(4) + length(4)

bool AllZero(const char* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

void AddRange(FileScrubResult* out, uint64_t offset, uint64_t length) {
  out->verdict = ScrubVerdict::kCorrupt;
  // Coalesce with the previous range when contiguous, so a multi-frame
  // blast radius reads as one range.
  if (!out->corrupt_ranges.empty()) {
    CorruptRange& back = out->corrupt_ranges.back();
    if (back.offset + back.length == offset) {
      back.length += length;
      return;
    }
  }
  out->corrupt_ranges.push_back(CorruptRange{offset, length});
}

void AppendDetail(FileScrubResult* out, const std::string& note) {
  if (!out->detail.empty()) out->detail += "; ";
  out->detail += note;
}

bool ParseSegmentId(const std::string& name, uint64_t* id) {
  return sscanf(name.c_str(), "seg-%08" PRIu64, id) == 1;
}

}  // namespace

const char* ScrubVerdictName(ScrubVerdict v) {
  switch (v) {
    case ScrubVerdict::kClean:
      return "clean";
    case ScrubVerdict::kCorrupt:
      return "corrupt";
    case ScrubVerdict::kMissing:
      return "missing";
    case ScrubVerdict::kOrphan:
      return "orphan";
  }
  return "unknown";
}

std::vector<std::string> ScrubReport::DamagedFiles() const {
  std::vector<std::string> out;
  for (const FileScrubResult& f : files) {
    if (f.verdict == ScrubVerdict::kCorrupt ||
        f.verdict == ScrubVerdict::kMissing) {
      out.push_back(f.path);
    }
  }
  return out;
}

std::vector<std::string> ScrubReport::OrphanFiles() const {
  std::vector<std::string> out;
  for (const FileScrubResult& f : files) {
    if (f.verdict == ScrubVerdict::kOrphan) out.push_back(f.path);
  }
  return out;
}

const FileScrubResult* ScrubReport::Find(const std::string& path) const {
  for (const FileScrubResult& f : files) {
    if (f.path == path) return &f;
  }
  return nullptr;
}

std::string ScrubReport::Summary() const {
  char head[256];
  snprintf(head, sizeof(head),
           "scrub %s: %" PRIu64 " files, %" PRIu64 " bytes, %" PRIu64
           " damaged, %" PRIu64 " orphaned",
           dir.c_str(), files_scanned, bytes_scanned, corrupt_files,
           orphan_files);
  std::string out = head;
  for (const FileScrubResult& f : files) {
    if (f.verdict == ScrubVerdict::kClean) continue;
    out += "\n  ";
    out += f.path;
    out += ": ";
    out += ScrubVerdictName(f.verdict);
    for (const CorruptRange& r : f.corrupt_ranges) {
      char buf[64];
      snprintf(buf, sizeof(buf), " [%" PRIu64 ",+%" PRIu64 ")", r.offset,
               r.length);
      out += buf;
    }
    if (!f.detail.empty()) {
      out += " (" + f.detail + ")";
    }
  }
  if (!deep_status.ok()) {
    out += "\n  deep verification: " + deep_status.ToString();
  }
  return out;
}

void Scrubber::ScrubSegmentData(const Slice& data, bool is_active,
                                FileScrubResult* out) {
  const char* base = data.data();
  const uint64_t n = data.size();
  uint64_t offset = 0;
  while (offset + kFrameHeaderSize <= n) {
    const uint32_t stored = DecodeFixed32(base + offset);
    const uint32_t length = DecodeFixed32(base + offset + 4);
    if (offset + kFrameHeaderSize + length > n) {
      // The frame claims bytes past EOF. In the active (highest-id)
      // segment that is the torn tail of a crashed append, which crash
      // recovery truncates; in a sealed segment nothing may be torn, so
      // it is damage (e.g. a bit flip inside this length field).
      if (is_active) {
        AppendDetail(out, "torn tail frame");
      } else {
        AddRange(out, offset, n - offset);
        AppendDetail(out, "frame extends past EOF in sealed segment");
      }
      return;
    }
    const uint32_t actual =
        crc32c::Mask(crc32c::Value(base + offset + kFrameHeaderSize, length));
    if (actual != stored) {
      AddRange(out, offset, kFrameHeaderSize + length);
      AppendDetail(out, "frame crc mismatch");
      // The length field still framed a plausible payload, so resync at
      // the next frame boundary to localize the damage.
    }
    offset += kFrameHeaderSize + length;
  }
  if (offset < n) {
    if (is_active) {
      AppendDetail(out, "torn tail frame header");
    } else {
      AddRange(out, offset, n - offset);
      AppendDetail(out, "trailing partial frame in sealed segment");
    }
  }
}

void Scrubber::ScrubLogData(const Slice& data, FileScrubResult* out) {
  using storage::log::kBlockSize;
  using storage::log::kHeaderSize;
  using storage::log::kMaxRecordType;
  const char* base = data.data();
  const uint64_t n = data.size();
  for (uint64_t block = 0; block < n; block += kBlockSize) {
    const uint64_t avail = std::min<uint64_t>(kBlockSize, n - block);
    const bool last_block = block + avail == n;
    uint64_t p = 0;
    while (p + kHeaderSize <= avail) {
      const char* header = base + block + p;
      const uint32_t stored = DecodeFixed32(header);
      const uint32_t length = static_cast<uint8_t>(header[4]) |
                              (static_cast<uint8_t>(header[5]) << 8);
      const int type = static_cast<uint8_t>(header[6]);
      if (type == 0 && length == 0) {
        // Zero trailer: the writer pads the rest of the block with
        // zeros. Anything non-zero in the padding is rot the reader
        // would silently skip — flag it so repair restores the file.
        if (!AllZero(header, avail - p)) {
          AddRange(out, block + p, avail - p);
          AppendDetail(out, "non-zero bytes in block trailer");
        }
        break;  // rest of block is padding
      }
      if (p + kHeaderSize + length > avail) {
        // Record claims bytes past the block end. At EOF that is the
        // torn tail of a crashed append (recovery truncates it);
        // anywhere else it is damage.
        if (last_block) {
          AppendDetail(out, "torn tail record");
          return;
        }
        AddRange(out, block + p, avail - p);
        AppendDetail(out, "record extends past block end");
        break;  // resync at the next block boundary
      }
      const uint32_t actual =
          crc32c::Mask(crc32c::Value(header + 6, 1 + length));
      if (actual != stored || type > kMaxRecordType) {
        AddRange(out, block + p, kHeaderSize + length);
        AppendDetail(out, actual != stored ? "record crc mismatch"
                                           : "invalid record type");
        // Length framed a plausible record: resync after it.
      }
      p += kHeaderSize + length;
    }
    // Fewer than kHeaderSize bytes left in the block: the writer
    // zero-pads full blocks; at EOF a partial header is a torn tail.
    if (p < avail && p + kHeaderSize > avail) {
      if (last_block) {
        if (!AllZero(base + block + p, avail - p)) {
          AppendDetail(out, "torn tail header");
        }
      } else if (!AllZero(base + block + p, avail - p)) {
        AddRange(out, block + p, avail - p);
        AppendDetail(out, "non-zero bytes in block padding");
      }
    }
  }
}

const std::vector<std::string>& Scrubber::ExpectedArtifacts() {
  static const std::vector<std::string> kExpected = {
      "audit.log",      "catalog.log", "index.log",
      "provenance.log", "keys.db",     "state.log",
  };
  return kExpected;
}

Result<ScrubReport> Scrubber::ScrubVaultDir(storage::Env* env,
                                            const std::string& dir,
                                            Timestamp now) {
  ScrubReport report;
  report.dir = dir;
  report.scrubbed_at = now;

  std::vector<std::string> children;
  MEDVAULT_RETURN_IF_ERROR(env->GetChildren(dir, &children));

  auto scan_file = [&](const std::string& rel, bool is_segment,
                       bool is_active) {
    FileScrubResult r;
    r.path = rel;
    std::string contents;
    Status s = storage::ReadFileToString(env, dir + "/" + rel, &contents);
    if (!s.ok()) {
      r.verdict =
          s.IsNotFound() ? ScrubVerdict::kMissing : ScrubVerdict::kCorrupt;
      r.detail = "unreadable: " + s.ToString();
      report.files.push_back(std::move(r));
      return;
    }
    r.bytes = contents.size();
    report.files_scanned++;
    report.bytes_scanned += contents.size();
    if (is_segment) {
      ScrubSegmentData(Slice(contents), is_active, &r);
    } else {
      ScrubLogData(Slice(contents), &r);
    }
    report.files.push_back(std::move(r));
  };

  const std::vector<std::string>& expected = ExpectedArtifacts();
  bool initialized = false;
  bool has_segments_dir = false;
  for (const std::string& name : children) {
    if (name == "." || name == "..") continue;
    if (name == "segments") {
      has_segments_dir = true;
      initialized = true;
      continue;
    }
    if (std::find(expected.begin(), expected.end(), name) != expected.end()) {
      initialized = true;
      scan_file(name, /*is_segment=*/false, /*is_active=*/false);
      continue;
    }
    FileScrubResult r;
    r.path = name;
    r.verdict = ScrubVerdict::kOrphan;
    uint64_t size = 0;
    if (env->GetFileSize(dir + "/" + name, &size).ok()) r.bytes = size;
    r.detail = name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0
                   ? "temporary file (crash leftover)"
                   : "unrecognized file";
    report.files.push_back(std::move(r));
  }

  if (has_segments_dir) {
    std::vector<std::string> segs;
    MEDVAULT_RETURN_IF_ERROR(env->GetChildren(dir + "/segments", &segs));
    uint64_t max_id = 0;
    for (const std::string& name : segs) {
      uint64_t id = 0;
      if (ParseSegmentId(name, &id) && id > max_id) max_id = id;
    }
    for (const std::string& name : segs) {
      if (name == "." || name == "..") continue;
      uint64_t id = 0;
      if (ParseSegmentId(name, &id)) {
        scan_file("segments/" + name, /*is_segment=*/true,
                  /*is_active=*/id == max_id);
      } else {
        FileScrubResult r;
        r.path = "segments/" + name;
        r.verdict = ScrubVerdict::kOrphan;
        r.detail = "unrecognized file in segments/";
        report.files.push_back(std::move(r));
      }
    }
  }

  if (initialized) {
    for (const std::string& want : expected) {
      bool found = false;
      for (const FileScrubResult& f : report.files) {
        if (f.path == want) {
          found = true;
          break;
        }
      }
      if (!found) {
        FileScrubResult r;
        r.path = want;
        r.verdict = ScrubVerdict::kMissing;
        r.detail = "expected vault artifact is absent";
        report.files.push_back(std::move(r));
      }
    }
  }

  std::sort(report.files.begin(), report.files.end(),
            [](const FileScrubResult& a, const FileScrubResult& b) {
              return a.path < b.path;
            });
  for (const FileScrubResult& f : report.files) {
    if (f.verdict == ScrubVerdict::kCorrupt ||
        f.verdict == ScrubVerdict::kMissing) {
      report.corrupt_files++;
    } else if (f.verdict == ScrubVerdict::kOrphan) {
      report.orphan_files++;
    }
  }
  return report;
}

}  // namespace medvault::core
