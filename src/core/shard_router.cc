#include "core/shard_router.h"

#include <charconv>

namespace medvault::core {

namespace {

constexpr char kManifestName[] = "/shards.meta";
constexpr char kManifestMagic[] = "medvault-shards v1\n";

}  // namespace

uint64_t ShardRouter::Fingerprint(const std::string& id) {
  // FNV-1a, 64-bit: offset basis / prime per the published spec.
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : id) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string ShardRouter::ShardDir(const std::string& root, uint32_t shard) {
  return root + "/shard-" + std::to_string(shard);
}

std::string ShardRouter::RecordIdPrefix(uint32_t shard) {
  std::string prefix = "s";
  prefix += std::to_string(shard);
  prefix += "-r";
  return prefix;
}

bool ShardRouter::ShardOfRecordId(const RecordId& record_id,
                                  uint32_t* shard) {
  // "s<digits>-r-<n>": parse the digits, then demand the "-r-" spine so
  // arbitrary "s..." strings are not misrouted.
  if (record_id.size() < 5 || record_id[0] != 's') return false;
  const char* first = record_id.data() + 1;
  const char* last = record_id.data() + record_id.size();
  uint32_t k = 0;
  auto [ptr, ec] = std::from_chars(first, last, k, 10);
  if (ec != std::errc() || ptr == first) return false;
  if (last - ptr < 3 || ptr[0] != '-' || ptr[1] != 'r' || ptr[2] != '-') {
    return false;
  }
  *shard = k;
  return true;
}

std::string ShardRouter::ConsentIdPrefix(uint32_t shard) {
  std::string prefix = "s";
  prefix += std::to_string(shard);
  prefix += "-cg";
  return prefix;
}

bool ShardRouter::ShardOfConsentId(const std::string& grant_id,
                                   uint32_t* shard) {
  // "s<digits>-cg-<n>": same shape as ShardOfRecordId with a "-cg-"
  // spine, so unsharded "cg-<n>" ids never misroute.
  if (grant_id.size() < 6 || grant_id[0] != 's') return false;
  const char* first = grant_id.data() + 1;
  const char* last = grant_id.data() + grant_id.size();
  uint32_t k = 0;
  auto [ptr, ec] = std::from_chars(first, last, k, 10);
  if (ec != std::errc() || ptr == first) return false;
  if (last - ptr < 4 || ptr[0] != '-' || ptr[1] != 'c' || ptr[2] != 'g' ||
      ptr[3] != '-') {
    return false;
  }
  *shard = k;
  return true;
}

Status ShardRouter::WriteManifest(storage::Env* env, const std::string& root,
                                  uint32_t num_shards) {
  std::string contents = kManifestMagic;
  contents += "count=" + std::to_string(num_shards) + "\n";
  // Write-new-then-rename: a power cut during the write leaves at worst
  // a torn .tmp that no reader ever opens — the manifest itself is
  // either absent (rewritten on next open) or complete. A torn manifest
  // must never wedge the vault.
  const std::string path = root + kManifestName;
  const std::string tmp = path + ".tmp";
  MEDVAULT_RETURN_IF_ERROR(
      storage::WriteStringToFile(env, contents, tmp, /*sync=*/true));
  return env->RenameFile(tmp, path);
}

Result<uint32_t> ShardRouter::ReadManifest(storage::Env* env,
                                           const std::string& root) {
  const std::string path = root + kManifestName;
  if (!env->FileExists(path)) {
    return Status::NotFound("no shard manifest at " + path);
  }
  std::string contents;
  MEDVAULT_RETURN_IF_ERROR(storage::ReadFileToString(env, path, &contents));
  const std::string magic = kManifestMagic;
  if (contents.compare(0, magic.size(), magic) != 0) {
    return Status::Corruption("bad shard manifest magic in " + path);
  }
  const std::string key = "count=";
  size_t pos = contents.find(key, magic.size());
  if (pos == std::string::npos) {
    return Status::Corruption("shard manifest missing count in " + path);
  }
  const char* first = contents.data() + pos + key.size();
  const char* last = contents.data() + contents.size();
  uint32_t count = 0;
  auto [ptr, ec] = std::from_chars(first, last, count, 10);
  if (ec != std::errc() || ptr == first || count == 0) {
    return Status::Corruption("malformed shard count in " + path);
  }
  return count;
}

}  // namespace medvault::core
