#ifndef MEDVAULT_CORE_REPLICATION_H_
#define MEDVAULT_CORE_REPLICATION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/worker_pool.h"
#include "core/sharded_vault.h"
#include "core/vault.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "storage/env.h"

namespace medvault::core {

/// Verified log shipping to warm standbys (ROADMAP item 1; the paper's
/// availability requirement at production scale).
///
/// Model: the primary's on-disk artifacts are append-only streams
/// (record segments, catalog, index, audit, provenance, state log, key
/// log), so replication is byte shipping, not operation shipping. A
/// `ReplicationSource` cuts a `ShippedBatch` at a group-commit window
/// boundary — under the vault's exclusive lock, immediately after a
/// full sync wave — so every shipped byte is durable and the cut is a
/// crash-consistent prefix of the primary. A `ReplicaApplier` appends
/// the chunks to a standby directory, refusing any batch whose
/// recomputed Merkle root over the chunk bytes disagrees with the root
/// the primary authenticated into the batch header (the same
/// root-equality discipline Migration receipts use).
///
/// Trust boundary: a shipped batch is UNTRUSTED INPUT until the header
/// authenticates (HMAC under a key both sides derive from the shared
/// vault entropy) and the chunk Merkle root matches. Tamper or a torn
/// transfer quarantines the replica exactly like a bad shard: sticky,
/// and promotion is refused until an operator intervenes.
///
/// The cursor protocol is pull-shaped and stateless on the wire: the
/// replica describes what it holds (per-file size + prefix hash), the
/// source answers with verified deltas. A replica's own files ARE its
/// cursor, so replica restarts need no handshake and re-applies are
/// idempotent.

/// What a replica holds, per artifact file: size and SHA-256 of the
/// whole prefix. Authenticated so the primary's cut endpoint only
/// answers holders of the shared replication secret.
struct ReplicationCursor {
  struct FileState {
    uint64_t size = 0;
    std::string prefix_hash;  ///< SHA-256 of the first `size` bytes
  };
  /// Relative path ("audit.log", "segments/seg-00000001") -> state.
  std::map<std::string, FileState> files;
  std::string auth;  ///< HMAC-SHA256 over SignedPayload()

  std::string SignedPayload() const;
  std::string Encode() const;
  static Result<ReplicationCursor> Decode(const Slice& data);

  uint64_t TotalBytes() const;
};

/// One file mutation inside a shipped batch.
struct FileChunk {
  enum Kind : uint8_t {
    kAppend = 1,   ///< append `data` at `offset` (== replica's file size)
    kReplace = 2,  ///< replace the whole file with `data` (rare: the
                   ///< primary rewrote the file, e.g. key-log compaction
                   ///< after a crypto-shred, or the replica's prefix
                   ///< could not be verified)
    kRemove = 3,   ///< delete the file (segment reclamation)
  };
  uint8_t kind = kAppend;
  std::string path;  ///< relative to the vault directory
  uint64_t offset = 0;
  std::string data;

  /// Canonical encoding; also the Merkle leaf preimage.
  std::string Encode() const;
  static Result<FileChunk> Decode(const Slice& data);
};

/// One verified unit of shipping: every chunk the replica needs to
/// advance from its cursor to the primary's current durable state.
struct ShippedBatch {
  uint64_t seq = 0;            ///< monotonic per source instance
  std::string source_system;   ///< primary's system_id
  Timestamp created_at = 0;
  uint64_t source_bytes = 0;   ///< primary's total artifact bytes at cut
  uint64_t lag_at_cut = 0;     ///< source_bytes minus cursor bytes
  uint64_t audit_size = 0;     ///< primary audit tree size at cut
  std::string audit_root;      ///< primary audit Merkle root at cut
  std::string chunks_root;     ///< Merkle root over the chunk leaf hashes
  /// Per-chunk Merkle leaf hashes, covered by chunks_root; lets the
  /// applier pinpoint WHICH chunk was tampered with, not just that one
  /// was.
  std::vector<std::string> leaf_hashes;
  std::vector<FileChunk> chunks;
  /// HMAC-SHA256 over SignedHeader() — authenticates the roots; the
  /// chunk bytes themselves are bound by chunks_root.
  std::string auth;

  std::string SignedHeader() const;
  std::string Encode() const;
  static Result<ShippedBatch> Decode(const Slice& data);

  uint64_t PayloadBytes() const;
};

/// Both ends derive the batch-authentication key from the vault entropy
/// they must already share (a standby that cannot decrypt records could
/// never be promoted). HKDF keeps it purpose-separated from every other
/// derived secret.
std::string DeriveReplicationAuthKey(const Slice& entropy);

/// Computes the cursor for a (possibly partial, possibly absent) vault
/// directory by scanning and hashing its artifacts. Used by appliers at
/// startup; fresh directories yield an empty cursor.
Result<ReplicationCursor> CursorForVaultDir(storage::Env* env,
                                            const std::string& dir,
                                            const Slice& auth_key);

/// Primary-side batch cutter for one vault. Thread-safe; cuts are
/// serialized internally and each runs under the vault's exclusive
/// lock after a full sync wave (Vault::WithQuiescedStore), so a batch
/// is always a durable crash-consistent prefix.
///
/// Incremental cost: the source keeps a running SHA-256 per append-only
/// artifact plus the sizes of previous cut boundaries, so steady-state
/// cuts read only the delta. Files the primary rewrote (key-log
/// compaction, catalog rewrite — detected via rewrite generations) and
/// cursors that do not match a known boundary fall back to verified
/// full-file replacement.
class ReplicationSource {
 public:
  explicit ReplicationSource(Vault* vault);

  ReplicationSource(const ReplicationSource&) = delete;
  ReplicationSource& operator=(const ReplicationSource&) = delete;

  /// Cuts the delta batch that advances `cursor` to the primary's
  /// current durable state. Does NOT verify cursor.auth (in-process
  /// callers are already inside the trust boundary) — the HTTP entry
  /// point HandleCutRequest does.
  Result<ShippedBatch> CutBatch(const ReplicationCursor& cursor);

  /// Wire entry point: decodes `encoded_cursor`, verifies its HMAC
  /// (kPermissionDenied otherwise — the caller never learns vault
  /// bytes without the shared secret), cuts, returns the encoded batch.
  Result<std::string> HandleCutRequest(const Slice& encoded_cursor);

  uint64_t batches_shipped() const;
  uint64_t bytes_shipped() const;
  /// Replica backlog observed at the most recent cut, in bytes.
  uint64_t last_lag_bytes() const;

 private:
  struct TrackedFile {
    uint64_t hashed = 0;         ///< bytes absorbed into `ctx`
    crypto::Sha256 ctx;          ///< running hash of the prefix
    /// Cut-boundary prefix hashes: size -> SHA-256. A cursor matching
    /// one of these gets an append delta; anything else gets kReplace.
    std::map<uint64_t, std::string> boundaries;
  };

  Status ExtendTracked(const std::string& rel, uint64_t target_size,
                       TrackedFile* t);
  Result<std::string> ReadRange(const std::string& rel, uint64_t offset,
                                uint64_t length) const;
  Status CutLocked(const ReplicationCursor& cursor, ShippedBatch* out);

  Vault* vault_;
  std::string auth_key_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* ship_batches_;
  obs::Counter* ship_bytes_;
  obs::Gauge* ship_lag_;

  mutable std::mutex mu_;
  uint64_t next_seq_ = 1;
  uint64_t last_keystore_generation_ = 0;
  uint64_t last_catalog_generation_ = 0;
  std::map<std::string, TrackedFile> tracked_;
};

/// Standby-side applier for one vault directory. Appends verified
/// batches; refuses tampered or torn ones with tamper evidence and a
/// sticky quarantine. An instance is process-scoped: after a replica
/// crash, construct a fresh one — its state (the applied-offset cursor)
/// rebuilds from the directory itself.
///
/// The applied-offset cursor only advances after a batch has fully
/// applied AND synced; a failed mid-batch append leaves it untouched
/// and the next Apply resumes idempotently from the on-disk truth.
class ReplicaApplier {
 public:
  struct Options {
    storage::Env* env = nullptr;    ///< required
    std::string dir;                ///< required; standby vault directory
    std::string entropy;            ///< required; the primary's entropy
    obs::MetricsRegistry* metrics = nullptr;  ///< null = process default
  };

  static Result<std::unique_ptr<ReplicaApplier>> Open(const Options& options);

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  /// The authenticated cursor describing what this replica holds.
  Result<ReplicationCursor> Cursor() const;

  /// Verifies and applies one batch. Error taxonomy:
  ///   kTamperDetected      bad HMAC / Merkle root / chunk hash, torn
  ///                        batch encoding, or replica bytes ahead of
  ///                        the shipped stream -> replica QUARANTINES
  ///   kFailedPrecondition  stale seq or a cursor gap (re-cut from a
  ///                        fresh Cursor()), or already quarantined
  ///   other                I/O failure; cursor NOT advanced, the next
  ///                        Apply resumes from on-disk state
  Status Apply(const ShippedBatch& batch);
  Status ApplyEncoded(const Slice& encoded);

  bool quarantined() const;
  std::string quarantine_reason() const;
  /// Sidelines the replica (sticky until ClearQuarantine). Also used by
  /// the sharded promotion gate to park a divergent shard replica.
  void Quarantine(const std::string& reason);
  /// Operator override after manual repair (mirrors shard rejoin).
  void ClearQuarantine();

  uint64_t applied_batches() const;
  uint64_t applied_bytes() const;
  /// Backlog vs the most recently applied batch's source state; 0 when
  /// caught up to that cut.
  uint64_t lag_bytes() const;
  uint64_t last_applied_seq() const;
  /// The primary's audit root/size as of the last applied batch — what
  /// a freshly promoted vault must extend.
  std::string last_audit_root() const;
  uint64_t last_audit_size() const;

  /// Serves authenticated reads without disturbing the byte-exact
  /// replica: copies the directory to `view_dir` and opens a Vault
  /// there (reads append audit events, which must not diverge the
  /// replica from the shipped stream). `base` carries env/clock/keys;
  /// dir is overridden.
  Result<std::unique_ptr<Vault>> OpenReadView(const VaultOptions& base,
                                              const std::string& view_dir);

  /// Promotion: the scrub gate plus the ordinary crash-recovery open.
  /// A structurally damaged replica QUARANTINES instead of promoting —
  /// same policy as a bad shard. On success the returned vault serves
  /// as the new primary; callers verify ContentRoot equality against
  /// whatever survives of the old one.
  Result<std::unique_ptr<Vault>> Promote(const VaultOptions& base);

  const std::string& dir() const { return options_.dir; }

 private:
  explicit ReplicaApplier(Options options);
  Status Init();
  Status ScanExisting();
  Status VerifyBatch(const ShippedBatch& batch) const;
  Status ApplyChunk(const FileChunk& chunk,
                    std::vector<std::string>* touched);
  Status ReprobeFile(const std::string& rel);
  std::string AbsPath(const std::string& rel) const;
  void QuarantineLocked(const std::string& reason);

  Options options_;
  std::string auth_key_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* apply_batches_;
  obs::Counter* apply_bytes_;
  obs::Counter* apply_refused_;
  obs::Gauge* lag_gauge_;
  obs::Gauge* quarantined_gauge_;

  mutable std::mutex mu_;
  bool quarantined_ = false;
  bool promoted_ = false;
  std::string quarantine_reason_;
  uint64_t applied_batches_ = 0;
  uint64_t applied_bytes_ = 0;
  uint64_t lag_bytes_ = 0;
  uint64_t last_applied_seq_ = 0;
  std::string last_audit_root_;
  uint64_t last_audit_size_ = 0;
  uint64_t view_count_ = 0;

  struct AppliedFile {
    uint64_t size = 0;
    crypto::Sha256 ctx;  ///< running hash of the on-disk prefix
    std::unique_ptr<storage::WritableFile> writer;  ///< cached appender
  };
  /// The applied-offset cursor. Advanced only post-apply+sync; a file
  /// whose write failed is dropped and re-probed from disk.
  std::map<std::string, AppliedFile> files_;
};

/// Per-shard fan-out of ReplicationSource over a ShardedVault: one
/// stream per shard, cut concurrently on the vault's ingest pool.
class ShardedReplicationSource {
 public:
  explicit ShardedReplicationSource(ShardedVault* vault);

  ShardedReplicationSource(const ShardedReplicationSource&) = delete;
  ShardedReplicationSource& operator=(const ShardedReplicationSource&) =
      delete;

  uint32_t num_shards() const { return vault_->num_shards(); }

  /// Cuts one batch per healthy shard (`cursors` indexed by shard; a
  /// quarantined shard yields no batch — its slot stays empty with
  /// seq 0). Shards cut concurrently on the vault's worker pool.
  Result<std::vector<ShippedBatch>> CutAll(
      const std::vector<ReplicationCursor>& cursors);

  /// Wire entry point for one shard's stream.
  Result<std::string> HandleCutRequest(uint32_t shard,
                                       const Slice& encoded_cursor);

  ReplicationSource* shard_source(uint32_t k) {
    return k < sources_.size() ? sources_[k].get() : nullptr;
  }

  uint64_t batches_shipped() const;
  uint64_t bytes_shipped() const;
  uint64_t lag_bytes() const;

 private:
  ShardedVault* vault_;
  std::vector<std::unique_ptr<ReplicationSource>> sources_;
};

/// Per-shard fan-out of ReplicaApplier for a sharded standby: the
/// replica directory mirrors the primary's layout (shards.meta +
/// shard-<k>/), applies fan out on a private worker pool, and promotion
/// runs the scrub gate shard by shard, quarantining divergent shards
/// and opening the rest degraded.
class ShardedReplicaApplier {
 public:
  struct Options {
    storage::Env* env = nullptr;
    std::string dir;
    std::string entropy;  ///< the primary ShardedVault's (top) entropy
    uint32_t num_shards = 1;
    obs::MetricsRegistry* metrics = nullptr;
    /// 1 = apply shard batches sequentially (deterministic for crash
    /// matrices); 0 = min(num_shards, hardware threads).
    unsigned apply_threads = 0;
  };

  static Result<std::unique_ptr<ShardedReplicaApplier>> Open(
      const Options& options);

  ShardedReplicaApplier(const ShardedReplicaApplier&) = delete;
  ShardedReplicaApplier& operator=(const ShardedReplicaApplier&) = delete;

  uint32_t num_shards() const { return options_.num_shards; }
  ReplicaApplier* shard(uint32_t k) {
    return k < appliers_.size() ? appliers_[k].get() : nullptr;
  }

  /// Cursors for every shard, indexed by shard.
  Result<std::vector<ReplicationCursor>> Cursors() const;

  /// Applies one batch per shard (empty/seq-0 slots are skipped),
  /// fanned out on the pool. Returns the first failure; other shards
  /// still complete their applies.
  Status ApplyAll(const std::vector<ShippedBatch>& batches);

  bool any_quarantined() const;
  uint32_t quarantined_shards() const;
  uint64_t lag_bytes() const;
  uint64_t applied_batches() const;

  /// Sharded promotion: structural scrub gate per shard (divergent
  /// shards quarantine and stay down), then the ordinary degraded
  /// ShardedVault::Open. `base` carries env/clock/keys; dir and
  /// num_shards are overridden to the replica's.
  Result<std::unique_ptr<ShardedVault>> Promote(
      const ShardedVaultOptions& base);

 private:
  explicit ShardedReplicaApplier(Options options);

  Options options_;
  std::vector<std::unique_ptr<ReplicaApplier>> appliers_;
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_REPLICATION_H_
