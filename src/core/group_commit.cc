#include "core/group_commit.h"

#include <chrono>
#include <thread>
#include <utility>

namespace medvault::core {

GroupCommitter::GroupCommitter(std::function<Status()> sync_fn)
    : GroupCommitter(std::move(sync_fn), Options()) {}

GroupCommitter::GroupCommitter(std::function<Status()> sync_fn,
                               Options options)
    : sync_fn_(std::move(sync_fn)),
      window_micros_(options.window_micros),
      sleeper_(std::move(options.sleeper)) {
  obs::MetricsRegistry* metrics = options.metrics != nullptr
                                      ? options.metrics
                                      : obs::MetricsRegistry::Default();
  ops_counter_ = metrics->GetCounter(options.metric_prefix + ".ops");
  syncs_counter_ = metrics->GetCounter(options.metric_prefix + ".syncs");
  coalesced_counter_ =
      metrics->GetCounter(options.metric_prefix + ".coalesced");
}

Status GroupCommitter::Commit() {
  ops_counter_->Increment();
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t my_ticket = ++arrivals_;
  ++stats_.ops;
  for (;;) {
    // Covered by a wave that already completed successfully — the
    // barrier ran after our writes, so they are durable.
    if (synced_through_ >= my_ticket) {
      ++stats_.coalesced;
      coalesced_counter_->Increment();
      return Status::OK();
    }
    // Our cohort's wave ran and failed: report it. A *later* wave
    // succeeding would have flipped synced_through_ past us above.
    if (last_wave_end_ >= my_ticket && !last_wave_status_.ok()) {
      ++stats_.coalesced;
      coalesced_counter_->Increment();
      return last_wave_status_;
    }
    if (!leader_active_) break;  // wave in flight doesn't cover us: lead next
    cv_.wait(lock);
  }

  // Leader: linger for cohort pickup, then run one wave for every
  // ticket issued by the time the sync starts.
  leader_active_ = true;
  if (window_micros_ > 0) {
    lock.unlock();
    if (sleeper_) {
      sleeper_(window_micros_);
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(window_micros_));
    }
    lock.lock();
  }
  const uint64_t wave_end = arrivals_;
  lock.unlock();

  Status wave_status = sync_fn_();

  lock.lock();
  last_wave_end_ = wave_end;
  last_wave_status_ = wave_status;
  if (wave_status.ok() && wave_end > synced_through_) {
    synced_through_ = wave_end;
  }
  leader_active_ = false;
  ++stats_.waves;
  syncs_counter_->Increment();
  cv_.notify_all();
  return wave_status;
}

GroupCommitter::Stats GroupCommitter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace medvault::core
