#ifndef MEDVAULT_CORE_PROVENANCE_H_
#define MEDVAULT_CORE_PROVENANCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/record.h"
#include "storage/env.h"
#include "storage/log_writer.h"

namespace medvault::core {

/// Life events of a record relevant to chain of custody
/// (HIPAA §164.310(d)(2)(iii): "maintain a record of the movements of
/// hardware and electronic media and any person responsible therefore").
enum class CustodyEventType : uint8_t {
  kCreated = 1,
  kAccessed = 2,
  kCorrected = 3,
  kMigratedOut = 4,
  kMigratedIn = 5,
  kBackedUp = 6,
  kRestored = 7,
  kDisposed = 8,
  kCustodyTransferred = 9,
};

const char* CustodyEventTypeName(CustodyEventType type);

/// One link in a record's custody chain. Events of a record are
/// hash-chained (prev_hash = SHA-256 of the previous event's encoding),
/// so the chain's final hash commits to the full history and the chain
/// can be handed to a successor system at migration time and verified
/// there (paper §4: "current storage systems do not implement
/// trustworthy provenance").
struct CustodyEvent {
  RecordId record_id;
  CustodyEventType type = CustodyEventType::kCreated;
  PrincipalId actor;
  std::string system_id;  ///< which storage system performed the event
  Timestamp timestamp = 0;
  std::string details;
  std::string prev_hash;

  std::string Encode() const;
  static Result<CustodyEvent> Decode(const Slice& data);
};

/// Per-record custody chains on an append-only log.
class ProvenanceTracker {
 public:
  ProvenanceTracker(storage::Env* env, std::string path,
                    std::string system_id);

  ProvenanceTracker(const ProvenanceTracker&) = delete;
  ProvenanceTracker& operator=(const ProvenanceTracker&) = delete;

  /// Replays the custody log; a torn final event after an unclean
  /// shutdown is cut off.
  Status Open();

  /// Durability barrier on the custody log.
  Status Sync();

  /// The log file for batched sync waves (null before Open); the vault
  /// serializes appends against the wave.
  storage::WritableFile* sync_target();

  /// Appends an event to `record_id`'s chain; returns the event's hash
  /// (the new chain head).
  Result<std::string> RecordEvent(const RecordId& record_id,
                                  CustodyEventType type,
                                  const PrincipalId& actor,
                                  const std::string& details, Timestamp now);

  /// The full chain for a record, oldest first.
  Result<std::vector<CustodyEvent>> GetChain(const RecordId& record_id) const;

  /// Current chain-head hash ("" if the record has no events).
  std::string ChainHead(const RecordId& record_id) const;

  /// Recomputes and checks one record's hash chain.
  Status VerifyChain(const RecordId& record_id) const;

  /// Verifies every chain.
  Status VerifyAllChains() const;

  /// Serialized chain for handover to another system (migration).
  Result<std::string> ExportChain(const RecordId& record_id) const;

  /// Installs an imported chain (verifying it) for a record this system
  /// has not seen. Subsequent local events extend the imported chain.
  Status ImportChain(const RecordId& record_id, const Slice& data);

  const std::string& system_id() const { return system_id_; }
  size_t RecordCount() const { return chains_.size(); }

 private:
  static Status VerifyEvents(const std::vector<CustodyEvent>& events);

  storage::Env* env_;
  std::string path_;
  std::string system_id_;
  std::unique_ptr<storage::log::Writer> writer_;
  std::map<RecordId, std::vector<CustodyEvent>> chains_;
  std::map<RecordId, std::string> heads_;
  bool open_ = false;
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_PROVENANCE_H_
