#include "core/secure_index.h"

#include <algorithm>
#include <cctype>

#include "common/coding.h"
#include "crypto/aead.h"
#include "crypto/ctr.h"
#include "crypto/hmac.h"
#include "storage/log_reader.h"
#include "storage/log_recover.h"

namespace medvault::core {

SecureIndex::SecureIndex(storage::Env* env, std::string path,
                         const Slice& master_key, KeyStore* keystore)
    : env_(env),
      path_(std::move(path)),
      master_key_(master_key.ToString()),
      keystore_(keystore) {}

std::string SecureIndex::NormalizeTerm(const std::string& term) {
  std::string out;
  out.reserve(term.size());
  for (char c : term) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string SecureIndex::BlindTerm(const std::string& term) const {
  return crypto::HmacSha256(master_key_, "term:" + NormalizeTerm(term));
}

Status SecureIndex::Open() {
  storage::log::LogOpenResult res;
  MEDVAULT_RETURN_IF_ERROR(storage::log::OpenLogForAppend(
      env_, path_,
      [this](const Slice& record) -> Status {
        Slice in = record;
        std::string blind, key_ref, sealed;
        if (!GetLengthPrefixedString(&in, &blind) ||
            !GetLengthPrefixedString(&in, &key_ref) ||
            !GetLengthPrefixedString(&in, &sealed) || !in.empty()) {
          return Status::Corruption("malformed index posting");
        }
        postings_[blind].push_back(Posting{std::move(key_ref),
                                           std::move(sealed)});
        return Status::OK();
      },
      &res));
  writer_ = std::move(res.writer);
  open_ = true;
  return Status::OK();
}

Status SecureIndex::Sync() {
  if (!open_) return Status::FailedPrecondition("index not open");
  return writer_->Sync();
}

storage::WritableFile* SecureIndex::sync_target() {
  if (!open_) return nullptr;
  return writer_->file();
}

Status SecureIndex::AddPostings(const RecordId& record_id,
                                const std::vector<std::string>& terms) {
  return AddPostingsBatch({PostingBatch{record_id, terms}});
}

Status SecureIndex::AddPostingsBatch(const std::vector<PostingBatch>& batch) {
  if (!open_) return Status::FailedPrecondition("index not open");

  // Seal everything first, then commit with one coalesced log write; the
  // in-memory map is only updated once the bytes are down.
  struct PendingPosting {
    std::string blind;
    Posting posting;
  };
  std::vector<std::string> entries;
  std::vector<PendingPosting> pending;
  for (const PostingBatch& item : batch) {
    MEDVAULT_ASSIGN_OR_RETURN(std::string index_key,
                              keystore_->GetIndexKey(item.record_id));
    MEDVAULT_ASSIGN_OR_RETURN(std::string key_ref,
                              keystore_->GetKeyRef(item.record_id));
    crypto::Aead aead;
    MEDVAULT_RETURN_IF_ERROR(aead.Init(index_key));

    for (const std::string& term : item.terms) {
      std::string blind = BlindTerm(term);
      // Deterministic nonce: per (record key, term). Re-indexing the same
      // term for the same record reuses nonce AND plaintext, which leaks
      // only equality of identical postings — safe for CTR.
      std::string nonce_full =
          crypto::HmacSha256(index_key, "medvault-posting-nonce" + blind);
      Slice nonce(nonce_full.data(), crypto::kCtrNonceSize);
      MEDVAULT_ASSIGN_OR_RETURN(std::string sealed,
                                aead.Seal(nonce, item.record_id, blind));
      std::string entry;
      PutLengthPrefixed(&entry, blind);
      PutLengthPrefixed(&entry, key_ref);
      PutLengthPrefixed(&entry, sealed);
      entries.push_back(std::move(entry));
      pending.push_back(
          PendingPosting{std::move(blind), Posting{key_ref,
                                                   std::move(sealed)}});
    }
  }
  if (entries.empty()) return Status::OK();
  std::vector<Slice> slices(entries.begin(), entries.end());
  MEDVAULT_RETURN_IF_ERROR(writer_->AddRecords(slices.data(), slices.size()));
  for (PendingPosting& p : pending) {
    postings_[p.blind].push_back(std::move(p.posting));
  }
  return Status::OK();
}

Result<std::vector<RecordId>> SecureIndex::Search(
    const std::string& term) const {
  if (!open_) return Status::FailedPrecondition("index not open");
  std::vector<RecordId> results;
  auto it = postings_.find(BlindTerm(term));
  if (it == postings_.end()) return results;

  for (const Posting& posting : it->second) {
    auto record = keystore_->ResolveKeyRef(posting.key_ref);
    if (!record.ok()) continue;  // crypto-shredded: dead posting
    auto index_key = keystore_->GetIndexKey(*record);
    if (!index_key.ok()) continue;
    crypto::Aead aead;
    MEDVAULT_RETURN_IF_ERROR(aead.Init(*index_key));
    auto opened = aead.Open(posting.sealed_record_id, it->first);
    if (!opened.ok()) {
      // A posting that resolves but fails authentication is tampering,
      // not deletion.
      return Status::TamperDetected("index posting failed authentication");
    }
    if (*opened != *record) {
      return Status::TamperDetected("index posting names wrong record");
    }
    if (std::find(results.begin(), results.end(), *opened) ==
        results.end()) {
      results.push_back(*opened);
    }
  }
  return results;
}

Status SecureIndex::VerifyIntegrity() const {
  if (!open_) return Status::FailedPrecondition("index not open");
  std::unique_ptr<storage::SequentialFile> src;
  Status open_status = env_->NewSequentialFile(path_, &src);
  if (open_status.IsNotFound()) {
    return TotalPostingCount() == 0
               ? Status::OK()
               : Status::TamperDetected("index file missing");
  }
  MEDVAULT_RETURN_IF_ERROR(open_status);
  storage::log::Reader reader(std::move(src));
  std::string record;
  size_t on_disk = 0;
  while (reader.ReadRecord(&record)) {
    Slice in = record;
    std::string blind, key_ref, sealed;
    if (!GetLengthPrefixedString(&in, &blind) ||
        !GetLengthPrefixedString(&in, &key_ref) ||
        !GetLengthPrefixedString(&in, &sealed) || !in.empty()) {
      return Status::TamperDetected("malformed index posting on disk");
    }
    auto record_id = keystore_->ResolveKeyRef(key_ref);
    if (record_id.ok()) {
      auto index_key = keystore_->GetIndexKey(*record_id);
      if (!index_key.ok()) {
        return Status::TamperDetected("index posting key inconsistent");
      }
      crypto::Aead aead;
      MEDVAULT_RETURN_IF_ERROR(aead.Init(*index_key));
      auto opened = aead.Open(sealed, blind);
      if (!opened.ok() || *opened != *record_id) {
        return Status::TamperDetected("index posting fails authentication");
      }
    }
    on_disk++;
  }
  if (reader.status().IsCorruption()) {
    return Status::TamperDetected("index log bytes corrupted: " +
                                  reader.status().message());
  }
  MEDVAULT_RETURN_IF_ERROR(reader.status());
  if (on_disk != TotalPostingCount()) {
    return Status::TamperDetected("index posting count mismatch");
  }
  return Status::OK();
}

Result<std::vector<RecordId>> SecureIndex::SearchAll(
    const std::vector<std::string>& terms) const {
  if (!open_) return Status::FailedPrecondition("index not open");
  if (terms.empty()) return std::vector<RecordId>();

  // Evaluate the rarest term first to keep the working set small.
  std::vector<std::pair<size_t, std::string>> by_selectivity;
  by_selectivity.reserve(terms.size());
  for (const std::string& term : terms) {
    auto it = postings_.find(BlindTerm(term));
    size_t count = (it == postings_.end()) ? 0 : it->second.size();
    if (count == 0) return std::vector<RecordId>();  // empty intersection
    by_selectivity.emplace_back(count, term);
  }
  std::sort(by_selectivity.begin(), by_selectivity.end());

  MEDVAULT_ASSIGN_OR_RETURN(std::vector<RecordId> result,
                            Search(by_selectivity[0].second));
  for (size_t i = 1; i < by_selectivity.size() && !result.empty(); i++) {
    MEDVAULT_ASSIGN_OR_RETURN(std::vector<RecordId> next,
                              Search(by_selectivity[i].second));
    std::vector<RecordId> merged;
    for (const RecordId& id : result) {
      if (std::find(next.begin(), next.end(), id) != next.end()) {
        merged.push_back(id);
      }
    }
    result = std::move(merged);
  }
  return result;
}

size_t SecureIndex::LivePostingCount() const {
  size_t live = 0;
  for (const auto& [blind, list] : postings_) {
    for (const Posting& p : list) {
      if (keystore_->ResolveKeyRef(p.key_ref).ok()) live++;
    }
  }
  return live;
}

size_t SecureIndex::DeadPostingCount() const {
  return TotalPostingCount() - LivePostingCount();
}

size_t SecureIndex::TotalPostingCount() const {
  size_t total = 0;
  for (const auto& [blind, list] : postings_) total += list.size();
  return total;
}

}  // namespace medvault::core
