#include "core/record_cache.h"

namespace medvault::core {

namespace {

/// Best-effort in-memory shredding (keystore discipline): volatile
/// prevents dead-store elimination of the overwrite.
void WipeString(std::string* s) {
  volatile char* p = s->data();
  for (size_t i = 0; i < s->size(); i++) p[i] = 0;
  s->clear();
}

}  // namespace

RecordCache::RecordCache(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

RecordCache::~RecordCache() { Clear(); }

std::string RecordCache::Key(const RecordId& record_id, uint32_t version) {
  return record_id + "@" + std::to_string(version);
}

std::optional<RecordVersion> RecordCache::Get(
    const RecordId& record_id, uint32_t version,
    const std::string& expected_entry_hash) {
  std::lock_guard<std::mutex> lock(mu_);
  if (expected_entry_hash.empty()) {
    // The caller has no catalog hash to authenticate against, so the
    // cache cannot serve — but that is a property of the caller, not
    // evidence against the entry. Bypass without touching it (evicting
    // here would let an unauthenticated reader flush valid entries and
    // masquerade as tampering in the rejection stat).
    stats_.bypasses++;
    stats_.misses++;
    return std::nullopt;
  }
  auto it = index_.find(Key(record_id, version));
  if (it == index_.end()) {
    stats_.misses++;
    return std::nullopt;
  }
  if (it->second->entry_hash != expected_entry_hash) {
    // The caller's source of truth disagrees with what was cached:
    // never serve it — drop it and treat as a miss.
    stats_.rejections++;
    stats_.misses++;
    RemoveLocked(it->second);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  stats_.hits++;
  return it->second->value;
}

void RecordCache::Put(const RecordId& record_id, uint32_t version,
                      const std::string& entry_hash,
                      const RecordVersion& value) {
  if (value.plaintext.size() > capacity_bytes_ || entry_hash.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(Key(record_id, version));
  if (it != index_.end()) RemoveLocked(it->second);
  lru_.push_front(Entry{record_id, version, entry_hash, value});
  index_[Key(record_id, version)] = lru_.begin();
  by_record_[record_id].insert(version);
  charge_ += value.plaintext.size();
  EvictToFitLocked();
}

void RecordCache::PurgeRecord(const RecordId& record_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto rec = by_record_.find(record_id);
  if (rec == by_record_.end()) return;
  // RemoveLocked mutates by_record_; iterate over a copy of versions.
  std::set<uint32_t> versions = rec->second;
  for (uint32_t v : versions) {
    auto it = index_.find(Key(record_id, v));
    if (it != index_.end()) {
      stats_.purges++;
      RemoveLocked(it->second);
    }
  }
}

void RecordCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!lru_.empty()) {
    stats_.purges++;
    RemoveLocked(std::prev(lru_.end()));
  }
}

RecordCache::Stats RecordCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t RecordCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

size_t RecordCache::charge_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charge_;
}

void RecordCache::RemoveLocked(LruList::iterator it) {
  charge_ -= it->value.plaintext.size();
  WipeString(&it->value.plaintext);
  auto rec = by_record_.find(it->record_id);
  if (rec != by_record_.end()) {
    rec->second.erase(it->version);
    if (rec->second.empty()) by_record_.erase(rec);
  }
  index_.erase(Key(it->record_id, it->version));
  lru_.erase(it);
}

void RecordCache::EvictToFitLocked() {
  while (charge_ > capacity_bytes_ && !lru_.empty()) {
    stats_.evictions++;
    RemoveLocked(std::prev(lru_.end()));
  }
}

}  // namespace medvault::core
