#ifndef MEDVAULT_CORE_RETENTION_H_
#define MEDVAULT_CORE_RETENTION_H_

#include <map>
#include <string>

#include "common/clock.h"
#include "common/result.h"
#include "core/record.h"
#include "crypto/xmss.h"

namespace medvault::core {

/// A verifiable statement that a record was disposed of: when, by whom,
/// under which policy, and the custody chain head at disposal time.
/// Signed with the vault's XMSS key so it stays checkable for decades
/// (regulators may ask "prove you disposed of this properly" years
/// later — HIPAA §164.310(d)(2)(i)).
struct DisposalCertificate {
  RecordId record_id;
  PrincipalId authorizer;
  std::string policy;
  Timestamp disposed_at = 0;
  std::string custody_head;  ///< provenance chain head at disposal

  std::string signature;  ///< XmssSignature::Encode()

  std::string SignedPayload() const;
  std::string Encode() const;
  static Result<DisposalCertificate> Decode(const Slice& data);
};

/// Retention policies (paper §2: OSHA 30-year exposure/medical records,
/// EU Directive 95/46/EC guaranteed disposal after retention) and the
/// gate that makes early disposal impossible and late disposal provable.
class RetentionManager {
 public:
  /// Registers the standard policies (osha-30y, hipaa-6y, short-1y).
  RetentionManager();

  RetentionManager(const RetentionManager&) = delete;
  RetentionManager& operator=(const RetentionManager&) = delete;

  Status RegisterPolicy(const std::string& name, Timestamp duration);
  bool HasPolicy(const std::string& name) const;

  /// created_at + policy duration.
  Result<Timestamp> RetentionUntil(const std::string& policy,
                                   Timestamp created_at) const;

  /// OK if `meta`'s retention has expired at `now`; kRetentionViolation
  /// otherwise; kFailedPrecondition if already disposed.
  Status CheckDisposalAllowed(const RecordMeta& meta, Timestamp now) const;

  /// Builds and signs a disposal certificate.
  Result<DisposalCertificate> IssueCertificate(
      const RecordMeta& meta, const PrincipalId& authorizer,
      const std::string& custody_head, Timestamp now,
      crypto::XmssSigner* signer) const;

  static Status VerifyCertificate(const DisposalCertificate& cert,
                                  const Slice& public_key,
                                  const Slice& public_seed, int height);

 private:
  std::map<std::string, Timestamp> policies_;
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_RETENTION_H_
