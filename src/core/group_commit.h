#ifndef MEDVAULT_CORE_GROUP_COMMIT_H_
#define MEDVAULT_CORE_GROUP_COMMIT_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace medvault::core {

/// Coalesces concurrent callers' durability requests into one sync per
/// commit window (leader–follower handoff). The first waiter of a
/// window becomes its leader: it optionally lingers `window_micros` to
/// gather a cohort, runs the sync function once, and wakes everyone the
/// wave covered. Followers whose request arrived before the wave began
/// ride it for free — that is the fsync/op collapse.
///
/// Durability contract: Commit() does not return OK until a sync wave
/// that *began after the call entered* has completed successfully, so
/// everything the caller wrote before Commit() is on stable media by
/// the time it is acknowledged. A failed wave fails exactly the cohort
/// it covered; later callers start a fresh wave. A later successful
/// wave may acknowledge an earlier ticket — sync is a barrier over
/// everything outstanding, so a newer wave covers older writes too.
///
/// Metrics (prefix configurable so the per-vault and cross-shard
/// committers stay separable):
///   <prefix>.ops        Commit() calls
///   <prefix>.syncs      sync waves actually run
///   <prefix>.coalesced  commits acknowledged by someone else's wave
class GroupCommitter {
 public:
  struct Options {
    /// How long a leader lingers for cohort pickup before syncing.
    /// 0 = opportunistic-only: no added latency, coalescing happens
    /// only while a wave is already in flight.
    uint64_t window_micros = 0;
    /// Null uses the process-wide registry.
    obs::MetricsRegistry* metrics = nullptr;
    std::string metric_prefix = "commit.window";
    /// Injectable window wait (tests pass a recorder). Null sleeps.
    std::function<void(uint64_t micros)> sleeper;
  };

  /// `sync_fn` runs outside the committer lock and must be callable
  /// from any committing thread.
  explicit GroupCommitter(std::function<Status()> sync_fn);
  GroupCommitter(std::function<Status()> sync_fn, Options options);

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Blocks until this caller's writes are covered by a completed sync
  /// wave; returns that wave's status.
  Status Commit();

  struct Stats {
    uint64_t ops = 0;        ///< Commit() calls completed
    uint64_t waves = 0;      ///< sync waves run
    uint64_t coalesced = 0;  ///< commits that rode another's wave
  };
  Stats stats() const;

 private:
  std::function<Status()> sync_fn_;
  const uint64_t window_micros_;
  std::function<void(uint64_t)> sleeper_;

  obs::Counter* ops_counter_;
  obs::Counter* syncs_counter_;
  obs::Counter* coalesced_counter_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t arrivals_ = 0;        ///< tickets issued
  uint64_t synced_through_ = 0;  ///< highest ticket covered by an OK wave
  uint64_t last_wave_end_ = 0;   ///< highest ticket any wave has covered
  Status last_wave_status_;      ///< outcome of the wave ending at last_wave_end_
  bool leader_active_ = false;
  Stats stats_;  // guarded by mu_
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_GROUP_COMMIT_H_
