#ifndef MEDVAULT_CORE_SCRUB_H_
#define MEDVAULT_CORE_SCRUB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/slice.h"
#include "storage/env.h"

namespace medvault::core {

/// Per-file outcome of a media scrub.
enum class ScrubVerdict {
  kClean = 0,    // every frame/record checks out (torn tails excluded)
  kCorrupt = 1,  // CRC32C framing violations, or the file is unreadable
  kMissing = 2,  // an expected core artifact is absent
  kOrphan = 3,   // a file no vault artifact class claims (temp leftovers)
};

const char* ScrubVerdictName(ScrubVerdict v);

/// Half-open byte range [offset, offset+length) that failed validation.
struct CorruptRange {
  uint64_t offset = 0;
  uint64_t length = 0;
};

struct FileScrubResult {
  /// Path relative to the scrubbed vault directory, e.g.
  /// "audit.log" or "segments/seg-00000001".
  std::string path;
  ScrubVerdict verdict = ScrubVerdict::kClean;
  /// On-disk size in bytes (0 for missing files).
  uint64_t bytes = 0;
  /// Damaged byte ranges, in file order. Empty unless kCorrupt. A
  /// range's length may extend to EOF when resynchronization failed.
  std::vector<CorruptRange> corrupt_ranges;
  /// Human-oriented note ("frame crc mismatch", "torn tail", ...).
  std::string detail;
};

/// Structured result of walking every on-disk artifact of one vault
/// directory. `deep_status` is only populated by Vault::Scrub (which
/// can chase Merkle/hash bindings through the open catalog); the
/// offline structural scan leaves it OK.
struct ScrubReport {
  std::string dir;
  Timestamp scrubbed_at = 0;
  uint64_t files_scanned = 0;
  uint64_t bytes_scanned = 0;
  uint64_t corrupt_files = 0;  // verdict kCorrupt or kMissing
  uint64_t orphan_files = 0;
  Status deep_status;
  std::vector<FileScrubResult> files;

  /// No framing damage and no missing artifacts (orphans tolerated).
  bool structurally_clean() const { return corrupt_files == 0; }
  /// Structurally clean AND the deep content verification (when run)
  /// passed.
  bool clean() const { return corrupt_files == 0 && deep_status.ok(); }

  /// Relative paths that need restoring from backup (corrupt/missing).
  std::vector<std::string> DamagedFiles() const;
  /// Relative paths of files no artifact class claims.
  std::vector<std::string> OrphanFiles() const;
  const FileScrubResult* Find(const std::string& path) const;
  /// One-line-per-problem text rendering for operator tooling.
  std::string Summary() const;
};

/// Offline structural scrubber. Verifies the CRC32C framing of every
/// record log and segment frame in a vault directory WITHOUT opening
/// the vault, so it works on a vault too damaged to open. Trailing torn
/// records — the tail crash recovery would truncate — are reported in
/// `detail` but are NOT corruption; a torn tail in a *sealed* segment
/// is, because sealed segments were closed behind a durability barrier.
class Scrubber {
 public:
  /// Scans `dir`. Returns NotFound if the directory itself is absent;
  /// an existing-but-empty directory yields an empty clean report.
  /// Expected core artifacts (state/catalog/index/audit/provenance
  /// logs, keys.db) are reported kMissing only when the directory holds
  /// at least one recognized artifact — i.e. the vault was initialized.
  static Result<ScrubReport> ScrubVaultDir(storage::Env* env,
                                           const std::string& dir,
                                           Timestamp now);

  /// Frame-scans one segment image: `crc32c | length | payload` frames.
  /// `is_active` marks the highest-numbered segment, whose torn tail is
  /// legal. Fills verdict/corrupt_ranges/detail on `out`.
  static void ScrubSegmentData(const Slice& data, bool is_active,
                               FileScrubResult* out);

  /// Block-scans one record-log image (32KB blocks of CRC'd physical
  /// records, LevelDB WAL discipline). A torn record at EOF is legal;
  /// any mid-file violation is corruption.
  static void ScrubLogData(const Slice& data, FileScrubResult* out);

  /// The relative paths every initialized vault must have.
  static const std::vector<std::string>& ExpectedArtifacts();
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_SCRUB_H_
