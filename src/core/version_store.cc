#include "core/version_store.h"

#include <algorithm>

#include "common/coding.h"
#include "crypto/aead.h"
#include "crypto/ctr.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "storage/log_reader.h"
#include "storage/log_recover.h"

namespace medvault::core {

Result<std::pair<VersionHeader, Slice>> ParseVersionEntry(
    const Slice& entry) {
  Slice in = entry;
  Slice header_bytes;
  if (!GetLengthPrefixed(&in, &header_bytes)) {
    return Status::Corruption("malformed version entry");
  }
  MEDVAULT_ASSIGN_OR_RETURN(VersionHeader header,
                            VersionHeader::Decode(header_bytes));
  return std::make_pair(std::move(header), in);
}

VersionStore::VersionStore(storage::Env* env, const std::string& dir,
                           KeyStore* keystore)
    : env_(env), dir_(dir), keystore_(keystore) {
  storage::SegmentStore::Options options;
  segments_ = std::make_unique<storage::SegmentStore>(env, dir + "/segments",
                                                      options);
}

Status VersionStore::Open() {
  MEDVAULT_RETURN_IF_ERROR(env_->CreateDirIfMissing(dir_));
  MEDVAULT_RETURN_IF_ERROR(segments_->Open());

  const std::string catalog_path = dir_ + "/catalog.log";
  storage::log::LogOpenResult res;
  MEDVAULT_RETURN_IF_ERROR(storage::log::OpenLogForAppend(
      env_, catalog_path,
      [this](const Slice& rec) -> Status {
        Slice in = rec;
        std::string record_id, handle_bytes, entry_hash;
        uint32_t version = 0;
        if (!GetLengthPrefixedString(&in, &record_id) ||
            !GetVarint32(&in, &version) ||
            !GetLengthPrefixedString(&in, &handle_bytes) ||
            !GetLengthPrefixedString(&in, &entry_hash) || !in.empty()) {
          return Status::Corruption("malformed catalog entry");
        }
        MEDVAULT_ASSIGN_OR_RETURN(storage::EntryHandle handle,
                                  storage::EntryHandle::Decode(handle_bytes));
        auto& refs = catalog_[record_id];
        if (version != refs.size() + 1) {
          return Status::Corruption("catalog version discontinuity");
        }
        refs.push_back(VersionRef{handle, entry_hash});
        return Status::OK();
      },
      &res));
  catalog_writer_ = std::move(res.writer);
  open_ = true;
  return Status::OK();
}

std::string VersionStore::EncodeCatalogEntry(
    const RecordId& record_id, uint32_t version,
    const storage::EntryHandle& handle, const std::string& entry_hash) {
  std::string record;
  PutLengthPrefixed(&record, record_id);
  PutVarint32(&record, version);
  PutLengthPrefixed(&record, handle.Encode());
  PutLengthPrefixed(&record, entry_hash);
  return record;
}

Status VersionStore::LogCatalogEntry(const RecordId& record_id,
                                     uint32_t version,
                                     const storage::EntryHandle& handle,
                                     const std::string& entry_hash) {
  return catalog_writer_->AddRecord(
      EncodeCatalogEntry(record_id, version, handle, entry_hash));
}

Status VersionStore::Sync() {
  if (!open_) return Status::FailedPrecondition("version store not open");
  // Entry bytes before the catalog pointer: a durable catalog reference
  // must never outlive the frame it points at.
  MEDVAULT_RETURN_IF_ERROR(segments_->SyncActive());
  return catalog_writer_->Sync();
}

storage::WritableFile* VersionStore::SegmentSyncTarget() {
  if (!open_) return nullptr;
  return segments_->ActiveSyncTarget();
}

Status VersionStore::SyncCatalog() {
  if (!open_) return Status::FailedPrecondition("version store not open");
  return catalog_writer_->Sync();
}

Status VersionStore::RewriteCatalog() {
  const std::string catalog_path = dir_ + "/catalog.log";
  const std::string tmp_path = catalog_path + ".tmp";
  catalog_writer_.reset();
  {
    std::unique_ptr<storage::WritableFile> tmp_file;
    MEDVAULT_RETURN_IF_ERROR(env_->NewWritableFile(tmp_path, &tmp_file));
    storage::log::Writer tmp_writer(std::move(tmp_file));
    for (const auto& [record_id, refs] : catalog_) {
      for (uint32_t v = 1; v <= refs.size(); v++) {
        MEDVAULT_RETURN_IF_ERROR(tmp_writer.AddRecord(EncodeCatalogEntry(
            record_id, v, refs[v - 1].handle, refs[v - 1].entry_hash)));
      }
    }
    MEDVAULT_RETURN_IF_ERROR(tmp_writer.Sync());
    MEDVAULT_RETURN_IF_ERROR(tmp_writer.Close());
  }
  MEDVAULT_RETURN_IF_ERROR(env_->RenameFile(tmp_path, catalog_path));
  uint64_t size = 0;
  MEDVAULT_RETURN_IF_ERROR(env_->GetFileSize(catalog_path, &size));
  std::unique_ptr<storage::WritableFile> dest;
  MEDVAULT_RETURN_IF_ERROR(env_->NewAppendableFile(catalog_path, &dest));
  catalog_writer_ = std::make_unique<storage::log::Writer>(std::move(dest),
                                                           size);
  catalog_rewrite_generation_++;
  return Status::OK();
}

Status VersionStore::ReconcileCatalog(
    const std::map<RecordId, uint32_t>& committed_latest,
    uint64_t* dropped_refs) {
  if (!open_) return Status::FailedPrecondition("version store not open");
  *dropped_refs = 0;
  for (auto it = catalog_.begin(); it != catalog_.end();) {
    auto& refs = it->second;
    auto committed = committed_latest.find(it->first);
    size_t keep = committed == committed_latest.end()
                      ? 0
                      : std::min<size_t>(refs.size(), committed->second);
    // A crash can lose the tail of the active segment after its catalog
    // entry was written. Never keep a reference whose frame is gone —
    // and since versions chain, cut everything after it too. Disposed
    // records are exempt: their media may have been legitimately
    // reclaimed, and the catalog entries are tombstones.
    if (!keystore_->IsDestroyed(it->first)) {
      for (size_t v = 0; v < keep; v++) {
        if (!segments_->Contains(refs[v].handle)) {
          keep = v;
          break;
        }
      }
    }
    if (keep < refs.size()) {
      *dropped_refs += refs.size() - keep;
      refs.resize(keep);
    }
    if (refs.empty()) {
      it = catalog_.erase(it);
    } else {
      ++it;
    }
  }
  if (*dropped_refs == 0) return Status::OK();
  return RewriteCatalog();
}

Result<VersionHeader> VersionStore::AppendVersion(
    const RecordId& record_id, const PrincipalId& author,
    const std::string& content_type, const std::string& reason,
    const Slice& plaintext, Timestamp now) {
  if (!open_) return Status::FailedPrecondition("version store not open");
  MEDVAULT_ASSIGN_OR_RETURN(std::string data_key,
                            keystore_->GetKey(record_id));

  auto& refs = catalog_[record_id];
  VersionHeader header;
  header.record_id = record_id;
  header.version = static_cast<uint32_t>(refs.size() + 1);
  header.author = author;
  header.created_at = now;
  header.content_type = content_type;
  header.reason = reason;
  header.prev_version_hash =
      refs.empty() ? std::string() : refs.back().entry_hash;

  std::string header_bytes = header.Encode();
  crypto::Aead aead;
  MEDVAULT_RETURN_IF_ERROR(aead.Init(data_key));
  // Deterministic nonce: unique per (key, version) because versions are
  // monotonic and append-only — immune to the reopen-replay hazard a
  // counter/DRBG nonce would have.
  std::string nonce_full =
      crypto::HmacSha256(data_key, "medvault-version-nonce" + header_bytes);
  Slice nonce(nonce_full.data(), crypto::kCtrNonceSize);
  MEDVAULT_ASSIGN_OR_RETURN(std::string sealed,
                            aead.Seal(nonce, plaintext, header_bytes));

  std::string entry;
  PutLengthPrefixed(&entry, header_bytes);
  entry.append(sealed);

  MEDVAULT_ASSIGN_OR_RETURN(storage::EntryHandle handle,
                            segments_->Append(entry));
  std::string entry_hash = crypto::Sha256Digest(entry);
  MEDVAULT_RETURN_IF_ERROR(
      LogCatalogEntry(record_id, header.version, handle, entry_hash));
  refs.push_back(VersionRef{handle, entry_hash});
  return header;
}

Result<std::string> VersionStore::ReadRawEntry(const RecordId& record_id,
                                               uint32_t version) const {
  auto it = catalog_.find(record_id);
  if (it == catalog_.end()) return Status::NotFound("unknown record");
  if (version == 0 || version > it->second.size()) {
    return Status::NotFound("no such version");
  }
  return segments_->Read(it->second[version - 1].handle);
}

Result<RecordVersion> VersionStore::ReadVersion(const RecordId& record_id,
                                                uint32_t version) const {
  if (!open_) return Status::FailedPrecondition("version store not open");
  // Key state first: a disposed record answers kKeyDestroyed whether or
  // not its (unreadable) media has been physically reclaimed.
  MEDVAULT_ASSIGN_OR_RETURN(std::string data_key,
                            keystore_->GetKey(record_id));
  auto raw = ReadRawEntry(record_id, version);
  if (!raw.ok()) {
    if (raw.status().IsCorruption()) {
      return Status::TamperDetected("version entry bytes corrupted");
    }
    return raw.status();
  }
  MEDVAULT_ASSIGN_OR_RETURN(auto parsed, ParseVersionEntry(*raw));
  const VersionHeader& header = parsed.first;
  if (header.record_id != record_id || header.version != version) {
    return Status::TamperDetected("version entry header mismatch");
  }
  crypto::Aead aead;
  MEDVAULT_RETURN_IF_ERROR(aead.Init(data_key));
  MEDVAULT_ASSIGN_OR_RETURN(std::string plaintext,
                            aead.Open(parsed.second, header.Encode()));
  RecordVersion out;
  out.header = header;
  out.plaintext = std::move(plaintext);
  return out;
}

Result<RecordVersion> VersionStore::ReadLatest(
    const RecordId& record_id) const {
  MEDVAULT_ASSIGN_OR_RETURN(uint32_t latest, LatestVersion(record_id));
  return ReadVersion(record_id, latest);
}

Result<uint32_t> VersionStore::LatestVersion(const RecordId& record_id) const {
  auto it = catalog_.find(record_id);
  if (it == catalog_.end() || it->second.empty()) {
    return Status::NotFound("unknown record");
  }
  return static_cast<uint32_t>(it->second.size());
}

Result<std::string> VersionStore::EntryHash(const RecordId& record_id,
                                            uint32_t version) const {
  auto it = catalog_.find(record_id);
  if (it == catalog_.end() || version == 0 ||
      version > it->second.size()) {
    return Status::NotFound("unknown record version");
  }
  return it->second[version - 1].entry_hash;
}

Result<std::vector<VersionHeader>> VersionStore::History(
    const RecordId& record_id) const {
  auto it = catalog_.find(record_id);
  if (it == catalog_.end()) return Status::NotFound("unknown record");
  std::vector<VersionHeader> history;
  history.reserve(it->second.size());
  for (uint32_t v = 1; v <= it->second.size(); v++) {
    MEDVAULT_ASSIGN_OR_RETURN(std::string raw, ReadRawEntry(record_id, v));
    MEDVAULT_ASSIGN_OR_RETURN(auto parsed, ParseVersionEntry(raw));
    history.push_back(std::move(parsed.first));
  }
  return history;
}

std::vector<RecordId> VersionStore::RecordIds() const {
  std::vector<RecordId> ids;
  ids.reserve(catalog_.size());
  for (const auto& [id, refs] : catalog_) ids.push_back(id);
  return ids;
}

uint64_t VersionStore::TotalVersionCount() const {
  uint64_t total = 0;
  for (const auto& [id, refs] : catalog_) total += refs.size();
  return total;
}

Status VersionStore::VerifyRecord(const RecordId& record_id) const {
  auto it = catalog_.find(record_id);
  if (it == catalog_.end()) return Status::NotFound("unknown record");

  const bool key_alive = keystore_->GetKey(record_id).ok();
  std::string prev_hash;
  for (uint32_t v = 1; v <= it->second.size(); v++) {
    auto raw = ReadRawEntry(record_id, v);
    if (!raw.ok()) {
      if (!key_alive && raw.status().IsNotFound()) {
        // Crypto-shredded AND media reclaimed: the catalog tombstone is
        // all that legitimately remains.
        prev_hash = it->second[v - 1].entry_hash;
        continue;
      }
      return Status::TamperDetected("version bytes unreadable: " +
                                    raw.status().ToString());
    }
    // Catalog commitment.
    std::string actual_hash = crypto::Sha256Digest(*raw);
    if (actual_hash != it->second[v - 1].entry_hash) {
      return Status::TamperDetected("version entry hash mismatch");
    }
    MEDVAULT_ASSIGN_OR_RETURN(auto parsed, ParseVersionEntry(*raw));
    const VersionHeader& header = parsed.first;
    if (header.record_id != record_id || header.version != v) {
      return Status::TamperDetected("version header identity mismatch");
    }
    if (header.prev_version_hash != prev_hash) {
      return Status::TamperDetected("version hash chain broken");
    }
    prev_hash = actual_hash;

    if (key_alive) {
      MEDVAULT_ASSIGN_OR_RETURN(std::string data_key,
                                keystore_->GetKey(record_id));
      crypto::Aead aead;
      MEDVAULT_RETURN_IF_ERROR(aead.Init(data_key));
      auto opened = aead.Open(parsed.second, header.Encode());
      if (!opened.ok()) {
        return Status::TamperDetected("version payload fails authentication");
      }
    }
  }
  return Status::OK();
}

Status VersionStore::VerifyAllRecords() const {
  for (const auto& [record_id, refs] : catalog_) {
    MEDVAULT_RETURN_IF_ERROR(VerifyRecord(record_id));
  }
  return Status::OK();
}

std::vector<std::string> VersionStore::AllVersionHashes() const {
  std::vector<std::string> hashes;
  hashes.reserve(TotalVersionCount());
  for (const auto& [record_id, refs] : catalog_) {
    for (const VersionRef& ref : refs) hashes.push_back(ref.entry_hash);
  }
  return hashes;
}

Status VersionStore::ForEachRawVersion(
    const RecordId& record_id,
    const std::function<Status(uint32_t, const Slice&, const std::string&)>&
        fn) const {
  auto it = catalog_.find(record_id);
  if (it == catalog_.end()) return Status::NotFound("unknown record");
  for (uint32_t v = 1; v <= it->second.size(); v++) {
    MEDVAULT_ASSIGN_OR_RETURN(std::string raw, ReadRawEntry(record_id, v));
    MEDVAULT_RETURN_IF_ERROR(fn(v, raw, it->second[v - 1].entry_hash));
  }
  return Status::OK();
}

std::vector<uint64_t> VersionStore::FullyDisposedSegments() const {
  // segment id -> does any entry belong to a record with a live key?
  // Sealed segments with data but no catalog references at all hold only
  // frames orphaned by a crash (appended, never committed): seed them as
  // lifeless so their media can be reclaimed too.
  std::map<uint64_t, bool> has_live_entry;
  for (uint64_t segment_id : segments_->SegmentIds()) {
    if (!segments_->IsSealed(segment_id)) continue;
    uint64_t size = 0;
    if (env_->GetFileSize(segments_->SegmentFileName(segment_id), &size)
            .ok() &&
        size > 0) {
      has_live_entry.try_emplace(segment_id, false);
    }
  }
  for (const auto& [record_id, refs] : catalog_) {
    const bool destroyed = keystore_->IsDestroyed(record_id);
    for (const VersionRef& ref : refs) {
      auto [it, inserted] =
          has_live_entry.try_emplace(ref.handle.segment_id, false);
      if (!destroyed) it->second = true;
    }
  }
  std::vector<uint64_t> reclaimable;
  for (const auto& [segment_id, live] : has_live_entry) {
    if (!live && segments_->IsSealed(segment_id)) {
      reclaimable.push_back(segment_id);
    }
  }
  return reclaimable;
}

Result<int> VersionStore::ReclaimSegments(
    const std::vector<uint64_t>& segment_ids) {
  if (!open_) return Status::FailedPrecondition("version store not open");
  // Refuse anything that still carries a live record.
  std::vector<uint64_t> eligible = FullyDisposedSegments();
  int dropped = 0;
  for (uint64_t segment_id : segment_ids) {
    if (std::find(eligible.begin(), eligible.end(), segment_id) ==
        eligible.end()) {
      return Status::FailedPrecondition(
          "segment holds live records or is active; refusing to reclaim");
    }
    MEDVAULT_RETURN_IF_ERROR(segments_->DropSegment(segment_id));
    dropped++;
  }
  return dropped;
}

bool VersionStore::IsReclaimed(const RecordId& record_id) const {
  auto it = catalog_.find(record_id);
  if (it == catalog_.end() || it->second.empty()) return false;
  return segments_->Read(it->second.front().handle).status().IsNotFound();
}

Status VersionStore::ImportRawVersion(const RecordId& record_id,
                                      const Slice& raw_entry) {
  if (!open_) return Status::FailedPrecondition("version store not open");
  MEDVAULT_ASSIGN_OR_RETURN(auto parsed, ParseVersionEntry(raw_entry));
  const VersionHeader& header = parsed.first;
  if (header.record_id != record_id) {
    return Status::InvalidArgument("raw entry names a different record");
  }
  auto& refs = catalog_[record_id];
  if (header.version != refs.size() + 1) {
    return Status::InvalidArgument("raw entries must arrive in order");
  }
  std::string expected_prev =
      refs.empty() ? std::string() : refs.back().entry_hash;
  if (header.prev_version_hash != expected_prev) {
    return Status::TamperDetected("imported version breaks the hash chain");
  }
  MEDVAULT_ASSIGN_OR_RETURN(storage::EntryHandle handle,
                            segments_->Append(raw_entry));
  std::string entry_hash = crypto::Sha256Digest(raw_entry);
  MEDVAULT_RETURN_IF_ERROR(
      LogCatalogEntry(record_id, header.version, handle, entry_hash));
  refs.push_back(VersionRef{handle, entry_hash});
  return Status::OK();
}

}  // namespace medvault::core
