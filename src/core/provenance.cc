#include "core/provenance.h"

#include "common/coding.h"
#include "crypto/sha256.h"
#include "storage/log_reader.h"
#include "storage/log_recover.h"

namespace medvault::core {

const char* CustodyEventTypeName(CustodyEventType type) {
  switch (type) {
    case CustodyEventType::kCreated: return "created";
    case CustodyEventType::kAccessed: return "accessed";
    case CustodyEventType::kCorrected: return "corrected";
    case CustodyEventType::kMigratedOut: return "migrated-out";
    case CustodyEventType::kMigratedIn: return "migrated-in";
    case CustodyEventType::kBackedUp: return "backed-up";
    case CustodyEventType::kRestored: return "restored";
    case CustodyEventType::kDisposed: return "disposed";
    case CustodyEventType::kCustodyTransferred: return "custody-transferred";
  }
  return "unknown";
}

std::string CustodyEvent::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, record_id);
  out.push_back(static_cast<char>(type));
  PutLengthPrefixed(&out, actor);
  PutLengthPrefixed(&out, system_id);
  PutFixed64(&out, static_cast<uint64_t>(timestamp));
  PutLengthPrefixed(&out, details);
  PutLengthPrefixed(&out, prev_hash);
  return out;
}

Result<CustodyEvent> CustodyEvent::Decode(const Slice& data) {
  Slice in = data;
  CustodyEvent e;
  uint64_t ts = 0;
  if (!GetLengthPrefixedString(&in, &e.record_id) || in.empty()) {
    return Status::Corruption("malformed custody event");
  }
  e.type = static_cast<CustodyEventType>(in[0]);
  in.RemovePrefix(1);
  if (!GetLengthPrefixedString(&in, &e.actor) ||
      !GetLengthPrefixedString(&in, &e.system_id) ||
      !GetFixed64(&in, &ts) ||
      !GetLengthPrefixedString(&in, &e.details) ||
      !GetLengthPrefixedString(&in, &e.prev_hash) || !in.empty()) {
    return Status::Corruption("malformed custody event");
  }
  e.timestamp = static_cast<Timestamp>(ts);
  return e;
}

ProvenanceTracker::ProvenanceTracker(storage::Env* env, std::string path,
                                     std::string system_id)
    : env_(env), path_(std::move(path)), system_id_(std::move(system_id)) {}

Status ProvenanceTracker::Open() {
  storage::log::LogOpenResult res;
  MEDVAULT_RETURN_IF_ERROR(storage::log::OpenLogForAppend(
      env_, path_,
      [this](const Slice& record) -> Status {
        MEDVAULT_ASSIGN_OR_RETURN(CustodyEvent e,
                                  CustodyEvent::Decode(record));
        heads_[e.record_id] = crypto::Sha256Digest(record.ToString());
        chains_[e.record_id].push_back(std::move(e));
        return Status::OK();
      },
      &res));
  writer_ = std::move(res.writer);
  open_ = true;
  return Status::OK();
}

Status ProvenanceTracker::Sync() {
  if (!open_) return Status::FailedPrecondition("provenance not open");
  return writer_->Sync();
}

storage::WritableFile* ProvenanceTracker::sync_target() {
  if (!open_) return nullptr;
  return writer_->file();
}

Result<std::string> ProvenanceTracker::RecordEvent(
    const RecordId& record_id, CustodyEventType type,
    const PrincipalId& actor, const std::string& details, Timestamp now) {
  if (!open_) return Status::FailedPrecondition("provenance not open");
  CustodyEvent e;
  e.record_id = record_id;
  e.type = type;
  e.actor = actor;
  e.system_id = system_id_;
  e.timestamp = now;
  e.details = details;
  e.prev_hash = ChainHead(record_id);

  std::string encoded = e.Encode();
  MEDVAULT_RETURN_IF_ERROR(writer_->AddRecord(encoded));
  std::string head = crypto::Sha256Digest(encoded);
  heads_[record_id] = head;
  chains_[record_id].push_back(std::move(e));
  return head;
}

Result<std::vector<CustodyEvent>> ProvenanceTracker::GetChain(
    const RecordId& record_id) const {
  auto it = chains_.find(record_id);
  if (it == chains_.end()) return Status::NotFound("no custody chain");
  return it->second;
}

std::string ProvenanceTracker::ChainHead(const RecordId& record_id) const {
  auto it = heads_.find(record_id);
  return it == heads_.end() ? std::string() : it->second;
}

Status ProvenanceTracker::VerifyEvents(
    const std::vector<CustodyEvent>& events) {
  std::string prev;
  for (const CustodyEvent& e : events) {
    if (e.prev_hash != prev) {
      return Status::TamperDetected("custody chain broken");
    }
    prev = crypto::Sha256Digest(e.Encode());
  }
  return Status::OK();
}

Status ProvenanceTracker::VerifyChain(const RecordId& record_id) const {
  auto it = chains_.find(record_id);
  if (it == chains_.end()) return Status::NotFound("no custody chain");
  return VerifyEvents(it->second);
}

Status ProvenanceTracker::VerifyAllChains() const {
  for (const auto& [record_id, events] : chains_) {
    MEDVAULT_RETURN_IF_ERROR(VerifyEvents(events));
  }
  return Status::OK();
}

Result<std::string> ProvenanceTracker::ExportChain(
    const RecordId& record_id) const {
  MEDVAULT_ASSIGN_OR_RETURN(std::vector<CustodyEvent> events,
                            GetChain(record_id));
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(events.size()));
  for (const CustodyEvent& e : events) {
    PutLengthPrefixed(&out, e.Encode());
  }
  // Terminal head commits to the last event (which nothing chains
  // after). Naive corruption of the export is caught here; malicious
  // substitution of the whole export is covered by the dual-signed
  // migration receipt at the layer above.
  PutLengthPrefixed(&out, ChainHead(record_id));
  return out;
}

Status ProvenanceTracker::ImportChain(const RecordId& record_id,
                                      const Slice& data) {
  if (!open_) return Status::FailedPrecondition("provenance not open");
  if (chains_.count(record_id) > 0) {
    return Status::AlreadyExists("record already has a custody chain here");
  }
  Slice in = data;
  uint32_t count = 0;
  if (!GetVarint32(&in, &count)) {
    return Status::Corruption("malformed custody export");
  }
  std::vector<CustodyEvent> events;
  events.reserve(count);
  std::string computed_head;
  for (uint32_t i = 0; i < count; i++) {
    Slice enc;
    if (!GetLengthPrefixed(&in, &enc)) {
      return Status::Corruption("malformed custody export entry");
    }
    MEDVAULT_ASSIGN_OR_RETURN(CustodyEvent e, CustodyEvent::Decode(enc));
    if (e.record_id != record_id) {
      return Status::InvalidArgument("custody export for wrong record");
    }
    computed_head = crypto::Sha256Digest(enc);
    events.push_back(std::move(e));
  }
  std::string claimed_head;
  if (!GetLengthPrefixedString(&in, &claimed_head) || !in.empty()) {
    return Status::Corruption("custody export missing terminal head");
  }
  if (claimed_head != computed_head) {
    return Status::TamperDetected("custody export head mismatch");
  }
  MEDVAULT_RETURN_IF_ERROR(VerifyEvents(events));

  // Re-log the imported events so they persist locally.
  std::string head;
  for (const CustodyEvent& e : events) {
    std::string encoded = e.Encode();
    MEDVAULT_RETURN_IF_ERROR(writer_->AddRecord(encoded));
    head = crypto::Sha256Digest(encoded);
  }
  heads_[record_id] = head;
  chains_[record_id] = std::move(events);
  return Status::OK();
}

}  // namespace medvault::core
