#include "core/access.h"

#include <algorithm>
#include <charconv>

namespace medvault::core {

const char* RoleName(Role role) {
  switch (role) {
    case Role::kPhysician: return "physician";
    case Role::kNurse: return "nurse";
    case Role::kClerk: return "clerk";
    case Role::kAuditor: return "auditor";
    case Role::kPatient: return "patient";
    case Role::kAdmin: return "admin";
  }
  return "unknown";
}

const char* OperationName(Operation op) {
  switch (op) {
    case Operation::kCreateRecord: return "create-record";
    case Operation::kReadRecord: return "read-record";
    case Operation::kCorrectRecord: return "correct-record";
    case Operation::kSearch: return "search";
    case Operation::kDispose: return "dispose";
    case Operation::kMigrate: return "migrate";
    case Operation::kBackup: return "backup";
    case Operation::kReadAudit: return "read-audit";
    case Operation::kManagePrincipals: return "manage-principals";
  }
  return "unknown";
}

const char* AccessBasisName(AccessBasis::Kind kind) {
  switch (kind) {
    case AccessBasis::Kind::kNone: return "none";
    case AccessBasis::Kind::kRole: return "role";
    case AccessBasis::Kind::kOwner: return "owner";
    case AccessBasis::Kind::kCare: return "care";
    case AccessBasis::Kind::kBreakGlass: return "break-glass";
    case AccessBasis::Kind::kConsent: return "consent";
  }
  return "unknown";
}

Status AccessController::RegisterPrincipal(const Principal& principal) {
  if (principal.id.empty()) {
    return Status::InvalidArgument("principal id must not be empty");
  }
  if (principals_.count(principal.id) > 0) {
    return Status::AlreadyExists("principal already registered");
  }
  principals_[principal.id] = principal;
  return Status::OK();
}

Result<Principal> AccessController::GetPrincipal(const PrincipalId& id) const {
  auto it = principals_.find(id);
  if (it == principals_.end()) return Status::NotFound("unknown principal");
  return it->second;
}

Status AccessController::AssignCare(const PrincipalId& clinician,
                                    const PrincipalId& patient) {
  MEDVAULT_ASSIGN_OR_RETURN(Principal p, GetPrincipal(clinician));
  if (p.role != Role::kPhysician && p.role != Role::kNurse) {
    return Status::InvalidArgument("care relations require a clinician");
  }
  care_.insert({clinician, patient});
  return Status::OK();
}

Status AccessController::RevokeCare(const PrincipalId& clinician,
                                    const PrincipalId& patient) {
  if (care_.erase({clinician, patient}) == 0) {
    return Status::NotFound("no such care relation");
  }
  return Status::OK();
}

bool AccessController::InCare(const PrincipalId& clinician,
                              const PrincipalId& patient) const {
  return care_.count({clinician, patient}) > 0;
}

void AccessController::PruneExpiredLocked(Timestamp now) const {
  for (auto it = grants_.begin(); it != grants_.end();) {
    if (it->second.expires_at <= now) {
      it = grants_.erase(it);
    } else {
      ++it;
    }
  }
}

bool AccessController::HasActiveGrant(const PrincipalId& clinician,
                                      const PrincipalId& patient,
                                      Timestamp now,
                                      std::string* grant_id_out) const {
  std::lock_guard<std::mutex> lock(grants_mu_);
  // Every expiry check doubles as garbage collection: without it the
  // table only ever grew (grants were inserted, never erased), so a
  // long-lived daemon scanned an ever-longer list of dead entries.
  // Pruning drops expires_at <= now, so surviving entries are active
  // strictly before expiry — a grant exercised at exactly expires_at
  // is refused.
  PruneExpiredLocked(now);
  for (const auto& [id, grant] : grants_) {
    if (grant.clinician == clinician && grant.patient == patient) {
      if (grant_id_out != nullptr) *grant_id_out = id;
      return true;  // pruned above, so present => expires_at > now
    }
  }
  return false;
}

Status AccessController::CheckAccess(const PrincipalId& actor, Operation op,
                                     const PrincipalId& patient_id,
                                     Timestamp now) const {
  return CheckAccess(actor, op, patient_id, RecordId(), now, nullptr);
}

Status AccessController::CheckAccess(const PrincipalId& actor, Operation op,
                                     const PrincipalId& patient_id,
                                     const RecordId& record_id, Timestamp now,
                                     AccessBasis* basis) const {
  if (basis != nullptr) *basis = AccessBasis{};
  auto it = principals_.find(actor);
  if (it == principals_.end()) return Status::NotFound("unknown principal");
  const Role role = it->second.role;

  auto deny = [&](const char* why) {
    return Status::PermissionDenied(std::string(RoleName(role)) + " may not " +
                                    OperationName(op) + ": " + why);
  };
  auto allow = [&](AccessBasis::Kind kind, std::string grant_id = "") {
    if (basis != nullptr) *basis = AccessBasis{kind, std::move(grant_id)};
    return Status::OK();
  };

  const bool clinician = (role == Role::kPhysician || role == Role::kNurse);
  const bool in_care = clinician && InCare(actor, patient_id);
  std::string bg_grant;
  const bool via_grant = clinician && !in_care &&
                         HasActiveGrant(actor, patient_id, now, &bg_grant);
  const bool scoped_ok = in_care || via_grant;
  auto scoped_basis = [&]() {
    return in_care ? allow(AccessBasis::Kind::kCare)
                   : allow(AccessBasis::Kind::kBreakGlass, bg_grant);
  };

  switch (op) {
    case Operation::kCreateRecord:
      if (role == Role::kClerk) return allow(AccessBasis::Kind::kRole);
      if (scoped_ok) return scoped_basis();
      return deny("requires clerk, or clinician with a care relation");
    case Operation::kReadRecord: {
      if (role == Role::kPatient && actor == patient_id) {
        return allow(AccessBasis::Kind::kOwner);
      }
      if (scoped_ok) return scoped_basis();
      // Delegated consent opens reads — and only reads — to any
      // registered principal the patient chose (specialist, insurer,
      // researcher), regardless of role or care relation.
      std::string consent_id;
      if (consents_ != nullptr &&
          consents_->HasActiveConsent(actor, patient_id, record_id, now,
                                      &consent_id)) {
        return allow(AccessBasis::Kind::kConsent, consent_id);
      }
      return deny("requires care relation, break-glass, consent, or "
                  "record owner");
    }
    case Operation::kCorrectRecord:
      if (role == Role::kPhysician && scoped_ok) return scoped_basis();
      if (role == Role::kPatient && actor == patient_id) {
        return allow(  // HIPAA right to request amendment
            AccessBasis::Kind::kOwner);
      }
      return deny("requires treating physician or the patient");
    case Operation::kSearch:
      if (in_care || via_grant) return scoped_basis();
      if (clinician) return allow(AccessBasis::Kind::kRole);
      return deny("requires a clinician");
    case Operation::kDispose:
    case Operation::kMigrate:
    case Operation::kBackup:
    case Operation::kManagePrincipals:
      if (role == Role::kAdmin) return allow(AccessBasis::Kind::kRole);
      return deny("requires admin");
    case Operation::kReadAudit:
      if (role == Role::kAuditor || role == Role::kAdmin) {
        return allow(AccessBasis::Kind::kRole);
      }
      return deny("requires auditor");
  }
  return deny("unmapped operation");
}

Result<std::string> AccessController::BreakGlass(
    const PrincipalId& clinician, const PrincipalId& patient,
    const std::string& justification, Timestamp now, Timestamp expires_at) {
  MEDVAULT_ASSIGN_OR_RETURN(Principal p, GetPrincipal(clinician));
  if (p.role != Role::kPhysician && p.role != Role::kNurse) {
    return Status::PermissionDenied("break-glass requires a clinician");
  }
  if (justification.empty()) {
    return Status::InvalidArgument("break-glass requires a justification");
  }
  if (expires_at <= now) {
    return Status::InvalidArgument("break-glass grant must expire in future");
  }
  std::lock_guard<std::mutex> lock(grants_mu_);
  PruneExpiredLocked(now);
  std::string grant_id = "bg-" + std::to_string(next_grant_++);
  grants_[grant_id] = Grant{clinician, patient, justification, expires_at};
  return grant_id;
}

Status AccessController::RestoreGrant(const std::string& grant_id,
                                      const PrincipalId& clinician,
                                      const PrincipalId& patient,
                                      const std::string& justification,
                                      Timestamp now, Timestamp expires_at) {
  if (grant_id.empty() || clinician.empty() || patient.empty()) {
    return Status::InvalidArgument("malformed grant");
  }
  std::lock_guard<std::mutex> lock(grants_mu_);
  // Keep fresh ids ahead of every replayed one, including grants that
  // already expired — an id must never be issued twice.
  if (grant_id.rfind("bg-", 0) == 0) {
    uint64_t n = 0;
    const char* first = grant_id.data() + 3;
    const char* last = grant_id.data() + grant_id.size();
    auto [ptr, ec] = std::from_chars(first, last, n, 10);
    if (ec == std::errc() && ptr == last) {
      next_grant_ = std::max(next_grant_, n + 1);
    }
  }
  if (expires_at <= now) return Status::OK();  // dead on arrival: skip
  grants_[grant_id] = Grant{clinician, patient, justification, expires_at};
  return Status::OK();
}

size_t AccessController::ActiveGrantCount(Timestamp now) const {
  std::lock_guard<std::mutex> lock(grants_mu_);
  PruneExpiredLocked(now);
  return grants_.size();
}

}  // namespace medvault::core
