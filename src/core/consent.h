#ifndef MEDVAULT_CORE_CONSENT_H_
#define MEDVAULT_CORE_CONSENT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/slice.h"
#include "core/record.h"

namespace medvault::core {

/// What a delegated grant covers: a single record, or every record the
/// granting patient owns (including ones created after the grant).
enum class ConsentScope : uint8_t {
  kRecord = 1,
  kPatient = 2,
};

const char* ConsentScopeName(ConsentScope scope);

/// A patient-signed, time-boxed capability: "I, `patient`, authorize
/// `grantee` to read (my record `record_id` | all my records) until
/// `expires_at`, for `purpose`". The signature is an HMAC-SHA256 under
/// a per-patient key derived from the vault's consent-signing root, so
/// a grant replayed from the state log that was tampered with on disk
/// fails verification instead of silently widening access.
struct ConsentGrant {
  std::string grant_id;
  PrincipalId patient;
  PrincipalId grantee;
  RecordId record_id;  ///< empty iff scope == kPatient
  ConsentScope scope = ConsentScope::kRecord;
  std::string purpose;
  Timestamp issued_at = 0;
  Timestamp expires_at = 0;
  std::string signature;

  /// The byte string that is signed (every field except the signature,
  /// under a domain-separation prefix).
  std::string SignedPayload() const;
  std::string Encode() const;
  static Result<ConsentGrant> Decode(const Slice& data);
};

/// Registry of delegated sharing grants (paper-adjacent: Health Access
/// Broker / S3PHER-style patient-driven sharing). The registry itself
/// is policy-free storage plus signing: the Vault validates roles and
/// record ownership, persists grants in the state log, and audits every
/// exercise; AccessController consults the registry on reads.
///
/// Thread safety: all methods lock an internal mutex, a leaf in the
/// lock order exactly like AccessController::grants_mu_ — CheckAccess
/// runs under the vault's *shared* lock while pruning expired grants is
/// a write, so the table needs its own serialization.
class ConsentRegistry {
 public:
  ConsentRegistry() = default;

  ConsentRegistry(const ConsentRegistry&) = delete;
  ConsentRegistry& operator=(const ConsentRegistry&) = delete;

  /// Installs the per-vault signing root (HKDF-derived by Vault::Init)
  /// and the grant-id prefix ("cg", or "s<k>-cg" inside shard k so ids
  /// route like record ids).
  void Configure(std::string signing_root, std::string id_prefix);

  /// Issues and signs a grant. Validates time-boxing (expires_at > now),
  /// a non-empty purpose, and grantee != patient; role and ownership
  /// checks are the Vault's job. Scope is kRecord when `record_id` is
  /// non-empty, kPatient otherwise.
  Result<ConsentGrant> Grant(const PrincipalId& patient,
                             const PrincipalId& grantee,
                             const RecordId& record_id,
                             const std::string& purpose, Timestamp now,
                             Timestamp expires_at);

  /// Removes a grant; kNotFound if absent (already revoked or expired).
  Status Revoke(const std::string& grant_id);

  Result<ConsentGrant> Get(const std::string& grant_id) const;

  /// True iff some live grant lets `grantee` read `record_id` belonging
  /// to `patient` strictly before its expiry (a grant exercised at
  /// exactly expires_at is refused, matching break-glass semantics).
  /// Fills `*grant_id_out` (if non-null) with the matching grant's id
  /// so the caller can name the basis in the audit trail.
  bool HasActiveConsent(const PrincipalId& grantee,
                        const PrincipalId& patient, const RecordId& record_id,
                        Timestamp now, std::string* grant_id_out) const;

  /// Any live grant scoped to exactly `record_id` (crash-matrix and
  /// disposal invariants: a shredded record must have none).
  bool HasActiveConsentForRecord(const RecordId& record_id,
                                 Timestamp now) const;

  /// Live grants naming `patient` as the granting principal.
  std::vector<ConsentGrant> ListForPatient(const PrincipalId& patient,
                                           Timestamp now) const;

  /// Removes every record-scoped grant naming `record_id` and returns
  /// them (crypto-shredding kills outstanding record grants; the Vault
  /// persists and audits each revocation). Patient-scoped grants stay:
  /// they cover the patient's *other* records, and the shredded one is
  /// unreadable regardless once its key is destroyed.
  std::vector<ConsentGrant> RevokeAllForRecord(const RecordId& record_id);

  /// Copy of the whole table (recovery reconciliation sweep).
  std::vector<ConsentGrant> Snapshot() const;

  /// Recomputes the grant's HMAC and compares in constant time.
  /// kTamperDetected on mismatch.
  Status VerifySignature(const ConsentGrant& grant) const;

  /// Re-installs a persisted grant under its original id (state-log
  /// replay on open). Keeps the id counter ahead of replayed ids;
  /// grants already expired at `now` are counted but not re-installed.
  /// The caller verifies the signature first (Vault::LoadState does) —
  /// like RestoreGrant, replay never re-validates policy.
  Status Restore(const ConsentGrant& grant, Timestamp now);

  /// Replays a persisted revocation; OK even if the grant is absent
  /// (it may have expired out of the table before the revoke landed).
  Status RestoreRevoke(const std::string& grant_id);

  /// Live grants after pruning expired ones — exact, like
  /// AccessController::ActiveGrantCount.
  size_t ActiveCount(Timestamp now) const;

 private:
  std::string SigningKeyFor(const PrincipalId& patient) const;
  /// Drops every grant with expires_at <= now. Requires mu_.
  void PruneExpiredLocked(Timestamp now) const;
  /// Keeps next_id_ ahead of a replayed "<prefix>-<n>" id. Requires mu_.
  void NoteReplayedIdLocked(const std::string& grant_id);

  std::string signing_root_;
  std::string id_prefix_ = "cg";
  mutable std::mutex mu_;
  mutable std::map<std::string, ConsentGrant> grants_;
  uint64_t next_id_ = 1;  // guarded by mu_
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_CONSENT_H_
