#ifndef MEDVAULT_CORE_MIGRATION_H_
#define MEDVAULT_CORE_MIGRATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/sharded_vault.h"
#include "core/vault.h"

namespace medvault::core {

/// Dual-signed proof that a migration was exact and complete (paper §3:
/// "the storage system must provide trustworthy and verifiable migration
/// mechanisms"; HIPAA §164.310(d)(2)(iv) exact-copy-before-movement).
///
/// `content_root` is a Merkle root over the SHA-256 of every migrated
/// version entry, computed *independently* by each side from its own
/// storage: equality proves the target holds byte-identical copies.
struct MigrationReceipt {
  std::string source_system;
  std::string target_system;
  uint64_t record_count = 0;
  uint64_t version_count = 0;
  std::string content_root;
  Timestamp completed_at = 0;

  std::string source_signature;  ///< source vault's XMSS signature
  std::string target_signature;  ///< target vault's XMSS signature

  std::string SignedPayload() const;
  std::string Encode() const;
  static Result<MigrationReceipt> Decode(const Slice& data);
};

/// Executes verifiable migrations between two vaults.
class Migrator {
 public:
  /// Moves every record (versions, keys, custody chains, metadata) from
  /// `source` to `target`, verifies the copy cryptographically, and
  /// returns the dual-signed receipt. `actor` must hold kMigrate on both
  /// vaults. The target must not already contain any of the records.
  ///
  /// Disposed records migrate too: their ciphertext and tombstoned keys
  /// carry over, so the (unreadable) history and custody chain survive.
  static Result<MigrationReceipt> Migrate(Vault* source, Vault* target,
                                          const PrincipalId& actor);

  /// Verifies a receipt against a vault (either side) and both
  /// signatures.
  static Status VerifyReceipt(const MigrationReceipt& receipt, Vault* source,
                              Vault* target);

  /// Sharded migration: moves every shard of `source` into the matching
  /// shard of `target` (the counts must be equal — placement hashes bake
  /// the count in, so resharding-while-migrating would scatter ids away
  /// from where the router expects them). Each shard pair produces its
  /// own dual-signed receipt, returned in shard order; on a mid-way
  /// failure the receipts of already-migrated shards are lost but their
  /// shards remain verifiably migrated (re-running fails AlreadyExists
  /// on those, by Migrate's own guard).
  static Result<std::vector<MigrationReceipt>> MigrateSharded(
      ShardedVault* source, ShardedVault* target, const PrincipalId& actor);
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_MIGRATION_H_
