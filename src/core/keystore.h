#ifndef MEDVAULT_CORE_KEYSTORE_H_
#define MEDVAULT_CORE_KEYSTORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "core/record.h"
#include "crypto/aead.h"
#include "crypto/drbg.h"
#include "storage/env.h"
#include "storage/log_writer.h"

namespace medvault::core {

/// Key hierarchy and crypto-shredding (paper §2.1 Disposal / §3 secure
/// deletion, media re-use).
///
///   master key  ──wraps──►  per-record data key (32B, random)
///                           per-record index key (derived via HKDF)
///
/// Every record's ciphertext lives forever on WORM segments; what makes
/// "secure deletion" possible on un-erasable media is destroying the
/// record's wrapped key: after DestroyKey() the plaintext is
/// information-theoretically gone from the store (only the master-key
/// holder could ever have unwrapped it, and the wrapped blob is erased
/// and overwritten in the key log rewrite).
///
/// The key log is an append-only file of wrap/destroy events, re-written
/// compacted on Persist(); destroyed keys never reappear. Format v2
/// frames every entry as a CRC-checked log record (log::Writer
/// discipline) behind a magic first record, so a torn final entry after
/// a power cut is recognized and cut off instead of poisoning the parse.
/// Unframed v1 files are still read (tolerating a torn tail) and are
/// upgraded in place on Open.
class KeyStore {
 public:
  /// `master_key` is 32 bytes; `path` is the key-log file.
  KeyStore(storage::Env* env, std::string path, const Slice& master_key,
           const Slice& drbg_seed);

  KeyStore(const KeyStore&) = delete;
  KeyStore& operator=(const KeyStore&) = delete;

  /// Loads existing key log if present.
  Status Open();

  /// Generates and wraps a fresh 32-byte data key for `record_id`.
  /// AlreadyExists if the record has a live or destroyed key.
  /// On a write/sync failure the partially-written entry is rolled back
  /// (log rewritten without it), so the id is not burned: a retry after
  /// reopen sees no key rather than AlreadyExists.
  Status CreateKey(const RecordId& record_id);

  /// Installs an existing key (migration: the source vault hands over
  /// custody of the record key; the target re-wraps it under its own
  /// master key). Pass an empty key with `destroyed=true` to carry over
  /// a shredded record's tombstone.
  Status ImportKey(const RecordId& record_id, const Slice& key,
                   bool destroyed);

  /// Returns the record's data key, or kKeyDestroyed / kNotFound.
  Result<std::string> GetKey(const RecordId& record_id) const;

  /// Index key for the record (HKDF from the data key, so it dies with
  /// it).
  Result<std::string> GetIndexKey(const RecordId& record_id) const;

  /// An opaque public reference for the record's key, safe to embed in
  /// index postings. Unlinkable to the record id without the key.
  Result<std::string> GetKeyRef(const RecordId& record_id) const;

  /// Looks up which record a key-ref belongs to — only possible while
  /// the key is alive (the mapping is erased on destruction).
  Result<RecordId> ResolveKeyRef(const Slice& key_ref) const;

  /// Crypto-shreds the record: erases and overwrites key material in
  /// memory and rewrites the key log without the wrapped blob.
  /// Idempotent-hostile by design: destroying twice returns kKeyDestroyed.
  Status DestroyKey(const RecordId& record_id);

  bool IsDestroyed(const RecordId& record_id) const;
  size_t LiveKeyCount() const;

  /// The key log's sync target for the vault's batched sync wave (null
  /// until Open). Live-key appends are NOT synced eagerly — they become
  /// durable at the next wave, before the catalog/state commit point —
  /// so a batch of creates costs one key-log fsync, not one per record.
  /// Destroy entries are excluded from this deferral: DestroyKey
  /// rewrites and syncs immediately (crypto-shredding).
  storage::WritableFile* sync_target() {
    return writer_ ? writer_->file() : nullptr;
  }

  /// Every record id with a live or destroyed key, in id order.
  /// Crash recovery diffs this against the record catalog.
  std::vector<RecordId> AllRecordIds() const;

  /// Removes entries (live keys wiped, tombstones dropped) for ids that
  /// crash recovery found to have no committed record — keys written
  /// durably by CreateRecord before the commit point that never got
  /// one. Rewrites the log once. NOT for disposal: that is DestroyKey,
  /// which keeps the tombstone.
  Status RemoveKeysForRecovery(const std::vector<RecordId>& record_ids);

  /// Re-wraps every live key under a new master key and rewrites the key
  /// log (master key rotation, needed across a 30-year horizon).
  Status RotateMasterKey(const Slice& new_master_key);

  /// Writes the compacted key log.
  Status Persist();

  /// Bumped every time Persist() rewrites the key log in place (destroy,
  /// rotation, recovery compaction). Replication uses this to detect
  /// that its running prefix hash of keys.db is stale and the file must
  /// be re-shipped whole rather than appended to.
  uint64_t rewrite_generation() const { return rewrite_generation_; }

 private:
  struct KeyState {
    std::string data_key;  // empty if destroyed
    bool destroyed = false;
  };

  Status InitAead(const Slice& master_key);

  /// Applies a parsed entry to the in-memory maps (replay path).
  Status ApplyParsedEntry(uint8_t kind, const std::string& record_id,
                          const std::string& blob);
  /// Parses and applies one framed v2 log record.
  Status ApplyLogRecord(const Slice& record);
  /// Parses an unframed v1 key log, tolerating a torn final entry.
  Status ParseV1(const std::string& contents);

  /// Appends one wrapped-key entry to the key log (create/import path).
  Status AppendLiveEntry(const RecordId& record_id,
                         const std::string& data_key);

  storage::Env* env_;
  std::string path_;
  crypto::Aead master_aead_;
  std::unique_ptr<crypto::HmacDrbg> drbg_;
  std::unique_ptr<storage::log::Writer> writer_;
  std::map<RecordId, KeyState> keys_;
  std::map<std::string, RecordId> key_refs_;  // key-ref -> record
  uint64_t rewrite_generation_ = 0;
  bool open_ = false;
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_KEYSTORE_H_
