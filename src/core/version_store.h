#ifndef MEDVAULT_CORE_VERSION_STORE_H_
#define MEDVAULT_CORE_VERSION_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/keystore.h"
#include "core/record.h"
#include "storage/env.h"
#include "storage/log_writer.h"
#include "storage/segment.h"

namespace medvault::core {

/// Versioned WORM record storage — the heart of the hybrid model the
/// paper calls for. It reconciles two requirements §4 says existing
/// systems cannot combine:
///
///   * WORM integrity: every version is an immutable entry on sealed
///     append-only segments; nothing is ever updated in place.
///   * Mutability: a correction appends a *new* version whose header
///     carries the SHA-256 of its predecessor's entry, forming a
///     per-record hash chain. History is preserved and verifiable;
///     the record is still correctable (HIPAA right-to-amend).
///
/// Entry layout on the segment store:
///   varint-len(header) || header || AEAD(plaintext, aad=header)
/// The header is cleartext (routing/history need it); the clinical
/// payload is sealed under the record's data key, so crypto-shredding
/// the key makes every version unreadable while the hash chain stays
/// verifiable from the catalog.
class VersionStore {
 public:
  VersionStore(storage::Env* env, const std::string& dir,
               KeyStore* keystore);

  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  /// Opens segments and replays the catalog. After an unclean shutdown
  /// both the active segment's torn frame and a torn catalog tail are
  /// cut off (see SegmentStore::Open / log::OpenLogForAppend).
  Status Open();

  /// Durability barrier: syncs the active segment, then the catalog —
  /// in that order, so a durable catalog entry implies its bytes.
  Status Sync();

  /// Split sync for batched commit waves: the active segment file (null
  /// when none is open or the store is closed) may sync concurrently
  /// with other side logs, but SyncCatalog() must only run *after* that
  /// wave completes — same segment-before-catalog invariant as Sync().
  storage::WritableFile* SegmentSyncTarget();
  Status SyncCatalog();

  /// Crash-recovery reconciliation. `committed_latest` maps record id →
  /// latest version the commit point (state log) vouches for. Drops
  /// catalog references that (a) belong to no committed record,
  /// (b) exceed the committed latest version, or (c) point at segment
  /// frames lost with the crash — then durably rewrites the catalog if
  /// anything was dropped. The orphaned segment frames themselves stay
  /// behind (WORM media) until segment reclamation collects them.
  /// Returns the number of dropped references in `*dropped_refs`.
  Status ReconcileCatalog(const std::map<RecordId, uint32_t>& committed_latest,
                          uint64_t* dropped_refs);

  /// Appends a new version of `record_id` (version 1 creates the chain).
  /// The record's key must already exist in the KeyStore.
  Result<VersionHeader> AppendVersion(const RecordId& record_id,
                                      const PrincipalId& author,
                                      const std::string& content_type,
                                      const std::string& reason,
                                      const Slice& plaintext, Timestamp now);

  /// Decrypts a version (kKeyDestroyed after shredding, kTamperDetected
  /// if bytes or header were altered).
  Result<RecordVersion> ReadVersion(const RecordId& record_id,
                                    uint32_t version) const;
  Result<RecordVersion> ReadLatest(const RecordId& record_id) const;

  /// Version headers, oldest first, without decrypting payloads.
  Result<std::vector<VersionHeader>> History(const RecordId& record_id) const;

  Result<uint32_t> LatestVersion(const RecordId& record_id) const;

  /// The catalog's SHA-256 entry hash for one version — the integrity
  /// anchor the authenticated record cache validates against.
  Result<std::string> EntryHash(const RecordId& record_id,
                                uint32_t version) const;
  std::vector<RecordId> RecordIds() const;
  uint64_t TotalVersionCount() const;

  /// Verifies one record end-to-end: catalog hashes match stored bytes,
  /// the header hash-chain links, and (if the key is alive) every
  /// version's AEAD tag authenticates.
  Status VerifyRecord(const RecordId& record_id) const;
  Status VerifyAllRecords() const;

  /// SHA-256 entry hash of each version in (record, version) order —
  /// input to the vault content root used by verifiable migration.
  std::vector<std::string> AllVersionHashes() const;

  /// Raw (still-encrypted) version entries for exact-copy migration.
  Status ForEachRawVersion(
      const RecordId& record_id,
      const std::function<Status(uint32_t version, const Slice& raw_entry,
                                 const std::string& entry_hash)>& fn) const;

  /// Installs a raw version entry copied from another vault. Validates
  /// the header chain and that the entry parses; byte-identical entries
  /// keep their hashes, which is what makes migration provable.
  Status ImportRawVersion(const RecordId& record_id, const Slice& raw_entry);

  /// Sealed segments in which *every* entry belongs to a crypto-shredded
  /// record — eligible for physical reclamation (media re-use, HIPAA
  /// §164.310(d)(2)(ii)). The ciphertext is unreadable either way; this
  /// frees the media.
  std::vector<uint64_t> FullyDisposedSegments() const;

  /// Physically drops the given (fully disposed, sealed) segments.
  /// Returns how many were dropped. Catalog entries remain as
  /// tombstones: hashes stay part of the content root, and VerifyRecord
  /// treats key-destroyed records with reclaimed media as valid.
  Result<int> ReclaimSegments(const std::vector<uint64_t>& segment_ids);

  /// True if the record's media was reclaimed (raw bytes gone).
  bool IsReclaimed(const RecordId& record_id) const;

  storage::SegmentStore* segments() { return segments_.get(); }

  /// Bumped every time the catalog is rewritten in place (crash-recovery
  /// reconciliation). Replication uses this to detect that its running
  /// prefix hash of catalog.log is stale and the file must be re-shipped
  /// whole rather than appended to.
  uint64_t catalog_rewrite_generation() const {
    return catalog_rewrite_generation_;
  }

 private:
  struct VersionRef {
    storage::EntryHandle handle;
    std::string entry_hash;
  };

  Result<std::string> ReadRawEntry(const RecordId& record_id,
                                   uint32_t version) const;
  static std::string EncodeCatalogEntry(const RecordId& record_id,
                                        uint32_t version,
                                        const storage::EntryHandle& handle,
                                        const std::string& entry_hash);
  Status LogCatalogEntry(const RecordId& record_id, uint32_t version,
                         const storage::EntryHandle& handle,
                         const std::string& entry_hash);
  /// Durably rewrites catalog.log from the in-memory catalog
  /// (write-new-then-rename) and re-points the writer.
  Status RewriteCatalog();

  storage::Env* env_;
  std::string dir_;
  KeyStore* keystore_;
  std::unique_ptr<storage::SegmentStore> segments_;
  std::unique_ptr<storage::log::Writer> catalog_writer_;
  std::map<RecordId, std::vector<VersionRef>> catalog_;
  uint64_t catalog_rewrite_generation_ = 0;
  bool open_ = false;
};

/// Parses a raw version entry into (header, sealed payload).
Result<std::pair<VersionHeader, Slice>> ParseVersionEntry(const Slice& entry);

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_VERSION_STORE_H_
