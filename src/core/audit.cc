#include "core/audit.h"

#include "common/coding.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "storage/log_reader.h"
#include "storage/log_recover.h"

namespace medvault::core {

namespace {

constexpr uint8_t kRecordEvent = 1;
constexpr uint8_t kRecordCheckpoint = 2;

}  // namespace

const char* AuditActionName(AuditAction action) {
  switch (action) {
    case AuditAction::kCreate: return "create";
    case AuditAction::kRead: return "read";
    case AuditAction::kCorrect: return "correct";
    case AuditAction::kSearch: return "search";
    case AuditAction::kDispose: return "dispose";
    case AuditAction::kBreakGlass: return "break-glass";
    case AuditAction::kAccessDenied: return "access-denied";
    case AuditAction::kMigrateOut: return "migrate-out";
    case AuditAction::kMigrateIn: return "migrate-in";
    case AuditAction::kBackup: return "backup";
    case AuditAction::kRestore: return "restore";
    case AuditAction::kKeyRotation: return "key-rotation";
    case AuditAction::kCustodyTransfer: return "custody-transfer";
    case AuditAction::kPolicyChange: return "policy-change";
    case AuditAction::kRecovery: return "recovery";
    case AuditAction::kConsentGrant: return "consent-grant";
    case AuditAction::kConsentRevoke: return "consent-revoke";
  }
  return "unknown";
}

std::string AuditEvent::Encode() const {
  std::string out;
  PutVarint64(&out, seq);
  PutFixed64(&out, static_cast<uint64_t>(timestamp));
  PutLengthPrefixed(&out, actor);
  out.push_back(static_cast<char>(action));
  PutLengthPrefixed(&out, record_id);
  PutLengthPrefixed(&out, details);
  PutLengthPrefixed(&out, prev_hash);
  return out;
}

Result<AuditEvent> AuditEvent::Decode(const Slice& data) {
  Slice in = data;
  AuditEvent e;
  uint64_t ts = 0;
  if (!GetVarint64(&in, &e.seq) || !GetFixed64(&in, &ts) ||
      !GetLengthPrefixedString(&in, &e.actor) || in.empty()) {
    return Status::Corruption("malformed audit event");
  }
  e.timestamp = static_cast<Timestamp>(ts);
  e.action = static_cast<AuditAction>(in[0]);
  in.RemovePrefix(1);
  if (!GetLengthPrefixedString(&in, &e.record_id) ||
      !GetLengthPrefixedString(&in, &e.details) ||
      !GetLengthPrefixedString(&in, &e.prev_hash) || !in.empty()) {
    return Status::Corruption("malformed audit event");
  }
  return e;
}

std::string SignedCheckpoint::SignedPayload() const {
  std::string out = "medvault-checkpoint-v1";
  PutVarint64(&out, tree_size);
  PutLengthPrefixed(&out, root);
  PutFixed64(&out, static_cast<uint64_t>(timestamp));
  return out;
}

std::string SignedCheckpoint::Encode() const {
  std::string out;
  PutVarint64(&out, tree_size);
  PutLengthPrefixed(&out, root);
  PutFixed64(&out, static_cast<uint64_t>(timestamp));
  PutLengthPrefixed(&out, signature);
  return out;
}

Result<SignedCheckpoint> SignedCheckpoint::Decode(const Slice& data) {
  Slice in = data;
  SignedCheckpoint c;
  uint64_t ts = 0;
  if (!GetVarint64(&in, &c.tree_size) ||
      !GetLengthPrefixedString(&in, &c.root) || !GetFixed64(&in, &ts) ||
      !GetLengthPrefixedString(&in, &c.signature) || !in.empty()) {
    return Status::Corruption("malformed checkpoint");
  }
  c.timestamp = static_cast<Timestamp>(ts);
  return c;
}

AuditLog::AuditLog(storage::Env* env, std::string path)
    : env_(env), path_(std::move(path)) {}

Status AuditLog::Open() {
  storage::log::LogOpenResult res;
  MEDVAULT_RETURN_IF_ERROR(storage::log::OpenLogForAppend(
      env_, path_,
      [this](const Slice& rec) -> Status {
        if (rec.empty()) return Status::Corruption("empty audit record");
        uint8_t kind = static_cast<uint8_t>(rec[0]);
        Slice payload(rec.data() + 1, rec.size() - 1);
        if (kind == kRecordEvent) {
          MEDVAULT_ASSIGN_OR_RETURN(AuditEvent e,
                                    AuditEvent::Decode(payload));
          if (e.seq != events_.size()) {
            return Status::TamperDetected("audit sequence discontinuity");
          }
          if (e.prev_hash != last_hash_) {
            return Status::TamperDetected("audit hash chain broken");
          }
          last_hash_ = crypto::Sha256Digest(payload);
          tree_.AppendLeafHash(crypto::MerkleTree::HashLeaf(payload));
          IndexEventLocked(e);
          events_.push_back(std::move(e));
        } else if (kind == kRecordCheckpoint) {
          MEDVAULT_ASSIGN_OR_RETURN(SignedCheckpoint c,
                                    SignedCheckpoint::Decode(payload));
          checkpoints_.push_back(std::move(c));
        } else {
          return Status::Corruption("unknown audit record kind");
        }
        return Status::OK();
      },
      &res));
  writer_ = std::move(res.writer);
  open_ = true;
  return Status::OK();
}

Status AuditLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("audit log not open");
  return writer_->Sync();
}

storage::WritableFile* AuditLog::sync_target() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return nullptr;
  return writer_->file();
}

namespace {

/// Extracts "<id>" from details formatted "patient=<id> ...". The
/// trailing space is required — matching the report's matcher exactly,
/// so the indexed report can never differ from a full scan.
bool ParsePatientToken(const std::string& details, std::string* patient) {
  constexpr char kPrefix[] = "patient=";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (details.rfind(kPrefix, 0) != 0) return false;
  size_t space = details.find(' ', kPrefixLen);
  if (space == std::string::npos) return false;
  *patient = details.substr(kPrefixLen, space - kPrefixLen);
  return true;
}

}  // namespace

void AuditLog::IndexEventLocked(const AuditEvent& event) {
  if (event.action == AuditAction::kRead && !event.record_id.empty()) {
    read_seqs_by_record_[event.record_id].push_back(event.seq);
  } else if (event.action == AuditAction::kBreakGlass) {
    // Break-glass details are formatted "patient=<id> grant=...".
    std::string patient;
    if (ParsePatientToken(event.details, &patient)) {
      breakglass_seqs_by_patient_[patient].push_back(event.seq);
    }
  } else if (event.action == AuditAction::kConsentGrant) {
    // Consent grants are formatted "patient=<id> grantee=..." — the
    // grant names its recipient, so it is a reportable disclosure
    // decision; revocations disclose nothing and are not indexed.
    std::string patient;
    if (ParsePatientToken(event.details, &patient)) {
      consent_seqs_by_patient_[patient].push_back(event.seq);
    }
  }
}

Result<uint64_t> AuditLog::AppendEventLocked(AuditEvent event) {
  event.seq = events_.size();
  event.prev_hash = last_hash_;
  std::string payload = event.Encode();

  std::string record;
  record.push_back(static_cast<char>(kRecordEvent));
  record.append(payload);
  MEDVAULT_RETURN_IF_ERROR(writer_->AddRecord(record));

  last_hash_ = crypto::Sha256Digest(payload);
  tree_.AppendLeafHash(crypto::MerkleTree::HashLeaf(payload));
  IndexEventLocked(event);
  events_.push_back(std::move(event));
  return events_.size() - 1;
}

Result<uint64_t> AuditLog::Append(const PrincipalId& actor,
                                  AuditAction action,
                                  const RecordId& record_id,
                                  const std::string& details, Timestamp now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("audit log not open");
  AuditEvent e;
  e.timestamp = now;
  e.actor = actor;
  e.action = action;
  e.record_id = record_id;
  e.details = details;
  return AppendEventLocked(std::move(e));
}

Result<uint64_t> AuditLog::AppendBatch(
    const std::vector<PendingAuditEvent>& batch, Timestamp now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("audit log not open");
  if (batch.empty()) return events_.size();

  // Encode all events first: the chain links each payload to the hash of
  // the previous one, so the encodings must be fixed before the write.
  std::vector<AuditEvent> events;
  std::vector<std::string> payloads;
  std::vector<std::string> records;
  events.reserve(batch.size());
  payloads.reserve(batch.size());
  records.reserve(batch.size());
  const uint64_t first_seq = events_.size();
  std::string chain = last_hash_;
  for (size_t i = 0; i < batch.size(); ++i) {
    AuditEvent e;
    e.seq = first_seq + i;
    e.timestamp = now;
    e.actor = batch[i].actor;
    e.action = batch[i].action;
    e.record_id = batch[i].record_id;
    e.details = batch[i].details;
    e.prev_hash = chain;
    payloads.push_back(e.Encode());
    chain = crypto::Sha256Digest(payloads.back());
    std::string record;
    record.push_back(static_cast<char>(kRecordEvent));
    record.append(payloads.back());
    records.push_back(std::move(record));
    events.push_back(std::move(e));
  }
  std::vector<Slice> slices(records.begin(), records.end());
  Status written = writer_->AddRecords(slices.data(), slices.size());
  if (!written.ok()) {
    // The buffered write can land a partial prefix on disk before
    // failing (torn I/O), so this is NOT an all-or-nothing failure:
    // surface it distinctly so callers (the replica apply path above
    // all) know the on-disk log may hold a torn batch tail that crash
    // recovery will truncate. The in-memory chain, tree and sequence
    // deliberately do NOT advance — an acknowledged event must never
    // depend on unacknowledged bytes.
    return Status::WithContext(
        written, "partial audit batch append (on-disk tail may be torn)");
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    tree_.AppendLeafHash(crypto::MerkleTree::HashLeaf(payloads[i]));
    IndexEventLocked(events[i]);
    events_.push_back(std::move(events[i]));
  }
  last_hash_ = chain;
  return first_seq;
}

Result<SignedCheckpoint> AuditLog::Checkpoint(crypto::XmssSigner* signer,
                                              Timestamp now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("audit log not open");
  SignedCheckpoint c;
  c.tree_size = tree_.size();
  c.root = tree_.Root();
  c.timestamp = now;
  MEDVAULT_ASSIGN_OR_RETURN(crypto::XmssSignature sig,
                            signer->Sign(c.SignedPayload()));
  c.signature = sig.Encode();

  std::string record;
  record.push_back(static_cast<char>(kRecordCheckpoint));
  record.append(c.Encode());
  MEDVAULT_RETURN_IF_ERROR(writer_->AddRecord(record));
  MEDVAULT_RETURN_IF_ERROR(writer_->Sync());
  checkpoints_.push_back(c);
  return c;
}

Status AuditLog::VerifyAll(const Slice& signer_public_key,
                           const Slice& signer_public_seed,
                           int signer_height) const {
  // Re-read everything from disk; trust nothing in memory.
  std::unique_ptr<storage::SequentialFile> src;
  MEDVAULT_RETURN_IF_ERROR(env_->NewSequentialFile(path_, &src));
  storage::log::Reader reader(std::move(src));

  crypto::MerkleTree tree;
  std::string last_hash;
  uint64_t expected_seq = 0;
  std::string record;
  while (reader.ReadRecord(&record)) {
    if (record.empty()) return Status::TamperDetected("empty audit record");
    uint8_t kind = static_cast<uint8_t>(record[0]);
    Slice payload(record.data() + 1, record.size() - 1);
    if (kind == kRecordEvent) {
      MEDVAULT_ASSIGN_OR_RETURN(AuditEvent e, AuditEvent::Decode(payload));
      if (e.seq != expected_seq) {
        return Status::TamperDetected("audit sequence discontinuity");
      }
      if (e.prev_hash != last_hash) {
        return Status::TamperDetected("audit hash chain broken");
      }
      last_hash = crypto::Sha256Digest(payload);
      tree.AppendLeafHash(crypto::MerkleTree::HashLeaf(payload));
      expected_seq++;
    } else if (kind == kRecordCheckpoint) {
      MEDVAULT_ASSIGN_OR_RETURN(SignedCheckpoint c,
                                SignedCheckpoint::Decode(payload));
      MEDVAULT_ASSIGN_OR_RETURN(crypto::XmssSignature sig,
                                crypto::XmssSignature::Decode(c.signature));
      MEDVAULT_RETURN_IF_ERROR(crypto::XmssSigner::Verify(
          c.SignedPayload(), sig, signer_public_key, signer_public_seed,
          signer_height));
      if (c.tree_size > tree.size()) {
        return Status::TamperDetected(
            "checkpoint covers more events than present (truncation)");
      }
      MEDVAULT_ASSIGN_OR_RETURN(std::string root_then,
                                tree.RootAt(c.tree_size));
      if (!crypto::ConstantTimeEqual(root_then, c.root)) {
        return Status::TamperDetected("checkpoint root mismatch");
      }
    } else {
      return Status::TamperDetected("unknown audit record kind");
    }
  }
  if (reader.status().IsCorruption()) {
    return Status::TamperDetected("audit log bytes corrupted: " +
                                  reader.status().message());
  }
  MEDVAULT_RETURN_IF_ERROR(reader.status());
  return Status::OK();
}

Status AuditLog::VerifyAgainstTrusted(const SignedCheckpoint& trusted) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (trusted.tree_size > tree_.size()) {
    return Status::TamperDetected(
        "log shorter than trusted checkpoint (truncation)");
  }
  MEDVAULT_ASSIGN_OR_RETURN(std::vector<std::string> proof,
                            tree_.ConsistencyProof(trusted.tree_size,
                                                   tree_.size()));
  return crypto::MerkleTree::VerifyConsistency(
      trusted.tree_size, trusted.root, tree_.size(), tree_.Root(), proof);
}

Result<EventProof> AuditLog::ProveEvent(uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ProveEventAtLocked(seq, tree_.size());
}

Result<EventProof> AuditLog::ProveEventAt(uint64_t seq,
                                          uint64_t tree_size) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ProveEventAtLocked(seq, tree_size);
}

Result<EventProof> AuditLog::ProveEventAtLocked(uint64_t seq,
                                                uint64_t tree_size) const {
  if (seq >= events_.size()) return Status::NotFound("no such audit event");
  if (tree_size > tree_.size()) {
    return Status::NotFound("tree size exceeds audit log");
  }
  if (seq >= tree_size) {
    return Status::InvalidArgument(
        "event not covered by requested tree size");
  }
  EventProof proof;
  proof.event = events_[seq];
  proof.tree_size = tree_size;
  MEDVAULT_ASSIGN_OR_RETURN(proof.path,
                            tree_.InclusionProof(seq, tree_size));
  return proof;
}

Result<std::vector<std::string>> AuditLog::ConsistencyProofBetween(
    uint64_t old_size, uint64_t new_size) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (new_size > tree_.size()) {
    return Status::NotFound("tree size exceeds audit log");
  }
  return tree_.ConsistencyProof(old_size, new_size);
}

Status AuditLog::VerifyEventProof(const EventProof& proof,
                                  const Slice& root) {
  std::string leaf_hash =
      crypto::MerkleTree::HashLeaf(proof.event.Encode());
  return crypto::MerkleTree::VerifyInclusion(
      leaf_hash, proof.event.seq, proof.tree_size, proof.path, root);
}

Result<SignedCheckpoint> AuditLog::LatestCheckpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (checkpoints_.empty()) {
    return Status::NotFound("no checkpoint published");
  }
  return checkpoints_.back();
}

Result<SignedCheckpoint> AuditLog::CheckpointAt(uint64_t tree_size) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Scan backwards: queries overwhelmingly target recent checkpoints.
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    if (it->tree_size == tree_size) return *it;
  }
  return Status::NotFound("no checkpoint at that size");
}

std::vector<uint64_t> AuditLog::DisclosureSeqsForRecord(
    const RecordId& record_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = read_seqs_by_record_.find(record_id);
  if (it == read_seqs_by_record_.end()) return {};
  return it->second;
}

std::vector<uint64_t> AuditLog::BreakGlassSeqsForPatient(
    const PrincipalId& patient_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakglass_seqs_by_patient_.find(patient_id);
  if (it == breakglass_seqs_by_patient_.end()) return {};
  return it->second;
}

std::vector<uint64_t> AuditLog::ConsentSeqsForPatient(
    const PrincipalId& patient_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = consent_seqs_by_patient_.find(patient_id);
  if (it == consent_seqs_by_patient_.end()) return {};
  return it->second;
}

Result<AuditEvent> AuditLog::EventAt(uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (seq >= events_.size()) return Status::NotFound("no such audit event");
  return events_[seq];
}

}  // namespace medvault::core
