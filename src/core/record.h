#ifndef MEDVAULT_CORE_RECORD_H_
#define MEDVAULT_CORE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/slice.h"

namespace medvault::core {

/// Identifies a health record (all of its versions). Opaque string,
/// assigned by the Vault ("r-<n>").
using RecordId = std::string;

/// Identifies an actor (clinician, patient, auditor, system).
using PrincipalId = std::string;

/// Immutable header of one record version. This struct is the AEAD
/// *associated data* for the version's payload, so every field is
/// tamper-evident: flipping any header byte voids the payload's tag.
struct VersionHeader {
  RecordId record_id;
  uint32_t version = 1;  ///< 1-based; version>1 are corrections
  PrincipalId author;
  Timestamp created_at = 0;
  std::string content_type;  ///< e.g. "text/plain", "hl7/orux"
  std::string reason;        ///< correction rationale; empty for version 1
  /// SHA-256 of the previous version's full entry ("" for version 1):
  /// versions of a record form a hash chain, so history cannot be
  /// silently rewritten even by an insider who can append.
  std::string prev_version_hash;

  std::string Encode() const;
  static Result<VersionHeader> Decode(const Slice& data);
};

/// A decrypted record version as returned to an authorized reader.
struct RecordVersion {
  VersionHeader header;
  std::string plaintext;
};

/// Patient-facing metadata kept *outside* the ciphertext (needed before
/// decryption: routing, retention, custody). Contains no clinical data.
struct RecordMeta {
  RecordId record_id;
  PrincipalId patient_id;
  Timestamp created_at = 0;
  Timestamp retention_until = 0;
  std::string retention_policy;  ///< e.g. "osha-30y"
  uint32_t latest_version = 0;
  bool disposed = false;
  /// Litigation hold: while set, disposal is blocked even after the
  /// retention period expires (records under legal discovery must not
  /// be destroyed regardless of schedule).
  bool legal_hold = false;

  std::string Encode() const;
  static Result<RecordMeta> Decode(const Slice& data);
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_RECORD_H_
