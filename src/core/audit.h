#ifndef MEDVAULT_CORE_AUDIT_H_
#define MEDVAULT_CORE_AUDIT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/slice.h"
#include "core/record.h"
#include "crypto/merkle.h"
#include "crypto/xmss.h"
#include "storage/env.h"
#include "storage/log_writer.h"

namespace medvault::core {

/// What happened. HIPAA §164.312(b) requires recording all EPHI access;
/// §164.310(d)(2)(iii) requires recording media/record movements.
enum class AuditAction : uint8_t {
  kCreate = 1,
  kRead = 2,
  kCorrect = 3,
  kSearch = 4,
  kDispose = 5,
  kBreakGlass = 6,
  kAccessDenied = 7,
  kMigrateOut = 8,
  kMigrateIn = 9,
  kBackup = 10,
  kRestore = 11,
  kKeyRotation = 12,
  kCustodyTransfer = 13,
  kPolicyChange = 14,
  kRecovery = 15,  ///< crash recovery reconciled partial state
  kConsentGrant = 16,   ///< patient delegated access to a third party
  kConsentRevoke = 17,  ///< delegation withdrawn (patient, admin, or shred)
};

const char* AuditActionName(AuditAction action);

/// One tamper-evident audit entry. Entries are hash-chained
/// (prev_hash = SHA-256 of the previous entry's encoding) *and* committed
/// as Merkle leaves, so both streaming verification and O(log n) proofs
/// are available.
struct AuditEvent {
  uint64_t seq = 0;
  Timestamp timestamp = 0;
  PrincipalId actor;
  AuditAction action = AuditAction::kRead;
  RecordId record_id;  ///< may be empty for system-wide events
  std::string details;
  std::string prev_hash;  ///< "" for seq 0

  std::string Encode() const;
  static Result<AuditEvent> Decode(const Slice& data);
};

/// A signed statement "the first `tree_size` audit entries have Merkle
/// root `root`". An auditor who retains any past checkpoint can later
/// prove append-only growth (or catch truncation/rewriting) via a
/// consistency proof — this is the paper's "verifiable audit trail".
struct SignedCheckpoint {
  uint64_t tree_size = 0;
  std::string root;
  Timestamp timestamp = 0;
  std::string signature;  ///< XmssSignature::Encode()

  /// The byte string that is signed.
  std::string SignedPayload() const;
  std::string Encode() const;
  static Result<SignedCheckpoint> Decode(const Slice& data);
};

/// Proof that one audit event is committed under a checkpoint.
/// `tree_size` names the (checkpointed) tree size the proof verifies
/// under — NOT necessarily the log's current size: a verifier holding a
/// checkpoint for size n can check any event with seq < n regardless of
/// how far the log has grown since (see ProveEventAt).
struct EventProof {
  AuditEvent event;
  uint64_t tree_size = 0;
  std::vector<std::string> path;
};

/// An event waiting to be appended as part of a batch; seq, prev_hash
/// and timestamp are assigned by AuditLog::AppendBatch.
struct PendingAuditEvent {
  PrincipalId actor;
  AuditAction action = AuditAction::kRead;
  RecordId record_id;
  std::string details;
};

/// Append-only audit log on an Env file, with hash chaining, Merkle
/// commitments, and XMSS-signed checkpoints.
///
/// Thread safety: all mutating and in-memory-reading operations are
/// serialized on an internal mutex, so concurrent Vault readers can
/// append their mandatory access-audit entries without holding the
/// vault's exclusive lock. The internal mutex is a leaf in the lock
/// order (vault lock, if held, is always acquired first; no AuditLog
/// method calls back into Vault). Exceptions: events()/checkpoints()
/// return references into live storage and require external quiescence
/// (use SnapshotEvents() under concurrency), and VerifyAll re-reads the
/// on-disk file, so callers must exclude concurrent appends.
class AuditLog {
 public:
  AuditLog(storage::Env* env, std::string path);

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Replays an existing log (verifying the chain) or starts fresh.
  /// After an unclean shutdown a torn final record is cut off; damage
  /// anywhere else in the file still fails the open (tamper evidence).
  Status Open();

  /// Durability barrier on the audit log.
  Status Sync();

  /// The log file for batched sync waves (null before Open). The caller
  /// must exclude concurrent appends for the duration of the wave — the
  /// vault's exclusive lock does — since the barrier bypasses this
  /// log's internal mutex.
  storage::WritableFile* sync_target();

  /// Appends an event; fills seq/prev_hash. Returns the sequence number.
  Result<uint64_t> Append(const PrincipalId& actor, AuditAction action,
                          const RecordId& record_id,
                          const std::string& details, Timestamp now);

  /// Appends a batch of events under one lock acquisition with the
  /// framing for all of them coalesced into a single buffered file
  /// write. Returns the sequence number of the first event. The hash
  /// chain and Merkle tree advance exactly as if Append had been called
  /// once per event.
  Result<uint64_t> AppendBatch(const std::vector<PendingAuditEvent>& batch,
                               Timestamp now);

  /// Signs the current tree head. The caller (auditor) should retain the
  /// returned checkpoint out-of-band; it is also appended to the log.
  Result<SignedCheckpoint> Checkpoint(crypto::XmssSigner* signer,
                                      Timestamp now);

  uint64_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  /// Consistent copy of the event list; safe under concurrent appends.
  std::vector<AuditEvent> SnapshotEvents() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  /// Borrowed views — only valid while no concurrent appends run.
  const std::vector<AuditEvent>& events() const { return events_; }
  const std::vector<SignedCheckpoint>& checkpoints() const {
    return checkpoints_;
  }

  /// Full verification from on-disk bytes: re-reads the file, checks
  /// frame CRCs, the hash chain, sequence continuity, and that every
  /// embedded checkpoint's root matches the recomputed tree and carries
  /// a valid signature. Returns kTamperDetected / kCorruption on failure.
  Status VerifyAll(const Slice& signer_public_key,
                   const Slice& signer_public_seed, int signer_height) const;

  /// Proves the log is an append-only extension of `trusted` (a
  /// checkpoint the auditor saved earlier). Catches truncation and
  /// history rewrites that VerifyAll alone cannot (an insider who
  /// rewrites the *whole* file consistently is only caught against
  /// externally retained heads).
  Status VerifyAgainstTrusted(const SignedCheckpoint& trusted) const;

  /// Inclusion proof for event `seq` under the current tree head.
  Result<EventProof> ProveEvent(uint64_t seq) const;

  /// Inclusion proof for event `seq` under the prefix head of size
  /// `tree_size` — the proof a verifier needs when they trust an earlier
  /// published checkpoint rather than the live head. kNotFound if the
  /// log has fewer than `tree_size` events or `seq >= tree_size`.
  Result<EventProof> ProveEventAt(uint64_t seq, uint64_t tree_size) const;

  /// Merkle consistency proof that the first `new_size` events are an
  /// append-only extension of the first `old_size` — lets a witness who
  /// saved the checkpoint at `old_size` accept the one at `new_size`
  /// without replaying the log. kNotFound if `new_size` exceeds the log.
  Result<std::vector<std::string>> ConsistencyProofBetween(
      uint64_t old_size, uint64_t new_size) const;

  /// Stateless verification of an event proof against a (checkpointed)
  /// root.
  static Status VerifyEventProof(const EventProof& proof, const Slice& root);

  /// Consistent copy of the published-checkpoint list (log replay
  /// restores it on Open, so this survives restarts).
  std::vector<SignedCheckpoint> SnapshotCheckpoints() const {
    std::lock_guard<std::mutex> lock(mu_);
    return checkpoints_;
  }

  /// Most recently published checkpoint; kNotFound before the first.
  Result<SignedCheckpoint> LatestCheckpoint() const;

  /// The published checkpoint covering exactly `tree_size` events;
  /// kNotFound if no checkpoint was ever published at that size.
  Result<SignedCheckpoint> CheckpointAt(uint64_t tree_size) const;

  /// Sequence numbers of kRead events naming `record_id` — the
  /// disclosure-accounting index (HIPAA §164.528), maintained
  /// incrementally at append and rebuilt by log replay on Open, so a
  /// per-patient report is O(that patient's disclosures) instead of a
  /// full-log scan.
  std::vector<uint64_t> DisclosureSeqsForRecord(
      const RecordId& record_id) const;

  /// Sequence numbers of kBreakGlass events whose details name
  /// `patient_id` (break-glass grants are patient-scoped, not
  /// record-scoped, so they index separately).
  std::vector<uint64_t> BreakGlassSeqsForPatient(
      const PrincipalId& patient_id) const;

  /// Sequence numbers of kConsentGrant events whose details name
  /// `patient_id` — a consent grant is itself a §164.528-reportable
  /// disclosure decision (it names the recipient), and like break-glass
  /// it is patient-scoped. Revocations are deliberately NOT indexed:
  /// withdrawing access discloses nothing.
  std::vector<uint64_t> ConsentSeqsForPatient(
      const PrincipalId& patient_id) const;

  /// Copy of event `seq`; kNotFound past the end.
  Result<AuditEvent> EventAt(uint64_t seq) const;

  /// Current tree head (root over all events).
  std::string Root() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_.Root();
  }

  /// Tree head over the first `n` events — lets a verifier check that
  /// an earlier head (e.g. one shipped to a replica) is a prefix of
  /// this log.
  Result<std::string> RootAt(uint64_t n) const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_.RootAt(n);
  }

 private:
  /// Requires mu_ held.
  Result<uint64_t> AppendEventLocked(AuditEvent event);

  /// Requires mu_ held.
  Result<EventProof> ProveEventAtLocked(uint64_t seq,
                                        uint64_t tree_size) const;

  /// Adds `event` to the disclosure-accounting index. Requires mu_ held
  /// (or exclusive access during Open replay).
  void IndexEventLocked(const AuditEvent& event);

  mutable std::mutex mu_;
  storage::Env* env_;
  std::string path_;
  std::unique_ptr<storage::log::Writer> writer_;
  crypto::MerkleTree tree_;
  std::vector<AuditEvent> events_;
  std::vector<SignedCheckpoint> checkpoints_;
  /// Disclosure-accounting index: kRead seqs per record, kBreakGlass
  /// seqs per patient. Seqs are naturally ascending (append order).
  std::unordered_map<RecordId, std::vector<uint64_t>> read_seqs_by_record_;
  std::unordered_map<PrincipalId, std::vector<uint64_t>>
      breakglass_seqs_by_patient_;
  std::unordered_map<PrincipalId, std::vector<uint64_t>>
      consent_seqs_by_patient_;
  std::string last_hash_;
  bool open_ = false;
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_AUDIT_H_
