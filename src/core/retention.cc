#include "core/retention.h"

#include "common/coding.h"

namespace medvault::core {

std::string DisposalCertificate::SignedPayload() const {
  std::string out = "medvault-disposal-v1";
  PutLengthPrefixed(&out, record_id);
  PutLengthPrefixed(&out, authorizer);
  PutLengthPrefixed(&out, policy);
  PutFixed64(&out, static_cast<uint64_t>(disposed_at));
  PutLengthPrefixed(&out, custody_head);
  return out;
}

std::string DisposalCertificate::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, record_id);
  PutLengthPrefixed(&out, authorizer);
  PutLengthPrefixed(&out, policy);
  PutFixed64(&out, static_cast<uint64_t>(disposed_at));
  PutLengthPrefixed(&out, custody_head);
  PutLengthPrefixed(&out, signature);
  return out;
}

Result<DisposalCertificate> DisposalCertificate::Decode(const Slice& data) {
  Slice in = data;
  DisposalCertificate c;
  uint64_t ts = 0;
  if (!GetLengthPrefixedString(&in, &c.record_id) ||
      !GetLengthPrefixedString(&in, &c.authorizer) ||
      !GetLengthPrefixedString(&in, &c.policy) || !GetFixed64(&in, &ts) ||
      !GetLengthPrefixedString(&in, &c.custody_head) ||
      !GetLengthPrefixedString(&in, &c.signature) || !in.empty()) {
    return Status::Corruption("malformed disposal certificate");
  }
  c.disposed_at = static_cast<Timestamp>(ts);
  return c;
}

RetentionManager::RetentionManager() {
  policies_["osha-30y"] = 30 * kMicrosPerYear;
  policies_["hipaa-6y"] = 6 * kMicrosPerYear;
  policies_["short-1y"] = 1 * kMicrosPerYear;
}

Status RetentionManager::RegisterPolicy(const std::string& name,
                                        Timestamp duration) {
  if (name.empty() || duration <= 0) {
    return Status::InvalidArgument("policy needs a name and duration");
  }
  policies_[name] = duration;
  return Status::OK();
}

bool RetentionManager::HasPolicy(const std::string& name) const {
  return policies_.count(name) > 0;
}

Result<Timestamp> RetentionManager::RetentionUntil(
    const std::string& policy, Timestamp created_at) const {
  auto it = policies_.find(policy);
  if (it == policies_.end()) {
    return Status::NotFound("unknown retention policy: " + policy);
  }
  return created_at + it->second;
}

Status RetentionManager::CheckDisposalAllowed(const RecordMeta& meta,
                                              Timestamp now) const {
  if (meta.disposed) {
    return Status::FailedPrecondition("record already disposed");
  }
  if (meta.legal_hold) {
    return Status::RetentionViolation(
        "record " + meta.record_id + " is under legal hold");
  }
  if (now < meta.retention_until) {
    return Status::RetentionViolation(
        "retention period (" + meta.retention_policy +
        ") has not expired for record " + meta.record_id);
  }
  return Status::OK();
}

Result<DisposalCertificate> RetentionManager::IssueCertificate(
    const RecordMeta& meta, const PrincipalId& authorizer,
    const std::string& custody_head, Timestamp now,
    crypto::XmssSigner* signer) const {
  DisposalCertificate cert;
  cert.record_id = meta.record_id;
  cert.authorizer = authorizer;
  cert.policy = meta.retention_policy;
  cert.disposed_at = now;
  cert.custody_head = custody_head;
  MEDVAULT_ASSIGN_OR_RETURN(crypto::XmssSignature sig,
                            signer->Sign(cert.SignedPayload()));
  cert.signature = sig.Encode();
  return cert;
}

Status RetentionManager::VerifyCertificate(const DisposalCertificate& cert,
                                           const Slice& public_key,
                                           const Slice& public_seed,
                                           int height) {
  MEDVAULT_ASSIGN_OR_RETURN(crypto::XmssSignature sig,
                            crypto::XmssSignature::Decode(cert.signature));
  return crypto::XmssSigner::Verify(cert.SignedPayload(), sig, public_key,
                                    public_seed, height);
}

}  // namespace medvault::core
