#include "core/consent.h"

#include <charconv>
#include <utility>

#include "common/coding.h"
#include "crypto/hmac.h"

namespace medvault::core {

const char* ConsentScopeName(ConsentScope scope) {
  switch (scope) {
    case ConsentScope::kRecord:
      return "record";
    case ConsentScope::kPatient:
      return "patient";
  }
  return "unknown";
}

std::string ConsentGrant::SignedPayload() const {
  std::string payload("medvault-consent-v1");
  PutLengthPrefixed(&payload, grant_id);
  PutLengthPrefixed(&payload, patient);
  PutLengthPrefixed(&payload, grantee);
  PutLengthPrefixed(&payload, record_id);
  PutVarint64(&payload, static_cast<uint64_t>(scope));
  PutLengthPrefixed(&payload, purpose);
  PutVarint64(&payload, static_cast<uint64_t>(issued_at));
  PutVarint64(&payload, static_cast<uint64_t>(expires_at));
  return payload;
}

std::string ConsentGrant::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, grant_id);
  PutLengthPrefixed(&out, patient);
  PutLengthPrefixed(&out, grantee);
  PutLengthPrefixed(&out, record_id);
  PutVarint64(&out, static_cast<uint64_t>(scope));
  PutLengthPrefixed(&out, purpose);
  PutVarint64(&out, static_cast<uint64_t>(issued_at));
  PutVarint64(&out, static_cast<uint64_t>(expires_at));
  PutLengthPrefixed(&out, signature);
  return out;
}

Result<ConsentGrant> ConsentGrant::Decode(const Slice& data) {
  Slice in = data;
  ConsentGrant grant;
  uint64_t scope_raw = 0;
  uint64_t issued = 0;
  uint64_t expires = 0;
  if (!GetLengthPrefixedString(&in, &grant.grant_id) ||
      !GetLengthPrefixedString(&in, &grant.patient) ||
      !GetLengthPrefixedString(&in, &grant.grantee) ||
      !GetLengthPrefixedString(&in, &grant.record_id) ||
      !GetVarint64(&in, &scope_raw) ||
      !GetLengthPrefixedString(&in, &grant.purpose) ||
      !GetVarint64(&in, &issued) || !GetVarint64(&in, &expires) ||
      !GetLengthPrefixedString(&in, &grant.signature) || !in.empty()) {
    return Status::Corruption("bad consent grant encoding");
  }
  if (scope_raw != static_cast<uint64_t>(ConsentScope::kRecord) &&
      scope_raw != static_cast<uint64_t>(ConsentScope::kPatient)) {
    return Status::Corruption("bad consent scope");
  }
  grant.scope = static_cast<ConsentScope>(scope_raw);
  if ((grant.scope == ConsentScope::kRecord) == grant.record_id.empty()) {
    return Status::Corruption("consent scope disagrees with record id");
  }
  grant.issued_at = static_cast<Timestamp>(issued);
  grant.expires_at = static_cast<Timestamp>(expires);
  return grant;
}

void ConsentRegistry::Configure(std::string signing_root,
                                std::string id_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  signing_root_ = std::move(signing_root);
  if (!id_prefix.empty()) id_prefix_ = std::move(id_prefix);
}

std::string ConsentRegistry::SigningKeyFor(const PrincipalId& patient) const {
  return crypto::HmacSha256(signing_root_, "consent-key:" + patient);
}

Result<ConsentGrant> ConsentRegistry::Grant(const PrincipalId& patient,
                                            const PrincipalId& grantee,
                                            const RecordId& record_id,
                                            const std::string& purpose,
                                            Timestamp now,
                                            Timestamp expires_at) {
  if (patient.empty() || grantee.empty()) {
    return Status::InvalidArgument("consent needs a patient and a grantee");
  }
  if (grantee == patient) {
    return Status::InvalidArgument(
        "patients already read their own records; no self-consent");
  }
  if (purpose.empty()) {
    return Status::InvalidArgument("consent requires a stated purpose");
  }
  if (expires_at <= now) {
    return Status::InvalidArgument("consent must be time-boxed in the future");
  }
  std::lock_guard<std::mutex> lock(mu_);
  ConsentGrant grant;
  grant.grant_id = id_prefix_ + "-" + std::to_string(next_id_++);
  grant.patient = patient;
  grant.grantee = grantee;
  grant.record_id = record_id;
  grant.scope =
      record_id.empty() ? ConsentScope::kPatient : ConsentScope::kRecord;
  grant.purpose = purpose;
  grant.issued_at = now;
  grant.expires_at = expires_at;
  grant.signature =
      crypto::HmacSha256(SigningKeyFor(patient), grant.SignedPayload());
  grants_[grant.grant_id] = grant;
  return grant;
}

Status ConsentRegistry::Revoke(const std::string& grant_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = grants_.find(grant_id);
  if (it == grants_.end()) {
    return Status::NotFound("no such consent grant: " + grant_id);
  }
  grants_.erase(it);
  return Status::OK();
}

Result<ConsentGrant> ConsentRegistry::Get(const std::string& grant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = grants_.find(grant_id);
  if (it == grants_.end()) {
    return Status::NotFound("no such consent grant: " + grant_id);
  }
  return it->second;
}

bool ConsentRegistry::HasActiveConsent(const PrincipalId& grantee,
                                       const PrincipalId& patient,
                                       const RecordId& record_id,
                                       Timestamp now,
                                       std::string* grant_id_out) const {
  std::lock_guard<std::mutex> lock(mu_);
  PruneExpiredLocked(now);
  for (const auto& [id, grant] : grants_) {
    if (grant.grantee != grantee || grant.patient != patient) continue;
    if (grant.scope == ConsentScope::kRecord && grant.record_id != record_id) {
      continue;
    }
    if (grant_id_out != nullptr) *grant_id_out = id;
    return true;
  }
  return false;
}

bool ConsentRegistry::HasActiveConsentForRecord(const RecordId& record_id,
                                                Timestamp now) const {
  std::lock_guard<std::mutex> lock(mu_);
  PruneExpiredLocked(now);
  for (const auto& [id, grant] : grants_) {
    (void)id;
    if (grant.scope == ConsentScope::kRecord && grant.record_id == record_id) {
      return true;
    }
  }
  return false;
}

std::vector<ConsentGrant> ConsentRegistry::ListForPatient(
    const PrincipalId& patient, Timestamp now) const {
  std::lock_guard<std::mutex> lock(mu_);
  PruneExpiredLocked(now);
  std::vector<ConsentGrant> out;
  for (const auto& [id, grant] : grants_) {
    (void)id;
    if (grant.patient == patient) out.push_back(grant);
  }
  return out;
}

std::vector<ConsentGrant> ConsentRegistry::RevokeAllForRecord(
    const RecordId& record_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ConsentGrant> revoked;
  for (auto it = grants_.begin(); it != grants_.end();) {
    if (it->second.scope == ConsentScope::kRecord &&
        it->second.record_id == record_id) {
      revoked.push_back(it->second);
      it = grants_.erase(it);
    } else {
      ++it;
    }
  }
  return revoked;
}

std::vector<ConsentGrant> ConsentRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ConsentGrant> out;
  out.reserve(grants_.size());
  for (const auto& [id, grant] : grants_) {
    (void)id;
    out.push_back(grant);
  }
  return out;
}

Status ConsentRegistry::VerifySignature(const ConsentGrant& grant) const {
  std::string expected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    expected =
        crypto::HmacSha256(SigningKeyFor(grant.patient), grant.SignedPayload());
  }
  if (!crypto::ConstantTimeEqual(expected, grant.signature)) {
    return Status::TamperDetected("consent grant " + grant.grant_id +
                                  " signature mismatch");
  }
  return Status::OK();
}

Status ConsentRegistry::Restore(const ConsentGrant& grant, Timestamp now) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteReplayedIdLocked(grant.grant_id);
  if (grant.expires_at <= now) return Status::OK();  // dead on arrival: skip
  grants_[grant.grant_id] = grant;
  return Status::OK();
}

Status ConsentRegistry::RestoreRevoke(const std::string& grant_id) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteReplayedIdLocked(grant_id);
  grants_.erase(grant_id);
  return Status::OK();
}

size_t ConsentRegistry::ActiveCount(Timestamp now) const {
  std::lock_guard<std::mutex> lock(mu_);
  PruneExpiredLocked(now);
  return grants_.size();
}

void ConsentRegistry::PruneExpiredLocked(Timestamp now) const {
  for (auto it = grants_.begin(); it != grants_.end();) {
    if (it->second.expires_at <= now) {
      it = grants_.erase(it);
    } else {
      ++it;
    }
  }
}

void ConsentRegistry::NoteReplayedIdLocked(const std::string& grant_id) {
  size_t dash = grant_id.rfind('-');
  if (dash == std::string::npos || dash + 1 >= grant_id.size()) return;
  uint64_t n = 0;
  const char* first = grant_id.data() + dash + 1;
  const char* last = grant_id.data() + grant_id.size();
  auto [ptr, ec] = std::from_chars(first, last, n, 10);
  if (ec != std::errc() || ptr != last) return;
  if (n >= next_id_) next_id_ = n + 1;
}

}  // namespace medvault::core
