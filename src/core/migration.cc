#include "core/migration.h"

#include "common/coding.h"
#include "common/hex.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace medvault::core {

std::string MigrationReceipt::SignedPayload() const {
  std::string out = "medvault-migration-v1";
  PutLengthPrefixed(&out, source_system);
  PutLengthPrefixed(&out, target_system);
  PutVarint64(&out, record_count);
  PutVarint64(&out, version_count);
  PutLengthPrefixed(&out, content_root);
  PutFixed64(&out, static_cast<uint64_t>(completed_at));
  return out;
}

std::string MigrationReceipt::Encode() const {
  std::string out = SignedPayload();
  PutLengthPrefixed(&out, source_signature);
  PutLengthPrefixed(&out, target_signature);
  return out;
}

Result<MigrationReceipt> MigrationReceipt::Decode(const Slice& data) {
  Slice in = data;
  MigrationReceipt r;
  uint64_t ts = 0;
  std::string magic(21, '\0');
  if (in.size() < 21) return Status::Corruption("malformed receipt");
  magic.assign(in.data(), 21);
  in.RemovePrefix(21);
  if (magic != "medvault-migration-v1") {
    return Status::Corruption("bad receipt magic");
  }
  if (!GetLengthPrefixedString(&in, &r.source_system) ||
      !GetLengthPrefixedString(&in, &r.target_system) ||
      !GetVarint64(&in, &r.record_count) ||
      !GetVarint64(&in, &r.version_count) ||
      !GetLengthPrefixedString(&in, &r.content_root) ||
      !GetFixed64(&in, &ts) ||
      !GetLengthPrefixedString(&in, &r.source_signature) ||
      !GetLengthPrefixedString(&in, &r.target_signature) || !in.empty()) {
    return Status::Corruption("malformed receipt");
  }
  r.completed_at = static_cast<Timestamp>(ts);
  return r;
}

Result<MigrationReceipt> Migrator::Migrate(Vault* source, Vault* target,
                                           const PrincipalId& actor) {
  // Timed against the source's registry: migration drains the source,
  // so that is where an operator watching op latency will look.
  obs::ScopedOpTimer timer(
      source->metrics_registry(),
      source->metrics_registry()->GetHistogram("vault.migrate"),
      "vault.migrate");
  // Both sides must authorize the movement.
  MEDVAULT_RETURN_IF_ERROR(source->access()->CheckAccess(
      actor, Operation::kMigrate, "", source->Now()));
  MEDVAULT_RETURN_IF_ERROR(target->access()->CheckAccess(
      actor, Operation::kMigrate, "", target->Now()));

  Timestamp now = source->Now();
  crypto::MerkleTree source_tree;
  crypto::MerkleTree target_tree;
  uint64_t version_count = 0;

  std::vector<RecordId> record_ids = source->ListRecordIds();
  for (const RecordId& record_id : record_ids) {
    MEDVAULT_ASSIGN_OR_RETURN(RecordMeta meta,
                              source->GetRecordMeta(record_id));

    // 1. Key custody transfer (tombstones carry over for shredded keys).
    auto key = source->keystore()->GetKey(record_id);
    if (key.ok()) {
      MEDVAULT_RETURN_IF_ERROR(
          target->keystore()->ImportKey(record_id, *key, false));
    } else if (key.status().IsKeyDestroyed()) {
      MEDVAULT_RETURN_IF_ERROR(
          target->keystore()->ImportKey(record_id, Slice(), true));
    } else {
      return key.status();
    }

    // 2. Exact copy of every (still-encrypted) version entry. Records
    // whose media was reclaimed after crypto-shredding have no bytes to
    // copy: only their metadata and custody chain move. The source
    // contributes its catalog hash; the target re-hashes the bytes it
    // actually stored — the Merkle roots only match if every byte made
    // it across intact.
    const bool reclaimed = source->versions()->IsReclaimed(record_id);
    if (!reclaimed) {
      MEDVAULT_RETURN_IF_ERROR(source->versions()->ForEachRawVersion(
          record_id,
          [&](uint32_t version, const Slice& raw_entry,
              const std::string& entry_hash) -> Status {
            source_tree.Append(entry_hash);
            MEDVAULT_RETURN_IF_ERROR(
                target->versions()->ImportRawVersion(record_id, raw_entry));
            version_count++;
            return Status::OK();
          }));
      MEDVAULT_RETURN_IF_ERROR(target->versions()->ForEachRawVersion(
          record_id,
          [&](uint32_t version, const Slice& raw_entry,
              const std::string& entry_hash) -> Status {
            target_tree.Append(crypto::Sha256Digest(raw_entry));
            return Status::OK();
          }));
    }

    // 3. Chain of custody moves with the record. The hand-off event is
    // recorded at the source *first* so it travels inside the exported
    // chain; the target then appends its matching migrated-in event.
    MEDVAULT_RETURN_IF_ERROR(
        source->provenance()
            ->RecordEvent(record_id, CustodyEventType::kMigratedOut, actor,
                          "to=" + target->options().system_id, now)
            .status());
    MEDVAULT_ASSIGN_OR_RETURN(std::string chain,
                              source->provenance()->ExportChain(record_id));
    MEDVAULT_RETURN_IF_ERROR(
        target->provenance()->ImportChain(record_id, chain));
    MEDVAULT_RETURN_IF_ERROR(
        target->provenance()
            ->RecordEvent(record_id, CustodyEventType::kMigratedIn, actor,
                          "from=" + source->options().system_id,
                          target->Now())
            .status());

    // 4. Metadata (retention clock continues unchanged).
    MEDVAULT_RETURN_IF_ERROR(target->PutRecordMeta(meta));
  }

  // 5. Cryptographic copy verification.
  std::string source_root = source_tree.Root();
  std::string target_root = target_tree.Root();
  if (!crypto::ConstantTimeEqual(source_root, target_root)) {
    return Status::TamperDetected(
        "migration verification failed: content roots differ");
  }

  // 6. Dual-signed receipt.
  MigrationReceipt receipt;
  receipt.source_system = source->options().system_id;
  receipt.target_system = target->options().system_id;
  receipt.record_count = record_ids.size();
  receipt.version_count = version_count;
  receipt.content_root = source_root;
  receipt.completed_at = now;
  MEDVAULT_ASSIGN_OR_RETURN(receipt.source_signature,
                            source->SignStatement(receipt.SignedPayload()));
  MEDVAULT_ASSIGN_OR_RETURN(receipt.target_signature,
                            target->SignStatement(receipt.SignedPayload()));

  std::string detail =
      "records=" + std::to_string(receipt.record_count) +
      " versions=" + std::to_string(receipt.version_count) + " root=" +
      HexEncode(Slice(source_root.data(), 8));
  MEDVAULT_RETURN_IF_ERROR(source->Audit(actor, AuditAction::kMigrateOut,
                                         "", detail));
  MEDVAULT_RETURN_IF_ERROR(
      target->Audit(actor, AuditAction::kMigrateIn, "", detail));
  return receipt;
}

Status Migrator::VerifyReceipt(const MigrationReceipt& receipt,
                               Vault* source, Vault* target) {
  MEDVAULT_ASSIGN_OR_RETURN(
      crypto::XmssSignature source_sig,
      crypto::XmssSignature::Decode(receipt.source_signature));
  MEDVAULT_RETURN_IF_ERROR(crypto::XmssSigner::Verify(
      receipt.SignedPayload(), source_sig, source->SignerPublicKey(),
      source->SignerPublicSeed(), source->SignerHeight()));
  MEDVAULT_ASSIGN_OR_RETURN(
      crypto::XmssSignature target_sig,
      crypto::XmssSignature::Decode(receipt.target_signature));
  MEDVAULT_RETURN_IF_ERROR(crypto::XmssSigner::Verify(
      receipt.SignedPayload(), target_sig, target->SignerPublicKey(),
      target->SignerPublicSeed(), target->SignerHeight()));

  // The target must still hold exactly what was signed for. Records
  // migrated as reclaimed tombstones contributed nothing to the signed
  // root and hold no versions here; skip them. (Removing a record that
  // WAS included still changes the recomputed root — caught below.)
  crypto::MerkleTree tree;
  for (const RecordId& record_id : target->ListRecordIds()) {
    if (!target->versions()->LatestVersion(record_id).ok()) continue;
    MEDVAULT_RETURN_IF_ERROR(target->versions()->ForEachRawVersion(
        record_id,
        [&](uint32_t version, const Slice& raw_entry,
            const std::string& entry_hash) -> Status {
          tree.Append(crypto::Sha256Digest(raw_entry));
          return Status::OK();
        }));
  }
  if (!crypto::ConstantTimeEqual(tree.Root(), receipt.content_root)) {
    return Status::TamperDetected(
        "target content no longer matches migration receipt");
  }
  return Status::OK();
}

Result<std::vector<MigrationReceipt>> Migrator::MigrateSharded(
    ShardedVault* source, ShardedVault* target, const PrincipalId& actor) {
  if (source->num_shards() != target->num_shards()) {
    return Status::InvalidArgument(
        "sharded migration requires equal shard counts (source has " +
        std::to_string(source->num_shards()) + ", target has " +
        std::to_string(target->num_shards()) +
        "); reshard via a dedicated re-placement migration instead");
  }
  std::vector<MigrationReceipt> receipts;
  receipts.reserve(source->num_shards());
  for (uint32_t k = 0; k < source->num_shards(); ++k) {
    MEDVAULT_ASSIGN_OR_RETURN(
        MigrationReceipt receipt,
        Migrate(source->shard(k), target->shard(k), actor));
    receipts.push_back(std::move(receipt));
  }
  return receipts;
}

}  // namespace medvault::core
