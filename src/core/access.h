#ifndef MEDVAULT_CORE_ACCESS_H_
#define MEDVAULT_CORE_ACCESS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/consent.h"
#include "core/record.h"

namespace medvault::core {

/// Clinical/administrative roles. The policy encodes HIPAA's "minimum
/// necessary" standard: administrators operate the system but cannot
/// read clinical content; auditors read trails but not records.
enum class Role : uint8_t {
  kPhysician = 1,
  kNurse = 2,
  kClerk = 3,
  kAuditor = 4,
  kPatient = 5,
  kAdmin = 6,
};

const char* RoleName(Role role);

struct Principal {
  PrincipalId id;
  Role role = Role::kClerk;
  std::string display_name;
};

/// Operations subject to access control.
enum class Operation : uint8_t {
  kCreateRecord = 1,
  kReadRecord = 2,
  kCorrectRecord = 3,
  kSearch = 4,
  kDispose = 5,
  kMigrate = 6,
  kBackup = 7,
  kReadAudit = 8,
  kManagePrincipals = 9,
};

const char* OperationName(Operation op);

/// Why an access check succeeded — threaded into the audit trail so a
/// disclosure report names HOW a reader got in (care relation vs
/// emergency override vs delegated consent), not just that they did.
struct AccessBasis {
  enum class Kind : uint8_t {
    kNone = 0,        ///< denied, or basis not applicable
    kRole = 1,        ///< role policy alone (clerk create, admin ops, ...)
    kOwner = 2,       ///< patient acting on their own records
    kCare = 3,        ///< treating relationship
    kBreakGlass = 4,  ///< emergency override grant
    kConsent = 5,     ///< delegated patient consent grant
  };
  Kind kind = Kind::kNone;
  std::string grant_id;  ///< set for kBreakGlass / kConsent
};

const char* AccessBasisName(AccessBasis::Kind kind);

/// Role-based access control with treating-relationship scoping and
/// emergency break-glass (paper §3: "only authorized personnel should
/// have access"; availability requires an override that never blocks
/// care, provided it is irrevocably audited — the Vault logs every
/// break-glass grant).
///
/// Policy summary:
///  - Physician: create/read/correct/search for patients under their
///    care (or via break-glass).
///  - Nurse: create/read for patients under care (or break-glass).
///  - Clerk: create only (registration; cannot read clinical content).
///  - Patient: read their own records; request corrections to them.
///  - Auditor: read audit trails only.
///  - Admin: dispose/migrate/backup/manage; *no* clinical reads.
class AccessController {
 public:
  AccessController() = default;

  AccessController(const AccessController&) = delete;
  AccessController& operator=(const AccessController&) = delete;

  Status RegisterPrincipal(const Principal& principal);
  Result<Principal> GetPrincipal(const PrincipalId& id) const;

  /// Declares `clinician` as treating `patient` (admission/assignment).
  Status AssignCare(const PrincipalId& clinician,
                    const PrincipalId& patient);
  Status RevokeCare(const PrincipalId& clinician,
                    const PrincipalId& patient);
  bool InCare(const PrincipalId& clinician, const PrincipalId& patient) const;

  /// Makes delegated consent grants visible to CheckAccess (read-only
  /// borrow; the Vault owns the registry and outlives the controller).
  void AttachConsentRegistry(const ConsentRegistry* consents) {
    consents_ = consents;
  }

  /// Decides whether `actor` may perform `op` on a record belonging to
  /// `patient_id` (empty for non-record operations). OK or
  /// kPermissionDenied (kNotFound for unknown actors).
  Status CheckAccess(const PrincipalId& actor, Operation op,
                     const PrincipalId& patient_id, Timestamp now) const;

  /// Record-aware overload: also consults the consent registry (a
  /// delegated grant authorizes kReadRecord only — sharing is
  /// read-only) and reports the basis of a successful check via
  /// `*basis` (may be null). `record_id` may be empty for
  /// patient-scoped decisions.
  Status CheckAccess(const PrincipalId& actor, Operation op,
                     const PrincipalId& patient_id, const RecordId& record_id,
                     Timestamp now, AccessBasis* basis) const;

  /// Emergency override: grants `clinician` read access to `patient`'s
  /// records until `expires_at`. Returns the grant id. The caller MUST
  /// audit this (Vault does) AND persist it (Vault appends a state-log
  /// entry, replayed via RestoreGrant on reopen) — a grant that exists
  /// only in memory silently revokes emergency access on crash while
  /// the audit trail claims it was active.
  Result<std::string> BreakGlass(const PrincipalId& clinician,
                                 const PrincipalId& patient,
                                 const std::string& justification,
                                 Timestamp now, Timestamp expires_at);

  /// Re-installs a persisted grant under its original id (state-log
  /// replay on open). Keeps the grant-id counter ahead of replayed ids
  /// so fresh grants never collide; grants already expired at `now` are
  /// counted but not re-installed. No role/justification re-validation:
  /// BreakGlass validated at grant time, and replay must never make a
  /// previously-open vault unopenable.
  Status RestoreGrant(const std::string& grant_id,
                      const PrincipalId& clinician,
                      const PrincipalId& patient,
                      const std::string& justification, Timestamp now,
                      Timestamp expires_at);

  /// Active break-glass grants. Exact: expired grants are pruned from
  /// the table first, so this equals the table size afterwards — a
  /// long-lived daemon's grant table cannot grow without bound.
  size_t ActiveGrantCount(Timestamp now) const;

 private:
  struct Grant {
    PrincipalId clinician;
    PrincipalId patient;
    std::string justification;
    Timestamp expires_at = 0;
  };

  /// Fills `*grant_id_out` (if non-null) with the matching grant's id.
  bool HasActiveGrant(const PrincipalId& clinician,
                      const PrincipalId& patient, Timestamp now,
                      std::string* grant_id_out) const;
  /// Drops every grant with expires_at <= now. Requires grants_mu_.
  void PruneExpiredLocked(Timestamp now) const;

  std::map<PrincipalId, Principal> principals_;
  std::set<std::pair<PrincipalId, PrincipalId>> care_;  // (clinician, patient)
  /// Grants live under their own mutex (unlike the rest of the
  /// controller, which relies on the Vault's lock): CheckAccess runs
  /// under the vault's *shared* lock, and pruning dead grants during
  /// the expiry scan there is a write — without an internal mutex,
  /// parallel readers would race on the map. The table is tiny
  /// (active emergencies only, now that expired entries are pruned),
  /// so the serialization is negligible.
  mutable std::mutex grants_mu_;
  mutable std::map<std::string, Grant> grants_;
  uint64_t next_grant_ = 1;  // guarded by grants_mu_
  /// Borrowed from the Vault; null until AttachConsentRegistry. The
  /// registry has its own leaf mutex, so consulting it under the
  /// vault's shared lock is safe, exactly like grants_mu_.
  const ConsentRegistry* consents_ = nullptr;
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_ACCESS_H_
