#ifndef MEDVAULT_CORE_ACCESS_H_
#define MEDVAULT_CORE_ACCESS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/record.h"

namespace medvault::core {

/// Clinical/administrative roles. The policy encodes HIPAA's "minimum
/// necessary" standard: administrators operate the system but cannot
/// read clinical content; auditors read trails but not records.
enum class Role : uint8_t {
  kPhysician = 1,
  kNurse = 2,
  kClerk = 3,
  kAuditor = 4,
  kPatient = 5,
  kAdmin = 6,
};

const char* RoleName(Role role);

struct Principal {
  PrincipalId id;
  Role role = Role::kClerk;
  std::string display_name;
};

/// Operations subject to access control.
enum class Operation : uint8_t {
  kCreateRecord = 1,
  kReadRecord = 2,
  kCorrectRecord = 3,
  kSearch = 4,
  kDispose = 5,
  kMigrate = 6,
  kBackup = 7,
  kReadAudit = 8,
  kManagePrincipals = 9,
};

const char* OperationName(Operation op);

/// Role-based access control with treating-relationship scoping and
/// emergency break-glass (paper §3: "only authorized personnel should
/// have access"; availability requires an override that never blocks
/// care, provided it is irrevocably audited — the Vault logs every
/// break-glass grant).
///
/// Policy summary:
///  - Physician: create/read/correct/search for patients under their
///    care (or via break-glass).
///  - Nurse: create/read for patients under care (or break-glass).
///  - Clerk: create only (registration; cannot read clinical content).
///  - Patient: read their own records; request corrections to them.
///  - Auditor: read audit trails only.
///  - Admin: dispose/migrate/backup/manage; *no* clinical reads.
class AccessController {
 public:
  AccessController() = default;

  AccessController(const AccessController&) = delete;
  AccessController& operator=(const AccessController&) = delete;

  Status RegisterPrincipal(const Principal& principal);
  Result<Principal> GetPrincipal(const PrincipalId& id) const;

  /// Declares `clinician` as treating `patient` (admission/assignment).
  Status AssignCare(const PrincipalId& clinician,
                    const PrincipalId& patient);
  Status RevokeCare(const PrincipalId& clinician,
                    const PrincipalId& patient);
  bool InCare(const PrincipalId& clinician, const PrincipalId& patient) const;

  /// Decides whether `actor` may perform `op` on a record belonging to
  /// `patient_id` (empty for non-record operations). OK or
  /// kPermissionDenied (kNotFound for unknown actors).
  Status CheckAccess(const PrincipalId& actor, Operation op,
                     const PrincipalId& patient_id, Timestamp now) const;

  /// Emergency override: grants `clinician` read access to `patient`'s
  /// records until `expires_at`. Returns the grant id. The caller MUST
  /// audit this (Vault does).
  Result<std::string> BreakGlass(const PrincipalId& clinician,
                                 const PrincipalId& patient,
                                 const std::string& justification,
                                 Timestamp now, Timestamp expires_at);

  /// Active break-glass grants for introspection/tests.
  size_t ActiveGrantCount(Timestamp now) const;

 private:
  struct Grant {
    PrincipalId clinician;
    PrincipalId patient;
    std::string justification;
    Timestamp expires_at = 0;
  };

  bool HasActiveGrant(const PrincipalId& clinician,
                      const PrincipalId& patient, Timestamp now) const;

  std::map<PrincipalId, Principal> principals_;
  std::set<std::pair<PrincipalId, PrincipalId>> care_;  // (clinician, patient)
  std::map<std::string, Grant> grants_;
  uint64_t next_grant_ = 1;
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_ACCESS_H_
