#ifndef MEDVAULT_CORE_WORKER_POOL_H_
#define MEDVAULT_CORE_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace medvault::core {

/// A small persistent pool for cross-shard fan-out. Tasks submitted by
/// one RunAll call complete before it returns; concurrent RunAll calls
/// from different threads interleave safely (each call tracks its own
/// completion state). With zero threads, RunAll executes inline in
/// submission order — the deterministic mode the crash matrix uses.
///
/// Re-entrancy: RunAll called from one of the pool's own worker threads
/// (a pooled task fanning out again) executes inline on that thread
/// instead of queueing. Queueing would have the worker block on the
/// batch condvar while occupying the very slot needed to drain it —
/// with enough re-entrant submitters, every worker waits and no one
/// runs, a guaranteed deadlock once all workers are blocked.
class WorkerPool {
 public:
  /// Spawns `threads` workers; 0 means no workers (inline RunAll).
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs every task and returns once all have completed. Tasks may
  /// themselves call RunAll on this pool (see class comment).
  void RunAll(std::vector<std::function<void()>> tasks);

  unsigned thread_count() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// True iff the calling thread is one of this pool's workers.
  bool OnWorkerThread() const { return current_pool_ == this; }

 private:
  void Loop();

  /// The pool the current thread works for, if any — how RunAll detects
  /// re-entrant submission from a pooled task.
  static thread_local const WorkerPool* current_pool_;

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_WORKER_POOL_H_
