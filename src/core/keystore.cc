#include "core/keystore.h"

#include <algorithm>

#include "common/coding.h"
#include "crypto/ctr.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace medvault::core {

namespace {

/// Key-log entry kinds.
constexpr uint8_t kEntryLive = 1;
constexpr uint8_t kEntryDestroyed = 2;

/// Deterministic public wrap nonce, unique per record id. Reopening the
/// keystore (which reseeds the DRBG) must never reuse a (key, nonce)
/// pair with *different* plaintext; binding the nonce to the record id
/// guarantees the only reuse is re-wrapping the identical data key,
/// which leaks nothing.
std::string WrapNonce(const std::string& record_id) {
  std::string digest =
      crypto::Sha256Digest("medvault-wrap-nonce:" + record_id);
  return digest.substr(0, crypto::kCtrNonceSize);
}

void WipeString(std::string* s) {
  // Best-effort in-memory shredding; volatile prevents dead-store
  // elimination of the overwrite.
  volatile char* p = s->data();
  for (size_t i = 0; i < s->size(); i++) p[i] = 0;
  s->clear();
}

}  // namespace

KeyStore::KeyStore(storage::Env* env, std::string path,
                   const Slice& master_key, const Slice& drbg_seed)
    : env_(env), path_(std::move(path)) {
  // Errors surface on Open(); Init failure leaves master_aead_ unusable.
  InitAead(master_key);
  drbg_ = std::make_unique<crypto::HmacDrbg>(drbg_seed);
}

Status KeyStore::InitAead(const Slice& master_key) {
  return master_aead_.Init(master_key);
}

Status KeyStore::Open() {
  if (env_->FileExists(path_)) {
    std::string contents;
    MEDVAULT_RETURN_IF_ERROR(
        storage::ReadFileToString(env_, path_, &contents));
    Slice in = contents;
    while (!in.empty()) {
      uint8_t kind = static_cast<uint8_t>(in[0]);
      in.RemovePrefix(1);
      std::string record_id, blob;
      if (!GetLengthPrefixedString(&in, &record_id)) {
        return Status::Corruption("malformed key log");
      }
      if (kind == kEntryLive) {
        if (!GetLengthPrefixedString(&in, &blob)) {
          return Status::Corruption("malformed key log blob");
        }
        MEDVAULT_ASSIGN_OR_RETURN(std::string key,
                                  master_aead_.Open(blob, record_id));
        KeyState state;
        state.data_key = std::move(key);
        std::string ref =
            crypto::HmacSha256(state.data_key, "medvault-key-ref");
        key_refs_[ref] = record_id;
        keys_[record_id] = std::move(state);
      } else if (kind == kEntryDestroyed) {
        // Later entries win: erase any live key replayed earlier.
        auto it = keys_.find(record_id);
        if (it != keys_.end() && !it->second.destroyed) {
          key_refs_.erase(crypto::HmacSha256(it->second.data_key,
                                             "medvault-key-ref"));
          WipeString(&it->second.data_key);
        }
        KeyState state;
        state.destroyed = true;
        keys_[record_id] = std::move(state);
      } else {
        return Status::Corruption("unknown key log entry kind");
      }
    }
  }
  MEDVAULT_RETURN_IF_ERROR(env_->NewAppendableFile(path_, &appender_));
  open_ = true;
  return Status::OK();
}

Status KeyStore::AppendLiveEntry(const RecordId& record_id,
                                 const std::string& data_key) {
  std::string entry;
  entry.push_back(static_cast<char>(kEntryLive));
  PutLengthPrefixed(&entry, record_id);
  MEDVAULT_ASSIGN_OR_RETURN(
      std::string blob,
      master_aead_.Seal(WrapNonce(record_id), data_key, record_id));
  PutLengthPrefixed(&entry, blob);
  MEDVAULT_RETURN_IF_ERROR(appender_->Append(entry));
  return appender_->Sync();
}

Status KeyStore::CreateKey(const RecordId& record_id) {
  if (!open_) return Status::FailedPrecondition("keystore not open");
  if (keys_.count(record_id) > 0) {
    return Status::AlreadyExists("key already exists for record");
  }
  KeyState state;
  // Mixing the record id in keeps keys unique even if the DRBG stream
  // repeats across reopens (the seed is deterministic by design).
  state.data_key = crypto::HmacSha256(
      drbg_->Generate(crypto::kAes256KeySize), "medvault-key:" + record_id);
  std::string ref = crypto::HmacSha256(state.data_key, "medvault-key-ref");
  MEDVAULT_RETURN_IF_ERROR(AppendLiveEntry(record_id, state.data_key));
  key_refs_[ref] = record_id;
  keys_[record_id] = std::move(state);
  return Status::OK();
}

Status KeyStore::ImportKey(const RecordId& record_id, const Slice& key,
                           bool destroyed) {
  if (!open_) return Status::FailedPrecondition("keystore not open");
  if (keys_.count(record_id) > 0) {
    return Status::AlreadyExists("key already exists for record");
  }
  KeyState state;
  if (destroyed) {
    state.destroyed = true;
    std::string entry;
    entry.push_back(static_cast<char>(kEntryDestroyed));
    PutLengthPrefixed(&entry, record_id);
    MEDVAULT_RETURN_IF_ERROR(appender_->Append(entry));
    MEDVAULT_RETURN_IF_ERROR(appender_->Sync());
  } else {
    if (key.size() != crypto::kAes256KeySize) {
      return Status::InvalidArgument("imported key must be 32 bytes");
    }
    state.data_key = key.ToString();
    MEDVAULT_RETURN_IF_ERROR(AppendLiveEntry(record_id, state.data_key));
    std::string ref = crypto::HmacSha256(state.data_key, "medvault-key-ref");
    key_refs_[ref] = record_id;
  }
  keys_[record_id] = std::move(state);
  return Status::OK();
}

Result<std::string> KeyStore::GetKey(const RecordId& record_id) const {
  auto it = keys_.find(record_id);
  if (it == keys_.end()) return Status::NotFound("no key for record");
  if (it->second.destroyed) {
    return Status::KeyDestroyed("record was crypto-shredded");
  }
  return it->second.data_key;
}

Result<std::string> KeyStore::GetIndexKey(const RecordId& record_id) const {
  MEDVAULT_ASSIGN_OR_RETURN(std::string data_key, GetKey(record_id));
  return crypto::HkdfSha256(data_key, Slice(), "medvault-index-key", 32);
}

Result<std::string> KeyStore::GetKeyRef(const RecordId& record_id) const {
  MEDVAULT_ASSIGN_OR_RETURN(std::string data_key, GetKey(record_id));
  return crypto::HmacSha256(data_key, "medvault-key-ref");
}

Result<RecordId> KeyStore::ResolveKeyRef(const Slice& key_ref) const {
  auto it = key_refs_.find(key_ref.ToString());
  if (it == key_refs_.end()) {
    return Status::NotFound("key ref unknown or destroyed");
  }
  return it->second;
}

Status KeyStore::DestroyKey(const RecordId& record_id) {
  auto it = keys_.find(record_id);
  if (it == keys_.end()) return Status::NotFound("no key for record");
  if (it->second.destroyed) {
    return Status::KeyDestroyed("key already destroyed");
  }
  std::string ref = crypto::HmacSha256(it->second.data_key,
                                       "medvault-key-ref");
  key_refs_.erase(ref);
  WipeString(&it->second.data_key);
  it->second.destroyed = true;
  // Rewrite the key log immediately: the wrapped blob must not survive
  // on disk (media re-use requirement, HIPAA §164.310(d)(2)(ii)).
  return Persist();
}

bool KeyStore::IsDestroyed(const RecordId& record_id) const {
  auto it = keys_.find(record_id);
  return it != keys_.end() && it->second.destroyed;
}

size_t KeyStore::LiveKeyCount() const {
  return key_refs_.size();
}

Status KeyStore::RotateMasterKey(const Slice& new_master_key) {
  MEDVAULT_RETURN_IF_ERROR(master_aead_.Init(new_master_key));
  return Persist();
}

Status KeyStore::Persist() {
  if (!open_) return Status::FailedPrecondition("keystore not open");
  std::string out;
  for (const auto& [record_id, state] : keys_) {
    if (state.destroyed) {
      out.push_back(static_cast<char>(kEntryDestroyed));
      PutLengthPrefixed(&out, record_id);
    } else {
      out.push_back(static_cast<char>(kEntryLive));
      PutLengthPrefixed(&out, record_id);
      MEDVAULT_ASSIGN_OR_RETURN(
          std::string blob,
          master_aead_.Seal(WrapNonce(record_id), state.data_key,
                            record_id));
      PutLengthPrefixed(&out, blob);
    }
  }
  // Write-new-then-rename so a crash never leaves a half-written log,
  // then re-point the appender at the new file.
  appender_.reset();
  std::string tmp = path_ + ".tmp";
  MEDVAULT_RETURN_IF_ERROR(storage::WriteStringToFile(env_, out, tmp, true));
  MEDVAULT_RETURN_IF_ERROR(env_->RenameFile(tmp, path_));
  return env_->NewAppendableFile(path_, &appender_);
}

}  // namespace medvault::core
