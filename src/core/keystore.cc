#include "core/keystore.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32c.h"
#include "crypto/ctr.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "storage/log_format.h"
#include "storage/log_recover.h"

namespace medvault::core {

namespace {

/// Key-log entry kinds.
constexpr uint8_t kEntryLive = 1;
constexpr uint8_t kEntryDestroyed = 2;

/// First logical record of a v2 (CRC-framed) key log.
constexpr char kKeyLogMagicV2[] = "medvault-keylog-v2";

/// The exact on-disk bytes of the magic record: a kFull physical record
/// at block offset 0. Version detection compares the file's prefix
/// against this, so even a file holding only a torn fragment of the
/// magic record is recognized as v2 (and recovered to an empty log)
/// instead of being misparsed as v1.
std::string CanonicalMagicRecord() {
  const Slice payload(kKeyLogMagicV2);
  std::string rec(storage::log::kHeaderSize, '\0');
  const char type =
      static_cast<char>(storage::log::RecordType::kFull);
  uint32_t crc = crc32c::Value(Slice(&type, 1));
  crc = crc32c::Extend(crc, payload.data(), payload.size());
  EncodeFixed32(rec.data(), crc32c::Mask(crc));
  rec[4] = static_cast<char>(payload.size() & 0xff);
  rec[5] = static_cast<char>((payload.size() >> 8) & 0xff);
  rec[6] = type;
  rec.append(payload.data(), payload.size());
  return rec;
}

bool LooksLikeV2(const std::string& contents) {
  const std::string magic = CanonicalMagicRecord();
  const size_t n = std::min(contents.size(), magic.size());
  return contents.compare(0, n, magic, 0, n) == 0;
}

/// Deterministic public wrap nonce, unique per record id. Reopening the
/// keystore (which reseeds the DRBG) must never reuse a (key, nonce)
/// pair with *different* plaintext; binding the nonce to the record id
/// guarantees the only reuse is re-wrapping the identical data key,
/// which leaks nothing.
std::string WrapNonce(const std::string& record_id) {
  std::string digest =
      crypto::Sha256Digest("medvault-wrap-nonce:" + record_id);
  return digest.substr(0, crypto::kCtrNonceSize);
}

void WipeString(std::string* s) {
  // Best-effort in-memory shredding; volatile prevents dead-store
  // elimination of the overwrite.
  volatile char* p = s->data();
  for (size_t i = 0; i < s->size(); i++) p[i] = 0;
  s->clear();
}

}  // namespace

KeyStore::KeyStore(storage::Env* env, std::string path,
                   const Slice& master_key, const Slice& drbg_seed)
    : env_(env), path_(std::move(path)) {
  // Errors surface on Open(); Init failure leaves master_aead_ unusable.
  InitAead(master_key);
  drbg_ = std::make_unique<crypto::HmacDrbg>(drbg_seed);
}

Status KeyStore::InitAead(const Slice& master_key) {
  return master_aead_.Init(master_key);
}

Status KeyStore::ApplyParsedEntry(uint8_t kind, const std::string& record_id,
                                  const std::string& blob) {
  if (kind == kEntryLive) {
    MEDVAULT_ASSIGN_OR_RETURN(std::string key,
                              master_aead_.Open(blob, record_id));
    KeyState state;
    state.data_key = std::move(key);
    std::string ref =
        crypto::HmacSha256(state.data_key, "medvault-key-ref");
    key_refs_[ref] = record_id;
    keys_[record_id] = std::move(state);
  } else if (kind == kEntryDestroyed) {
    // Later entries win: erase any live key replayed earlier.
    auto it = keys_.find(record_id);
    if (it != keys_.end() && !it->second.destroyed) {
      key_refs_.erase(crypto::HmacSha256(it->second.data_key,
                                         "medvault-key-ref"));
      WipeString(&it->second.data_key);
    }
    KeyState state;
    state.destroyed = true;
    keys_[record_id] = std::move(state);
  } else {
    return Status::Corruption("unknown key log entry kind");
  }
  return Status::OK();
}

Status KeyStore::ApplyLogRecord(const Slice& record) {
  Slice in = record;
  if (in.empty()) return Status::Corruption("empty key log record");
  uint8_t kind = static_cast<uint8_t>(in[0]);
  in.RemovePrefix(1);
  std::string record_id, blob;
  if (!GetLengthPrefixedString(&in, &record_id)) {
    return Status::Corruption("malformed key log record");
  }
  if (kind == kEntryLive && !GetLengthPrefixedString(&in, &blob)) {
    return Status::Corruption("malformed key log blob");
  }
  if (!in.empty()) {
    return Status::Corruption("trailing bytes in key log record");
  }
  return ApplyParsedEntry(kind, record_id, blob);
}

Status KeyStore::ParseV1(const std::string& contents) {
  Slice in = contents;
  while (!in.empty()) {
    uint8_t kind = static_cast<uint8_t>(in[0]);
    if (kind != kEntryLive && kind != kEntryDestroyed) {
      // v1 entries start with a valid kind byte even when torn (the
      // tail is a prefix of an honest append), so garbage here is
      // corruption, not a crash artifact.
      return Status::Corruption("unknown key log entry kind");
    }
    in.RemovePrefix(1);
    std::string record_id, blob;
    if (!GetLengthPrefixedString(&in, &record_id)) break;  // torn tail
    if (kind == kEntryLive && !GetLengthPrefixedString(&in, &blob)) {
      break;  // torn tail
    }
    MEDVAULT_RETURN_IF_ERROR(ApplyParsedEntry(kind, record_id, blob));
  }
  return Status::OK();
}

Status KeyStore::Open() {
  bool needs_upgrade = false;
  if (env_->FileExists(path_)) {
    std::string contents;
    MEDVAULT_RETURN_IF_ERROR(
        storage::ReadFileToString(env_, path_, &contents));
    if (LooksLikeV2(contents)) {
      storage::log::LogOpenResult res;
      bool saw_magic = false;
      MEDVAULT_RETURN_IF_ERROR(storage::log::OpenLogForAppend(
          env_, path_,
          [this, &saw_magic](const Slice& record) -> Status {
            if (!saw_magic) {
              saw_magic = true;
              if (record.ToString() != kKeyLogMagicV2) {
                return Status::Corruption("bad key log magic");
              }
              return Status::OK();
            }
            return ApplyLogRecord(record);
          },
          &res));
      writer_ = std::move(res.writer);
      if (!saw_magic) {
        // Only a torn fragment of the magic record survived the crash
        // (now cut off); rewrite it.
        MEDVAULT_RETURN_IF_ERROR(writer_->AddRecord(kKeyLogMagicV2));
        MEDVAULT_RETURN_IF_ERROR(writer_->Sync());
      }
    } else {
      MEDVAULT_RETURN_IF_ERROR(ParseV1(contents));
      needs_upgrade = true;
    }
  } else {
    std::unique_ptr<storage::WritableFile> dest;
    MEDVAULT_RETURN_IF_ERROR(env_->NewWritableFile(path_, &dest));
    writer_ = std::make_unique<storage::log::Writer>(std::move(dest));
    MEDVAULT_RETURN_IF_ERROR(writer_->AddRecord(kKeyLogMagicV2));
    MEDVAULT_RETURN_IF_ERROR(writer_->Sync());
  }
  open_ = true;
  // v1 -> v2 upgrade: Persist rewrites the whole log framed.
  if (needs_upgrade) MEDVAULT_RETURN_IF_ERROR(Persist());
  return Status::OK();
}

Status KeyStore::AppendLiveEntry(const RecordId& record_id,
                                 const std::string& data_key) {
  if (!writer_) return Status::IoError("key log writer unavailable");
  std::string entry;
  entry.push_back(static_cast<char>(kEntryLive));
  PutLengthPrefixed(&entry, record_id);
  MEDVAULT_ASSIGN_OR_RETURN(
      std::string blob,
      master_aead_.Seal(WrapNonce(record_id), data_key, record_id));
  PutLengthPrefixed(&entry, blob);
  // No eager sync: live-key appends ride the vault's group-committed
  // sync wave (the key log is synced before the catalog/state commit
  // point — see Vault::SyncAllLocked), so batched ingest pays one key-
  // log fsync per window instead of one per record. Destroy entries
  // still sync eagerly (crypto-shredding must not be deferrable).
  return writer_->AddRecord(entry);
}

Status KeyStore::CreateKey(const RecordId& record_id) {
  if (!open_) return Status::FailedPrecondition("keystore not open");
  if (keys_.count(record_id) > 0) {
    return Status::AlreadyExists("key already exists for record");
  }
  KeyState state;
  // Mixing the record id in keeps keys unique even if the DRBG stream
  // repeats across reopens (the seed is deterministic by design).
  state.data_key = crypto::HmacSha256(
      drbg_->Generate(crypto::kAes256KeySize), "medvault-key:" + record_id);
  std::string ref = crypto::HmacSha256(state.data_key, "medvault-key-ref");
  Status append_status = AppendLiveEntry(record_id, state.data_key);
  if (!append_status.ok()) {
    // The entry (or part of it) may still have reached the file even
    // though the caller is told the create failed. Rewrite the log
    // without it — keys_ was not updated — so the id is not burned:
    // after a reopen, retrying this record id must see NotFound, not
    // AlreadyExists. Best effort; if the rewrite also fails (e.g. the
    // whole device is gone), vault crash recovery removes the orphan.
    (void)Persist();
    WipeString(&state.data_key);
    return append_status;
  }
  key_refs_[ref] = record_id;
  keys_[record_id] = std::move(state);
  return Status::OK();
}

Status KeyStore::ImportKey(const RecordId& record_id, const Slice& key,
                           bool destroyed) {
  if (!open_) return Status::FailedPrecondition("keystore not open");
  if (keys_.count(record_id) > 0) {
    return Status::AlreadyExists("key already exists for record");
  }
  KeyState state;
  if (destroyed) {
    if (!writer_) return Status::IoError("key log writer unavailable");
    state.destroyed = true;
    std::string entry;
    entry.push_back(static_cast<char>(kEntryDestroyed));
    PutLengthPrefixed(&entry, record_id);
    Status s = writer_->AddRecord(entry);
    if (s.ok()) s = writer_->Sync();
    if (!s.ok()) {
      (void)Persist();  // roll back the half-written entry, as above
      return s;
    }
  } else {
    if (key.size() != crypto::kAes256KeySize) {
      return Status::InvalidArgument("imported key must be 32 bytes");
    }
    state.data_key = key.ToString();
    Status s = AppendLiveEntry(record_id, state.data_key);
    if (!s.ok()) {
      (void)Persist();
      return s;
    }
    std::string ref = crypto::HmacSha256(state.data_key, "medvault-key-ref");
    key_refs_[ref] = record_id;
  }
  keys_[record_id] = std::move(state);
  return Status::OK();
}

Result<std::string> KeyStore::GetKey(const RecordId& record_id) const {
  auto it = keys_.find(record_id);
  if (it == keys_.end()) return Status::NotFound("no key for record");
  if (it->second.destroyed) {
    return Status::KeyDestroyed("record was crypto-shredded");
  }
  return it->second.data_key;
}

Result<std::string> KeyStore::GetIndexKey(const RecordId& record_id) const {
  MEDVAULT_ASSIGN_OR_RETURN(std::string data_key, GetKey(record_id));
  return crypto::HkdfSha256(data_key, Slice(), "medvault-index-key", 32);
}

Result<std::string> KeyStore::GetKeyRef(const RecordId& record_id) const {
  MEDVAULT_ASSIGN_OR_RETURN(std::string data_key, GetKey(record_id));
  return crypto::HmacSha256(data_key, "medvault-key-ref");
}

Result<RecordId> KeyStore::ResolveKeyRef(const Slice& key_ref) const {
  auto it = key_refs_.find(key_ref.ToString());
  if (it == key_refs_.end()) {
    return Status::NotFound("key ref unknown or destroyed");
  }
  return it->second;
}

Status KeyStore::DestroyKey(const RecordId& record_id) {
  auto it = keys_.find(record_id);
  if (it == keys_.end()) return Status::NotFound("no key for record");
  if (it->second.destroyed) {
    return Status::KeyDestroyed("key already destroyed");
  }
  std::string ref = crypto::HmacSha256(it->second.data_key,
                                       "medvault-key-ref");
  key_refs_.erase(ref);
  WipeString(&it->second.data_key);
  it->second.destroyed = true;
  // Rewrite the key log immediately: the wrapped blob must not survive
  // on disk (media re-use requirement, HIPAA §164.310(d)(2)(ii)).
  return Persist();
}

bool KeyStore::IsDestroyed(const RecordId& record_id) const {
  auto it = keys_.find(record_id);
  return it != keys_.end() && it->second.destroyed;
}

size_t KeyStore::LiveKeyCount() const {
  return key_refs_.size();
}

std::vector<RecordId> KeyStore::AllRecordIds() const {
  std::vector<RecordId> ids;
  ids.reserve(keys_.size());
  for (const auto& [record_id, state] : keys_) ids.push_back(record_id);
  return ids;
}

Status KeyStore::RemoveKeysForRecovery(
    const std::vector<RecordId>& record_ids) {
  if (!open_) return Status::FailedPrecondition("keystore not open");
  bool changed = false;
  for (const RecordId& record_id : record_ids) {
    auto it = keys_.find(record_id);
    if (it == keys_.end()) continue;
    if (!it->second.destroyed) {
      key_refs_.erase(crypto::HmacSha256(it->second.data_key,
                                         "medvault-key-ref"));
      WipeString(&it->second.data_key);
    }
    keys_.erase(it);
    changed = true;
  }
  if (!changed) return Status::OK();
  return Persist();
}

Status KeyStore::RotateMasterKey(const Slice& new_master_key) {
  MEDVAULT_RETURN_IF_ERROR(master_aead_.Init(new_master_key));
  return Persist();
}

Status KeyStore::Persist() {
  if (!open_) return Status::FailedPrecondition("keystore not open");
  // Write-new-then-rename so a crash never leaves a half-written log,
  // then re-point the writer at the new file.
  writer_.reset();
  std::string tmp = path_ + ".tmp";
  std::unique_ptr<storage::WritableFile> dest;
  MEDVAULT_RETURN_IF_ERROR(env_->NewWritableFile(tmp, &dest));
  storage::log::Writer tmp_writer(std::move(dest));
  MEDVAULT_RETURN_IF_ERROR(tmp_writer.AddRecord(kKeyLogMagicV2));
  for (const auto& [record_id, state] : keys_) {
    std::string entry;
    if (state.destroyed) {
      entry.push_back(static_cast<char>(kEntryDestroyed));
      PutLengthPrefixed(&entry, record_id);
    } else {
      entry.push_back(static_cast<char>(kEntryLive));
      PutLengthPrefixed(&entry, record_id);
      MEDVAULT_ASSIGN_OR_RETURN(
          std::string blob,
          master_aead_.Seal(WrapNonce(record_id), state.data_key,
                            record_id));
      PutLengthPrefixed(&entry, blob);
    }
    MEDVAULT_RETURN_IF_ERROR(tmp_writer.AddRecord(entry));
  }
  MEDVAULT_RETURN_IF_ERROR(tmp_writer.Sync());
  MEDVAULT_RETURN_IF_ERROR(tmp_writer.Close());
  MEDVAULT_RETURN_IF_ERROR(env_->RenameFile(tmp, path_));

  uint64_t size = 0;
  MEDVAULT_RETURN_IF_ERROR(env_->GetFileSize(path_, &size));
  std::unique_ptr<storage::WritableFile> app;
  MEDVAULT_RETURN_IF_ERROR(env_->NewAppendableFile(path_, &app));
  writer_ = std::make_unique<storage::log::Writer>(std::move(app), size);
  rewrite_generation_++;
  return Status::OK();
}

}  // namespace medvault::core
