#ifndef MEDVAULT_CORE_BACKUP_H_
#define MEDVAULT_CORE_BACKUP_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/vault.h"
#include "storage/env.h"

namespace medvault::core {

/// Signed inventory of a backup: every vault file with its SHA-256.
/// HIPAA §164.310(d)(2)(iv): "create a retrievable, exact copy of
/// electronic protected health information"; paper §3: off-site backup.
struct BackupManifest {
  std::string backup_id;
  std::string system_id;
  Timestamp created_at = 0;
  /// Empty for a full backup; for an incremental backup, the id of the
  /// backup this one builds on. `files` then lists only changed/new
  /// files and `deleted` the files that vanished since the base (e.g.
  /// reclaimed segments).
  std::string base_backup_id;
  std::vector<std::pair<std::string, std::string>> files;  // path -> sha256
  std::vector<std::string> deleted;
  std::string signature;  ///< vault XMSS signature over SignedPayload()

  std::string SignedPayload() const;
  std::string Encode() const;
  static Result<BackupManifest> Decode(const Slice& data);
};

/// Copies a vault to an off-site Env (a second MemEnv in tests, a
/// different mount in production) and verifies/restores it.
class BackupManager {
 public:
  /// Full backup of `vault` into `offsite_env:offsite_dir`. Writes the
  /// manifest alongside the data as "<offsite_dir>/MANIFEST" and audits
  /// the operation. `actor` needs kBackup.
  static Result<BackupManifest> Backup(Vault* vault,
                                       const PrincipalId& actor,
                                       storage::Env* offsite_env,
                                       const std::string& offsite_dir);

  /// Incremental backup: copies only files that are new or changed
  /// relative to `base` (which may itself be incremental) and records
  /// files deleted since. Restore needs the full chain.
  static Result<BackupManifest> BackupIncremental(
      Vault* vault, const PrincipalId& actor, storage::Env* offsite_env,
      const std::string& offsite_dir, const BackupManifest& base);

  /// Re-hashes every off-site file against the manifest.
  static Status Verify(storage::Env* offsite_env,
                       const std::string& offsite_dir,
                       const BackupManifest& manifest);

  /// Loads the manifests of `dirs` (oldest first) and validates their
  /// linkage: the first must be a full backup and every later one must
  /// reference the previous backup_id as its base. A missing manifest
  /// or mismatched base yields kBackupChainBroken — the distinct signal
  /// that the *chain* (not the data) is unusable, e.g. because a
  /// mid-chain incremental was lost.
  static Result<std::vector<std::pair<std::string, BackupManifest>>> LoadChain(
      storage::Env* offsite_env, const std::vector<std::string>& dirs);

  /// Verify() on every link of an already-loaded chain, after
  /// re-validating its linkage.
  static Status VerifyChain(
      storage::Env* offsite_env,
      const std::vector<std::pair<std::string, BackupManifest>>& chain);

  /// Restores a full-then-incrementals chain, oldest first. Each element
  /// is (offsite_dir, manifest); every step is verified, later files
  /// overwrite earlier ones, and `deleted` lists are honored.
  static Status RestoreChain(
      storage::Env* offsite_env,
      const std::vector<std::pair<std::string, BackupManifest>>& chain,
      storage::Env* dest_env, const std::string& dest_dir);

  /// Copies the backup into `dest_env:dest_dir` after verifying it.
  /// The restored directory can then be opened as a Vault.
  static Status Restore(storage::Env* offsite_env,
                        const std::string& offsite_dir,
                        const BackupManifest& manifest,
                        storage::Env* dest_env, const std::string& dest_dir);

  /// What a Repair() did, for audit trails and operator output.
  struct RepairSummary {
    std::vector<std::string> restored;         ///< damaged files restored
    std::vector<std::string> removed_orphans;  ///< crash leftovers deleted
    /// Damaged files the chain does not cover — manual intervention.
    std::vector<std::string> unrepairable;
    /// Post-repair structural re-scrub came back clean.
    bool verified_clean = false;
  };

  /// Read-repair from backup: restores ONLY the files a scrub flagged
  /// as damaged (kCorrupt/kMissing) from the chain's effective state,
  /// verifying each restored file's SHA-256 against its manifest,
  /// removes the scrub's orphaned crash leftovers, then re-scrubs the
  /// directory structurally. Undamaged files are never touched. The
  /// chain must reflect the vault's current committed state (take a
  /// fresh incremental before repairing a live vault); restoring a
  /// stale artifact next to newer peers is exactly what the post-repair
  /// deep verification exists to catch. The vault at `dest_dir` must be
  /// closed. Record the repair with AuditRepair once the vault reopens.
  static Result<RepairSummary> Repair(
      storage::Env* offsite_env,
      const std::vector<std::pair<std::string, BackupManifest>>& chain,
      storage::Env* dest_env, const std::string& dest_dir,
      const ScrubReport& report);

  /// Appends the single kRestore audit event for a completed Repair —
  /// called on the reopened vault, since the vault was necessarily
  /// closed (possibly unopenable) while its files were being replaced.
  /// `actor` needs kBackup.
  static Status AuditRepair(Vault* vault, const PrincipalId& actor,
                            const RepairSummary& summary);

  /// Loads the manifest stored with a backup.
  static Result<BackupManifest> LoadManifest(storage::Env* offsite_env,
                                             const std::string& offsite_dir);

  /// Verifies the manifest signature against a vault's signer identity.
  static Status VerifyManifestSignature(const BackupManifest& manifest,
                                        const Slice& public_key,
                                        const Slice& public_seed, int height);

 private:
  /// Relative paths of all files that constitute a vault.
  static Result<std::vector<std::string>> VaultFiles(storage::Env* env,
                                                     const std::string& dir);
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_BACKUP_H_
