#ifndef MEDVAULT_CORE_VAULT_H_
#define MEDVAULT_CORE_VAULT_H_

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/access.h"
#include "core/audit.h"
#include "core/consent.h"
#include "core/group_commit.h"
#include "core/keystore.h"
#include "core/provenance.h"
#include "core/record.h"
#include "core/record_cache.h"
#include "core/retention.h"
#include "core/scrub.h"
#include "core/secure_index.h"
#include "core/version_store.h"
#include "crypto/xmss.h"
#include "obs/metrics.h"
#include "storage/env.h"

namespace medvault::core {

/// Configuration for opening a Vault.
struct VaultOptions {
  storage::Env* env = nullptr;  ///< required
  std::string dir;              ///< required; vault root directory
  const Clock* clock = nullptr; ///< required (tests pass ManualClock)
  std::string master_key;       ///< 32 bytes; wraps all record keys
  std::string entropy;          ///< DRBG seed for keys and nonces
  /// XMSS tree height: 2^height signatures available for checkpoints and
  /// disposal certificates across the vault's life.
  int signer_height = 8;
  std::string system_id = "medvault-primary";
  /// Two-person integrity for disposal: when true, DisposeRecord is
  /// disabled and destruction requires RequestDisposal by one admin
  /// plus ApproveDisposal by a *different* admin.
  bool require_dual_disposal = false;
  /// Namespace for vault-assigned record ids: ids read
  /// "<record_id_prefix>-<n>". The default "r" gives the classic
  /// "r-<n>"; a sharded vault gives each shard a distinct prefix
  /// ("s<k>-r") so ids are globally unique and carry their shard.
  std::string record_id_prefix = "r";
  /// Namespace for consent-grant ids, "<consent_id_prefix>-<n>". The
  /// default "cg" gives "cg-<n>"; a sharded vault gives each shard
  /// "s<k>-cg" so a grant id names the shard that persists it.
  std::string consent_id_prefix = "cg";
  /// Optional authenticated decrypted-record cache consulted by the
  /// read path (see RecordCache). Not owned; may be shared by several
  /// vault shards. When null (default) every read decrypts from the
  /// version store — the seed behaviour, under which a read also
  /// re-verifies the on-disk bytes, so leave it null for tamper
  /// experiments that rely on read-time detection.
  RecordCache* cache = nullptr;
  /// Metrics registry for op latency histograms and slow-op tracing.
  /// Not owned; must outlive the vault. Null (default) uses the
  /// process-wide obs::MetricsRegistry::Default(); multi-tenant hosts
  /// pass per-tenant registries to keep telemetry apart. Metrics are
  /// operator telemetry only — nothing here feeds the audit log.
  obs::MetricsRegistry* metrics = nullptr;
  /// Group-commit window: how long a SyncAll leader lingers to gather
  /// concurrent committers before running one sync wave for all of
  /// them (see GroupCommitter). 0 (default) adds no latency — commits
  /// still coalesce opportunistically behind an in-flight wave.
  uint64_t commit_window_micros = 0;
};

/// MedVault: trustworthy regulatory-compliant health-record storage —
/// the "hybrid model" the paper's conclusion calls for. Composes:
///
///   VersionStore      WORM versions + correction chains   (integrity,
///                                                          mutability)
///   KeyStore          envelope keys + crypto-shredding    (confidential,
///                                                          secure delete)
///   SecureIndex       blinded encrypted keyword index     (private search)
///   AuditLog          hash chain + Merkle + signed heads  (audit trails)
///   ProvenanceTracker per-record custody chains           (accountability)
///   AccessController  RBAC + care scoping + break-glass   (access control)
///   RetentionManager  policy gate + disposal certificates (retention)
///
/// Every public operation is access-checked first and audited always —
/// including denials.
///
/// Thread safety: public Vault methods are guarded by one
/// `std::shared_mutex`. Read-only operations (ReadRecord, Search*,
/// RecordHistory, audit-trail reads, Verify* of in-memory state, meta
/// introspection) take a shared lock and run in parallel; mutations
/// (record creation/correction, disposal, principal/care changes,
/// break-glass, key rotation, checkpointing, VerifyAudit — which
/// re-reads the log file and must exclude in-flight appends) take an
/// exclusive lock. Read paths still append their mandatory audit
/// entries: AuditLog serializes those on its own internal mutex, so
/// audited reads do not force exclusive vault locking.
///
/// Lock order: vault lock (shared or exclusive) first, then the
/// AuditLog internal mutex. No AuditLog method calls back into Vault,
/// so the order cannot invert. The lock is NOT recursive: private
/// *Locked helpers assume the vault lock is already held and never
/// re-acquire it.
///
/// Migrator and BackupManager coordinate two vaults and additionally
/// touch components directly; run them without concurrent mutations on
/// the involved vaults.
class Vault {
 public:
  static Result<std::unique_ptr<Vault>> Open(const VaultOptions& options);

  Vault(const Vault&) = delete;
  Vault& operator=(const Vault&) = delete;

  // ---- Administration ------------------------------------------------

  /// Registers a principal. Bootstrap: while no admin exists, anyone may
  /// register; afterwards only admins.
  Status RegisterPrincipal(const PrincipalId& actor,
                           const Principal& principal);

  /// Declares a treating relationship.
  Status AssignCare(const PrincipalId& actor, const PrincipalId& clinician,
                    const PrincipalId& patient);

  /// Emergency access override; always audited, time-limited.
  Result<std::string> BreakGlass(const PrincipalId& clinician,
                                 const PrincipalId& patient,
                                 const std::string& justification,
                                 Timestamp duration);

  // ---- Patient-driven sharing ----------------------------------------

  /// The granting patient (`actor`, Role::kPatient) delegates read
  /// access to registered principal `grantee` for `duration`
  /// microseconds — to one record (`record_id` non-empty, owned by the
  /// patient and not disposed) or to all their records (`record_id`
  /// empty). The grant is HMAC-signed under a per-patient key, persisted
  /// in the state log (kStateConsent, signature re-verified on replay),
  /// and audited as kConsentGrant naming the grantee — which also lands
  /// it in the §164.528 disclosure index.
  Result<ConsentGrant> GrantConsent(const PrincipalId& actor,
                                    const PrincipalId& grantee,
                                    const RecordId& record_id,
                                    const std::string& purpose,
                                    Timestamp duration);

  /// Revokes a consent grant — the granting patient or an admin only.
  /// Synchronous and total: runs under the exclusive lock, removes the
  /// grant from the registry, purges every cached plaintext the grant
  /// could reach, persists the revocation (kStateConsentRevoke), and
  /// audits it. After this returns, no read under the grant can succeed.
  Status RevokeConsent(const PrincipalId& actor,
                       const std::string& grant_id);

  /// Live grants issued by `patient` — the patient themself, or
  /// audit-read authority.
  Result<std::vector<ConsentGrant>> ListConsents(const PrincipalId& actor,
                                                 const PrincipalId& patient);

  /// Live delegated grants across the vault (health reporting).
  size_t ActiveConsentCount() const;

  // ---- Record lifecycle ----------------------------------------------

  /// Creates a record (version 1) for `patient_id`, indexes `keywords`,
  /// applies `retention_policy` (e.g. "osha-30y").
  Result<RecordId> CreateRecord(const PrincipalId& actor,
                                const PrincipalId& patient_id,
                                const std::string& content_type,
                                const Slice& plaintext,
                                const std::vector<std::string>& keywords,
                                const std::string& retention_policy);

  /// One record of a batched ingest (see CreateRecordsBatch).
  struct NewRecord {
    PrincipalId patient_id;
    std::string content_type;
    std::string plaintext;
    std::vector<std::string> keywords;
    std::string retention_policy;
  };

  /// Bulk ingest fast path: creates all records under one exclusive
  /// lock with the per-record bookkeeping coalesced — one state-log
  /// flush for all metas, grouped index-posting appends, and a single
  /// batched audit append — instead of one of each per record.
  /// Validation (access, retention policies) runs for the whole batch
  /// before any record is created; afterwards a failure mid-batch
  /// returns the error and earlier records of the batch remain created
  /// (same durability model as calling CreateRecord in a loop).
  Result<std::vector<RecordId>> CreateRecordsBatch(
      const PrincipalId& actor, const std::vector<NewRecord>& batch);

  /// CreateRecordsBatch plus a group-committed durability barrier: the
  /// ids are returned only once the sync window covering the batch has
  /// completed, so every acknowledged record survives a power cut.
  /// Concurrent durable batches share one window — one sync wave, not
  /// one per batch.
  Result<std::vector<RecordId>> CreateRecordsBatchDurable(
      const PrincipalId& actor, const std::vector<NewRecord>& batch);

  /// Reads the latest version (or a specific one).
  Result<RecordVersion> ReadRecord(const PrincipalId& actor,
                                   const RecordId& record_id);
  Result<RecordVersion> ReadRecordVersion(const PrincipalId& actor,
                                          const RecordId& record_id,
                                          uint32_t version);

  /// Appends a correction (new version); prior versions remain readable
  /// and verifiable.
  Result<VersionHeader> CorrectRecord(
      const PrincipalId& actor, const RecordId& record_id,
      const Slice& new_plaintext, const std::string& reason,
      const std::vector<std::string>& keywords);

  /// Blinded keyword search; results are scoped to records the actor may
  /// read ("minimum necessary").
  Result<std::vector<RecordId>> SearchKeyword(const PrincipalId& actor,
                                              const std::string& term);

  /// Conjunctive blinded search: records matching *all* terms, scoped
  /// the same way.
  Result<std::vector<RecordId>> SearchKeywordsAll(
      const PrincipalId& actor, const std::vector<std::string>& terms);

  /// Version headers of a record, oldest first.
  Result<std::vector<VersionHeader>> RecordHistory(const PrincipalId& actor,
                                                   const RecordId& record_id);

  /// Crypto-shreds the record after its retention expired. Admin only;
  /// returns a signed disposal certificate. Disabled when the vault was
  /// opened with require_dual_disposal (use the request/approve flow).
  Result<DisposalCertificate> DisposeRecord(const PrincipalId& actor,
                                            const RecordId& record_id);

  /// Records whose retention has expired and that are not under legal
  /// hold — the disposal work-list for records managers. Admin/auditor.
  Result<std::vector<RecordMeta>> ListExpiredRecords(
      const PrincipalId& actor);

  /// Physically reclaims WORM segments in which every record has been
  /// crypto-shredded (media re-use, HIPAA §164.310(d)(2)(ii)). Returns
  /// the number of segments dropped. Admin only; audited. Reclaimed
  /// records keep their catalog tombstones and custody chains but can
  /// no longer be byte-migrated (their bytes are gone — by design).
  Result<int> ReclaimDisposedMedia(const PrincipalId& actor);

  /// Places a litigation hold: the record cannot be disposed of (even
  /// past retention) until the hold is released. Admin only; audited.
  Status PlaceLegalHold(const PrincipalId& actor, const RecordId& record_id,
                        const std::string& reason);
  Status ReleaseLegalHold(const PrincipalId& actor,
                          const RecordId& record_id,
                          const std::string& reason);

  /// Two-person disposal, step 1: an admin requests destruction of an
  /// expired record. Retention is checked here AND at approval. Returns
  /// the request id; the request is audited.
  Result<std::string> RequestDisposal(const PrincipalId& actor,
                                      const RecordId& record_id);

  /// Two-person disposal, step 2: a *different* admin approves, which
  /// executes the disposal. Pending requests are session-scoped (they
  /// do not survive reopen — re-request after a restart).
  Result<DisposalCertificate> ApproveDisposal(const PrincipalId& actor,
                                              const std::string& request_id);

  /// Durability barrier over the whole vault, in commit-point order:
  /// every side log (versions, index, audit, provenance) is synced
  /// BEFORE the state log. A record counts as committed exactly when
  /// its meta is durable in state.log — so at that instant all of the
  /// record's bytes already are, and a crash can never leave a durable
  /// meta pointing at lost data. Callers that need an ingest to survive
  /// power failure call this after CreateRecord/CreateRecordsBatch.
  Status SyncAll();

  // ---- Audit & custody -----------------------------------------------

  /// Signs the current audit tree head. The auditor should keep the
  /// returned checkpoint off-site; it also goes into the log.
  Result<SignedCheckpoint> CheckpointAudit();

  /// Full audit-trail verification from on-disk bytes.
  Status VerifyAudit() const;

  /// Proves the log extends a previously retained checkpoint.
  Status VerifyAuditAgainstTrusted(const SignedCheckpoint& trusted) const;

  /// Audit events (auditor/admin only), optionally filtered by record.
  Result<std::vector<AuditEvent>> ReadAuditTrail(const PrincipalId& actor,
                                                 const RecordId& record_id);

  /// A record's chain of custody (auditor/admin only).
  Result<std::vector<CustodyEvent>> GetCustodyChain(const PrincipalId& actor,
                                                    const RecordId& record_id);

  /// HIPAA §164.528 "accounting of disclosures": every audit event that
  /// disclosed content of one of `patient_id`'s records — reads
  /// (including historical versions), break-glass grants, and consent
  /// grants (each names its recipient). Patients may request their own
  /// accounting; auditors/admins anyone's.
  Result<std::vector<AuditEvent>> AccountingOfDisclosures(
      const PrincipalId& actor, const PrincipalId& patient_id);

  /// All break-glass events, for the mandatory periodic review that
  /// makes an emergency override acceptable (auditor/admin only).
  Result<std::vector<AuditEvent>> ListBreakGlassEvents(
      const PrincipalId& actor);

  /// Cheap RBAC gate: does `actor` hold audit-read authority? Denials
  /// are audited like any other access check. Server routes that serve
  /// derived audit data (checkpoints, proofs) use this instead of
  /// copying the whole trail just to test authority.
  Status CheckAuditAccess(const PrincipalId& actor) const;

  /// Record ids belonging to `patient_id` (including disposed
  /// tombstones), from the in-memory per-patient index. No access check
  /// — internal plumbing for the transparency layer, which applies its
  /// own RBAC before calling.
  std::vector<RecordId> RecordIdsForPatient(
      const PrincipalId& patient_id) const;

  // ---- Verification & introspection ----------------------------------

  Status VerifyRecord(const RecordId& record_id) const;
  /// Records + audit + provenance, end to end.
  Status VerifyEverything() const;

  /// Merkle root over all version-entry hashes: two vaults holding
  /// byte-identical content have equal roots (basis of verifiable
  /// migration).
  std::string ContentRoot() const;

  Result<RecordMeta> GetRecordMeta(const RecordId& record_id) const;
  std::vector<RecordId> ListRecordIds() const;

  /// Health facts for the observability layer (obs::CollectHealth):
  /// store occupancy, disposal backlog, and signer-budget consumption.
  /// Gathered under the shared lock from in-memory state — no I/O.
  struct HealthStats {
    uint64_t records = 0;            ///< live (non-disposed) records
    uint64_t disposed = 0;           ///< crypto-shredded tombstones
    uint64_t legal_holds = 0;        ///< live records under legal hold
    uint64_t retention_backlog = 0;  ///< expired + unheld, not yet disposed
    uint64_t signer_leaves_used = 0;
    uint64_t signer_leaves_remaining = 0;
  };
  HealthStats CollectHealthStats() const;

  /// Media scrub: walks every on-disk artifact (structural CRC32C scan
  /// of logs and segment frames, orphan/missing classification via
  /// core::Scrubber) and then runs the deep content verification
  /// (records + audit + index + provenance), returning both in one
  /// ScrubReport. The outcome is remembered for health reporting
  /// (LastScrub) and counted in the metrics registry
  /// (vault.scrub.runs / vault.scrub.bytes / vault.scrub.dirty).
  Result<ScrubReport> Scrub();

  /// Facts about the most recent Scrub() on this handle; `ran` is false
  /// if none has run yet.
  struct ScrubStats {
    bool ran = false;
    Timestamp at = 0;
    uint64_t files_scanned = 0;
    uint64_t corrupt_files = 0;
    uint64_t orphan_files = 0;
    bool clean = false;
  };
  ScrubStats LastScrub() const;

  /// Rotates the key-wrapping master key (30-year horizon hygiene).
  Status RotateMasterKey(const PrincipalId& actor,
                         const Slice& new_master_key);

  // ---- Component access (migration/backup modules, tests) -------------

  KeyStore* keystore() { return keystore_.get(); }
  VersionStore* versions() { return versions_.get(); }
  ProvenanceTracker* provenance() { return provenance_.get(); }
  AuditLog* audit() { return audit_.get(); }
  AccessController* access() { return &access_; }
  ConsentRegistry* consent() { return &consent_; }
  RetentionManager* retention() { return &retention_; }
  crypto::XmssSigner* signer() { return signer_.get(); }
  SecureIndex* index() { return index_.get(); }
  const VaultOptions& options() const { return options_; }
  Timestamp Now() const { return options_.clock->Now(); }
  /// The registry this vault reports into (never null after Open).
  obs::MetricsRegistry* metrics_registry() const { return metrics_; }

  /// The vault's signature-verification parameters.
  const std::string& SignerPublicKey() const;
  const std::string& SignerPublicSeed() const;
  int SignerHeight() const { return options_.signer_height; }

  /// Appends an audit event on behalf of internal modules (migration,
  /// backup).
  Status Audit(const PrincipalId& actor, AuditAction action,
               const RecordId& record_id, const std::string& details);

  /// Signs an arbitrary statement with the vault's XMSS key (migration
  /// receipts, backup manifests) and persists the signer state. Returns
  /// the encoded signature.
  Result<std::string> SignStatement(const Slice& payload);

  /// Persists an updated record meta (migration import path).
  Status PutRecordMeta(const RecordMeta& meta);

  /// Runs `fn` with the store quiesced: the exclusive lock held and a
  /// full sync wave completed, so for as long as `fn` runs the on-disk
  /// artifacts are a durable, crash-consistent snapshot and nothing
  /// mutates them. `fn` must not call back into the vault's public API
  /// (the lock is not recursive); reading the vault's files through the
  /// env is the intended use — this is how ReplicationSource cuts a
  /// shipped batch at a group-commit window boundary.
  Status WithQuiescedStore(const std::function<Status()>& fn);

 private:
  explicit Vault(VaultOptions options);

  Status Init();
  Status LoadState();
  /// Cross-log reconciliation after a possible crash (runs on every
  /// open; idempotent). The state log is the commit point: catalog refs
  /// beyond a record's committed latest version (or pointing at frames
  /// lost with the active segment's tail) are dropped, keys without a
  /// committed meta are removed, half-finished disposals are completed,
  /// and metas whose surviving version count shrank are lowered. Any
  /// action is recorded as one kRecovery audit event and made durable.
  Status RecoverAfterUncleanShutdown();

  // *Locked helpers require mu_ held by the caller: exclusive for
  // anything that writes vault state, shared-or-exclusive for the
  // audit/check helpers (AuditLog has its own internal mutex).
  Status AppendStateEntryLocked(uint8_t kind, const Slice& payload);
  /// Appends several pre-framed state records (kind byte already
  /// prepended) as one buffered log write. Requires exclusive mu_.
  Status AppendStateEntriesLocked(const std::vector<std::string>& records);
  Status SyncAllLocked();
  /// Durably records that the signer's NEXT one-time leaf is spent —
  /// appended and synced to the state log BEFORE the signature is
  /// produced. XMSS leaves must never sign twice; reserving first means
  /// a crash right after a signature escapes (audit checkpoint,
  /// disposal certificate) can at worst waste the leaf, never reuse it.
  Status ReserveSignerLeafLocked();
  Result<RecordMeta> RequireLiveMetaLocked(const RecordId& record_id) const;
  Status AuditLocked(const PrincipalId& actor, AuditAction action,
                     const RecordId& record_id,
                     const std::string& details) const;
  /// Read of one version through the optional authenticated cache: a
  /// hit must match the catalog's current entry hash; misses decrypt
  /// from the version store and populate the cache. Requires mu_
  /// (shared or exclusive).
  Result<RecordVersion> ReadVersionCachedLocked(const RecordId& record_id,
                                                uint32_t version) const;
  /// Access check + denial audit. `basis` (optional) receives why a
  /// successful check passed, so read paths can name break-glass /
  /// consent exercises in their kRead audit details.
  Status CheckAndAuditLocked(const PrincipalId& actor, Operation op,
                             const RecordId& record_id,
                             const PrincipalId& patient_id,
                             AccessBasis* basis = nullptr) const;
  /// Registers `meta` in memory (catalog + per-patient index) and
  /// appends it to the state log. Requires exclusive mu_.
  Status PutRecordMetaLocked(const RecordMeta& meta);
  /// In-memory half of PutRecordMetaLocked, shared with state replay:
  /// updates metas_ and, for a first sighting of the record id, the
  /// per-patient index (a record's patient never changes).
  void StoreMetaLocked(const RecordMeta& meta);
  /// Shared disposal tail: custody event, certificate, key destruction,
  /// meta flip, audit entry. `authorizers` is "a" or "a+b". Requires
  /// exclusive mu_.
  Result<DisposalCertificate> ExecuteDisposalLocked(
      const PrincipalId& actor, RecordMeta meta,
      const std::string& authorizers);

  VaultOptions options_;
  std::string signer_public_seed_;
  /// Resolved registry (options_.metrics or the process default) and
  /// the per-op histograms cached at Open so timed operations never do
  /// a name lookup.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::VaultOpMetrics op_metrics_;
  mutable std::shared_mutex mu_;
  ScrubStats last_scrub_;  // guarded by mu_

  AccessController access_;
  /// Delegated sharing grants. Declared before any use in Init: the
  /// registry is configured (signing root + id prefix) and attached to
  /// access_ BEFORE LoadState so replayed kStateConsent entries verify
  /// and land in a ready table.
  ConsentRegistry consent_;
  RetentionManager retention_;
  std::unique_ptr<KeyStore> keystore_;
  std::unique_ptr<VersionStore> versions_;
  std::unique_ptr<SecureIndex> index_;
  std::unique_ptr<AuditLog> audit_;
  std::unique_ptr<ProvenanceTracker> provenance_;
  std::unique_ptr<crypto::XmssSigner> signer_;
  std::unique_ptr<storage::log::Writer> state_writer_;
  /// Coalesces concurrent SyncAll/durable-batch callers into one sync
  /// wave per commit window (metrics under "commit.window.*"). Its
  /// sync function takes mu_ exclusively, so Commit() must never be
  /// called with the vault lock held.
  std::unique_ptr<GroupCommitter> committer_;

  struct DisposalRequest {
    RecordId record_id;
    PrincipalId requester;
  };

  std::map<RecordId, RecordMeta> metas_;
  /// Per-patient record-id index (disclosure accounting): rebuilt from
  /// the same state-log replay that rebuilds metas_, so the two can
  /// never disagree. Record ids keep insertion order.
  std::map<PrincipalId, std::vector<RecordId>> records_by_patient_;
  std::map<std::string, DisposalRequest> disposal_requests_;
  uint64_t next_disposal_request_ = 1;
  uint64_t next_record_num_ = 1;
  bool has_admin_ = false;
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_VAULT_H_
