#ifndef MEDVAULT_CORE_RECORD_CACHE_H_
#define MEDVAULT_CORE_RECORD_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "core/record.h"

namespace medvault::core {

/// Authenticated LRU cache of decrypted record versions — the shard
/// read path's answer to "performance comparable to conventional
/// storage" (paper §3) without weakening the security story:
///
///   * Authenticated: an entry is stored with the SHA-256 entry hash
///     the version store's catalog vouches for, and Get() only serves
///     it when the caller's expected hash matches. A stale or poisoned
///     entry is dropped (and counted) instead of served, so cached
///     reads carry the same integrity guarantee as decrypting reads.
///   * Secure-deletion safe: disposal, correction, and key-shredding
///     call PurgeRecord() synchronously under the vault's exclusive
///     lock, so a crypto-shredded record is never servable from memory
///     even though its plaintext was cached moments earlier.
///   * Hygienic: evicted and purged plaintext is zeroized before the
///     memory is released (same discipline as the key store) — cache
///     memory is not a plaintext archive.
///
/// Versions are immutable (WORM), so entries never need refreshing:
/// they are only ever evicted (capacity), rejected (hash mismatch), or
/// purged (deletion paths).
///
/// Thread safety: all operations serialize on an internal mutex; one
/// cache may be shared by many vault shards (record ids are globally
/// unique across shards).
class RecordCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Gets with an empty expected hash: the caller could not
    /// authenticate a hit, so the cache stood aside. Counted separately
    /// from rejections — a bypass says nothing about entry integrity.
    uint64_t bypasses = 0;
    uint64_t evictions = 0;   ///< capacity evictions
    uint64_t rejections = 0;  ///< hash-mismatch entries dropped
    uint64_t purges = 0;      ///< entries removed by PurgeRecord/Clear
  };

  /// `capacity_bytes` bounds the summed plaintext size of live entries.
  explicit RecordCache(size_t capacity_bytes);
  ~RecordCache();

  RecordCache(const RecordCache&) = delete;
  RecordCache& operator=(const RecordCache&) = delete;

  /// Serves (record, version) iff present AND stored under exactly
  /// `expected_entry_hash`; a mismatching entry is zeroized, dropped,
  /// and counted as a rejection (plus a miss for the caller). An empty
  /// `expected_entry_hash` cannot authenticate anything: it bypasses
  /// the cache (counted as bypass + miss) and leaves any cached entry
  /// untouched.
  std::optional<RecordVersion> Get(const RecordId& record_id,
                                   uint32_t version,
                                   const std::string& expected_entry_hash);

  /// Inserts a decrypted version under its catalog entry hash.
  /// Oversized values (larger than the whole cache) are ignored.
  void Put(const RecordId& record_id, uint32_t version,
           const std::string& entry_hash, const RecordVersion& value);

  /// Synchronously zeroizes and removes every cached version of the
  /// record. Disposal / correction / key-shred paths call this BEFORE
  /// acknowledging, so read-after-secure-delete can never hit.
  void PurgeRecord(const RecordId& record_id);

  /// Zeroizes and drops everything.
  void Clear();

  Stats stats() const;
  size_t entry_count() const;
  size_t charge_bytes() const;
  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Entry {
    RecordId record_id;
    uint32_t version = 0;
    std::string entry_hash;
    RecordVersion value;
  };

  using LruList = std::list<Entry>;

  static std::string Key(const RecordId& record_id, uint32_t version);

  /// Zeroizes an entry's plaintext and unlinks it from both indexes.
  /// Requires mu_ held.
  void RemoveLocked(LruList::iterator it);
  void EvictToFitLocked();

  const size_t capacity_bytes_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> index_;
  std::map<RecordId, std::set<uint32_t>> by_record_;
  size_t charge_ = 0;
  Stats stats_;
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_RECORD_CACHE_H_
