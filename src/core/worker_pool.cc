#include "core/worker_pool.h"

#include <memory>
#include <utility>

namespace medvault::core {

thread_local const WorkerPool* WorkerPool::current_pool_ = nullptr;

WorkerPool::WorkerPool(unsigned threads) {
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { Loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::RunAll(std::vector<std::function<void()>> tasks) {
  // Inline when there is nothing to parallelize — and, critically, when
  // the submitter IS a pool worker: blocking a worker on the batch
  // condvar while the batch sits behind it in the queue deadlocks as
  // soon as every worker does it (see class comment).
  if (threads_.empty() || tasks.size() <= 1 || OnWorkerThread()) {
    for (auto& task : tasks) task();
    return;
  }
  struct BatchState {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
  };
  auto state = std::make_shared<BatchState>();
  state->remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& task : tasks) {
      queue_.emplace_back([task = std::move(task), state] {
        task();
        std::lock_guard<std::mutex> done_lock(state->mu);
        if (--state->remaining == 0) state->done.notify_all();
      });
    }
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> wait_lock(state->mu);
  state->done.wait(wait_lock, [&] { return state->remaining == 0; });
}

void WorkerPool::Loop() {
  current_pool_ = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace medvault::core
