#include "core/backup.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/coding.h"
#include "common/hex.h"
#include "core/scrub.h"
#include "crypto/sha256.h"

namespace medvault::core {

std::string BackupManifest::SignedPayload() const {
  std::string out = "medvault-backup-v2";
  PutLengthPrefixed(&out, backup_id);
  PutLengthPrefixed(&out, system_id);
  PutFixed64(&out, static_cast<uint64_t>(created_at));
  PutLengthPrefixed(&out, base_backup_id);
  PutVarint32(&out, static_cast<uint32_t>(files.size()));
  for (const auto& [path, hash] : files) {
    PutLengthPrefixed(&out, path);
    PutLengthPrefixed(&out, hash);
  }
  PutVarint32(&out, static_cast<uint32_t>(deleted.size()));
  for (const std::string& path : deleted) {
    PutLengthPrefixed(&out, path);
  }
  return out;
}

std::string BackupManifest::Encode() const {
  std::string out = SignedPayload();
  PutLengthPrefixed(&out, signature);
  return out;
}

Result<BackupManifest> BackupManifest::Decode(const Slice& data) {
  Slice in = data;
  BackupManifest m;
  if (in.size() < 18) return Status::Corruption("manifest too short");
  std::string magic(in.data(), 18);
  in.RemovePrefix(18);
  if (magic != "medvault-backup-v2") {
    return Status::Corruption("bad manifest magic");
  }
  uint64_t ts = 0;
  uint32_t count = 0, deleted_count = 0;
  if (!GetLengthPrefixedString(&in, &m.backup_id) ||
      !GetLengthPrefixedString(&in, &m.system_id) || !GetFixed64(&in, &ts) ||
      !GetLengthPrefixedString(&in, &m.base_backup_id) ||
      !GetVarint32(&in, &count)) {
    return Status::Corruption("malformed manifest");
  }
  m.created_at = static_cast<Timestamp>(ts);
  m.files.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    std::string path, hash;
    if (!GetLengthPrefixedString(&in, &path) ||
        !GetLengthPrefixedString(&in, &hash)) {
      return Status::Corruption("malformed manifest file entry");
    }
    m.files.emplace_back(std::move(path), std::move(hash));
  }
  if (!GetVarint32(&in, &deleted_count)) {
    return Status::Corruption("malformed manifest deleted list");
  }
  for (uint32_t i = 0; i < deleted_count; i++) {
    std::string path;
    if (!GetLengthPrefixedString(&in, &path)) {
      return Status::Corruption("malformed manifest deleted entry");
    }
    m.deleted.push_back(std::move(path));
  }
  if (!GetLengthPrefixedString(&in, &m.signature) || !in.empty()) {
    return Status::Corruption("malformed manifest signature");
  }
  return m;
}

Result<std::vector<std::string>> BackupManager::VaultFiles(
    storage::Env* env, const std::string& dir) {
  std::vector<std::string> files;
  std::vector<std::string> top;
  MEDVAULT_RETURN_IF_ERROR(env->GetChildren(dir, &top));
  for (const std::string& name : top) {
    // Probe whether the child is a file; directories fail GetFileSize on
    // MemEnv (no entry) and succeed on POSIX — so also try listing it.
    std::vector<std::string> sub;
    if (env->GetChildren(dir + "/" + name, &sub).ok() && !sub.empty()) {
      for (const std::string& inner : sub) {
        files.push_back(name + "/" + inner);
      }
      continue;
    }
    uint64_t size = 0;
    if (env->GetFileSize(dir + "/" + name, &size).ok()) {
      files.push_back(name);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

Result<BackupManifest> BackupManager::Backup(Vault* vault,
                                             const PrincipalId& actor,
                                             storage::Env* offsite_env,
                                             const std::string& offsite_dir) {
  MEDVAULT_RETURN_IF_ERROR(vault->access()->CheckAccess(
      actor, Operation::kBackup, "", vault->Now()));

  storage::Env* src_env = vault->options().env;
  const std::string& src_dir = vault->options().dir;

  MEDVAULT_RETURN_IF_ERROR(offsite_env->CreateDirIfMissing(offsite_dir));

  BackupManifest manifest;
  manifest.backup_id =
      "bk-" + std::to_string(static_cast<uint64_t>(vault->Now()));
  manifest.system_id = vault->options().system_id;
  manifest.created_at = vault->Now();

  MEDVAULT_ASSIGN_OR_RETURN(std::vector<std::string> files,
                            VaultFiles(src_env, src_dir));
  for (const std::string& rel : files) {
    std::string contents;
    MEDVAULT_RETURN_IF_ERROR(
        storage::ReadFileToString(src_env, src_dir + "/" + rel, &contents));
    // Create intermediate directory for nested paths.
    auto slash = rel.find('/');
    if (slash != std::string::npos) {
      MEDVAULT_RETURN_IF_ERROR(offsite_env->CreateDirIfMissing(
          offsite_dir + "/" + rel.substr(0, slash)));
    }
    MEDVAULT_RETURN_IF_ERROR(storage::WriteStringToFile(
        offsite_env, contents, offsite_dir + "/" + rel, true));
    manifest.files.emplace_back(rel, crypto::Sha256Digest(contents));
  }

  MEDVAULT_ASSIGN_OR_RETURN(
      manifest.signature, vault->SignStatement(manifest.SignedPayload()));
  MEDVAULT_RETURN_IF_ERROR(storage::WriteStringToFile(
      offsite_env, manifest.Encode(), offsite_dir + "/MANIFEST", true));

  MEDVAULT_RETURN_IF_ERROR(
      vault->Audit(actor, AuditAction::kBackup, "",
                   manifest.backup_id + " files=" +
                       std::to_string(manifest.files.size())));
  return manifest;
}

Result<BackupManifest> BackupManager::BackupIncremental(
    Vault* vault, const PrincipalId& actor, storage::Env* offsite_env,
    const std::string& offsite_dir, const BackupManifest& base) {
  MEDVAULT_RETURN_IF_ERROR(vault->access()->CheckAccess(
      actor, Operation::kBackup, "", vault->Now()));

  storage::Env* src_env = vault->options().env;
  const std::string& src_dir = vault->options().dir;
  MEDVAULT_RETURN_IF_ERROR(offsite_env->CreateDirIfMissing(offsite_dir));

  // Effective state of the base chain: path -> hash.
  std::map<std::string, std::string> base_state(base.files.begin(),
                                                base.files.end());

  BackupManifest manifest;
  manifest.backup_id =
      "bk-" + std::to_string(static_cast<uint64_t>(vault->Now()));
  manifest.system_id = vault->options().system_id;
  manifest.created_at = vault->Now();
  manifest.base_backup_id = base.backup_id;

  MEDVAULT_ASSIGN_OR_RETURN(std::vector<std::string> files,
                            VaultFiles(src_env, src_dir));
  std::set<std::string> current(files.begin(), files.end());
  for (const std::string& rel : files) {
    std::string contents;
    MEDVAULT_RETURN_IF_ERROR(
        storage::ReadFileToString(src_env, src_dir + "/" + rel, &contents));
    std::string hash = crypto::Sha256Digest(contents);
    auto it = base_state.find(rel);
    if (it != base_state.end() && it->second == hash) continue;  // unchanged
    auto slash = rel.find('/');
    if (slash != std::string::npos) {
      MEDVAULT_RETURN_IF_ERROR(offsite_env->CreateDirIfMissing(
          offsite_dir + "/" + rel.substr(0, slash)));
    }
    MEDVAULT_RETURN_IF_ERROR(storage::WriteStringToFile(
        offsite_env, contents, offsite_dir + "/" + rel, true));
    manifest.files.emplace_back(rel, std::move(hash));
  }
  for (const auto& [rel, hash] : base_state) {
    if (current.count(rel) == 0) manifest.deleted.push_back(rel);
  }

  MEDVAULT_ASSIGN_OR_RETURN(
      manifest.signature, vault->SignStatement(manifest.SignedPayload()));
  MEDVAULT_RETURN_IF_ERROR(storage::WriteStringToFile(
      offsite_env, manifest.Encode(), offsite_dir + "/MANIFEST", true));
  MEDVAULT_RETURN_IF_ERROR(vault->Audit(
      actor, AuditAction::kBackup, "",
      manifest.backup_id + " incremental-of=" + base.backup_id +
          " changed=" + std::to_string(manifest.files.size()) +
          " deleted=" + std::to_string(manifest.deleted.size())));
  return manifest;
}

namespace {

// Chain-structure validation shared by RestoreChain/VerifyChain/Repair:
// the first link must be a full backup and every later link must build
// on its predecessor. Violations are kBackupChainBroken — distinct from
// per-file TamperDetected so callers can tell "your chain is unusable
// (e.g. a mid-chain incremental was deleted)" from "a backup file was
// modified".
Status ValidateChainLinkage(
    const std::vector<std::pair<std::string, BackupManifest>>& chain) {
  if (chain.empty()) {
    return Status::InvalidArgument("restore chain is empty");
  }
  for (size_t i = 0; i < chain.size(); i++) {
    const BackupManifest& m = chain[i].second;
    if (i == 0 && !m.base_backup_id.empty()) {
      return Status::BackupChainBroken(
          "chain must start with a full backup; " + m.backup_id +
          " builds on missing base " + m.base_backup_id);
    }
    if (i > 0 && m.base_backup_id != chain[i - 1].second.backup_id) {
      return Status::BackupChainBroken(
          m.backup_id + " builds on " +
          (m.base_backup_id.empty() ? std::string("<none: full backup>")
                                    : m.base_backup_id) +
          " but follows " + chain[i - 1].second.backup_id);
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::pair<std::string, BackupManifest>>>
BackupManager::LoadChain(storage::Env* offsite_env,
                         const std::vector<std::string>& dirs) {
  std::vector<std::pair<std::string, BackupManifest>> chain;
  chain.reserve(dirs.size());
  for (const std::string& dir : dirs) {
    Result<BackupManifest> m = LoadManifest(offsite_env, dir);
    if (!m.ok()) {
      if (m.status().IsNotFound()) {
        return Status::BackupChainBroken("backup " + dir +
                                         " has no manifest (deleted?)");
      }
      if (m.status().IsCorruption()) {
        // A manifest that exists but does not parse — e.g. truncated
        // mid-file — breaks the chain exactly like a deleted link: no
        // later link can be validated against it.
        return Status::BackupChainBroken("backup " + dir +
                                         " has an unreadable manifest: " +
                                         m.status().message());
      }
      return m.status();
    }
    chain.emplace_back(dir, std::move(m).value());
  }
  MEDVAULT_RETURN_IF_ERROR(ValidateChainLinkage(chain));
  return chain;
}

Status BackupManager::VerifyChain(
    storage::Env* offsite_env,
    const std::vector<std::pair<std::string, BackupManifest>>& chain) {
  MEDVAULT_RETURN_IF_ERROR(ValidateChainLinkage(chain));
  for (const auto& [dir, manifest] : chain) {
    MEDVAULT_RETURN_IF_ERROR(Verify(offsite_env, dir, manifest));
  }
  return Status::OK();
}

Status BackupManager::RestoreChain(
    storage::Env* offsite_env,
    const std::vector<std::pair<std::string, BackupManifest>>& chain,
    storage::Env* dest_env, const std::string& dest_dir) {
  // Validate linkage and verify every link before touching the dest.
  MEDVAULT_RETURN_IF_ERROR(VerifyChain(offsite_env, chain));
  MEDVAULT_RETURN_IF_ERROR(dest_env->CreateDirIfMissing(dest_dir));
  for (const auto& [dir, manifest] : chain) {
    for (const auto& [rel, hash] : manifest.files) {
      std::string contents;
      MEDVAULT_RETURN_IF_ERROR(storage::ReadFileToString(
          offsite_env, dir + "/" + rel, &contents));
      auto slash = rel.find('/');
      if (slash != std::string::npos) {
        MEDVAULT_RETURN_IF_ERROR(dest_env->CreateDirIfMissing(
            dest_dir + "/" + rel.substr(0, slash)));
      }
      MEDVAULT_RETURN_IF_ERROR(storage::WriteStringToFile(
          dest_env, contents, dest_dir + "/" + rel, true));
    }
    for (const std::string& rel : manifest.deleted) {
      Status s = dest_env->RemoveFile(dest_dir + "/" + rel);
      if (!s.ok() && !s.IsNotFound()) return s;
    }
  }
  return Status::OK();
}

Status BackupManager::Verify(storage::Env* offsite_env,
                             const std::string& offsite_dir,
                             const BackupManifest& manifest) {
  for (const auto& [rel, expected_hash] : manifest.files) {
    std::string contents;
    Status s = storage::ReadFileToString(offsite_env,
                                         offsite_dir + "/" + rel, &contents);
    if (!s.ok()) {
      return Status::TamperDetected("backup file missing: " + rel);
    }
    if (crypto::Sha256Digest(contents) != expected_hash) {
      return Status::TamperDetected("backup file hash mismatch: " + rel);
    }
  }
  return Status::OK();
}

Status BackupManager::Restore(storage::Env* offsite_env,
                              const std::string& offsite_dir,
                              const BackupManifest& manifest,
                              storage::Env* dest_env,
                              const std::string& dest_dir) {
  MEDVAULT_RETURN_IF_ERROR(Verify(offsite_env, offsite_dir, manifest));
  MEDVAULT_RETURN_IF_ERROR(dest_env->CreateDirIfMissing(dest_dir));
  for (const auto& [rel, hash] : manifest.files) {
    std::string contents;
    MEDVAULT_RETURN_IF_ERROR(storage::ReadFileToString(
        offsite_env, offsite_dir + "/" + rel, &contents));
    auto slash = rel.find('/');
    if (slash != std::string::npos) {
      MEDVAULT_RETURN_IF_ERROR(dest_env->CreateDirIfMissing(
          dest_dir + "/" + rel.substr(0, slash)));
    }
    MEDVAULT_RETURN_IF_ERROR(storage::WriteStringToFile(
        dest_env, contents, dest_dir + "/" + rel, true));
  }
  return Status::OK();
}

Result<BackupManager::RepairSummary> BackupManager::Repair(
    storage::Env* offsite_env,
    const std::vector<std::pair<std::string, BackupManifest>>& chain,
    storage::Env* dest_env, const std::string& dest_dir,
    const ScrubReport& report) {
  MEDVAULT_RETURN_IF_ERROR(ValidateChainLinkage(chain));

  // Effective state of the chain: newest mention of each path wins,
  // and a later `deleted` entry erases earlier mentions.
  std::map<std::string, std::pair<std::string, std::string>>
      effective;  // rel -> (offsite dir holding it, sha256)
  for (const auto& [dir, manifest] : chain) {
    for (const auto& [rel, hash] : manifest.files) {
      effective[rel] = {dir, hash};
    }
    for (const std::string& rel : manifest.deleted) {
      effective.erase(rel);
    }
  }

  RepairSummary summary;
  for (const std::string& rel : report.DamagedFiles()) {
    auto it = effective.find(rel);
    if (it == effective.end()) {
      summary.unrepairable.push_back(rel);
      continue;
    }
    const auto& [src_dir, expected_hash] = it->second;
    std::string contents;
    Status s = storage::ReadFileToString(offsite_env, src_dir + "/" + rel,
                                         &contents);
    if (!s.ok()) {
      return Status::TamperDetected("backup file missing during repair: " +
                                    rel);
    }
    if (crypto::Sha256Digest(contents) != expected_hash) {
      return Status::TamperDetected("backup file hash mismatch during repair: " +
                                    rel);
    }
    auto slash = rel.find('/');
    if (slash != std::string::npos) {
      MEDVAULT_RETURN_IF_ERROR(dest_env->CreateDirIfMissing(
          dest_dir + "/" + rel.substr(0, slash)));
    }
    MEDVAULT_RETURN_IF_ERROR(storage::WriteStringToFile(
        dest_env, contents, dest_dir + "/" + rel, true));
    summary.restored.push_back(rel);
  }

  // Crash-leftover temp files and other unclaimed clutter flagged by
  // the scrub: sweep them so the repaired directory is exactly a vault.
  for (const std::string& rel : report.OrphanFiles()) {
    Status s = dest_env->RemoveFile(dest_dir + "/" + rel);
    if (!s.ok() && !s.IsNotFound()) return s;
    summary.removed_orphans.push_back(rel);
  }

  // Re-scrub structurally: the damage we restored over must be gone.
  // (The caller runs the deep verification after reopening the vault.)
  MEDVAULT_ASSIGN_OR_RETURN(
      ScrubReport after,
      Scrubber::ScrubVaultDir(dest_env, dest_dir, report.scrubbed_at));
  summary.verified_clean =
      after.structurally_clean() && summary.unrepairable.empty();
  return summary;
}

Status BackupManager::AuditRepair(Vault* vault, const PrincipalId& actor,
                                  const RepairSummary& summary) {
  MEDVAULT_RETURN_IF_ERROR(vault->access()->CheckAccess(
      actor, Operation::kBackup, "", vault->Now()));
  return vault->Audit(
      actor, AuditAction::kRestore, "",
      "repair restored=" + std::to_string(summary.restored.size()) +
          " orphans-removed=" +
          std::to_string(summary.removed_orphans.size()) +
          " unrepairable=" + std::to_string(summary.unrepairable.size()) +
          (summary.verified_clean ? " verified=clean" : " verified=dirty"));
}

Result<BackupManifest> BackupManager::LoadManifest(
    storage::Env* offsite_env, const std::string& offsite_dir) {
  std::string contents;
  MEDVAULT_RETURN_IF_ERROR(storage::ReadFileToString(
      offsite_env, offsite_dir + "/MANIFEST", &contents));
  return BackupManifest::Decode(contents);
}

Status BackupManager::VerifyManifestSignature(const BackupManifest& manifest,
                                              const Slice& public_key,
                                              const Slice& public_seed,
                                              int height) {
  MEDVAULT_ASSIGN_OR_RETURN(crypto::XmssSignature sig,
                            crypto::XmssSignature::Decode(manifest.signature));
  return crypto::XmssSigner::Verify(manifest.SignedPayload(), sig,
                                    public_key, public_seed, height);
}

}  // namespace medvault::core
