#include "core/transparency.h"

#include <algorithm>

#include "common/coding.h"
#include "crypto/hkdf.h"
#include "crypto/merkle.h"

namespace medvault::core {

std::string WitnessCosignature::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, witness_id);
  PutLengthPrefixed(&out, signature);
  return out;
}

Result<WitnessCosignature> WitnessCosignature::Decode(const Slice& data) {
  Slice in = data;
  WitnessCosignature c;
  if (!GetLengthPrefixedString(&in, &c.witness_id) ||
      !GetLengthPrefixedString(&in, &c.signature) || !in.empty()) {
    return Status::Corruption("malformed witness cosignature");
  }
  return c;
}

std::string WitnessCosignPayload(const std::string& witness_id,
                                 const SignedCheckpoint& checkpoint) {
  std::string out = "medvault-witness-v1";
  PutLengthPrefixed(&out, witness_id);
  out.append(checkpoint.SignedPayload());
  return out;
}

// ---- Witness -------------------------------------------------------------

Witness::Witness(const Options& options, LogIdentity log)
    : id_(options.id),
      log_(std::move(log)),
      signer_(options.secret_seed, options.public_seed, options.height),
      last_root_(crypto::MerkleTree::EmptyRoot()) {}

Result<WitnessCosignature> Witness::Cosign(
    const SignedCheckpoint& checkpoint,
    const std::vector<std::string>& consistency_from_last) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tampered_) {
    return Status::TamperDetected("witness " + id_ +
                                  " refuses (sticky): " + tamper_evidence_);
  }
  auto taint = [this](const std::string& why) -> Status {
    tampered_ = true;
    tamper_evidence_ = why;
    return Status::TamperDetected("witness " + id_ + ": " + why);
  };

  Result<crypto::XmssSignature> log_sig =
      crypto::XmssSignature::Decode(checkpoint.signature);
  if (!log_sig.ok()) {
    return taint("malformed log signature on checkpoint at size " +
                 std::to_string(checkpoint.tree_size));
  }
  Status s = crypto::XmssSigner::Verify(checkpoint.SignedPayload(), *log_sig,
                                        log_.public_key, log_.public_seed,
                                        log_.height);
  if (!s.ok()) {
    return taint("log signature invalid at size " +
                 std::to_string(checkpoint.tree_size) + ": " + s.message());
  }
  if (checkpoint.tree_size < last_size_) {
    return taint("log shrank: saw size " + std::to_string(last_size_) +
                 ", offered size " + std::to_string(checkpoint.tree_size));
  }
  s = crypto::MerkleTree::VerifyConsistency(
      last_size_, last_root_, checkpoint.tree_size, checkpoint.root,
      consistency_from_last);
  if (!s.ok()) {
    return taint("inconsistent with last-seen checkpoint at size " +
                 std::to_string(last_size_) + ": " + s.message());
  }

  WitnessCosignature out;
  out.witness_id = id_;
  // A signing failure (leaf exhaustion) is an operational error, not
  // tamper evidence — return it without tainting.
  MEDVAULT_ASSIGN_OR_RETURN(
      crypto::XmssSignature sig,
      signer_.Sign(WitnessCosignPayload(id_, checkpoint)));
  out.signature = sig.Encode();
  last_size_ = checkpoint.tree_size;
  last_root_ = checkpoint.root;
  return out;
}

Status Witness::VerifyCosignature(const SignedCheckpoint& checkpoint,
                                  const WitnessCosignature& cosig,
                                  const Slice& witness_public_key,
                                  const Slice& witness_public_seed,
                                  int witness_height) {
  MEDVAULT_ASSIGN_OR_RETURN(crypto::XmssSignature sig,
                            crypto::XmssSignature::Decode(cosig.signature));
  return crypto::XmssSigner::Verify(
      WitnessCosignPayload(cosig.witness_id, checkpoint), sig,
      witness_public_key, witness_public_seed, witness_height);
}

uint64_t Witness::last_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_size_;
}

bool Witness::tampered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tampered_;
}

std::string Witness::tamper_evidence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tamper_evidence_;
}

// ---- TransparencyLog -----------------------------------------------------

TransparencyLog::TransparencyLog(Vault* vault, Options options)
    : vault_(vault), options_(options) {
  obs::MetricsRegistry* reg = vault_->metrics_registry();
  checkpoints_published_ = reg->GetCounter("audit.checkpoints");
  cosigns_ = reg->GetCounter("audit.witness.cosigns");
  refusals_ = reg->GetCounter("audit.witness.refusals");
  inclusion_proofs_ = reg->GetCounter("audit.proof.inclusion");
  consistency_proofs_ = reg->GetCounter("audit.proof.consistency");
  cache_hits_ = reg->GetCounter("audit.proof.cache_hits");
  cache_misses_ = reg->GetCounter("audit.proof.cache_misses");
  // Checkpoints survive restarts via audit-log replay; cosignatures do
  // not (they live with the witnesses), so a reopened log starts from
  // the bare latest checkpoint until the next publication.
  Result<SignedCheckpoint> latest = vault_->audit()->LatestCheckpoint();
  if (latest.ok()) {
    latest_.checkpoint = *latest;
    has_latest_ = true;
  }
}

void TransparencyLog::RegisterWitness(Witness* witness) {
  std::lock_guard<std::mutex> lock(state_mu_);
  witnesses_.push_back(witness);
}

size_t TransparencyLog::witness_count() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return witnesses_.size();
}

Result<CosignedCheckpoint> TransparencyLog::PublishCheckpoint() {
  // Serialized: witnesses must be offered checkpoint sizes in ascending
  // order or an interleaved publication would read as a fork.
  std::lock_guard<std::mutex> publish(publish_mu_);
  MEDVAULT_ASSIGN_OR_RETURN(SignedCheckpoint cp, vault_->CheckpointAudit());
  checkpoints_published_->Increment();

  std::vector<Witness*> witnesses;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    witnesses = witnesses_;
  }
  CosignedCheckpoint out;
  out.checkpoint = cp;
  for (Witness* w : witnesses) {
    Result<std::vector<std::string>> proof =
        vault_->audit()->ConsistencyProofBetween(w->last_size(),
                                                 cp.tree_size);
    if (!proof.ok()) {
      refusals_->Increment();
      continue;
    }
    Result<WitnessCosignature> cosig = w->Cosign(cp, *proof);
    if (!cosig.ok()) {
      refusals_->Increment();
      continue;
    }
    cosigns_->Increment();
    out.cosignatures.push_back(std::move(*cosig));
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    latest_ = out;
    has_latest_ = true;
  }
  return out;
}

Status TransparencyLog::MaybeCheckpoint() {
  uint64_t size = vault_->audit()->size();
  if (size == 0) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (has_latest_ &&
        size < latest_.checkpoint.tree_size + options_.checkpoint_interval) {
      return Status::OK();
    }
  }
  return PublishCheckpoint().status();
}

Result<CosignedCheckpoint> TransparencyLog::LatestCosigned() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (!has_latest_) return Status::NotFound("no checkpoint published");
  return latest_;
}

Result<EventProof> TransparencyLog::ProveEventAt(uint64_t seq,
                                                 uint64_t tree_size) {
  inclusion_proofs_->Increment();
  // Only published sizes: a proof against a root nobody holds a signed
  // statement for proves nothing.
  MEDVAULT_RETURN_IF_ERROR(vault_->audit()->CheckpointAt(tree_size).status());
  const std::pair<uint64_t, uint64_t> key{seq, tree_size};
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = inclusion_cache_.find(key);
    if (it != inclusion_cache_.end()) {
      cache_hits_->Increment();
      return it->second;
    }
  }
  cache_misses_->Increment();
  MEDVAULT_ASSIGN_OR_RETURN(EventProof proof,
                            vault_->audit()->ProveEventAt(seq, tree_size));
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (inclusion_cache_.emplace(key, proof).second) {
      inclusion_fifo_.push_back(key);
      if (inclusion_fifo_.size() > options_.proof_cache_entries) {
        inclusion_cache_.erase(inclusion_fifo_.front());
        inclusion_fifo_.pop_front();
      }
    }
  }
  return proof;
}

Result<ConsistencyBundle> TransparencyLog::ConsistencyBetween(
    uint64_t old_size, uint64_t new_size) {
  consistency_proofs_->Increment();
  if (old_size > new_size) {
    return Status::InvalidArgument("old size exceeds new size");
  }
  ConsistencyBundle bundle;
  MEDVAULT_ASSIGN_OR_RETURN(bundle.from,
                            vault_->audit()->CheckpointAt(old_size));
  MEDVAULT_ASSIGN_OR_RETURN(bundle.to,
                            vault_->audit()->CheckpointAt(new_size));
  const std::pair<uint64_t, uint64_t> key{old_size, new_size};
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = consistency_cache_.find(key);
    if (it != consistency_cache_.end()) {
      cache_hits_->Increment();
      bundle.proof = it->second;
      return bundle;
    }
  }
  cache_misses_->Increment();
  MEDVAULT_ASSIGN_OR_RETURN(
      bundle.proof,
      vault_->audit()->ConsistencyProofBetween(old_size, new_size));
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (consistency_cache_.emplace(key, bundle.proof).second) {
      consistency_fifo_.push_back(key);
      if (consistency_fifo_.size() > options_.proof_cache_entries) {
        consistency_cache_.erase(consistency_fifo_.front());
        consistency_fifo_.pop_front();
      }
    }
  }
  return bundle;
}

// ---- ShardedTransparencyService ------------------------------------------

ShardedTransparencyService::ShardedTransparencyService(ShardedVault* vault,
                                                       Options options)
    : vault_(vault), options_(options) {
  logs_.resize(vault_->num_shards());
  for (uint32_t k = 0; k < vault_->num_shards(); ++k) {
    Vault* shard = vault_->shard(k);
    if (shard == nullptr) continue;  // quarantined
    TransparencyLog::Options log_options;
    log_options.checkpoint_interval = options_.checkpoint_interval;
    log_options.proof_cache_entries = options_.proof_cache_entries;
    logs_[k] = std::make_unique<TransparencyLog>(shard, log_options);
  }
}

Status ShardedTransparencyService::AddWitness(const std::string& id,
                                              const Slice& secret_seed,
                                              const Slice& public_seed) {
  for (uint32_t k = 0; k < logs_.size(); ++k) {
    if (logs_[k] == nullptr) continue;
    Vault* shard = vault_->shard(k);
    // XMSS keys are stateful one-time-leaf material: a logical witness
    // gets an independent key per shard instead of spending one tree's
    // leaves across all of them.
    Witness::Options wopts;
    wopts.id = id;
    MEDVAULT_ASSIGN_OR_RETURN(
        wopts.secret_seed,
        crypto::HkdfSha256(secret_seed, Slice(),
                           "witness-" + id + "-secret-" + std::to_string(k),
                           32));
    MEDVAULT_ASSIGN_OR_RETURN(
        wopts.public_seed,
        crypto::HkdfSha256(public_seed, Slice(),
                           "witness-" + id + "-public-" + std::to_string(k),
                           32));
    wopts.height = options_.witness_height;
    LogIdentity log_id{shard->SignerPublicKey(), shard->SignerPublicSeed(),
                       shard->SignerHeight()};
    auto witness = std::make_unique<Witness>(wopts, std::move(log_id));
    logs_[k]->RegisterWitness(witness.get());
    witnesses_.push_back(std::move(witness));
  }
  return Status::OK();
}

Status ShardedTransparencyService::PublishAll() {
  for (auto& log : logs_) {
    if (log == nullptr) continue;
    MEDVAULT_RETURN_IF_ERROR(log->PublishCheckpoint().status());
  }
  return Status::OK();
}

Status ShardedTransparencyService::MaybeCheckpointAll() {
  for (auto& log : logs_) {
    if (log == nullptr) continue;
    MEDVAULT_RETURN_IF_ERROR(log->MaybeCheckpoint());
  }
  return Status::OK();
}

Result<TransparencyLog*> ShardedTransparencyService::log(
    uint32_t shard) const {
  if (shard >= logs_.size()) {
    return Status::InvalidArgument("no such shard");
  }
  if (logs_[shard] == nullptr) {
    return Status::FailedPrecondition("shard quarantined: " +
                                      vault_->QuarantineReason(shard));
  }
  return logs_[shard].get();
}

Result<CosignedCheckpoint> ShardedTransparencyService::LatestCosigned(
    uint32_t shard) const {
  MEDVAULT_ASSIGN_OR_RETURN(TransparencyLog * l, log(shard));
  return l->LatestCosigned();
}

Result<EventProof> ShardedTransparencyService::ProveEventAt(
    uint32_t shard, uint64_t seq, uint64_t tree_size) {
  MEDVAULT_ASSIGN_OR_RETURN(TransparencyLog * l, log(shard));
  return l->ProveEventAt(seq, tree_size);
}

Result<ConsistencyBundle> ShardedTransparencyService::ConsistencyBetween(
    uint32_t shard, uint64_t old_size, uint64_t new_size) {
  MEDVAULT_ASSIGN_OR_RETURN(TransparencyLog * l, log(shard));
  return l->ConsistencyBetween(old_size, new_size);
}

size_t ShardedTransparencyService::witness_count() const {
  return witnesses_.size();
}

ShardedTransparencyService::Stats ShardedTransparencyService::CollectStats()
    const {
  Stats stats;
  obs::MetricsRegistry* reg = vault_->metrics_registry();
  stats.checkpoints_published = reg->GetCounter("audit.checkpoints")->Value();
  stats.cosigns = reg->GetCounter("audit.witness.cosigns")->Value();
  stats.refusals = reg->GetCounter("audit.witness.refusals")->Value();
  stats.inclusion_proofs = reg->GetCounter("audit.proof.inclusion")->Value();
  stats.consistency_proofs =
      reg->GetCounter("audit.proof.consistency")->Value();
  stats.cache_hits = reg->GetCounter("audit.proof.cache_hits")->Value();
  stats.cache_misses = reg->GetCounter("audit.proof.cache_misses")->Value();
  stats.witnesses = witnesses_.size();
  for (const auto& w : witnesses_) {
    if (w->tampered()) stats.tampered_witnesses++;
  }
  for (const auto& log : logs_) {
    if (log == nullptr) continue;
    Result<CosignedCheckpoint> latest = log->LatestCosigned();
    if (latest.ok()) stats.latest_sizes_sum += latest->checkpoint.tree_size;
  }
  return stats;
}

}  // namespace medvault::core
