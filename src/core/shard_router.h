#ifndef MEDVAULT_CORE_SHARD_ROUTER_H_
#define MEDVAULT_CORE_SHARD_ROUTER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/record.h"
#include "storage/env.h"

namespace medvault::core {

/// Deterministic id -> shard placement for the sharded vault.
///
/// Placement must be a pure function of the id bytes: the same patient
/// must land on the same shard across process restarts, machines, and
/// compiler versions, or records written yesterday become unreachable
/// today. The router therefore uses FNV-1a (a fixed, well-specified
/// 64-bit hash) rather than std::hash, whose value is unspecified and
/// may change between standard-library releases.
///
/// The shard *count* is part of the vault's on-disk identity: hashing
/// mod N is only stable while N is fixed, so the count is persisted in
/// a manifest at the vault root and every open cross-checks it.
/// Re-sharding is a migration, never a reinterpretation.
class ShardRouter {
 public:
  explicit ShardRouter(uint32_t num_shards) : num_shards_(num_shards) {}

  uint32_t num_shards() const { return num_shards_; }

  /// Shard owning `id` (a patient id on the create path). Pure and
  /// stable: depends only on the id bytes and the shard count.
  uint32_t ShardOf(const std::string& id) const {
    return static_cast<uint32_t>(Fingerprint(id) % num_shards_);
  }

  /// The fixed 64-bit FNV-1a fingerprint ShardOf() reduces mod N.
  /// Exposed so tests can pin golden values against re-implementation.
  static uint64_t Fingerprint(const std::string& id);

  /// Directory of shard `k` under the sharded-vault root.
  static std::string ShardDir(const std::string& root, uint32_t shard);

  /// Record-id prefix shard `k`'s inner vault assigns ids under
  /// ("s<k>-r", so ids read "s<k>-r-<n>"). The embedded shard index is
  /// what lets record-id-keyed operations route in O(1) without
  /// consulting any shard.
  static std::string RecordIdPrefix(uint32_t shard);

  /// Parses the shard index out of a sharded record id ("s<k>-r-<n>").
  /// Returns false for ids that do not name a shard (e.g. a plain
  /// unsharded "r-<n>").
  static bool ShardOfRecordId(const RecordId& record_id, uint32_t* shard);

  /// Consent-grant-id prefix shard `k`'s inner vault assigns ids under
  /// ("s<k>-cg", so grant ids read "s<k>-cg-<n>"). A grant lives on the
  /// shard of its granting patient; the embedded index lets revocation
  /// route by grant id alone.
  static std::string ConsentIdPrefix(uint32_t shard);

  /// Parses the shard index out of a sharded consent-grant id
  /// ("s<k>-cg-<n>"). Returns false for non-sharded ids ("cg-<n>").
  static bool ShardOfConsentId(const std::string& grant_id, uint32_t* shard);

  // ---- Shard-count manifest -------------------------------------------

  /// Durably records `num_shards` in `<root>/shards.meta`.
  static Status WriteManifest(storage::Env* env, const std::string& root,
                              uint32_t num_shards);

  /// Reads the persisted shard count; NotFound if no manifest exists.
  static Result<uint32_t> ReadManifest(storage::Env* env,
                                       const std::string& root);

 private:
  uint32_t num_shards_;
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_SHARD_ROUTER_H_
