#ifndef MEDVAULT_CORE_SHARDED_VAULT_H_
#define MEDVAULT_CORE_SHARDED_VAULT_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/record_cache.h"
#include "core/group_commit.h"
#include "core/shard_router.h"
#include "core/vault.h"
#include "storage/env.h"

namespace medvault {
class WorkerPool;
}

namespace medvault::core {

/// How ShardedVault::Open treats shards with damaged media.
enum class OpenMode {
  /// Any shard that fails to open fails the whole open (historical
  /// behavior; the right default for integrity-first deployments).
  kStrict = 0,
  /// A shard that fails to open — or whose directory fails a structural
  /// scrub — is *quarantined* instead: the vault opens with that shard
  /// offline, healthy shards keep serving reads and writes, operations
  /// routed to a quarantined shard fail with kFailedPrecondition, and
  /// the shard can be repaired (BackupManager::Repair) and brought back
  /// with RejoinShard() without closing the vault. Availability for the
  /// many must survive media death of the few (paper §3: reliability).
  kDegraded = 1,
};

/// Configuration for opening a ShardedVault.
struct ShardedVaultOptions {
  storage::Env* env = nullptr;  ///< required
  std::string dir;              ///< required; sharded-vault root directory
  const Clock* clock = nullptr; ///< required
  /// 32 bytes. Each shard's key-wrapping master key is derived from it
  /// via HKDF("shard-master-<k>"), so shards form independent key
  /// domains: compromising one shard's wrapped-key log does not expose
  /// a sibling's.
  std::string master_key;
  /// Root entropy; per-shard DRBG/signer/index secrets derive from it
  /// via HKDF("shard-entropy-<k>"), so every shard has its own signer
  /// identity and blinding keys.
  std::string entropy;
  /// Fixed at first open and persisted in `<dir>/shards.meta`; a later
  /// open with a different count is refused (see ShardRouter).
  uint32_t num_shards = 1;
  int signer_height = 8;  ///< per shard
  std::string system_id = "medvault-sharded";
  bool require_dual_disposal = false;
  /// Byte budget of the shared authenticated read cache (0 disables).
  /// One RecordCache serves all shards: record ids are globally unique
  /// ("s<k>-r-<n>"), and a single LRU budget adapts to skewed traffic.
  size_t cache_bytes = 4u << 20;
  /// Worker threads for cross-shard ingest fan-out. 0 picks
  /// min(num_shards, hardware_concurrency); 1 forces inline sequential
  /// execution in shard order — fully deterministic, which the crash
  /// matrix requires to replay identical I/O boundary sequences.
  unsigned ingest_threads = 0;
  /// Metrics registry shared by the sharded wrapper ("sharded.*" op
  /// histograms) and every shard ("vault.*"). Not owned; null uses the
  /// process-wide obs::MetricsRegistry::Default().
  obs::MetricsRegistry* metrics = nullptr;
  /// Cross-shard group-commit window (see GroupCommitter): how long a
  /// SyncAll leader lingers to gather concurrent committers before one
  /// sync wave fans out over all shards. Shard vaults keep window 0 —
  /// the cross-shard committer is the coalescing point. 0 adds no
  /// latency; coalescing is then opportunistic only.
  uint64_t commit_window_micros = 0;
  /// Media-fault posture of Open — see OpenMode.
  OpenMode open_mode = OpenMode::kStrict;
};

/// Horizontal scale-out of the Vault: records are partitioned across N
/// fully independent Vault shards, each with its own segment store,
/// catalog, keystore, index, audit and provenance logs under
/// `<dir>/shard-<k>/`, so writes to different shards proceed in
/// parallel — per-shard lock and log domains instead of the single
/// global ones that classically bottleneck secure stores.
///
/// Placement: a record lives on the shard of its *patient*
/// (`ShardRouter::ShardOf(patient_id)`), so one patient's records —
/// the unit of clinical access — are colocated. Record ids embed the
/// shard ("s<k>-r-<n>"), making every record-id-keyed operation O(1)
/// routable without a directory service.
///
/// Cross-shard semantics:
///   * Principals and care relationships are replicated to every shard
///     (they are tiny and read-hot); searches, audit verification, and
///     work-list queries fan out and merge per-shard results.
///   * Each shard keeps its own audit chain, signer, and commit point;
///     crash recovery runs per shard, independently (a crash between
///     two shards' sync points recovers each shard to its own
///     acknowledged state — there are no cross-shard references to
///     orphan by construction).
///   * SyncAll syncs shards in index order; a batch spanning shards is
///     acknowledged only by a SyncAll that covered every shard.
///
/// Thread safety: router and pool are immutable after Open; the shard
/// slot table is guarded by a shared mutex because a degraded open can
/// leave slots empty (quarantined) and RejoinShard fills them later. A
/// slot only ever transitions null -> Vault* — an obtained Vault* stays
/// valid for the ShardedVault's lifetime — so readers take the shared
/// lock just long enough to load the pointer. All other mutable state
/// lives behind each shard's own lock, the shared cache's mutex, and
/// the pool's queue mutex, so concurrent callers enjoy true cross-shard
/// parallelism.
class ShardedVault {
 public:
  static Result<std::unique_ptr<ShardedVault>> Open(
      const ShardedVaultOptions& options);
  ~ShardedVault();

  ShardedVault(const ShardedVault&) = delete;
  ShardedVault& operator=(const ShardedVault&) = delete;

  // ---- Administration (replicated to every shard) ---------------------

  Status RegisterPrincipal(const PrincipalId& actor,
                           const Principal& principal);
  Status AssignCare(const PrincipalId& actor, const PrincipalId& clinician,
                    const PrincipalId& patient);
  /// Routed to the patient's shard (that is where their records live).
  Result<std::string> BreakGlass(const PrincipalId& clinician,
                                 const PrincipalId& patient,
                                 const std::string& justification,
                                 Timestamp duration);

  // ---- Patient-driven sharing -----------------------------------------

  /// Routed to the granting patient's shard — the shard holding every
  /// record the grant can cover. See Vault::GrantConsent.
  Result<ConsentGrant> GrantConsent(const PrincipalId& actor,
                                    const PrincipalId& grantee,
                                    const RecordId& record_id,
                                    const std::string& purpose,
                                    Timestamp duration);
  /// Routed by the grant id itself ("s<k>-cg-<n>" embeds the shard).
  Status RevokeConsent(const PrincipalId& actor,
                       const std::string& grant_id);
  /// Routed to `patient`'s shard.
  Result<std::vector<ConsentGrant>> ListConsents(const PrincipalId& actor,
                                                 const PrincipalId& patient);
  /// Sum over healthy shards (health reporting).
  size_t ActiveConsentCount() const;

  // ---- Record lifecycle ----------------------------------------------

  Result<RecordId> CreateRecord(const PrincipalId& actor,
                                const PrincipalId& patient_id,
                                const std::string& content_type,
                                const Slice& plaintext,
                                const std::vector<std::string>& keywords,
                                const std::string& retention_policy);

  /// Cross-shard batched ingest: the batch is partitioned by patient
  /// shard and the per-shard sub-batches run as parallel
  /// Vault::CreateRecordsBatch calls on the worker pool (each shard's
  /// coalesced state/index/audit bookkeeping stays intact). Returned
  /// ids line up with the input order. On error the first failing
  /// shard's status is returned; sub-batches on other shards may have
  /// been created (same durability model as the single-vault batch —
  /// nothing is acknowledged until SyncAll).
  Result<std::vector<RecordId>> CreateRecordsBatch(
      const PrincipalId& actor, const std::vector<Vault::NewRecord>& batch);

  Result<RecordVersion> ReadRecord(const PrincipalId& actor,
                                   const RecordId& record_id);
  Result<RecordVersion> ReadRecordVersion(const PrincipalId& actor,
                                          const RecordId& record_id,
                                          uint32_t version);
  Result<VersionHeader> CorrectRecord(
      const PrincipalId& actor, const RecordId& record_id,
      const Slice& new_plaintext, const std::string& reason,
      const std::vector<std::string>& keywords);

  /// Fan-out search, merged across shards (shard order, per-shard order
  /// preserved).
  Result<std::vector<RecordId>> SearchKeyword(const PrincipalId& actor,
                                              const std::string& term);
  Result<std::vector<RecordId>> SearchKeywordsAll(
      const PrincipalId& actor, const std::vector<std::string>& terms);

  Result<std::vector<VersionHeader>> RecordHistory(const PrincipalId& actor,
                                                   const RecordId& record_id);

  Result<DisposalCertificate> DisposeRecord(const PrincipalId& actor,
                                            const RecordId& record_id);
  Result<std::vector<RecordMeta>> ListExpiredRecords(
      const PrincipalId& actor);
  Result<int> ReclaimDisposedMedia(const PrincipalId& actor);
  Status PlaceLegalHold(const PrincipalId& actor, const RecordId& record_id,
                        const std::string& reason);
  Status ReleaseLegalHold(const PrincipalId& actor,
                          const RecordId& record_id,
                          const std::string& reason);
  /// Two-person disposal across shards: request ids are
  /// shard-qualified ("s<k>:dr-<n>") so approval routes back.
  Result<std::string> RequestDisposal(const PrincipalId& actor,
                                      const RecordId& record_id);
  Result<DisposalCertificate> ApproveDisposal(const PrincipalId& actor,
                                              const std::string& request_id);

  /// Durability barrier over every shard. Concurrent callers coalesce
  /// into one sync *wave* per commit window (GroupCommitter); within a
  /// wave every healthy shard syncs concurrently on the worker pool
  /// (in shard order when ingest_threads forces inline execution). A
  /// cross-shard batch is fully acknowledged only once this returns OK.
  Status SyncAll();

  /// CreateRecordsBatch plus the group-committed cross-shard barrier:
  /// ids are returned only after one sync wave covering every involved
  /// shard has completed. Concurrent durable batches share a window —
  /// one wave across all shards, not one sync per shard per batch.
  Result<std::vector<RecordId>> CreateRecordsBatchDurable(
      const PrincipalId& actor, const std::vector<Vault::NewRecord>& batch);

  // ---- Audit & custody ------------------------------------------------

  /// One signed checkpoint per shard (each shard has its own audit
  /// chain and signer), in shard order.
  Result<std::vector<SignedCheckpoint>> CheckpointAudit();
  /// Every shard's audit chain must verify.
  Status VerifyAudit() const;
  /// Record-scoped trails route to the record's shard; an empty record
  /// id merges every shard's trail (shard order).
  Result<std::vector<AuditEvent>> ReadAuditTrail(const PrincipalId& actor,
                                                 const RecordId& record_id);
  Result<std::vector<CustodyEvent>> GetCustodyChain(const PrincipalId& actor,
                                                    const RecordId& record_id);
  /// Routed to the patient's shard — all disclosures of a patient's
  /// records happen there.
  Result<std::vector<AuditEvent>> AccountingOfDisclosures(
      const PrincipalId& actor, const PrincipalId& patient_id);
  Result<std::vector<AuditEvent>> ListBreakGlassEvents(
      const PrincipalId& actor);

  // ---- Verification & introspection -----------------------------------

  Status VerifyRecord(const RecordId& record_id) const;
  Status VerifyEverything() const;
  /// Merkle root over the per-shard content roots (shard order): two
  /// sharded vaults with byte-identical shard contents have equal
  /// roots.
  std::string ContentRoot() const;
  Result<RecordMeta> GetRecordMeta(const RecordId& record_id) const;
  std::vector<RecordId> ListRecordIds() const;
  Status RotateMasterKey(const PrincipalId& actor,
                         const Slice& new_master_key);

  // ---- Media faults: quarantine, scrub, repair, rejoin ----------------

  /// True if shard `k` is offline after a degraded open (or a failed
  /// rejoin). Quarantined shards serve nothing; everything else does.
  bool IsQuarantined(uint32_t k) const;
  /// Why shard `k` is quarantined ("" when healthy).
  std::string QuarantineReason(uint32_t k) const;
  /// Indices of all quarantined shards, ascending.
  std::vector<uint32_t> QuarantinedShards() const;

  /// Scrubs shard `k`: a healthy shard gets the full Vault::Scrub
  /// (structural + deep); a quarantined shard gets the offline
  /// structural scan of its directory — exactly what repair needs.
  Result<ScrubReport> ScrubShard(uint32_t k);

  /// Brings a quarantined shard back after its files were repaired
  /// (e.g. BackupManager::Repair against ShardDirPath(k)): re-scrubs
  /// the directory, refuses with kFailedPrecondition if still dirty,
  /// then opens the shard and fills its slot. Healthy shards are a
  /// no-op. NOTE: admin state replicated while the shard was offline
  /// (principals, care links) must be re-replicated by the caller.
  Status RejoinShard(uint32_t k);

  /// On-disk directory of shard `k` (repair tooling).
  std::string ShardDirPath(uint32_t k) const;

  Timestamp Now() const { return options_.clock->Now(); }

  uint32_t num_shards() const { return router_.num_shards(); }
  const ShardRouter& router() const { return router_; }
  /// Direct shard access (tests, migration, per-shard audit checks).
  /// Null while shard `k` is quarantined (degraded opens only; a strict
  /// open never leaves a null slot).
  Vault* shard(uint32_t k) {
    std::shared_lock lock(shards_mu_);
    return shards_[k].get();
  }
  const Vault* shard(uint32_t k) const {
    std::shared_lock lock(shards_mu_);
    return shards_[k].get();
  }
  /// The shared authenticated read cache (null when cache_bytes == 0).
  RecordCache* cache() { return cache_.get(); }
  const RecordCache* cache() const { return cache_.get(); }
  RecordCache::Stats CacheStats() const;
  /// The registry the wrapper and all shards report into (never null
  /// after Open).
  obs::MetricsRegistry* metrics_registry() const { return metrics_; }
  /// The cross-shard fan-out pool (replication cuts shards on it too).
  WorkerPool* pool() { return pool_.get(); }
  const ShardedVaultOptions& options() const { return options_; }

 private:
  explicit ShardedVault(ShardedVaultOptions options);

  Status Init();
  /// Shard owning `record_id`, or NotFound for ids that do not name a
  /// valid shard of this vault.
  Result<uint32_t> RouteRecordId(const RecordId& record_id) const;
  /// Shard `k` if healthy, kFailedPrecondition naming the quarantine
  /// reason otherwise. Routed operations go through this.
  Result<Vault*> RequireShard(uint32_t k) const;
  /// Derives shard `k`'s key domain and opens its Vault.
  Result<std::unique_ptr<Vault>> OpenShard(uint32_t k);
  /// One commit wave: every healthy shard's SyncAll, fanned out over
  /// the worker pool; first shard error in index order wins.
  Status SyncShardsWave();
  /// Re-publishes the "sharded.quarantined" gauge (takes the shared
  /// lock itself).
  void PublishQuarantineGauge() const;

  ShardedVaultOptions options_;
  ShardRouter router_;
  /// Wrapper-level telemetry: "sharded.*" histograms time the whole
  /// cross-shard operation (fan-out + merge), while each shard's own
  /// "vault.*" histograms time its slice — the gap between the two is
  /// the cost of coordination.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::VaultOpMetrics op_metrics_;
  std::unique_ptr<RecordCache> cache_;
  /// Guards shards_ slot pointers and quarantine_reasons_. Slots only
  /// transition null -> open vault (RejoinShard); a loaded Vault* stays
  /// valid for the wrapper's lifetime.
  mutable std::shared_mutex shards_mu_;
  std::vector<std::unique_ptr<Vault>> shards_;
  /// Per-shard quarantine reason; "" means healthy. Parallel to shards_.
  std::vector<std::string> quarantine_reasons_;
  std::unique_ptr<WorkerPool> pool_;
  /// Cross-shard group commit ("commit.window.sharded.*" metrics); its
  /// wave fans shard SyncAlls out over pool_.
  std::unique_ptr<GroupCommitter> committer_;
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_SHARDED_VAULT_H_
