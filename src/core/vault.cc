#include "core/vault.h"

#include <algorithm>
#include <charconv>

#include "common/coding.h"
#include "common/hex.h"
#include "crypto/aes.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "storage/log_reader.h"
#include "storage/log_recover.h"

namespace medvault::core {

namespace {

/// State-log entry kinds.
constexpr uint8_t kStateMeta = 1;
constexpr uint8_t kStateSigner = 2;
constexpr uint8_t kStatePrincipal = 3;
constexpr uint8_t kStateCareAssign = 4;
constexpr uint8_t kStateCareRevoke = 5;
constexpr uint8_t kStateGrant = 6;
constexpr uint8_t kStateConsent = 7;
constexpr uint8_t kStateConsentRevoke = 8;

std::string EncodeConsentRevoke(const std::string& grant_id) {
  std::string out;
  PutLengthPrefixed(&out, grant_id);
  return out;
}

std::string EncodePrincipal(const Principal& p) {
  std::string out;
  PutLengthPrefixed(&out, p.id);
  out.push_back(static_cast<char>(p.role));
  PutLengthPrefixed(&out, p.display_name);
  return out;
}

Result<Principal> DecodePrincipal(const Slice& data) {
  Slice in = data;
  Principal p;
  if (!GetLengthPrefixedString(&in, &p.id) || in.empty()) {
    return Status::Corruption("malformed principal entry");
  }
  p.role = static_cast<Role>(in[0]);
  in.RemovePrefix(1);
  if (!GetLengthPrefixedString(&in, &p.display_name) || !in.empty()) {
    return Status::Corruption("malformed principal entry");
  }
  return p;
}

std::string EncodeCare(const PrincipalId& clinician,
                       const PrincipalId& patient) {
  std::string out;
  PutLengthPrefixed(&out, clinician);
  PutLengthPrefixed(&out, patient);
  return out;
}

/// Persisted break-glass grant: id, clinician, patient, justification,
/// absolute expiry. The grant itself must survive a crash — the audit
/// log records that emergency access was active, and a reopen that
/// silently revoked it would contradict the trail (and cut off care
/// mid-emergency).
struct GrantEntry {
  std::string grant_id;
  PrincipalId clinician;
  PrincipalId patient;
  std::string justification;
  Timestamp expires_at = 0;
};

std::string EncodeGrant(const GrantEntry& g) {
  std::string out;
  PutLengthPrefixed(&out, g.grant_id);
  PutLengthPrefixed(&out, g.clinician);
  PutLengthPrefixed(&out, g.patient);
  PutLengthPrefixed(&out, g.justification);
  PutVarint64(&out, static_cast<uint64_t>(g.expires_at));
  return out;
}

Result<GrantEntry> DecodeGrant(const Slice& data) {
  Slice in = data;
  GrantEntry g;
  uint64_t expires = 0;
  if (!GetLengthPrefixedString(&in, &g.grant_id) ||
      !GetLengthPrefixedString(&in, &g.clinician) ||
      !GetLengthPrefixedString(&in, &g.patient) ||
      !GetLengthPrefixedString(&in, &g.justification) ||
      !GetVarint64(&in, &expires) || !in.empty()) {
    return Status::Corruption("malformed grant entry");
  }
  g.expires_at = static_cast<Timestamp>(expires);
  return g;
}

/// Keyword terms never enter the audit log in cleartext; we log a short
/// blinded tag instead (the index already leaks only this much).
std::string SearchAuditDetail(const Slice& master_key,
                              const std::string& term) {
  std::string blind = crypto::HmacSha256(master_key, "audit-term:" + term);
  return "term-blind:" + HexEncode(Slice(blind.data(), 8));
}

/// Audit-details suffix naming how a grant-exercised read got in.
/// Empty for ordinary bases (owner/care/role), so existing details stay
/// byte-identical; for break-glass and consent it appends
/// " via=<basis> grant=<id>" — the §164.528 report needs the recipient
/// AND the authority they read under.
std::string BasisSuffix(const AccessBasis& basis) {
  if (basis.kind != AccessBasis::Kind::kBreakGlass &&
      basis.kind != AccessBasis::Kind::kConsent) {
    return "";
  }
  return std::string(" via=") + AccessBasisName(basis.kind) +
         " grant=" + basis.grant_id;
}

/// True iff `id` looks like a vault-assigned id, i.e. starts with
/// "<prefix>-" (the default prefix "r" gives the classic "r-<n>").
bool HasRecordNumberPrefix(const RecordId& id, const std::string& prefix) {
  return id.size() > prefix.size() + 1 &&
         id.compare(0, prefix.size(), prefix) == 0 &&
         id[prefix.size()] == '-';
}

/// Strict parse of the numeric suffix of a "<prefix>-<n>" id: every
/// character after the prefix must be a decimal digit and the value
/// must fit in uint64_t. (strtoull silently accepted trailing garbage
/// like "r-7x" and saturated on overflow, which could stall or collide
/// the id counter.)
bool ParseRecordNumber(const RecordId& id, const std::string& prefix,
                       uint64_t* n) {
  if (!HasRecordNumberPrefix(id, prefix)) return false;
  const char* first = id.data() + prefix.size() + 1;
  const char* last = id.data() + id.size();
  auto [ptr, ec] = std::from_chars(first, last, *n, 10);
  return ec == std::errc() && ptr == last;
}

}  // namespace

Vault::Vault(VaultOptions options) : options_(std::move(options)) {}

Result<std::unique_ptr<Vault>> Vault::Open(const VaultOptions& options) {
  if (options.env == nullptr || options.clock == nullptr) {
    return Status::InvalidArgument("Vault needs an Env and a Clock");
  }
  if (options.dir.empty()) {
    return Status::InvalidArgument("Vault needs a directory");
  }
  if (options.master_key.size() != crypto::kAes256KeySize) {
    return Status::InvalidArgument("master key must be 32 bytes");
  }
  if (options.entropy.empty()) {
    return Status::InvalidArgument("Vault needs an entropy seed");
  }
  if (options.signer_height < 2 || options.signer_height > 16) {
    return Status::InvalidArgument("signer height must be in [2,16]");
  }
  if (options.record_id_prefix.empty()) {
    return Status::InvalidArgument("record id prefix must not be empty");
  }
  std::unique_ptr<Vault> vault(new Vault(options));
  MEDVAULT_RETURN_IF_ERROR(vault->Init());
  return vault;
}

Status Vault::Init() {
  storage::Env* env = options_.env;
  const std::string& dir = options_.dir;

  // Resolve telemetry first: recovery (below) is already timed.
  metrics_ =
      options_.metrics != nullptr ? options_.metrics : obs::MetricsRegistry::Default();
  op_metrics_ = obs::VaultOpMetrics::For(metrics_, "vault");

  MEDVAULT_RETURN_IF_ERROR(env->CreateDirIfMissing(dir));

  // Key derivation fan-out from master key / entropy.
  MEDVAULT_ASSIGN_OR_RETURN(
      std::string keystore_seed,
      crypto::HkdfSha256(options_.entropy, Slice(), "keystore-drbg", 32));
  // Derived from the long-term entropy seed (not the rotatable master
  // key) so existing postings stay searchable across key rotation.
  MEDVAULT_ASSIGN_OR_RETURN(
      std::string index_master,
      crypto::HkdfSha256(options_.entropy, Slice(), "index-master", 32));
  // Signer identity derives from the long-term entropy seed so that it
  // survives master-key rotation.
  MEDVAULT_ASSIGN_OR_RETURN(
      std::string signer_secret,
      crypto::HkdfSha256(options_.entropy, Slice(), "signer-secret", 32));
  MEDVAULT_ASSIGN_OR_RETURN(
      signer_public_seed_,
      crypto::HkdfSha256(options_.entropy, Slice(), "signer-public", 32));
  // Consent signatures derive from the long-term entropy seed too:
  // grants must keep verifying across master-key rotation.
  MEDVAULT_ASSIGN_OR_RETURN(
      std::string consent_root,
      crypto::HkdfSha256(options_.entropy, Slice(), "consent-signing", 32));
  consent_.Configure(std::move(consent_root), options_.consent_id_prefix);
  access_.AttachConsentRegistry(&consent_);

  keystore_ = std::make_unique<KeyStore>(env, dir + "/keys.db",
                                         options_.master_key, keystore_seed);
  MEDVAULT_RETURN_IF_ERROR(keystore_->Open());

  versions_ = std::make_unique<VersionStore>(env, dir, keystore_.get());
  MEDVAULT_RETURN_IF_ERROR(versions_->Open());

  index_ = std::make_unique<SecureIndex>(env, dir + "/index.log",
                                         index_master, keystore_.get());
  MEDVAULT_RETURN_IF_ERROR(index_->Open());

  audit_ = std::make_unique<AuditLog>(env, dir + "/audit.log");
  MEDVAULT_RETURN_IF_ERROR(audit_->Open());

  provenance_ = std::make_unique<ProvenanceTracker>(
      env, dir + "/provenance.log", options_.system_id);
  MEDVAULT_RETURN_IF_ERROR(provenance_->Open());

  signer_ = std::make_unique<crypto::XmssSigner>(
      signer_secret, signer_public_seed_, options_.signer_height);

  MEDVAULT_RETURN_IF_ERROR(LoadState());
  MEDVAULT_RETURN_IF_ERROR(RecoverAfterUncleanShutdown());

  // Group commit last: recovery above syncs directly (the committer's
  // sync function takes mu_, and nothing concurrent exists yet anyway).
  GroupCommitter::Options commit_options;
  commit_options.window_micros = options_.commit_window_micros;
  commit_options.metrics = metrics_;
  committer_ = std::make_unique<GroupCommitter>(
      [this] {
        std::unique_lock lock(mu_);
        return SyncAllLocked();
      },
      std::move(commit_options));
  return Status::OK();
}

Status Vault::LoadState() {
  storage::Env* env = options_.env;
  const std::string state_path = options_.dir + "/state.log";
  uint64_t signer_used = 0;
  storage::log::LogOpenResult res;
  MEDVAULT_RETURN_IF_ERROR(storage::log::OpenLogForAppend(
      env, state_path,
      [this, &signer_used](const Slice& rec) -> Status {
        if (rec.empty()) return Status::Corruption("empty state entry");
        uint8_t kind = static_cast<uint8_t>(rec[0]);
        Slice payload(rec.data() + 1, rec.size() - 1);
        switch (kind) {
          case kStateMeta: {
            MEDVAULT_ASSIGN_OR_RETURN(RecordMeta meta,
                                      RecordMeta::Decode(payload));
            // Record ids are "<prefix>-<n>"; keep the counter ahead of
            // them. An unparsable suffix means the state log is damaged.
            if (HasRecordNumberPrefix(meta.record_id,
                                      options_.record_id_prefix)) {
              uint64_t n = 0;
              if (!ParseRecordNumber(meta.record_id,
                                     options_.record_id_prefix, &n)) {
                return Status::Corruption(
                    "malformed record id in state log: " + meta.record_id);
              }
              next_record_num_ = std::max(next_record_num_, n + 1);
            }
            StoreMetaLocked(meta);
            break;
          }
          case kStateSigner: {
            Slice in = payload;
            if (!GetVarint64(&in, &signer_used)) {
              return Status::Corruption("malformed signer state");
            }
            break;
          }
          case kStatePrincipal: {
            MEDVAULT_ASSIGN_OR_RETURN(Principal p, DecodePrincipal(payload));
            if (p.role == Role::kAdmin) has_admin_ = true;
            MEDVAULT_RETURN_IF_ERROR(access_.RegisterPrincipal(p));
            break;
          }
          case kStateGrant: {
            MEDVAULT_ASSIGN_OR_RETURN(GrantEntry g, DecodeGrant(payload));
            MEDVAULT_RETURN_IF_ERROR(access_.RestoreGrant(
                g.grant_id, g.clinician, g.patient, g.justification, Now(),
                g.expires_at));
            break;
          }
          case kStateConsent: {
            MEDVAULT_ASSIGN_OR_RETURN(ConsentGrant g,
                                      ConsentGrant::Decode(payload));
            // A consent entry that fails signature verification is
            // tamper evidence, not a skippable oddity: refusing the
            // open beats silently widening (or narrowing) access.
            MEDVAULT_RETURN_IF_ERROR(consent_.VerifySignature(g));
            MEDVAULT_RETURN_IF_ERROR(consent_.Restore(g, Now()));
            break;
          }
          case kStateConsentRevoke: {
            Slice in = payload;
            std::string grant_id;
            if (!GetLengthPrefixedString(&in, &grant_id) || !in.empty()) {
              return Status::Corruption("malformed consent revoke entry");
            }
            MEDVAULT_RETURN_IF_ERROR(consent_.RestoreRevoke(grant_id));
            break;
          }
          case kStateCareAssign:
          case kStateCareRevoke: {
            Slice in = payload;
            std::string clinician, patient;
            if (!GetLengthPrefixedString(&in, &clinician) ||
                !GetLengthPrefixedString(&in, &patient) || !in.empty()) {
              return Status::Corruption("malformed care entry");
            }
            if (kind == kStateCareAssign) {
              MEDVAULT_RETURN_IF_ERROR(access_.AssignCare(clinician, patient));
            } else {
              MEDVAULT_RETURN_IF_ERROR(access_.RevokeCare(clinician, patient));
            }
            break;
          }
          default:
            return Status::Corruption("unknown state entry kind");
        }
        return Status::OK();
      },
      &res));
  state_writer_ = std::move(res.writer);
  return signer_->RestoreState(signer_used);
}

Status Vault::RecoverAfterUncleanShutdown() {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.recover, "vault.recover");
  // Init runs single-threaded, so the *Locked helpers are safe to call.
  // The state log is the commit point: everything else is reconciled
  // to agree with it.
  std::map<RecordId, uint32_t> committed_latest;
  for (const auto& [id, meta] : metas_) {
    committed_latest[id] = meta.latest_version;
  }
  uint64_t dropped_refs = 0;
  MEDVAULT_RETURN_IF_ERROR(
      versions_->ReconcileCatalog(committed_latest, &dropped_refs));

  std::vector<std::string> actions;
  if (dropped_refs > 0) {
    actions.push_back("catalog-refs-dropped=" + std::to_string(dropped_refs));
  }

  for (auto& [id, meta] : metas_) {
    auto latest = versions_->LatestVersion(id);
    const uint32_t actual = latest.ok() ? *latest : 0;
    RecordMeta updated = meta;
    bool changed = false;
    if (!updated.disposed && keystore_->IsDestroyed(id)) {
      // Crash between DestroyKey and the meta flip: finish the disposal.
      updated.disposed = true;
      changed = true;
      actions.push_back(id + ":disposal-completed");
      if (options_.cache != nullptr) options_.cache->PurgeRecord(id);
    }
    if (!updated.disposed && !keystore_->GetKey(id).ok()) {
      // A committed meta whose key never became durable. Possible only
      // for an UNACKED record under partial media (live-key appends are
      // deferred to the sync wave, which completes before the state
      // log's commit point — an acked record always has a durable key).
      // The ciphertext is undecryptable forever: tombstone it.
      updated.disposed = true;
      updated.latest_version = 0;
      changed = true;
      actions.push_back(id + ":key-lost");
      if (options_.cache != nullptr) options_.cache->PurgeRecord(id);
    }
    if (!updated.disposed && actual == 0) {
      // A committed meta whose version bytes did not survive (possible
      // only when partial media kept the state tail but not the catalog
      // tail). The content is unrecoverable — burn the key and mark the
      // record disposed rather than serve a record with no data.
      if (keystore_->GetKey(id).ok()) {
        MEDVAULT_RETURN_IF_ERROR(keystore_->DestroyKey(id));
      }
      updated.disposed = true;
      // Zero the version count too, or the next open would "lower" it
      // and log a second kRecovery — recovery must converge in one pass.
      updated.latest_version = 0;
      changed = true;
      actions.push_back(id + ":versions-lost");
      if (options_.cache != nullptr) options_.cache->PurgeRecord(id);
    } else if (actual < updated.latest_version) {
      updated.latest_version = actual;
      changed = true;
      actions.push_back(id + ":latest-lowered-to-" + std::to_string(actual));
    }
    if (changed) {
      MEDVAULT_RETURN_IF_ERROR(PutRecordMetaLocked(updated));
      meta = updated;
    }
  }

  // Keys created for records that never committed (crash mid-create).
  // Removing them also kills any orphan index postings and audit-log
  // references: their key-refs become unresolvable, exactly as after a
  // crypto-shred.
  std::vector<RecordId> orphan_keys;
  for (const RecordId& id : keystore_->AllRecordIds()) {
    if (metas_.count(id) == 0) orphan_keys.push_back(id);
  }
  if (!orphan_keys.empty()) {
    MEDVAULT_RETURN_IF_ERROR(keystore_->RemoveKeysForRecovery(orphan_keys));
    if (options_.cache != nullptr) {
      for (const RecordId& id : orphan_keys) options_.cache->PurgeRecord(id);
    }
    actions.push_back("orphan-keys-removed=" +
                      std::to_string(orphan_keys.size()));
  }

  // Record-scoped consent grants on records that are no longer live —
  // shredded before the crash, tombstoned by the reconciliation above,
  // or never committed. A crash between DestroyKey and the revoke
  // entries must never leave a live capability to a dead record.
  for (const ConsentGrant& g : consent_.Snapshot()) {
    if (g.scope != ConsentScope::kRecord) continue;
    auto dead = metas_.find(g.record_id);
    if (dead != metas_.end() && !dead->second.disposed) continue;
    (void)consent_.Revoke(g.grant_id);
    MEDVAULT_RETURN_IF_ERROR(AppendStateEntryLocked(
        kStateConsentRevoke, EncodeConsentRevoke(g.grant_id)));
    if (options_.cache != nullptr) options_.cache->PurgeRecord(g.record_id);
    actions.push_back(g.grant_id + ":consent-revoked");
  }

  if (actions.empty()) return Status::OK();
  std::string details = "crash-recovery:";
  for (const std::string& a : actions) details += " " + a;
  MEDVAULT_RETURN_IF_ERROR(
      audit_->Append("system", AuditAction::kRecovery, "", details, Now())
          .status());
  // Make the reconciled state durable so a crash during/after recovery
  // replays to the same result.
  return SyncAllLocked();
}

Status Vault::SyncAll() {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.sync, "vault.sync");
  // Group commit: concurrent callers coalesce into one sync wave per
  // window; the wave itself runs SyncAllLocked under the vault lock.
  return committer_->Commit();
}

Status Vault::WithQuiescedStore(const std::function<Status()>& fn) {
  // Exclusive lock + direct sync wave (NOT committer_->Commit(), whose
  // sync fn would re-take mu_). With the lock held nothing can append,
  // rewrite, or reclaim, so `fn` observes a durable frozen store.
  std::unique_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(SyncAllLocked());
  return fn();
}

Status Vault::SyncAllLocked() {
  // Commit-point ordering: every side log becomes durable BEFORE the
  // state log. A durable meta therefore implies durable version bytes,
  // catalog entry, key, postings, and audit/custody events. The side
  // logs carry no ordering among themselves, so they sync as one
  // batched wave (concurrent under AsyncEnv); only the catalog must
  // trail its segment bytes, and the state log lands strictly last.
  std::vector<storage::WritableFile*> wave = {
      versions_->SegmentSyncTarget(),
      index_->sync_target(),
      audit_->sync_target(),
      provenance_->sync_target(),
      keystore_->sync_target(),
  };
  MEDVAULT_RETURN_IF_ERROR(storage::SyncFilesBatch(options_.env, wave));
  MEDVAULT_RETURN_IF_ERROR(versions_->SyncCatalog());
  return state_writer_->Sync();
}

Status Vault::AppendStateEntryLocked(uint8_t kind, const Slice& payload) {
  std::string record;
  record.push_back(static_cast<char>(kind));
  record.append(payload.data(), payload.size());
  return state_writer_->AddRecord(record);
}

Status Vault::AppendStateEntriesLocked(
    const std::vector<std::string>& records) {
  std::vector<Slice> slices(records.begin(), records.end());
  return state_writer_->AddRecords(slices.data(), slices.size());
}

Status Vault::ReserveSignerLeafLocked() {
  // Reserve-then-sign: the spent-leaf count is durable BEFORE the
  // signature exists, so a crash can waste the reserved leaf but never
  // let the next open re-sign with it (XMSS leaves are one-time; reuse
  // forfeits the scheme's security). On a clean run the signature that
  // follows makes the reservation exact.
  std::string payload;
  PutVarint64(&payload, signer_->SignaturesUsed() + 1);
  MEDVAULT_RETURN_IF_ERROR(AppendStateEntryLocked(kStateSigner, payload));
  return state_writer_->Sync();
}

const std::string& Vault::SignerPublicKey() const {
  // Immutable after Init; safe to hand out by reference.
  return signer_->public_key();
}

const std::string& Vault::SignerPublicSeed() const {
  return signer_public_seed_;
}

Status Vault::AuditLocked(const PrincipalId& actor, AuditAction action,
                          const RecordId& record_id,
                          const std::string& details) const {
  // AuditLog serializes internally; mu_ (shared or exclusive) only
  // guards the vault state consulted before getting here.
  return audit_->Append(actor, action, record_id, details, Now()).status();
}

Status Vault::Audit(const PrincipalId& actor, AuditAction action,
                    const RecordId& record_id, const std::string& details) {
  std::shared_lock lock(mu_);
  return AuditLocked(actor, action, record_id, details);
}

Result<std::string> Vault::SignStatement(const Slice& payload) {
  std::unique_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(ReserveSignerLeafLocked());
  MEDVAULT_ASSIGN_OR_RETURN(crypto::XmssSignature sig,
                            signer_->Sign(payload));
  return sig.Encode();
}

Result<RecordMeta> Vault::RequireLiveMetaLocked(
    const RecordId& record_id) const {
  auto it = metas_.find(record_id);
  if (it == metas_.end()) return Status::NotFound("unknown record");
  return it->second;
}

Status Vault::CheckAndAuditLocked(const PrincipalId& actor, Operation op,
                                  const RecordId& record_id,
                                  const PrincipalId& patient_id,
                                  AccessBasis* basis) const {
  Status s =
      access_.CheckAccess(actor, op, patient_id, record_id, Now(), basis);
  if (!s.ok()) {
    // Denials are themselves auditable events (HIPAA audit controls).
    (void)AuditLocked(actor, AuditAction::kAccessDenied, record_id,
                      std::string(OperationName(op)) + ": " + s.message());
  }
  return s;
}

// ---- Administration ----------------------------------------------------

Status Vault::RegisterPrincipal(const PrincipalId& actor,
                                const Principal& principal) {
  std::unique_lock lock(mu_);
  if (has_admin_) {
    MEDVAULT_RETURN_IF_ERROR(
        CheckAndAuditLocked(actor, Operation::kManagePrincipals, "", ""));
  }
  MEDVAULT_RETURN_IF_ERROR(access_.RegisterPrincipal(principal));
  if (principal.role == Role::kAdmin) has_admin_ = true;
  MEDVAULT_RETURN_IF_ERROR(
      AppendStateEntryLocked(kStatePrincipal, EncodePrincipal(principal)));
  return AuditLocked(actor, AuditAction::kPolicyChange, "",
                     "register-principal " + principal.id + " role=" +
                         RoleName(principal.role));
}

Status Vault::AssignCare(const PrincipalId& actor,
                         const PrincipalId& clinician,
                         const PrincipalId& patient) {
  std::unique_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(
      CheckAndAuditLocked(actor, Operation::kManagePrincipals, "", ""));
  MEDVAULT_RETURN_IF_ERROR(access_.AssignCare(clinician, patient));
  MEDVAULT_RETURN_IF_ERROR(AppendStateEntryLocked(
      kStateCareAssign, EncodeCare(clinician, patient)));
  return AuditLocked(actor, AuditAction::kPolicyChange, "",
                     "assign-care " + clinician + " -> " + patient);
}

Result<std::string> Vault::BreakGlass(const PrincipalId& clinician,
                                      const PrincipalId& patient,
                                      const std::string& justification,
                                      Timestamp duration) {
  std::unique_lock lock(mu_);
  Timestamp now = Now();
  MEDVAULT_ASSIGN_OR_RETURN(
      std::string grant_id,
      access_.BreakGlass(clinician, patient, justification, now,
                         now + duration));
  // The grant is vault *state*, not just an audit fact: without a
  // state-log entry a crash/reopen silently revoked active emergency
  // access while the audit trail still claimed it was in force.
  MEDVAULT_RETURN_IF_ERROR(AppendStateEntryLocked(
      kStateGrant, EncodeGrant(GrantEntry{grant_id, clinician, patient,
                                          justification, now + duration})));
  // Break-glass is the one path that must never be silent.
  MEDVAULT_RETURN_IF_ERROR(
      AuditLocked(clinician, AuditAction::kBreakGlass, "",
                  "patient=" + patient + " grant=" + grant_id +
                      " justification=" + justification));
  return grant_id;
}

// ---- Patient-driven sharing ----------------------------------------------

Result<ConsentGrant> Vault::GrantConsent(const PrincipalId& actor,
                                         const PrincipalId& grantee,
                                         const RecordId& record_id,
                                         const std::string& purpose,
                                         Timestamp duration) {
  std::unique_lock lock(mu_);
  Timestamp now = Now();
  MEDVAULT_ASSIGN_OR_RETURN(Principal granter, access_.GetPrincipal(actor));
  if (granter.role != Role::kPatient) {
    (void)AuditLocked(actor, AuditAction::kAccessDenied, record_id,
                      "consent-grant: only patients may delegate");
    return Status::PermissionDenied(
        "only the patient may delegate access to their records");
  }
  // The grantee must be a registered principal — consent delegates to a
  // known identity the audit trail can name, never to a bare string.
  MEDVAULT_RETURN_IF_ERROR(access_.GetPrincipal(grantee).status());
  if (!record_id.empty()) {
    MEDVAULT_ASSIGN_OR_RETURN(RecordMeta meta,
                              RequireLiveMetaLocked(record_id));
    if (meta.patient_id != actor) {
      (void)AuditLocked(actor, AuditAction::kAccessDenied, record_id,
                        "consent-grant: not the record owner");
      return Status::PermissionDenied(
          "patients may share only their own records");
    }
    if (meta.disposed) {
      return Status::KeyDestroyed("record was disposed of");
    }
  }
  MEDVAULT_ASSIGN_OR_RETURN(
      ConsentGrant grant,
      consent_.Grant(actor, grantee, record_id, purpose, now,
                     now + duration));
  // Like break-glass, the grant is vault *state*: persisted before the
  // audit entry, replayed (signature-verified) on reopen.
  MEDVAULT_RETURN_IF_ERROR(
      AppendStateEntryLocked(kStateConsent, grant.Encode()));
  MEDVAULT_RETURN_IF_ERROR(AuditLocked(
      actor, AuditAction::kConsentGrant, record_id,
      "patient=" + actor + " grantee=" + grantee + " grant=" +
          grant.grant_id + " scope=" + ConsentScopeName(grant.scope) +
          " purpose=" + purpose));
  metrics_->GetCounter("consent.granted")->Increment();
  return grant;
}

Status Vault::RevokeConsent(const PrincipalId& actor,
                            const std::string& grant_id) {
  std::unique_lock lock(mu_);
  MEDVAULT_ASSIGN_OR_RETURN(ConsentGrant grant, consent_.Get(grant_id));
  MEDVAULT_ASSIGN_OR_RETURN(Principal revoker, access_.GetPrincipal(actor));
  if (actor != grant.patient && revoker.role != Role::kAdmin) {
    (void)AuditLocked(actor, AuditAction::kAccessDenied, grant.record_id,
                      "consent-revoke: not the granting patient or admin");
    return Status::PermissionDenied(
        "only the granting patient or an admin may revoke consent");
  }
  MEDVAULT_RETURN_IF_ERROR(consent_.Revoke(grant_id));
  // Revocation is total: under the exclusive lock no read is in flight,
  // and the cache drops every plaintext the grant could reach before
  // the revoke is acknowledged.
  if (options_.cache != nullptr) {
    if (grant.scope == ConsentScope::kRecord) {
      options_.cache->PurgeRecord(grant.record_id);
    } else {
      auto pit = records_by_patient_.find(grant.patient);
      if (pit != records_by_patient_.end()) {
        for (const RecordId& id : pit->second) {
          options_.cache->PurgeRecord(id);
        }
      }
    }
  }
  MEDVAULT_RETURN_IF_ERROR(AppendStateEntryLocked(
      kStateConsentRevoke, EncodeConsentRevoke(grant_id)));
  MEDVAULT_RETURN_IF_ERROR(AuditLocked(
      actor, AuditAction::kConsentRevoke, grant.record_id,
      "patient=" + grant.patient + " grantee=" + grant.grantee +
          " grant=" + grant_id + " by=" + actor));
  metrics_->GetCounter("consent.revoked")->Increment();
  return Status::OK();
}

Result<std::vector<ConsentGrant>> Vault::ListConsents(
    const PrincipalId& actor, const PrincipalId& patient) {
  std::shared_lock lock(mu_);
  // Patients list their own delegations; otherwise audit-read authority.
  if (actor != patient) {
    MEDVAULT_RETURN_IF_ERROR(
        CheckAndAuditLocked(actor, Operation::kReadAudit, "", ""));
  }
  return consent_.ListForPatient(patient, Now());
}

size_t Vault::ActiveConsentCount() const {
  std::shared_lock lock(mu_);
  return consent_.ActiveCount(Now());
}

// ---- Record lifecycle ----------------------------------------------------

Result<RecordId> Vault::CreateRecord(
    const PrincipalId& actor, const PrincipalId& patient_id,
    const std::string& content_type, const Slice& plaintext,
    const std::vector<std::string>& keywords,
    const std::string& retention_policy) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.create, "vault.create");
  std::unique_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(
      CheckAndAuditLocked(actor, Operation::kCreateRecord, "", patient_id));
  Timestamp now = Now();
  MEDVAULT_ASSIGN_OR_RETURN(Timestamp retention_until,
                            retention_.RetentionUntil(retention_policy, now));

  RecordId record_id =
      options_.record_id_prefix + "-" + std::to_string(next_record_num_++);
  MEDVAULT_RETURN_IF_ERROR(keystore_->CreateKey(record_id));
  MEDVAULT_ASSIGN_OR_RETURN(
      VersionHeader header,
      versions_->AppendVersion(record_id, actor, content_type, "", plaintext,
                               now));
  (void)header;
  MEDVAULT_RETURN_IF_ERROR(index_->AddPostings(record_id, keywords));

  RecordMeta meta;
  meta.record_id = record_id;
  meta.patient_id = patient_id;
  meta.created_at = now;
  meta.retention_until = retention_until;
  meta.retention_policy = retention_policy;
  meta.latest_version = 1;
  MEDVAULT_RETURN_IF_ERROR(PutRecordMetaLocked(meta));

  MEDVAULT_RETURN_IF_ERROR(
      AuditLocked(actor, AuditAction::kCreate, record_id,
                  "patient=" + patient_id + " policy=" + retention_policy));
  MEDVAULT_RETURN_IF_ERROR(
      provenance_
          ->RecordEvent(record_id, CustodyEventType::kCreated, actor,
                        "patient=" + patient_id, now)
          .status());
  return record_id;
}

Result<std::vector<RecordId>> Vault::CreateRecordsBatch(
    const PrincipalId& actor, const std::vector<NewRecord>& batch) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.batch_ingest,
                           "vault.batch_ingest");
  std::unique_lock lock(mu_);
  std::vector<RecordId> ids;
  if (batch.empty()) return ids;

  // Validate the whole batch before creating anything: access for every
  // patient and every retention policy.
  Timestamp now = Now();
  std::vector<Timestamp> retention_until(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    MEDVAULT_RETURN_IF_ERROR(CheckAndAuditLocked(
        actor, Operation::kCreateRecord, "", batch[i].patient_id));
    MEDVAULT_ASSIGN_OR_RETURN(
        retention_until[i],
        retention_.RetentionUntil(batch[i].retention_policy, now));
  }

  ids.reserve(batch.size());
  std::vector<SecureIndex::PostingBatch> postings;
  std::vector<std::string> state_records;
  std::vector<PendingAuditEvent> audit_events;
  postings.reserve(batch.size());
  state_records.reserve(batch.size());
  audit_events.reserve(batch.size());

  for (size_t i = 0; i < batch.size(); ++i) {
    const NewRecord& r = batch[i];
    RecordId record_id =
        options_.record_id_prefix + "-" + std::to_string(next_record_num_++);
    MEDVAULT_RETURN_IF_ERROR(keystore_->CreateKey(record_id));
    MEDVAULT_ASSIGN_OR_RETURN(
        VersionHeader header,
        versions_->AppendVersion(record_id, actor, r.content_type, "",
                                 r.plaintext, now));
    (void)header;

    RecordMeta meta;
    meta.record_id = record_id;
    meta.patient_id = r.patient_id;
    meta.created_at = now;
    meta.retention_until = retention_until[i];
    meta.retention_policy = r.retention_policy;
    meta.latest_version = 1;
    StoreMetaLocked(meta);

    std::string state_record;
    state_record.push_back(static_cast<char>(kStateMeta));
    state_record.append(meta.Encode());
    state_records.push_back(std::move(state_record));

    postings.push_back(SecureIndex::PostingBatch{record_id, r.keywords});
    audit_events.push_back(PendingAuditEvent{
        actor, AuditAction::kCreate, record_id,
        "patient=" + r.patient_id + " policy=" + r.retention_policy});
    ids.push_back(std::move(record_id));
  }

  // Coalesced bookkeeping: one index append, one state-log flush, and
  // one audit append for the whole batch.
  MEDVAULT_RETURN_IF_ERROR(index_->AddPostingsBatch(postings));
  MEDVAULT_RETURN_IF_ERROR(AppendStateEntriesLocked(state_records));
  MEDVAULT_RETURN_IF_ERROR(audit_->AppendBatch(audit_events, now).status());
  for (size_t i = 0; i < batch.size(); ++i) {
    MEDVAULT_RETURN_IF_ERROR(
        provenance_
            ->RecordEvent(ids[i], CustodyEventType::kCreated, actor,
                          "patient=" + batch[i].patient_id, now)
            .status());
  }
  return ids;
}

Result<std::vector<RecordId>> Vault::CreateRecordsBatchDurable(
    const PrincipalId& actor, const std::vector<NewRecord>& batch) {
  MEDVAULT_ASSIGN_OR_RETURN(std::vector<RecordId> ids,
                            CreateRecordsBatch(actor, batch));
  // Acknowledge only after the window covering this batch has synced.
  MEDVAULT_RETURN_IF_ERROR(committer_->Commit());
  return ids;
}

Status Vault::PutRecordMetaLocked(const RecordMeta& meta) {
  if (HasRecordNumberPrefix(meta.record_id, options_.record_id_prefix)) {
    uint64_t n = 0;
    if (!ParseRecordNumber(meta.record_id, options_.record_id_prefix, &n)) {
      return Status::InvalidArgument("malformed record id: " +
                                     meta.record_id);
    }
    next_record_num_ = std::max(next_record_num_, n + 1);
  }
  StoreMetaLocked(meta);
  return AppendStateEntryLocked(kStateMeta, meta.Encode());
}

void Vault::StoreMetaLocked(const RecordMeta& meta) {
  auto [it, inserted] = metas_.insert_or_assign(meta.record_id, meta);
  (void)it;
  if (inserted) {
    records_by_patient_[meta.patient_id].push_back(meta.record_id);
  }
}

Status Vault::PutRecordMeta(const RecordMeta& meta) {
  std::unique_lock lock(mu_);
  return PutRecordMetaLocked(meta);
}

Result<RecordVersion> Vault::ReadRecord(const PrincipalId& actor,
                                        const RecordId& record_id) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.read, "vault.read");
  std::shared_lock lock(mu_);
  MEDVAULT_ASSIGN_OR_RETURN(RecordMeta meta,
                            RequireLiveMetaLocked(record_id));
  AccessBasis basis;
  MEDVAULT_RETURN_IF_ERROR(CheckAndAuditLocked(
      actor, Operation::kReadRecord, record_id, meta.patient_id, &basis));
  if (meta.disposed) {
    MEDVAULT_RETURN_IF_ERROR(AuditLocked(actor, AuditAction::kRead, record_id,
                                         "disposed" + BasisSuffix(basis)));
    return Status::KeyDestroyed("record was disposed of");
  }
  auto version = ReadVersionCachedLocked(record_id, meta.latest_version);
  MEDVAULT_RETURN_IF_ERROR(AuditLocked(
      actor, AuditAction::kRead, record_id,
      (version.ok() ? "ok" : version.status().ToString()) +
          BasisSuffix(basis)));
  if (version.ok() && basis.kind == AccessBasis::Kind::kConsent) {
    metrics_->GetCounter("consent.exercised")->Increment();
  }
  return version;
}

Result<RecordVersion> Vault::ReadRecordVersion(const PrincipalId& actor,
                                               const RecordId& record_id,
                                               uint32_t version) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.read, "vault.read");
  std::shared_lock lock(mu_);
  MEDVAULT_ASSIGN_OR_RETURN(RecordMeta meta,
                            RequireLiveMetaLocked(record_id));
  AccessBasis basis;
  MEDVAULT_RETURN_IF_ERROR(CheckAndAuditLocked(
      actor, Operation::kReadRecord, record_id, meta.patient_id, &basis));
  if (meta.disposed) {
    MEDVAULT_RETURN_IF_ERROR(AuditLocked(actor, AuditAction::kRead, record_id,
                                         "disposed" + BasisSuffix(basis)));
    return Status::KeyDestroyed("record was disposed of");
  }
  auto result = ReadVersionCachedLocked(record_id, version);
  MEDVAULT_RETURN_IF_ERROR(AuditLocked(
      actor, AuditAction::kRead, record_id,
      "v" + std::to_string(version) +
          (result.ok() ? " ok" : " " + result.status().ToString()) +
          BasisSuffix(basis)));
  if (result.ok() && basis.kind == AccessBasis::Kind::kConsent) {
    metrics_->GetCounter("consent.exercised")->Increment();
  }
  return result;
}

Result<RecordVersion> Vault::ReadVersionCachedLocked(
    const RecordId& record_id, uint32_t version) const {
  RecordCache* cache = options_.cache;
  if (cache == nullptr) return versions_->ReadVersion(record_id, version);
  // Authenticated serve: a hit counts only if the cached entry was
  // stored under exactly the entry hash the catalog vouches for now.
  auto expected = versions_->EntryHash(record_id, version);
  if (expected.ok()) {
    if (auto hit = cache->Get(record_id, version, *expected)) {
      return std::move(*hit);
    }
  }
  auto result = versions_->ReadVersion(record_id, version);
  if (result.ok() && expected.ok()) {
    cache->Put(record_id, version, *expected, *result);
  }
  return result;
}

Result<VersionHeader> Vault::CorrectRecord(
    const PrincipalId& actor, const RecordId& record_id,
    const Slice& new_plaintext, const std::string& reason,
    const std::vector<std::string>& keywords) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.correct, "vault.correct");
  std::unique_lock lock(mu_);
  if (reason.empty()) {
    return Status::InvalidArgument("corrections require a reason");
  }
  MEDVAULT_ASSIGN_OR_RETURN(RecordMeta meta,
                            RequireLiveMetaLocked(record_id));
  if (meta.disposed) {
    return Status::KeyDestroyed("record was disposed; cannot correct");
  }
  MEDVAULT_RETURN_IF_ERROR(CheckAndAuditLocked(
      actor, Operation::kCorrectRecord, record_id, meta.patient_id));
  Timestamp now = Now();
  MEDVAULT_ASSIGN_OR_RETURN(
      VersionHeader header,
      versions_->AppendVersion(record_id, actor, "text/plain", reason,
                               new_plaintext, now));
  MEDVAULT_RETURN_IF_ERROR(index_->AddPostings(record_id, keywords));
  meta.latest_version = header.version;
  MEDVAULT_RETURN_IF_ERROR(PutRecordMetaLocked(meta));
  // A corrected record must never be served from pre-correction cache
  // state (readers key "latest" off the meta, but purge anyway so the
  // cache holds nothing for a record whose content was contested).
  if (options_.cache != nullptr) options_.cache->PurgeRecord(record_id);
  MEDVAULT_RETURN_IF_ERROR(
      AuditLocked(actor, AuditAction::kCorrect, record_id,
                  "v" + std::to_string(header.version) +
                      " reason=" + reason));
  MEDVAULT_RETURN_IF_ERROR(
      provenance_
          ->RecordEvent(record_id, CustodyEventType::kCorrected, actor,
                        "v" + std::to_string(header.version), now)
          .status());
  return header;
}

Result<std::vector<RecordId>> Vault::SearchKeyword(const PrincipalId& actor,
                                                   const std::string& term) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.search, "vault.search");
  std::shared_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(
      CheckAndAuditLocked(actor, Operation::kSearch, "", ""));
  MEDVAULT_ASSIGN_OR_RETURN(std::vector<RecordId> hits, index_->Search(term));

  // Minimum necessary: only return records the actor could read.
  std::vector<RecordId> visible;
  Timestamp now = Now();
  for (const RecordId& id : hits) {
    auto meta = RequireLiveMetaLocked(id);
    if (!meta.ok()) continue;
    // Record-aware check so a clinician holding a per-record consent
    // grant sees exactly the records it covers.
    if (access_
            .CheckAccess(actor, Operation::kReadRecord, meta->patient_id, id,
                         now, nullptr)
            .ok()) {
      visible.push_back(id);
    }
  }
  MEDVAULT_RETURN_IF_ERROR(
      AuditLocked(actor, AuditAction::kSearch, "",
                  SearchAuditDetail(options_.entropy, term) + " hits=" +
                      std::to_string(visible.size())));
  return visible;
}

Result<std::vector<RecordId>> Vault::SearchKeywordsAll(
    const PrincipalId& actor, const std::vector<std::string>& terms) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.search, "vault.search");
  std::shared_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(
      CheckAndAuditLocked(actor, Operation::kSearch, "", ""));
  MEDVAULT_ASSIGN_OR_RETURN(std::vector<RecordId> hits,
                            index_->SearchAll(terms));
  std::vector<RecordId> visible;
  Timestamp now = Now();
  for (const RecordId& id : hits) {
    auto meta = RequireLiveMetaLocked(id);
    if (!meta.ok()) continue;
    if (access_
            .CheckAccess(actor, Operation::kReadRecord, meta->patient_id, id,
                         now, nullptr)
            .ok()) {
      visible.push_back(id);
    }
  }
  std::string blinds;
  for (const std::string& term : terms) {
    if (!blinds.empty()) blinds += ",";
    blinds += SearchAuditDetail(options_.entropy, term);
  }
  MEDVAULT_RETURN_IF_ERROR(
      AuditLocked(actor, AuditAction::kSearch, "",
                  blinds + " hits=" + std::to_string(visible.size())));
  return visible;
}

Result<std::vector<VersionHeader>> Vault::RecordHistory(
    const PrincipalId& actor, const RecordId& record_id) {
  std::shared_lock lock(mu_);
  MEDVAULT_ASSIGN_OR_RETURN(RecordMeta meta,
                            RequireLiveMetaLocked(record_id));
  AccessBasis basis;
  MEDVAULT_RETURN_IF_ERROR(CheckAndAuditLocked(
      actor, Operation::kReadRecord, record_id, meta.patient_id, &basis));
  MEDVAULT_RETURN_IF_ERROR(AuditLocked(actor, AuditAction::kRead, record_id,
                                       "history" + BasisSuffix(basis)));
  return versions_->History(record_id);
}

Result<DisposalCertificate> Vault::ExecuteDisposalLocked(
    const PrincipalId& actor, RecordMeta meta,
    const std::string& authorizers) {
  const RecordId& record_id = meta.record_id;
  Timestamp now = Now();
  // Custody first: the disposal event becomes part of the chain the
  // certificate commits to.
  MEDVAULT_ASSIGN_OR_RETURN(
      std::string custody_head,
      provenance_->RecordEvent(record_id, CustodyEventType::kDisposed,
                               authorizers,
                               "policy=" + meta.retention_policy, now));
  MEDVAULT_RETURN_IF_ERROR(ReserveSignerLeafLocked());
  MEDVAULT_ASSIGN_OR_RETURN(
      DisposalCertificate cert,
      retention_.IssueCertificate(meta, authorizers, custody_head, now,
                                  signer_.get()));

  MEDVAULT_RETURN_IF_ERROR(keystore_->DestroyKey(record_id));
  // Secure deletion includes memory: purge every cached plaintext of
  // the record synchronously, before the disposal is acknowledged.
  if (options_.cache != nullptr) options_.cache->PurgeRecord(record_id);
  // Crypto-shredding also kills every outstanding record-scoped consent
  // on the record, synchronously — revoked, persisted, and audited
  // before the disposal is acknowledged. (Patient-scoped grants stay:
  // they cover the patient's other records, and this one is unreadable
  // without its key regardless.)
  for (const ConsentGrant& g : consent_.RevokeAllForRecord(record_id)) {
    MEDVAULT_RETURN_IF_ERROR(AppendStateEntryLocked(
        kStateConsentRevoke, EncodeConsentRevoke(g.grant_id)));
    MEDVAULT_RETURN_IF_ERROR(
        AuditLocked(actor, AuditAction::kConsentRevoke, record_id,
                    "patient=" + g.patient + " grantee=" + g.grantee +
                        " grant=" + g.grant_id + " reason=crypto-shred"));
    metrics_->GetCounter("consent.revoked")->Increment();
  }
  meta.disposed = true;
  MEDVAULT_RETURN_IF_ERROR(PutRecordMetaLocked(meta));

  MEDVAULT_RETURN_IF_ERROR(
      AuditLocked(actor, AuditAction::kDispose, record_id,
                  "by=" + authorizers + " cert=" +
                      HexEncode(Slice(
                          crypto::Sha256Digest(cert.Encode()).data(), 8))));
  return cert;
}

Result<DisposalCertificate> Vault::DisposeRecord(const PrincipalId& actor,
                                                 const RecordId& record_id) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.dispose, "vault.dispose");
  std::unique_lock lock(mu_);
  if (options_.require_dual_disposal) {
    return Status::FailedPrecondition(
        "this vault requires two-person disposal: use RequestDisposal + "
        "ApproveDisposal");
  }
  MEDVAULT_ASSIGN_OR_RETURN(RecordMeta meta,
                            RequireLiveMetaLocked(record_id));
  MEDVAULT_RETURN_IF_ERROR(CheckAndAuditLocked(actor, Operation::kDispose,
                                               record_id, meta.patient_id));
  MEDVAULT_RETURN_IF_ERROR(retention_.CheckDisposalAllowed(meta, Now()));
  return ExecuteDisposalLocked(actor, std::move(meta), actor);
}

Result<std::vector<RecordMeta>> Vault::ListExpiredRecords(
    const PrincipalId& actor) {
  std::shared_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(
      CheckAndAuditLocked(actor, Operation::kReadAudit, "", ""));
  std::vector<RecordMeta> expired;
  Timestamp now = Now();
  for (const auto& [id, meta] : metas_) {
    if (retention_.CheckDisposalAllowed(meta, now).ok()) {
      expired.push_back(meta);
    }
  }
  return expired;
}

Result<int> Vault::ReclaimDisposedMedia(const PrincipalId& actor) {
  std::unique_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(
      CheckAndAuditLocked(actor, Operation::kDispose, "", ""));
  std::vector<uint64_t> segments = versions_->FullyDisposedSegments();
  MEDVAULT_ASSIGN_OR_RETURN(int dropped,
                            versions_->ReclaimSegments(segments));
  MEDVAULT_RETURN_IF_ERROR(AuditLocked(actor, AuditAction::kDispose, "",
                                       "media-reclaim segments=" +
                                           std::to_string(dropped)));
  return dropped;
}

Status Vault::PlaceLegalHold(const PrincipalId& actor,
                             const RecordId& record_id,
                             const std::string& reason) {
  std::unique_lock lock(mu_);
  if (reason.empty()) {
    return Status::InvalidArgument("legal holds require a reason");
  }
  MEDVAULT_ASSIGN_OR_RETURN(RecordMeta meta,
                            RequireLiveMetaLocked(record_id));
  MEDVAULT_RETURN_IF_ERROR(CheckAndAuditLocked(actor, Operation::kDispose,
                                               record_id, meta.patient_id));
  if (meta.disposed) {
    return Status::FailedPrecondition("record already disposed");
  }
  if (meta.legal_hold) {
    return Status::AlreadyExists("record already under legal hold");
  }
  meta.legal_hold = true;
  MEDVAULT_RETURN_IF_ERROR(PutRecordMetaLocked(meta));
  return AuditLocked(actor, AuditAction::kPolicyChange, record_id,
                     "legal-hold placed: " + reason);
}

Status Vault::ReleaseLegalHold(const PrincipalId& actor,
                               const RecordId& record_id,
                               const std::string& reason) {
  std::unique_lock lock(mu_);
  if (reason.empty()) {
    return Status::InvalidArgument("hold releases require a reason");
  }
  MEDVAULT_ASSIGN_OR_RETURN(RecordMeta meta,
                            RequireLiveMetaLocked(record_id));
  MEDVAULT_RETURN_IF_ERROR(CheckAndAuditLocked(actor, Operation::kDispose,
                                               record_id, meta.patient_id));
  if (!meta.legal_hold) {
    return Status::FailedPrecondition("record is not under legal hold");
  }
  meta.legal_hold = false;
  MEDVAULT_RETURN_IF_ERROR(PutRecordMetaLocked(meta));
  return AuditLocked(actor, AuditAction::kPolicyChange, record_id,
                     "legal-hold released: " + reason);
}

Result<std::string> Vault::RequestDisposal(const PrincipalId& actor,
                                           const RecordId& record_id) {
  std::unique_lock lock(mu_);
  MEDVAULT_ASSIGN_OR_RETURN(RecordMeta meta,
                            RequireLiveMetaLocked(record_id));
  MEDVAULT_RETURN_IF_ERROR(CheckAndAuditLocked(actor, Operation::kDispose,
                                               record_id, meta.patient_id));
  MEDVAULT_RETURN_IF_ERROR(retention_.CheckDisposalAllowed(meta, Now()));

  std::string request_id = "dr-" + std::to_string(next_disposal_request_++);
  disposal_requests_[request_id] = DisposalRequest{record_id, actor};
  MEDVAULT_RETURN_IF_ERROR(AuditLocked(actor, AuditAction::kDispose,
                                       record_id,
                                       "requested " + request_id));
  return request_id;
}

Result<DisposalCertificate> Vault::ApproveDisposal(
    const PrincipalId& actor, const std::string& request_id) {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.dispose, "vault.dispose");
  std::unique_lock lock(mu_);
  auto it = disposal_requests_.find(request_id);
  if (it == disposal_requests_.end()) {
    return Status::NotFound("no such disposal request");
  }
  const DisposalRequest request = it->second;
  MEDVAULT_ASSIGN_OR_RETURN(RecordMeta meta,
                            RequireLiveMetaLocked(request.record_id));
  MEDVAULT_RETURN_IF_ERROR(CheckAndAuditLocked(actor, Operation::kDispose,
                                               request.record_id,
                                               meta.patient_id));
  if (actor == request.requester) {
    (void)AuditLocked(actor, AuditAction::kAccessDenied, request.record_id,
                      "self-approval of " + request_id + " refused");
    return Status::PermissionDenied(
        "two-person disposal requires a different approving admin");
  }
  // Retention is re-checked at approval time: a request made in error
  // cannot be approved into an early disposal.
  MEDVAULT_RETURN_IF_ERROR(retention_.CheckDisposalAllowed(meta, Now()));
  disposal_requests_.erase(it);
  return ExecuteDisposalLocked(actor, std::move(meta),
                               request.requester + "+" + actor);
}

// ---- Audit & custody -----------------------------------------------------

Result<SignedCheckpoint> Vault::CheckpointAudit() {
  std::unique_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(ReserveSignerLeafLocked());
  MEDVAULT_ASSIGN_OR_RETURN(SignedCheckpoint c,
                            audit_->Checkpoint(signer_.get(), Now()));
  return c;
}

Status Vault::VerifyAudit() const {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.verify, "vault.verify");
  // Exclusive: VerifyAll re-reads the log file from disk, so in-flight
  // appends (even from shared-lock read paths) must be excluded.
  std::unique_lock lock(mu_);
  return audit_->VerifyAll(signer_->public_key(), signer_public_seed_,
                           options_.signer_height);
}

Status Vault::VerifyAuditAgainstTrusted(
    const SignedCheckpoint& trusted) const {
  std::shared_lock lock(mu_);
  return audit_->VerifyAgainstTrusted(trusted);
}

Result<std::vector<AuditEvent>> Vault::ReadAuditTrail(
    const PrincipalId& actor, const RecordId& record_id) {
  std::shared_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(
      CheckAndAuditLocked(actor, Operation::kReadAudit, record_id, ""));
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : audit_->SnapshotEvents()) {
    if (record_id.empty() || e.record_id == record_id) out.push_back(e);
  }
  return out;
}

Result<std::vector<CustodyEvent>> Vault::GetCustodyChain(
    const PrincipalId& actor, const RecordId& record_id) {
  std::shared_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(
      CheckAndAuditLocked(actor, Operation::kReadAudit, record_id, ""));
  return provenance_->GetChain(record_id);
}

Result<std::vector<AuditEvent>> Vault::AccountingOfDisclosures(
    const PrincipalId& actor, const PrincipalId& patient_id) {
  std::shared_lock lock(mu_);
  // Patients are entitled to their own accounting; otherwise this is an
  // audit-read operation.
  if (actor != patient_id) {
    MEDVAULT_RETURN_IF_ERROR(
        CheckAndAuditLocked(actor, Operation::kReadAudit, "", ""));
  }
  // O(per-patient), not O(log): gather disclosure seqs from the
  // patient's records plus their break-glass grants via the audit log's
  // incremental index, merge the ascending lists, and materialize the
  // events — a full-log scan at population scale would make the one
  // report patients are entitled to the most expensive query we serve.
  std::vector<uint64_t> seqs;
  auto pit = records_by_patient_.find(patient_id);
  if (pit != records_by_patient_.end()) {
    for (const RecordId& record_id : pit->second) {
      std::vector<uint64_t> s = audit_->DisclosureSeqsForRecord(record_id);
      seqs.insert(seqs.end(), s.begin(), s.end());
    }
  }
  std::vector<uint64_t> bg = audit_->BreakGlassSeqsForPatient(patient_id);
  seqs.insert(seqs.end(), bg.begin(), bg.end());
  // Consent grants disclose too: each names the third party the patient
  // authorized (the exercises themselves are kRead events on the
  // patient's records, already gathered above with via=consent details).
  std::vector<uint64_t> cg = audit_->ConsentSeqsForPatient(patient_id);
  seqs.insert(seqs.end(), cg.begin(), cg.end());
  std::sort(seqs.begin(), seqs.end());
  std::vector<AuditEvent> out;
  out.reserve(seqs.size());
  for (uint64_t seq : seqs) {
    MEDVAULT_ASSIGN_OR_RETURN(AuditEvent e, audit_->EventAt(seq));
    out.push_back(std::move(e));
  }
  MEDVAULT_RETURN_IF_ERROR(AuditLocked(actor, AuditAction::kSearch, "",
                                       "accounting-of-disclosures events=" +
                                           std::to_string(out.size())));
  return out;
}

Status Vault::CheckAuditAccess(const PrincipalId& actor) const {
  std::shared_lock lock(mu_);
  return CheckAndAuditLocked(actor, Operation::kReadAudit, "", "");
}

std::vector<RecordId> Vault::RecordIdsForPatient(
    const PrincipalId& patient_id) const {
  std::shared_lock lock(mu_);
  auto it = records_by_patient_.find(patient_id);
  if (it == records_by_patient_.end()) return {};
  return it->second;
}

Result<std::vector<AuditEvent>> Vault::ListBreakGlassEvents(
    const PrincipalId& actor) {
  std::shared_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(
      CheckAndAuditLocked(actor, Operation::kReadAudit, "", ""));
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : audit_->SnapshotEvents()) {
    if (e.action == AuditAction::kBreakGlass) out.push_back(e);
  }
  return out;
}

// ---- Verification ---------------------------------------------------------

Status Vault::VerifyRecord(const RecordId& record_id) const {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.verify, "vault.verify");
  std::shared_lock lock(mu_);
  return versions_->VerifyRecord(record_id);
}

Status Vault::VerifyEverything() const {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.verify, "vault.verify");
  std::unique_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(versions_->VerifyAllRecords());
  MEDVAULT_RETURN_IF_ERROR(audit_->VerifyAll(
      signer_->public_key(), signer_public_seed_, options_.signer_height));
  MEDVAULT_RETURN_IF_ERROR(index_->VerifyIntegrity());
  return provenance_->VerifyAllChains();
}

Result<ScrubReport> Vault::Scrub() {
  obs::ScopedOpTimer timer(metrics_, op_metrics_.verify, "vault.scrub");
  std::unique_lock lock(mu_);
  MEDVAULT_ASSIGN_OR_RETURN(
      ScrubReport report,
      Scrubber::ScrubVaultDir(options_.env, options_.dir, Now()));
  // Deep pass: Merkle/hash bindings from the catalog down to segment
  // bytes, audit hash-chain + XMSS checkpoints, index and provenance
  // chains. Structural damage usually fails this too; the structural
  // scan above is what localizes it to byte ranges.
  Status deep = versions_->VerifyAllRecords();
  if (deep.ok()) {
    deep = audit_->VerifyAll(signer_->public_key(), signer_public_seed_,
                             options_.signer_height);
  }
  if (deep.ok()) deep = index_->VerifyIntegrity();
  if (deep.ok()) deep = provenance_->VerifyAllChains();
  report.deep_status = deep;

  last_scrub_ =
      ScrubStats{true,
                 report.scrubbed_at,
                 report.files_scanned,
                 report.corrupt_files,
                 report.orphan_files,
                 report.clean()};
  metrics_->GetCounter("vault.scrub.runs")->Increment();
  metrics_->GetCounter("vault.scrub.bytes")->Increment(report.bytes_scanned);
  if (!report.clean()) {
    metrics_->GetCounter("vault.scrub.dirty")->Increment();
  }
  return report;
}

Vault::ScrubStats Vault::LastScrub() const {
  std::shared_lock lock(mu_);
  return last_scrub_;
}

std::string Vault::ContentRoot() const {
  std::shared_lock lock(mu_);
  crypto::MerkleTree tree;
  for (const std::string& hash : versions_->AllVersionHashes()) {
    tree.Append(hash);
  }
  return tree.Root();
}

Result<RecordMeta> Vault::GetRecordMeta(const RecordId& record_id) const {
  std::shared_lock lock(mu_);
  return RequireLiveMetaLocked(record_id);
}

std::vector<RecordId> Vault::ListRecordIds() const {
  std::shared_lock lock(mu_);
  std::vector<RecordId> ids;
  ids.reserve(metas_.size());
  for (const auto& [id, meta] : metas_) ids.push_back(id);
  return ids;
}

Vault::HealthStats Vault::CollectHealthStats() const {
  std::shared_lock lock(mu_);
  HealthStats stats;
  const Timestamp now = Now();
  for (const auto& [id, meta] : metas_) {
    if (meta.disposed) {
      stats.disposed++;
      continue;
    }
    stats.records++;
    if (meta.legal_hold) stats.legal_holds++;
    // Backlog = disposal the retention schedule already allows but that
    // nobody has executed yet (the paper's "assured destruction" debt).
    if (retention_.CheckDisposalAllowed(meta, now).ok()) {
      stats.retention_backlog++;
    }
  }
  stats.signer_leaves_used = signer_->SignaturesUsed();
  stats.signer_leaves_remaining = signer_->SignaturesRemaining();
  return stats;
}

Status Vault::RotateMasterKey(const PrincipalId& actor,
                              const Slice& new_master_key) {
  std::unique_lock lock(mu_);
  MEDVAULT_RETURN_IF_ERROR(
      CheckAndAuditLocked(actor, Operation::kManagePrincipals, "", ""));
  if (new_master_key.size() != crypto::kAes256KeySize) {
    return Status::InvalidArgument("master key must be 32 bytes");
  }
  MEDVAULT_RETURN_IF_ERROR(keystore_->RotateMasterKey(new_master_key));
  options_.master_key = new_master_key.ToString();
  return AuditLocked(actor, AuditAction::kKeyRotation, "",
                     "master-key rotated");
}

}  // namespace medvault::core
