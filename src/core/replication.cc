#include "core/replication.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/coding.h"
#include "core/shard_router.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"

namespace medvault::core {

namespace {

constexpr char kCursorMagic[] = "medvault-replcur-v1";
constexpr char kBatchMagic[] = "medvault-replbatch-v1";
constexpr char kAuthInfo[] = "medvault-repl-auth";
constexpr size_t kHashSize = 32;
/// Cut boundaries remembered per file; a cursor older than the window
/// falls back to verified full-file replacement.
constexpr size_t kMaxBoundaries = 64;

const char* const kTopLevelArtifacts[] = {
    "state.log", "keys.db", "catalog.log",
    "index.log", "audit.log", "provenance.log",
};

bool IsTopLevelArtifact(const std::string& name) {
  for (const char* a : kTopLevelArtifacts) {
    if (name == a) return true;
  }
  return false;
}

/// The relative paths replication ships: the fixed logs plus every
/// segment. Orphans (temp files, sidecars) never ship — a replica holds
/// artifacts only. Sorted; absent directories yield an empty list.
Result<std::vector<std::string>> ListTrackedFiles(storage::Env* env,
                                                  const std::string& dir) {
  std::vector<std::string> out;
  std::vector<std::string> children;
  Status s = env->GetChildren(dir, &children);
  if (s.IsNotFound()) return out;
  MEDVAULT_RETURN_IF_ERROR(s);
  for (const std::string& name : children) {
    if (IsTopLevelArtifact(name)) out.push_back(name);
  }
  std::vector<std::string> segs;
  s = env->GetChildren(dir + "/segments", &segs);
  if (s.ok()) {
    for (const std::string& name : segs) {
      if (name.rfind("seg-", 0) == 0) out.push_back("segments/" + name);
    }
  } else if (!s.IsNotFound()) {
    return s;
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string EmptyPrefixHash() { return crypto::Sha256Digest(Slice()); }

}  // namespace

// ---------------------------------------------------------------------------
// Wire structures
// ---------------------------------------------------------------------------

std::string ReplicationCursor::SignedPayload() const {
  std::string out;
  PutLengthPrefixed(&out, kCursorMagic);
  PutVarint64(&out, files.size());
  for (const auto& [path, state] : files) {
    PutLengthPrefixed(&out, path);
    PutVarint64(&out, state.size);
    PutLengthPrefixed(&out, state.prefix_hash);
  }
  return out;
}

std::string ReplicationCursor::Encode() const {
  std::string out = SignedPayload();
  PutLengthPrefixed(&out, auth);
  return out;
}

Result<ReplicationCursor> ReplicationCursor::Decode(const Slice& data) {
  ReplicationCursor cur;
  Slice input = data;
  std::string magic;
  if (!GetLengthPrefixedString(&input, &magic) || magic != kCursorMagic) {
    return Status::Corruption("bad replication cursor magic");
  }
  uint64_t count = 0;
  if (!GetVarint64(&input, &count)) {
    return Status::Corruption("bad replication cursor file count");
  }
  for (uint64_t i = 0; i < count; i++) {
    std::string path;
    FileState state;
    if (!GetLengthPrefixedString(&input, &path) ||
        !GetVarint64(&input, &state.size) ||
        !GetLengthPrefixedString(&input, &state.prefix_hash) ||
        state.prefix_hash.size() != kHashSize) {
      return Status::Corruption("bad replication cursor file entry");
    }
    cur.files[path] = std::move(state);
  }
  if (!GetLengthPrefixedString(&input, &cur.auth) || !input.empty()) {
    return Status::Corruption("bad replication cursor trailer");
  }
  return cur;
}

uint64_t ReplicationCursor::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [path, state] : files) total += state.size;
  return total;
}

std::string FileChunk::Encode() const {
  std::string out;
  out.push_back(static_cast<char>(kind));
  PutLengthPrefixed(&out, path);
  PutVarint64(&out, offset);
  PutLengthPrefixed(&out, data);
  return out;
}

Result<FileChunk> FileChunk::Decode(const Slice& data) {
  FileChunk chunk;
  Slice input = data;
  if (input.empty()) return Status::Corruption("empty file chunk");
  chunk.kind = static_cast<uint8_t>(input[0]);
  input.RemovePrefix(1);
  if (chunk.kind != kAppend && chunk.kind != kReplace &&
      chunk.kind != kRemove) {
    return Status::Corruption("unknown file chunk kind");
  }
  if (!GetLengthPrefixedString(&input, &chunk.path) ||
      !GetVarint64(&input, &chunk.offset) ||
      !GetLengthPrefixedString(&input, &chunk.data) || !input.empty()) {
    return Status::Corruption("bad file chunk encoding");
  }
  return chunk;
}

std::string ShippedBatch::SignedHeader() const {
  std::string out;
  PutLengthPrefixed(&out, kBatchMagic);
  PutVarint64(&out, seq);
  PutLengthPrefixed(&out, source_system);
  PutVarint64(&out, static_cast<uint64_t>(created_at));
  PutVarint64(&out, source_bytes);
  PutVarint64(&out, lag_at_cut);
  PutVarint64(&out, audit_size);
  PutLengthPrefixed(&out, audit_root);
  PutLengthPrefixed(&out, chunks_root);
  PutVarint64(&out, chunks.size());
  return out;
}

std::string ShippedBatch::Encode() const {
  std::string out = SignedHeader();
  PutLengthPrefixed(&out, auth);
  for (const std::string& h : leaf_hashes) PutLengthPrefixed(&out, h);
  for (const FileChunk& chunk : chunks) {
    PutLengthPrefixed(&out, chunk.Encode());
  }
  return out;
}

Result<ShippedBatch> ShippedBatch::Decode(const Slice& data) {
  ShippedBatch batch;
  Slice input = data;
  std::string magic;
  uint64_t created = 0;
  uint64_t chunk_count = 0;
  if (!GetLengthPrefixedString(&input, &magic) || magic != kBatchMagic ||
      !GetVarint64(&input, &batch.seq) ||
      !GetLengthPrefixedString(&input, &batch.source_system) ||
      !GetVarint64(&input, &created) ||
      !GetVarint64(&input, &batch.source_bytes) ||
      !GetVarint64(&input, &batch.lag_at_cut) ||
      !GetVarint64(&input, &batch.audit_size) ||
      !GetLengthPrefixedString(&input, &batch.audit_root) ||
      !GetLengthPrefixedString(&input, &batch.chunks_root) ||
      !GetVarint64(&input, &chunk_count) ||
      !GetLengthPrefixedString(&input, &batch.auth)) {
    return Status::Corruption("bad shipped batch header");
  }
  batch.created_at = static_cast<Timestamp>(created);
  for (uint64_t i = 0; i < chunk_count; i++) {
    std::string h;
    if (!GetLengthPrefixedString(&input, &h) || h.size() != kHashSize) {
      return Status::Corruption("bad shipped batch leaf hash");
    }
    batch.leaf_hashes.push_back(std::move(h));
  }
  for (uint64_t i = 0; i < chunk_count; i++) {
    Slice encoded;
    if (!GetLengthPrefixed(&input, &encoded)) {
      return Status::Corruption("bad shipped batch chunk framing");
    }
    MEDVAULT_ASSIGN_OR_RETURN(FileChunk chunk, FileChunk::Decode(encoded));
    batch.chunks.push_back(std::move(chunk));
  }
  if (!input.empty()) {
    return Status::Corruption("trailing bytes after shipped batch");
  }
  return batch;
}

uint64_t ShippedBatch::PayloadBytes() const {
  uint64_t total = 0;
  for (const FileChunk& chunk : chunks) total += chunk.data.size();
  return total;
}

std::string DeriveReplicationAuthKey(const Slice& entropy) {
  return crypto::HkdfSha256(entropy, Slice(), kAuthInfo, kHashSize)
      .ValueOr(std::string());
}

Result<ReplicationCursor> CursorForVaultDir(storage::Env* env,
                                            const std::string& dir,
                                            const Slice& auth_key) {
  ReplicationCursor cur;
  MEDVAULT_ASSIGN_OR_RETURN(std::vector<std::string> files,
                            ListTrackedFiles(env, dir));
  for (const std::string& rel : files) {
    std::string data;
    MEDVAULT_RETURN_IF_ERROR(ReadFileToString(env, dir + "/" + rel, &data));
    ReplicationCursor::FileState state;
    state.size = data.size();
    state.prefix_hash = crypto::Sha256Digest(data);
    cur.files[rel] = std::move(state);
  }
  cur.auth = crypto::HmacSha256(auth_key, cur.SignedPayload());
  return cur;
}

// ---------------------------------------------------------------------------
// ReplicationSource
// ---------------------------------------------------------------------------

ReplicationSource::ReplicationSource(Vault* vault)
    : vault_(vault),
      auth_key_(DeriveReplicationAuthKey(vault->options().entropy)),
      metrics_(vault->metrics_registry()),
      ship_batches_(metrics_->GetCounter("repl.ship.batches")),
      ship_bytes_(metrics_->GetCounter("repl.ship.bytes")),
      ship_lag_(metrics_->GetGauge("repl.ship.lag")) {}

Result<ShippedBatch> ReplicationSource::CutBatch(
    const ReplicationCursor& cursor) {
  std::lock_guard<std::mutex> lock(mu_);
  ShippedBatch batch;
  MEDVAULT_RETURN_IF_ERROR(vault_->WithQuiescedStore(
      [&]() -> Status { return CutLocked(cursor, &batch); }));
  ship_batches_->Increment();
  ship_bytes_->Increment(batch.PayloadBytes());
  ship_lag_->Set(static_cast<int64_t>(batch.lag_at_cut));
  return batch;
}

Result<std::string> ReplicationSource::HandleCutRequest(
    const Slice& encoded_cursor) {
  auto decoded = ReplicationCursor::Decode(encoded_cursor);
  if (!decoded.ok()) {
    return Status::InvalidArgument("undecodable replication cursor: " +
                                   decoded.status().message());
  }
  // The cursor is self-authenticating: only a holder of the shared
  // replication secret can form a valid one, so the endpoint needs no
  // session state — and never leaks vault bytes to anyone else.
  std::string want =
      crypto::HmacSha256(auth_key_, decoded.value().SignedPayload());
  if (!crypto::ConstantTimeEqual(want, decoded.value().auth)) {
    return Status::PermissionDenied("replication cursor not authenticated");
  }
  MEDVAULT_ASSIGN_OR_RETURN(ShippedBatch batch, CutBatch(decoded.value()));
  return batch.Encode();
}

Status ReplicationSource::ExtendTracked(const std::string& rel,
                                        uint64_t target_size,
                                        TrackedFile* t) {
  if (t->boundaries.empty()) t->boundaries[0] = EmptyPrefixHash();
  if (t->hashed == target_size) return Status::OK();
  MEDVAULT_ASSIGN_OR_RETURN(
      std::string delta, ReadRange(rel, t->hashed, target_size - t->hashed));
  t->ctx.Update(delta);
  t->hashed = target_size;
  return Status::OK();
}

Result<std::string> ReplicationSource::ReadRange(const std::string& rel,
                                                 uint64_t offset,
                                                 uint64_t length) const {
  if (length == 0) return std::string();
  const std::string path = vault_->options().dir + "/" + rel;
  std::unique_ptr<storage::RandomAccessFile> file;
  MEDVAULT_RETURN_IF_ERROR(
      vault_->options().env->NewRandomAccessFile(path, &file));
  std::string data;
  MEDVAULT_RETURN_IF_ERROR(
      file->Read(offset, static_cast<size_t>(length), &data));
  if (data.size() != length) {
    return Status::Corruption("short read cutting replication batch from " +
                              rel);
  }
  return data;
}

Status ReplicationSource::CutLocked(const ReplicationCursor& cursor,
                                    ShippedBatch* out) {
  storage::Env* env = vault_->options().env;
  const std::string& dir = vault_->options().dir;

  // A rewritten file voids its running prefix hash: drop the tracked
  // state so the file re-reads below and ships as a replacement.
  uint64_t key_gen = vault_->keystore()->rewrite_generation();
  uint64_t cat_gen = vault_->versions()->catalog_rewrite_generation();
  if (key_gen != last_keystore_generation_) {
    tracked_.erase("keys.db");
    last_keystore_generation_ = key_gen;
  }
  if (cat_gen != last_catalog_generation_) {
    tracked_.erase("catalog.log");
    last_catalog_generation_ = cat_gen;
  }

  MEDVAULT_ASSIGN_OR_RETURN(std::vector<std::string> files,
                            ListTrackedFiles(env, dir));
  uint64_t total = 0;
  for (const std::string& rel : files) {
    uint64_t size = 0;
    MEDVAULT_RETURN_IF_ERROR(env->GetFileSize(dir + "/" + rel, &size));
    total += size;

    TrackedFile& t = tracked_[rel];
    // Shrunk without a generation bump (shouldn't happen, but a stale
    // hash must never ship): start over.
    if (t.hashed > size) t = TrackedFile();
    MEDVAULT_RETURN_IF_ERROR(ExtendTracked(rel, size, &t));

    // Verify the replica's claimed prefix against a known cut boundary;
    // only a verified prefix earns an append delta.
    auto claimed = cursor.files.find(rel);
    uint64_t have = 0;
    bool verified = true;
    if (claimed != cursor.files.end()) {
      have = claimed->second.size;
      if (have == size) {
        crypto::Sha256 ctx = t.ctx;
        verified = (ctx.Finish() == claimed->second.prefix_hash);
      } else {
        auto boundary = t.boundaries.find(have);
        verified = (boundary != t.boundaries.end() &&
                    boundary->second == claimed->second.prefix_hash);
      }
    }

    if (verified) {
      if (have < size) {
        FileChunk chunk;
        chunk.kind = FileChunk::kAppend;
        chunk.path = rel;
        chunk.offset = have;
        MEDVAULT_ASSIGN_OR_RETURN(chunk.data,
                                  ReadRange(rel, have, size - have));
        out->chunks.push_back(std::move(chunk));
      } else if (claimed == cursor.files.end()) {
        // Zero-byte artifact the replica does not hold at all (a fresh
        // vault's still-empty logs): an append of nothing would never
        // materialize the file, so ship an explicit empty replacement —
        // byte equality includes file existence.
        FileChunk chunk;
        chunk.kind = FileChunk::kReplace;
        chunk.path = rel;
        out->chunks.push_back(std::move(chunk));
      }
    } else {
      // Unverifiable prefix (torn replica tail, pre-rewrite bytes, or a
      // cursor older than the boundary window): replace the file whole.
      FileChunk chunk;
      chunk.kind = FileChunk::kReplace;
      chunk.path = rel;
      MEDVAULT_ASSIGN_OR_RETURN(chunk.data, ReadRange(rel, 0, size));
      out->chunks.push_back(std::move(chunk));
    }

    // Record this cut boundary, bounding the remembered window.
    crypto::Sha256 ctx = t.ctx;
    t.boundaries[size] = ctx.Finish();
    while (t.boundaries.size() > kMaxBoundaries) {
      t.boundaries.erase(t.boundaries.begin());
    }
  }

  // Files the replica holds but the primary no longer does (segment
  // reclamation after crypto-shredding).
  for (const auto& [rel, state] : cursor.files) {
    if (!std::binary_search(files.begin(), files.end(), rel)) {
      FileChunk chunk;
      chunk.kind = FileChunk::kRemove;
      chunk.path = rel;
      out->chunks.push_back(std::move(chunk));
      tracked_.erase(rel);
    }
  }

  out->seq = next_seq_++;
  out->source_system = vault_->options().system_id;
  out->created_at = vault_->Now();
  out->source_bytes = total;
  out->lag_at_cut = out->PayloadBytes();
  out->audit_size = vault_->audit()->size();
  out->audit_root = vault_->audit()->Root();

  crypto::MerkleTree tree;
  for (const FileChunk& chunk : out->chunks) {
    std::string leaf = crypto::MerkleTree::HashLeaf(chunk.Encode());
    out->leaf_hashes.push_back(leaf);
    tree.AppendLeafHash(std::move(leaf));
  }
  out->chunks_root = tree.Root();
  out->auth = crypto::HmacSha256(auth_key_, out->SignedHeader());
  return Status::OK();
}

uint64_t ReplicationSource::batches_shipped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

uint64_t ReplicationSource::bytes_shipped() const {
  return ship_bytes_->Value();
}

uint64_t ReplicationSource::last_lag_bytes() const {
  int64_t v = ship_lag_->Value();
  return v > 0 ? static_cast<uint64_t>(v) : 0;
}

// ---------------------------------------------------------------------------
// ReplicaApplier
// ---------------------------------------------------------------------------

ReplicaApplier::ReplicaApplier(Options options)
    : options_(std::move(options)),
      auth_key_(DeriveReplicationAuthKey(options_.entropy)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : obs::MetricsRegistry::Default()),
      apply_batches_(metrics_->GetCounter("repl.apply.batches")),
      apply_bytes_(metrics_->GetCounter("repl.apply.bytes")),
      apply_refused_(metrics_->GetCounter("repl.apply.refused")),
      lag_gauge_(metrics_->GetGauge("repl.lag")),
      quarantined_gauge_(metrics_->GetGauge("repl.quarantined")) {}

Result<std::unique_ptr<ReplicaApplier>> ReplicaApplier::Open(
    const Options& options) {
  if (options.env == nullptr || options.dir.empty()) {
    return Status::InvalidArgument("replica applier needs env and dir");
  }
  if (options.entropy.empty()) {
    return Status::InvalidArgument(
        "replica applier needs the primary's entropy");
  }
  std::unique_ptr<ReplicaApplier> applier(new ReplicaApplier(options));
  MEDVAULT_RETURN_IF_ERROR(applier->Init());
  return applier;
}

Status ReplicaApplier::Init() {
  MEDVAULT_RETURN_IF_ERROR(options_.env->CreateDirIfMissing(options_.dir));
  MEDVAULT_RETURN_IF_ERROR(
      options_.env->CreateDirIfMissing(options_.dir + "/segments"));
  return ScanExisting();
}

Status ReplicaApplier::ScanExisting() {
  // The directory is the cursor: whatever a previous process (or a
  // crash) left behind is re-hashed, and the source ships from there.
  MEDVAULT_ASSIGN_OR_RETURN(std::vector<std::string> existing,
                            ListTrackedFiles(options_.env, options_.dir));
  for (const std::string& rel : existing) {
    MEDVAULT_RETURN_IF_ERROR(ReprobeFile(rel));
  }
  return Status::OK();
}

std::string ReplicaApplier::AbsPath(const std::string& rel) const {
  return options_.dir + "/" + rel;
}

Status ReplicaApplier::ReprobeFile(const std::string& rel) {
  files_.erase(rel);
  if (!options_.env->FileExists(AbsPath(rel))) return Status::OK();
  std::string data;
  MEDVAULT_RETURN_IF_ERROR(
      ReadFileToString(options_.env, AbsPath(rel), &data));
  AppliedFile& af = files_[rel];
  af.size = data.size();
  af.ctx.Update(data);
  return Status::OK();
}

Result<ReplicationCursor> ReplicaApplier::Cursor() const {
  std::lock_guard<std::mutex> lock(mu_);
  ReplicationCursor cur;
  for (const auto& [rel, af] : files_) {
    ReplicationCursor::FileState state;
    state.size = af.size;
    crypto::Sha256 ctx = af.ctx;
    state.prefix_hash = ctx.Finish();
    cur.files[rel] = std::move(state);
  }
  cur.auth = crypto::HmacSha256(auth_key_, cur.SignedPayload());
  return cur;
}

Status ReplicaApplier::VerifyBatch(const ShippedBatch& batch) const {
  // 1. The header must authenticate: roots, sizes and sequence are only
  //    meaningful under the shared replication secret.
  std::string want = crypto::HmacSha256(auth_key_, batch.SignedHeader());
  if (!crypto::ConstantTimeEqual(want, batch.auth)) {
    return Status::TamperDetected(
        "shipped batch header failed authentication");
  }
  // 2. The recomputed Merkle root over the shipped leaf hashes must
  //    equal the root the primary authenticated into the header.
  if (batch.leaf_hashes.size() != batch.chunks.size()) {
    return Status::TamperDetected("shipped batch leaf/chunk count mismatch");
  }
  crypto::MerkleTree tree;
  for (const std::string& h : batch.leaf_hashes) tree.AppendLeafHash(h);
  if (tree.Root() != batch.chunks_root) {
    return Status::TamperDetected(
        "shipped batch Merkle root mismatch: chunks do not match the root "
        "the primary authenticated");
  }
  // 3. Every chunk's bytes must hash to its shipped leaf — pinpointing
  //    exactly which chunk an adversary touched.
  for (size_t i = 0; i < batch.chunks.size(); i++) {
    if (crypto::MerkleTree::HashLeaf(batch.chunks[i].Encode()) !=
        batch.leaf_hashes[i]) {
      return Status::TamperDetected(
          "shipped chunk " + std::to_string(i) + " (" +
          batch.chunks[i].path + ") does not match its Merkle leaf");
    }
  }
  return Status::OK();
}

Status ReplicaApplier::Apply(const ShippedBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (quarantined_) {
    apply_refused_->Increment();
    return Status::FailedPrecondition("replica quarantined: " +
                                      quarantine_reason_);
  }
  if (promoted_) {
    apply_refused_->Increment();
    return Status::FailedPrecondition(
        "replica was promoted; it no longer applies shipped batches");
  }

  Status verdict = VerifyBatch(batch);
  if (!verdict.ok()) {
    apply_refused_->Increment();
    QuarantineLocked(verdict.message());
    return verdict;
  }

  // Pre-check every chunk's position against the applied-offset cursor
  // BEFORE touching the disk, so a detectable inconsistency never
  // half-applies.
  for (const FileChunk& chunk : batch.chunks) {
    if (chunk.kind != FileChunk::kAppend) continue;
    auto it = files_.find(chunk.path);
    uint64_t size = (it == files_.end()) ? 0 : it->second.size;
    if (size < chunk.offset) {
      apply_refused_->Increment();
      return Status::FailedPrecondition(
          "shipped batch leaves a gap in " + chunk.path +
          ": re-cut against a fresh cursor");
    }
    if (size > chunk.offset + chunk.data.size()) {
      // The replica holds bytes the primary never shipped — divergence,
      // not lag. Serving from it could expose unverifiable records.
      apply_refused_->Increment();
      Status diverged = Status::TamperDetected(
          "replica ahead of the shipped stream for " + chunk.path +
          " — divergent replica");
      QuarantineLocked(diverged.message());
      return diverged;
    }
  }

  std::vector<std::string> touched;
  for (const FileChunk& chunk : batch.chunks) {
    Status s = ApplyChunk(chunk, &touched);
    if (!s.ok()) {
      // The applied-offset cursor must reflect the disk, never the
      // intent: drop what we believed about this file and re-read it.
      (void)ReprobeFile(chunk.path);
      return s;
    }
  }
  // Durability before acknowledgement, same as the primary's commit
  // point: the cursor only advances over synced bytes.
  for (const std::string& rel : touched) {
    auto it = files_.find(rel);
    if (it == files_.end() || it->second.writer == nullptr) continue;
    Status s = it->second.writer->Sync();
    if (!s.ok()) {
      (void)ReprobeFile(rel);
      return s;
    }
  }

  applied_batches_++;
  applied_bytes_ += batch.PayloadBytes();
  last_applied_seq_ = std::max(last_applied_seq_, batch.seq);
  last_audit_root_ = batch.audit_root;
  last_audit_size_ = batch.audit_size;
  uint64_t held = 0;
  for (const auto& [rel, af] : files_) held += af.size;
  lag_bytes_ = batch.source_bytes > held ? batch.source_bytes - held : 0;
  apply_batches_->Increment();
  apply_bytes_->Increment(batch.PayloadBytes());
  lag_gauge_->Set(static_cast<int64_t>(lag_bytes_));
  return Status::OK();
}

Status ReplicaApplier::ApplyEncoded(const Slice& encoded) {
  auto decoded = ShippedBatch::Decode(encoded);
  if (!decoded.ok()) {
    // A batch that does not even parse is torn or tampered transport —
    // the same trust posture as a failed root check.
    std::lock_guard<std::mutex> lock(mu_);
    apply_refused_->Increment();
    Status refused = Status::TamperDetected(
        "undecodable shipped batch (torn or tampered): " +
        decoded.status().message());
    QuarantineLocked(refused.message());
    return refused;
  }
  return Apply(decoded.value());
}

Status ReplicaApplier::ApplyChunk(const FileChunk& chunk,
                                  std::vector<std::string>* touched) {
  storage::Env* env = options_.env;
  switch (chunk.kind) {
    case FileChunk::kAppend: {
      AppliedFile& af = files_[chunk.path];
      // Idempotent resume: skip the prefix already on disk (a previous
      // torn apply), append only the missing suffix.
      uint64_t skip = af.size - chunk.offset;
      if (skip >= chunk.data.size()) return Status::OK();
      Slice suffix(chunk.data.data() + skip, chunk.data.size() - skip);
      if (af.writer == nullptr) {
        MEDVAULT_RETURN_IF_ERROR(
            env->NewAppendableFile(AbsPath(chunk.path), &af.writer));
      }
      Status s = af.writer->Append(suffix);
      if (!s.ok()) {
        af.writer.reset();
        return s;
      }
      af.size += suffix.size();
      af.ctx.Update(suffix);
      touched->push_back(chunk.path);
      return Status::OK();
    }
    case FileChunk::kReplace: {
      files_.erase(chunk.path);  // closes any cached writer
      const std::string tmp = AbsPath(chunk.path) + ".repltmp";
      std::unique_ptr<storage::WritableFile> out;
      MEDVAULT_RETURN_IF_ERROR(env->NewWritableFile(tmp, &out));
      MEDVAULT_RETURN_IF_ERROR(out->Append(chunk.data));
      MEDVAULT_RETURN_IF_ERROR(out->Sync());
      MEDVAULT_RETURN_IF_ERROR(out->Close());
      MEDVAULT_RETURN_IF_ERROR(env->RenameFile(tmp, AbsPath(chunk.path)));
      AppliedFile& af = files_[chunk.path];
      af.size = chunk.data.size();
      af.ctx.Update(chunk.data);
      return Status::OK();
    }
    case FileChunk::kRemove: {
      files_.erase(chunk.path);
      Status s = env->RemoveFile(AbsPath(chunk.path));
      if (s.IsNotFound()) return Status::OK();
      return s;
    }
  }
  return Status::InvalidArgument("unknown chunk kind");
}

void ReplicaApplier::QuarantineLocked(const std::string& reason) {
  quarantined_ = true;
  quarantine_reason_ = reason;
  quarantined_gauge_->Set(1);
}

void ReplicaApplier::Quarantine(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  QuarantineLocked(reason);
}

bool ReplicaApplier::quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_;
}

std::string ReplicaApplier::quarantine_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantine_reason_;
}

void ReplicaApplier::ClearQuarantine() {
  std::lock_guard<std::mutex> lock(mu_);
  quarantined_ = false;
  quarantine_reason_.clear();
  quarantined_gauge_->Set(0);
}

uint64_t ReplicaApplier::applied_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_batches_;
}

uint64_t ReplicaApplier::applied_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_bytes_;
}

uint64_t ReplicaApplier::lag_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lag_bytes_;
}

uint64_t ReplicaApplier::last_applied_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_applied_seq_;
}

std::string ReplicaApplier::last_audit_root() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_audit_root_;
}

uint64_t ReplicaApplier::last_audit_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_audit_size_;
}

Result<std::unique_ptr<Vault>> ReplicaApplier::OpenReadView(
    const VaultOptions& base, const std::string& view_dir) {
  // Copy, then open the copy: Vault::Open appends recovery/audit state,
  // and read-path operations append mandatory audit events — neither
  // may diverge the byte-exact replica from the shipped stream.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (quarantined_) {
      return Status::FailedPrecondition(
          "replica quarantined, refusing to serve reads: " +
          quarantine_reason_);
    }
    MEDVAULT_RETURN_IF_ERROR(options_.env->CreateDirIfMissing(view_dir));
    MEDVAULT_RETURN_IF_ERROR(
        options_.env->CreateDirIfMissing(view_dir + "/segments"));
    for (const auto& [rel, af] : files_) {
      std::string data;
      MEDVAULT_RETURN_IF_ERROR(
          ReadFileToString(options_.env, AbsPath(rel), &data));
      MEDVAULT_RETURN_IF_ERROR(WriteStringToFile(
          options_.env, data, view_dir + "/" + rel, /*sync=*/false));
    }
    view_count_++;
  }
  VaultOptions view = base;
  view.env = options_.env;
  view.dir = view_dir;
  return Vault::Open(view);
}

Result<std::unique_ptr<Vault>> ReplicaApplier::Promote(
    const VaultOptions& base) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (quarantined_) {
      return Status::FailedPrecondition(
          "quarantined replica is not eligible for promotion: " +
          quarantine_reason_);
    }
    if (files_.empty()) {
      return Status::FailedPrecondition(
          "replica holds no shipped state; nothing to promote");
    }
    // The scrub gate: a structurally damaged replica quarantines
    // instead of promoting, exactly like a bad shard.
    Timestamp now = base.clock != nullptr ? base.clock->Now() : 0;
    MEDVAULT_ASSIGN_OR_RETURN(
        ScrubReport report,
        Scrubber::ScrubVaultDir(options_.env, options_.dir, now));
    if (!report.structurally_clean()) {
      apply_refused_->Increment();
      QuarantineLocked("failed promotion scrub gate: " + report.Summary());
      return Status::FailedPrecondition(
          "replica failed promotion scrub gate: " + report.Summary());
    }
    // Hand the files over: the promoted vault owns them now.
    for (auto& [rel, af] : files_) af.writer.reset();
    promoted_ = true;
  }
  // The ordinary crash-recovery open IS the promotion: the replica holds
  // a crash-consistent prefix of the primary, so recovery reconciles it
  // like any post-crash primary (at most one kRecovery event).
  VaultOptions promo = base;
  promo.env = options_.env;
  promo.dir = options_.dir;
  return Vault::Open(promo);
}

// ---------------------------------------------------------------------------
// Sharded fan-out
// ---------------------------------------------------------------------------

ShardedReplicationSource::ShardedReplicationSource(ShardedVault* vault)
    : vault_(vault) {
  for (uint32_t k = 0; k < vault_->num_shards(); k++) {
    Vault* shard = vault_->shard(k);
    // Quarantined shards have no vault to cut from; their slot stays
    // null and CutAll skips them (the replica keeps its last state).
    sources_.push_back(shard != nullptr
                           ? std::make_unique<ReplicationSource>(shard)
                           : nullptr);
  }
}

Result<std::vector<ShippedBatch>> ShardedReplicationSource::CutAll(
    const std::vector<ReplicationCursor>& cursors) {
  if (cursors.size() != sources_.size()) {
    return Status::InvalidArgument("one cursor per shard required");
  }
  std::vector<ShippedBatch> batches(sources_.size());
  std::vector<Status> statuses(sources_.size());
  TaskGroup group(vault_->pool());
  for (uint32_t k = 0; k < sources_.size(); k++) {
    if (sources_[k] == nullptr) continue;
    group.Submit([this, &cursors, &batches, &statuses, k] {
      auto result = sources_[k]->CutBatch(cursors[k]);
      if (result.ok()) {
        batches[k] = std::move(result).value();
      } else {
        statuses[k] = result.status();
      }
    });
  }
  group.Wait();
  for (const Status& s : statuses) {
    MEDVAULT_RETURN_IF_ERROR(s);
  }
  return batches;
}

Result<std::string> ShardedReplicationSource::HandleCutRequest(
    uint32_t shard, const Slice& encoded_cursor) {
  if (shard >= sources_.size()) {
    return Status::NotFound("no such shard");
  }
  if (sources_[shard] == nullptr) {
    return Status::FailedPrecondition("shard quarantined; stream paused");
  }
  return sources_[shard]->HandleCutRequest(encoded_cursor);
}

uint64_t ShardedReplicationSource::batches_shipped() const {
  uint64_t total = 0;
  for (const auto& s : sources_) {
    if (s != nullptr) total += s->batches_shipped();
  }
  return total;
}

uint64_t ShardedReplicationSource::bytes_shipped() const {
  uint64_t total = 0;
  for (const auto& s : sources_) {
    if (s != nullptr) total += s->bytes_shipped();
  }
  return total;
}

uint64_t ShardedReplicationSource::lag_bytes() const {
  uint64_t total = 0;
  for (const auto& s : sources_) {
    if (s != nullptr) total += s->last_lag_bytes();
  }
  return total;
}

ShardedReplicaApplier::ShardedReplicaApplier(Options options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<ShardedReplicaApplier>> ShardedReplicaApplier::Open(
    const Options& options) {
  if (options.env == nullptr || options.dir.empty() ||
      options.entropy.empty() || options.num_shards == 0) {
    return Status::InvalidArgument(
        "sharded replica applier needs env, dir, entropy and a shard count");
  }
  std::unique_ptr<ShardedReplicaApplier> applier(
      new ShardedReplicaApplier(options));
  MEDVAULT_RETURN_IF_ERROR(options.env->CreateDirIfMissing(options.dir));
  // The shard count is on-disk identity for the replica exactly as for
  // the primary: persist it on first open, refuse a mismatch after.
  auto manifest = ShardRouter::ReadManifest(options.env, options.dir);
  if (manifest.ok()) {
    if (manifest.value() != options.num_shards) {
      return Status::FailedPrecondition(
          "replica directory was created with a different shard count");
    }
  } else if (manifest.status().IsNotFound()) {
    MEDVAULT_RETURN_IF_ERROR(ShardRouter::WriteManifest(
        options.env, options.dir, options.num_shards));
  } else {
    return manifest.status();
  }
  for (uint32_t k = 0; k < options.num_shards; k++) {
    // The same per-shard entropy derivation the primary uses, so each
    // shard stream authenticates under its own key.
    MEDVAULT_ASSIGN_OR_RETURN(
        std::string shard_entropy,
        crypto::HkdfSha256(options.entropy, Slice(),
                           "medvault-shard-entropy-" + std::to_string(k),
                           64));
    ReplicaApplier::Options shard_options;
    shard_options.env = options.env;
    shard_options.dir = ShardRouter::ShardDir(options.dir, k);
    shard_options.entropy = std::move(shard_entropy);
    shard_options.metrics = options.metrics;
    MEDVAULT_ASSIGN_OR_RETURN(std::unique_ptr<ReplicaApplier> shard,
                              ReplicaApplier::Open(shard_options));
    applier->appliers_.push_back(std::move(shard));
  }
  unsigned threads = options.apply_threads;
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = std::min<unsigned>(options.num_shards, hw != 0 ? hw : 4);
  }
  applier->pool_ = std::make_unique<WorkerPool>(threads > 1 ? threads : 0);
  return applier;
}

Result<std::vector<ReplicationCursor>> ShardedReplicaApplier::Cursors()
    const {
  std::vector<ReplicationCursor> cursors;
  for (const auto& applier : appliers_) {
    MEDVAULT_ASSIGN_OR_RETURN(ReplicationCursor cur, applier->Cursor());
    cursors.push_back(std::move(cur));
  }
  return cursors;
}

Status ShardedReplicaApplier::ApplyAll(
    const std::vector<ShippedBatch>& batches) {
  if (batches.size() != appliers_.size()) {
    return Status::InvalidArgument("one batch per shard required");
  }
  std::vector<Status> statuses(appliers_.size());
  TaskGroup group(pool_.get());
  for (uint32_t k = 0; k < appliers_.size(); k++) {
    // seq 0 marks a skipped (quarantined-at-source) shard slot.
    if (batches[k].seq == 0) continue;
    group.Submit([this, &batches, &statuses, k] {
      statuses[k] = appliers_[k]->Apply(batches[k]);
    });
  }
  group.Wait();
  for (const Status& s : statuses) {
    MEDVAULT_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

bool ShardedReplicaApplier::any_quarantined() const {
  return quarantined_shards() > 0;
}

uint32_t ShardedReplicaApplier::quarantined_shards() const {
  uint32_t count = 0;
  for (const auto& applier : appliers_) {
    if (applier->quarantined()) count++;
  }
  return count;
}

uint64_t ShardedReplicaApplier::lag_bytes() const {
  uint64_t total = 0;
  for (const auto& applier : appliers_) total += applier->lag_bytes();
  return total;
}

uint64_t ShardedReplicaApplier::applied_batches() const {
  uint64_t total = 0;
  for (const auto& applier : appliers_) total += applier->applied_batches();
  return total;
}

Result<std::unique_ptr<ShardedVault>> ShardedReplicaApplier::Promote(
    const ShardedVaultOptions& base) {
  // Per-shard scrub gate first: a structurally damaged shard replica
  // quarantines here AND under the degraded open below, so promotion
  // proceeds with the healthy shards — the same availability posture
  // as a degraded primary open.
  for (uint32_t k = 0; k < appliers_.size(); k++) {
    ReplicaApplier* applier = appliers_[k].get();
    if (applier->quarantined()) continue;  // already sidelined
    Timestamp now = base.clock != nullptr ? base.clock->Now() : 0;
    auto report =
        Scrubber::ScrubVaultDir(options_.env, applier->dir(), now);
    if (report.ok() && !report.value().structurally_clean()) {
      applier->Quarantine("failed promotion scrub gate: " +
                          report.value().Summary());
    }
  }
  ShardedVaultOptions promo = base;
  promo.env = options_.env;
  promo.dir = options_.dir;
  promo.num_shards = options_.num_shards;
  promo.open_mode = OpenMode::kDegraded;
  return ShardedVault::Open(promo);
}

}  // namespace medvault::core
