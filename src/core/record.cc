#include "core/record.h"

#include "common/coding.h"

namespace medvault::core {

std::string VersionHeader::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, record_id);
  PutVarint32(&out, version);
  PutLengthPrefixed(&out, author);
  PutFixed64(&out, static_cast<uint64_t>(created_at));
  PutLengthPrefixed(&out, content_type);
  PutLengthPrefixed(&out, reason);
  PutLengthPrefixed(&out, prev_version_hash);
  return out;
}

Result<VersionHeader> VersionHeader::Decode(const Slice& data) {
  Slice in = data;
  VersionHeader h;
  uint64_t created = 0;
  if (!GetLengthPrefixedString(&in, &h.record_id) ||
      !GetVarint32(&in, &h.version) ||
      !GetLengthPrefixedString(&in, &h.author) ||
      !GetFixed64(&in, &created) ||
      !GetLengthPrefixedString(&in, &h.content_type) ||
      !GetLengthPrefixedString(&in, &h.reason) ||
      !GetLengthPrefixedString(&in, &h.prev_version_hash) || !in.empty()) {
    return Status::Corruption("malformed version header");
  }
  h.created_at = static_cast<Timestamp>(created);
  return h;
}

std::string RecordMeta::Encode() const {
  std::string out;
  PutLengthPrefixed(&out, record_id);
  PutLengthPrefixed(&out, patient_id);
  PutFixed64(&out, static_cast<uint64_t>(created_at));
  PutFixed64(&out, static_cast<uint64_t>(retention_until));
  PutLengthPrefixed(&out, retention_policy);
  PutVarint32(&out, latest_version);
  out.push_back(disposed ? 1 : 0);
  out.push_back(legal_hold ? 1 : 0);
  return out;
}

Result<RecordMeta> RecordMeta::Decode(const Slice& data) {
  Slice in = data;
  RecordMeta m;
  uint64_t created = 0, retain = 0;
  if (!GetLengthPrefixedString(&in, &m.record_id) ||
      !GetLengthPrefixedString(&in, &m.patient_id) ||
      !GetFixed64(&in, &created) || !GetFixed64(&in, &retain) ||
      !GetLengthPrefixedString(&in, &m.retention_policy) ||
      !GetVarint32(&in, &m.latest_version) || in.size() != 2) {
    return Status::Corruption("malformed record meta");
  }
  m.created_at = static_cast<Timestamp>(created);
  m.retention_until = static_cast<Timestamp>(retain);
  m.disposed = (in[0] != 0);
  m.legal_hold = (in[1] != 0);
  return m;
}

}  // namespace medvault::core
