#ifndef MEDVAULT_CORE_TRANSPARENCY_H_
#define MEDVAULT_CORE_TRANSPARENCY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/audit.h"
#include "core/sharded_vault.h"
#include "core/vault.h"
#include "crypto/xmss.h"
#include "obs/metrics.h"

namespace medvault::core {

/// Audit transparency: the machinery that lets parties *outside* the
/// vault's trust boundary check the audit log, VAMS-style. The vault
/// signs periodic checkpoints of its Merkle-committed audit log;
/// independent witnesses verify each new checkpoint is an append-only
/// extension of the last one they saw (a consistency proof — no log
/// replay) before countersigning it; patients and auditors then verify
/// inclusion proofs for individual events against any cosigned
/// checkpoint they trust. A vault that ever forks or truncates its log
/// cannot produce a consistency proof to its own witnesses, and the
/// refusal is sticky evidence.

/// One witness's countersignature over a log checkpoint.
struct WitnessCosignature {
  std::string witness_id;
  std::string signature;  ///< crypto::XmssSignature::Encode()

  std::string Encode() const;
  static Result<WitnessCosignature> Decode(const Slice& data);
};

/// The byte string a witness signs: domain-separated and bound to the
/// witness id, so a cosignature cannot be replayed as the log's own
/// signature or attributed to a different witness.
std::string WitnessCosignPayload(const std::string& witness_id,
                                 const SignedCheckpoint& checkpoint);

/// A checkpoint plus every countersignature gathered for it.
struct CosignedCheckpoint {
  SignedCheckpoint checkpoint;
  std::vector<WitnessCosignature> cosignatures;
};

/// Verification identity of the log a witness watches.
struct LogIdentity {
  std::string public_key;
  std::string public_seed;
  int height = 8;
};

/// An independent cosigner of log checkpoints. The witness holds its
/// own XMSS key and the log's verification identity; per checkpoint it
/// checks (1) the log's signature and (2) a Merkle consistency proof
/// from the last checkpoint it countersigned, then signs. Any failure
/// — bad signature, shrinking tree, root divergence — trips *sticky*
/// tamper evidence: the witness refuses everything from then on, so a
/// fork shown to a witness is never silently forgotten.
///
/// Thread safety: all methods serialize on an internal mutex; a
/// Witness may be shared by concurrent checkpoint publishers.
class Witness {
 public:
  struct Options {
    std::string id;
    std::string secret_seed;  ///< 32 bytes, witness's own XMSS secret
    std::string public_seed;
    int height = 8;  ///< 2^height cosignatures available
  };

  Witness(const Options& options, LogIdentity log);

  Witness(const Witness&) = delete;
  Witness& operator=(const Witness&) = delete;

  /// Verifies `checkpoint` against the log identity and
  /// `consistency_from_last` against the witness's last-seen
  /// (size, root), then countersigns and advances last-seen. The very
  /// first checkpoint needs no proof (anything extends the empty tree).
  /// On verification failure returns kTamperDetected and becomes
  /// permanently tainted (see tampered()).
  Result<WitnessCosignature> Cosign(
      const SignedCheckpoint& checkpoint,
      const std::vector<std::string>& consistency_from_last);

  /// Stateless verification of a cosignature against a witness's
  /// public identity.
  static Status VerifyCosignature(const SignedCheckpoint& checkpoint,
                                  const WitnessCosignature& cosig,
                                  const Slice& witness_public_key,
                                  const Slice& witness_public_seed,
                                  int witness_height);

  const std::string& id() const { return id_; }
  const std::string& public_key() const { return signer_.public_key(); }
  const std::string& public_seed() const { return signer_.public_seed(); }
  int height() const { return signer_.height(); }

  /// Size of the last checkpoint this witness countersigned.
  uint64_t last_size() const;

  /// Once true, every future Cosign is refused with kTamperDetected.
  bool tampered() const;
  /// What tripped the taint ("" while clean).
  std::string tamper_evidence() const;

 private:
  const std::string id_;
  const LogIdentity log_;
  mutable std::mutex mu_;
  crypto::XmssSigner signer_;  // guarded by mu_ (stateful)
  uint64_t last_size_ = 0;     // guarded by mu_
  std::string last_root_;      // guarded by mu_
  bool tampered_ = false;      // guarded by mu_
  std::string tamper_evidence_;  // guarded by mu_
};

/// A consistency proof between two published checkpoints, packaged with
/// both endpoints so a verifier needs nothing else.
struct ConsistencyBundle {
  SignedCheckpoint from;
  SignedCheckpoint to;
  std::vector<std::string> proof;
};

/// The transparency face of one vault (one shard): publishes
/// witnessed checkpoints of its audit log and serves inclusion /
/// consistency proofs against *published* checkpoint sizes only — the
/// sizes external verifiers can actually hold a signed root for.
///
/// Proofs are memoized in a bounded FIFO cache. Cached entries are
/// immutable by construction: the audit tree is append-only and a
/// proof is fully determined by (seq, tree_size) / (old, new), so a
/// hit can never be stale.
///
/// Thread safety: safe for concurrent use; proof reads take only the
/// cache mutex plus the audit log's internal mutex (never the vault
/// lock), and checkpoint publication serializes on its own mutex.
class TransparencyLog {
 public:
  struct Options {
    /// Publish a checkpoint (one XMSS leaf!) at most every this many
    /// new audit events — the leaf-conservation knob. MaybeCheckpoint
    /// is a no-op until the log has grown this much past the last
    /// published checkpoint.
    uint64_t checkpoint_interval = 1024;
    /// Max memoized proofs (inclusion + consistency share the budget).
    size_t proof_cache_entries = 4096;
  };

  /// `vault` is borrowed and must outlive this object. Metrics go to
  /// the vault's registry under "audit.proof.*" / "audit.witness.*".
  TransparencyLog(Vault* vault, Options options);

  TransparencyLog(const TransparencyLog&) = delete;
  TransparencyLog& operator=(const TransparencyLog&) = delete;

  /// Registers a cosigner; borrowed, must outlive this object. Every
  /// subsequent published checkpoint is offered to it.
  void RegisterWitness(Witness* witness);

  /// Signs the current audit head and gathers cosignatures. A witness
  /// refusal does not fail publication — the checkpoint simply carries
  /// fewer cosignatures (and the refusal is counted and sticky at the
  /// witness).
  Result<CosignedCheckpoint> PublishCheckpoint();

  /// PublishCheckpoint iff the log grew `checkpoint_interval` events
  /// past the last published checkpoint (or has events but no
  /// checkpoint at all). OK and no-op otherwise.
  Status MaybeCheckpoint();

  /// Latest published checkpoint with whatever cosignatures this
  /// process gathered for it. After a restart the checkpoint itself is
  /// restored from the audit log replay but cosignatures are not (they
  /// live with the witnesses); the next publication re-arms them.
  Result<CosignedCheckpoint> LatestCosigned() const;

  /// Inclusion proof for event `seq` under the published checkpoint of
  /// exactly `tree_size` events. kNotFound if no checkpoint was
  /// published at that size or `seq` does not exist;
  /// kInvalidArgument if the event is newer than the checkpoint.
  Result<EventProof> ProveEventAt(uint64_t seq, uint64_t tree_size);

  /// Consistency proof between the published checkpoints at `old_size`
  /// and `new_size`. kNotFound unless both sizes were published.
  Result<ConsistencyBundle> ConsistencyBetween(uint64_t old_size,
                                               uint64_t new_size);

  Vault* vault() { return vault_; }
  size_t witness_count() const;

 private:
  Vault* const vault_;
  const Options options_;

  /// Serializes publication (vault checkpoint + witness fan-out) so
  /// witnesses always see checkpoint sizes in ascending order.
  std::mutex publish_mu_;
  mutable std::mutex state_mu_;
  std::vector<Witness*> witnesses_;        // guarded by state_mu_
  CosignedCheckpoint latest_;              // guarded by state_mu_
  bool has_latest_ = false;                // guarded by state_mu_

  // Proof cache, FIFO-bounded. Keys: (seq, tree_size) for inclusion,
  // (old, new) for consistency — the key spaces cannot collide because
  // inclusion requires seq < tree_size and consistency old <= new.
  std::mutex cache_mu_;
  std::map<std::pair<uint64_t, uint64_t>, EventProof> inclusion_cache_;
  std::map<std::pair<uint64_t, uint64_t>, std::vector<std::string>>
      consistency_cache_;
  std::deque<std::pair<uint64_t, uint64_t>> inclusion_fifo_;
  std::deque<std::pair<uint64_t, uint64_t>> consistency_fifo_;

  // Cached metric handles (registry lookup is mutexed).
  obs::Counter* checkpoints_published_;
  obs::Counter* cosigns_;
  obs::Counter* refusals_;
  obs::Counter* inclusion_proofs_;
  obs::Counter* consistency_proofs_;
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
};

/// Transparency across a sharded vault: one TransparencyLog per
/// healthy shard (each shard has its own audit chain and signer), with
/// logical witnesses fanned out as one per-shard Witness each — XMSS
/// keys are stateful, so a logical witness derives an independent key
/// per shard (HKDF on the shard index) rather than sharing leaves.
class ShardedTransparencyService {
 public:
  struct Options {
    uint64_t checkpoint_interval = 1024;
    size_t proof_cache_entries = 4096;
    int witness_height = 8;  ///< per-shard cosignature budget
  };

  /// `vault` is borrowed and must outlive this object. Quarantined
  /// shards get no TransparencyLog (their slot is null).
  ShardedTransparencyService(ShardedVault* vault, Options options);

  ShardedTransparencyService(const ShardedTransparencyService&) = delete;
  ShardedTransparencyService& operator=(const ShardedTransparencyService&) =
      delete;

  /// Creates one Witness per healthy shard for the logical witness
  /// `id`, keyed from `secret_seed`/`public_seed` (per-shard derived).
  Status AddWitness(const std::string& id, const Slice& secret_seed,
                    const Slice& public_seed);

  /// Forced checkpoint on every healthy shard (startup, shutdown).
  Status PublishAll();

  /// Interval-gated checkpoint on every healthy shard (periodic tick).
  Status MaybeCheckpointAll();

  Result<CosignedCheckpoint> LatestCosigned(uint32_t shard) const;
  Result<EventProof> ProveEventAt(uint32_t shard, uint64_t seq,
                                  uint64_t tree_size);
  Result<ConsistencyBundle> ConsistencyBetween(uint32_t shard,
                                               uint64_t old_size,
                                               uint64_t new_size);

  /// The shard's log, or kFailedPrecondition while quarantined.
  Result<TransparencyLog*> log(uint32_t shard) const;

  uint32_t num_shards() const { return vault_->num_shards(); }
  size_t witness_count() const;
  ShardedVault* vault() { return vault_; }

  /// Aggregate posture for health reporting, summed over shards.
  struct Stats {
    uint64_t checkpoints_published = 0;
    uint64_t cosigns = 0;
    uint64_t refusals = 0;
    uint64_t inclusion_proofs = 0;
    uint64_t consistency_proofs = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t latest_sizes_sum = 0;  ///< sum of latest checkpoint sizes
    size_t witnesses = 0;
    uint64_t tampered_witnesses = 0;
  };
  Stats CollectStats() const;

 private:
  ShardedVault* const vault_;
  const Options options_;
  std::vector<std::unique_ptr<TransparencyLog>> logs_;  // per shard
  std::vector<std::unique_ptr<Witness>> witnesses_;     // owned
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_TRANSPARENCY_H_
