#ifndef MEDVAULT_CORE_SECURE_INDEX_H_
#define MEDVAULT_CORE_SECURE_INDEX_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/keystore.h"
#include "core/record.h"
#include "storage/env.h"
#include "storage/log_writer.h"

namespace medvault::core {

/// Trustworthy keyword index (paper §3: "regular indexing schemes such as
/// keyword index can breach privacy as the mere existence of a word in a
/// document can leak information"; cf. Mitra et al., VLDB'06, and Mitra &
/// Winslett, StorageSS'06 on secure deletion from inverted indexes).
///
/// Design:
///  - Terms are *blinded*: the on-disk posting key is
///    HMAC(index_master_key, term), so raw index bytes reveal no keyword.
///  - Each posting's record id is AEAD-sealed under the *record's* index
///    key (derived from its data key) and tagged with the record's opaque
///    key-ref. Crypto-shredding the record therefore simultaneously kills
///    its index postings: the key-ref no longer resolves and the sealed
///    id can never be opened — secure deletion from an index that lives
///    on un-erasable WORM media.
///  - The posting log itself is append-only.
class SecureIndex {
 public:
  SecureIndex(storage::Env* env, std::string path, const Slice& master_key,
              KeyStore* keystore);

  SecureIndex(const SecureIndex&) = delete;
  SecureIndex& operator=(const SecureIndex&) = delete;

  /// Replays the posting log. After an unclean shutdown a torn final
  /// posting is cut off (nothing acknowledged is lost; the Vault syncs
  /// this log before the state-log commit point).
  Status Open();

  /// Durability barrier on the posting log.
  Status Sync();

  /// The log file for batched sync waves (null before Open); the vault
  /// serializes appends against the wave.
  storage::WritableFile* sync_target();

  /// Indexes `record_id` under each term (normalizes to lowercase).
  Status AddPostings(const RecordId& record_id,
                     const std::vector<std::string>& terms);

  /// One record's postings within an AddPostingsBatch call.
  struct PostingBatch {
    RecordId record_id;
    std::vector<std::string> terms;
  };

  /// Batched ingest fast path: identical semantics to calling
  /// AddPostings once per item, but all sealed entries are framed into a
  /// single buffered log write instead of one write per term.
  Status AddPostingsBatch(const std::vector<PostingBatch>& batch);

  /// Returns the ids of live records containing `term`. Postings whose
  /// record was crypto-shredded are skipped (and counted as dead).
  Result<std::vector<RecordId>> Search(const std::string& term) const;

  /// Conjunctive query: records containing *every* term (cf. Mitra et
  /// al.'s multi-keyword queries). Starts from the rarest term's
  /// postings and intersects.
  Result<std::vector<RecordId>> SearchAll(
      const std::vector<std::string>& terms) const;

  /// Re-reads the posting log from disk and verifies it: frame CRCs
  /// catch raw byte flips; live postings must AEAD-authenticate under
  /// their record's index key; the on-disk posting count must match the
  /// session state. (A rewritten key-ref degrades a posting to "dead",
  /// indistinguishable from crypto-shredding — an availability attack,
  /// documented in DESIGN.md as out of scope for stealth detection.)
  Status VerifyIntegrity() const;

  /// Number of postings whose record key still resolves / no longer
  /// resolves (observability for the secure-deletion experiments).
  size_t LivePostingCount() const;
  size_t DeadPostingCount() const;
  size_t TotalPostingCount() const;

  /// Distinct blinded terms (structure leakage is term cardinality only).
  size_t TermCount() const { return postings_.size(); }

 private:
  struct Posting {
    std::string key_ref;
    std::string sealed_record_id;
  };

  std::string BlindTerm(const std::string& term) const;
  static std::string NormalizeTerm(const std::string& term);

  storage::Env* env_;
  std::string path_;
  std::string master_key_;
  KeyStore* keystore_;
  std::unique_ptr<storage::log::Writer> writer_;
  std::map<std::string, std::vector<Posting>> postings_;  // blind -> postings
  bool open_ = false;
};

}  // namespace medvault::core

#endif  // MEDVAULT_CORE_SECURE_INDEX_H_
