#ifndef MEDVAULT_BASELINES_WORM_STORE_H_
#define MEDVAULT_BASELINES_WORM_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/record_store.h"
#include "storage/log_writer.h"
#include "storage/segment.h"

namespace medvault::baselines {

/// The compliance-WORM model of paper §4 (Hsu & Ong): records written
/// once onto append-only media, catalogued with their content hashes.
///
/// Faithful strengths: strong integrity (hash catalog over immutable
/// media) and guaranteed retention.
/// Faithful weaknesses the paper calls out: "compliance WORM storage is
/// mainly suitable for records that do not require corrections" —
/// Update() returns kWormViolation; and plain WORM cannot erase, so
/// SecureDelete() returns kWormViolation too (no crypto-shredding in
/// this model). The keyword index is plaintext.
class WormStore : public RecordStore {
 public:
  WormStore(storage::Env* env, std::string dir);

  std::string Name() const override { return "worm"; }
  Status Open() override;
  Result<std::string> Put(const Slice& content,
                          const std::vector<std::string>& keywords) override;
  Result<std::string> Get(const std::string& id) override;
  Status Update(const std::string& id, const Slice& new_content,
                const std::string& reason) override;
  Status SecureDelete(const std::string& id) override;
  Result<std::vector<std::string>> Search(const std::string& term) override;
  Status VerifyIntegrity() override;
  std::vector<std::string> DataFiles() override;

  bool EncryptsAtRest() const override { return false; }
  bool IndexLeaksKeywords() const override { return true; }
  bool KeepsHistory() const override { return false; }
  bool HasProvenance() const override { return false; }
  bool HasAuditTrail() const override { return false; }

 private:
  struct Entry {
    storage::EntryHandle handle;
    std::string content_hash;
  };

  storage::Env* env_;
  std::string dir_;
  std::unique_ptr<storage::SegmentStore> segments_;
  std::unique_ptr<storage::log::Writer> catalog_writer_;
  std::map<std::string, Entry> catalog_;
  std::map<std::string, std::vector<std::string>> keyword_map_;
  uint64_t next_id_ = 1;
  bool open_ = false;
};

}  // namespace medvault::baselines

#endif  // MEDVAULT_BASELINES_WORM_STORE_H_
