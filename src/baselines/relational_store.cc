#include "baselines/relational_store.h"

#include <cinttypes>
#include <cstdio>

#include "common/coding.h"

namespace medvault::baselines {

namespace {

std::string FormatId(uint64_t n) {
  char buf[24];
  snprintf(buf, sizeof(buf), "%010" PRIu64, n);
  return buf;
}

std::string KeywordKey(const std::string& term, const std::string& id) {
  std::string key = term;
  key.push_back('\0');
  key += id;
  return key;
}

}  // namespace

RelationalStore::RelationalStore(storage::Env* env, std::string dir)
    : env_(env), dir_(std::move(dir)) {}

Status RelationalStore::Open() {
  MEDVAULT_RETURN_IF_ERROR(env_->CreateDirIfMissing(dir_));
  primary_ = std::make_unique<storage::BpTree>(env_, dir_ + "/primary.idx");
  MEDVAULT_RETURN_IF_ERROR(primary_->Open());
  keyword_ = std::make_unique<storage::BpTree>(env_, dir_ + "/keyword.idx");
  MEDVAULT_RETURN_IF_ERROR(keyword_->Open());
  MEDVAULT_RETURN_IF_ERROR(env_->NewRandomRWFile(dir_ + "/heap.dat", &heap_));
  Status s = env_->GetFileSize(dir_ + "/heap.dat", &heap_end_);
  if (!s.ok()) heap_end_ = 0;

  // Recover the id counter from the highest existing key.
  std::string max_key;
  MEDVAULT_RETURN_IF_ERROR(
      primary_->Scan("", [&](const Slice& key, const Slice& value) {
        max_key = key.ToString();
        return true;
      }));
  if (!max_key.empty()) {
    next_id_ = strtoull(max_key.c_str(), nullptr, 10) + 1;
  }
  open_ = true;
  return Status::OK();
}

Result<std::string> RelationalStore::Put(
    const Slice& content, const std::vector<std::string>& keywords) {
  if (!open_) return Status::FailedPrecondition("store not open");
  std::string id = FormatId(next_id_++);

  // Row: length-prefixed content appended to the heap.
  uint64_t offset = heap_end_;
  std::string row;
  PutFixed32(&row, static_cast<uint32_t>(content.size()));
  row.append(content.data(), content.size());
  MEDVAULT_RETURN_IF_ERROR(heap_->WriteAt(offset, row));
  heap_end_ += row.size();

  std::string locator;
  PutFixed64(&locator, offset);
  PutFixed32(&locator, static_cast<uint32_t>(content.size()));
  MEDVAULT_RETURN_IF_ERROR(primary_->Put(id, locator));

  for (const std::string& term : keywords) {
    MEDVAULT_RETURN_IF_ERROR(keyword_->Put(KeywordKey(term, id), ""));
  }
  return id;
}

Result<std::pair<uint64_t, uint32_t>> RelationalStore::LookupRow(
    const std::string& id) {
  MEDVAULT_ASSIGN_OR_RETURN(std::string locator, primary_->Get(id));
  Slice in = locator;
  uint64_t offset = 0;
  uint32_t length = 0;
  if (!GetFixed64(&in, &offset) || !GetFixed32(&in, &length)) {
    return Status::Corruption("malformed row locator");
  }
  return std::make_pair(offset, length);
}

Result<std::string> RelationalStore::Get(const std::string& id) {
  if (!open_) return Status::FailedPrecondition("store not open");
  MEDVAULT_ASSIGN_OR_RETURN(auto row, LookupRow(id));
  std::string frame;
  MEDVAULT_RETURN_IF_ERROR(heap_->ReadAt(row.first, 4 + row.second, &frame));
  if (frame.size() != 4u + row.second) {
    return Status::Corruption("row truncated");
  }
  // Note: no checksum — the content is returned as-is (the §4 critique).
  return frame.substr(4);
}

Status RelationalStore::Update(const std::string& id,
                               const Slice& new_content,
                               const std::string& reason) {
  if (!open_) return Status::FailedPrecondition("store not open");
  MEDVAULT_ASSIGN_OR_RETURN(auto row, LookupRow(id));

  if (new_content.size() <= row.second) {
    // Update in place; the old bytes are overwritten (no history).
    std::string frame;
    PutFixed32(&frame, static_cast<uint32_t>(new_content.size()));
    frame.append(new_content.data(), new_content.size());
    MEDVAULT_RETURN_IF_ERROR(heap_->WriteAt(row.first, frame));
  } else {
    // Relocate to the end of the heap; old row bytes linger unreferenced
    // (exactly the media-sanitization problem §3 worries about).
    uint64_t offset = heap_end_;
    std::string frame;
    PutFixed32(&frame, static_cast<uint32_t>(new_content.size()));
    frame.append(new_content.data(), new_content.size());
    MEDVAULT_RETURN_IF_ERROR(heap_->WriteAt(offset, frame));
    heap_end_ += frame.size();
    row.first = offset;
  }
  std::string locator;
  PutFixed64(&locator, row.first);
  PutFixed32(&locator, static_cast<uint32_t>(new_content.size()));
  return primary_->Put(id, locator);
}

Status RelationalStore::SecureDelete(const std::string& id) {
  if (!open_) return Status::FailedPrecondition("store not open");
  MEDVAULT_ASSIGN_OR_RETURN(auto row, LookupRow(id));
  // Best-effort overwrite of the row, then unlink. (Still weaker than
  // crypto-shredding: relocated old row copies are not tracked.)
  std::string zeros(4 + row.second, '\0');
  MEDVAULT_RETURN_IF_ERROR(heap_->WriteAt(row.first, zeros));
  return primary_->Delete(id);
}

Result<std::vector<std::string>> RelationalStore::Search(
    const std::string& term) {
  if (!open_) return Status::FailedPrecondition("store not open");
  std::vector<std::string> ids;
  std::string prefix = term;
  prefix.push_back('\0');
  MEDVAULT_RETURN_IF_ERROR(
      keyword_->Scan(prefix, [&](const Slice& key, const Slice& value) {
        if (!key.starts_with(prefix)) return false;
        std::string id(key.data() + prefix.size(),
                       key.size() - prefix.size());
        // Deleted rows keep index entries; filter on the primary.
        if (primary_->Get(id).ok()) ids.push_back(std::move(id));
        return true;
      }));
  return ids;
}

Status RelationalStore::VerifyIntegrity() {
  if (!open_) return Status::FailedPrecondition("store not open");
  // Structural checks only: every locator must point inside the heap.
  // Content tampering is invisible — there is nothing to check against.
  Status result = Status::OK();
  MEDVAULT_RETURN_IF_ERROR(
      primary_->Scan("", [&](const Slice& key, const Slice& value) {
        Slice in = value;
        uint64_t offset = 0;
        uint32_t length = 0;
        if (!GetFixed64(&in, &offset) || !GetFixed32(&in, &length) ||
            offset + 4 + length > heap_end_) {
          result = Status::Corruption("dangling row locator");
          return false;
        }
        return true;
      }));
  return result;
}

std::vector<std::string> RelationalStore::DataFiles() {
  // Flush cached B+tree pages so the on-disk state is complete.
  (void)primary_->Flush();
  (void)keyword_->Flush();
  return {dir_ + "/heap.dat", dir_ + "/primary.idx", dir_ + "/keyword.idx"};
}

}  // namespace medvault::baselines
