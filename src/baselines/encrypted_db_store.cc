#include "baselines/encrypted_db_store.h"

#include "common/coding.h"
#include "crypto/hmac.h"

namespace medvault::baselines {

EncryptedDbStore::EncryptedDbStore(storage::Env* env, std::string dir,
                                   const Slice& db_key)
    : inner_(env, std::move(dir)), db_key_(db_key.ToString()) {}

Status EncryptedDbStore::Open() {
  MEDVAULT_RETURN_IF_ERROR(ctr_.Init(db_key_));
  return inner_.Open();
}

Result<std::string> EncryptedDbStore::Encrypt(const std::string& id,
                                              const Slice& content,
                                              uint32_t generation) const {
  // Nonce bound to (row id, update generation).
  std::string nonce_input = "row-nonce:" + id + ":";
  PutFixed32(&nonce_input, generation);
  std::string nonce_full = crypto::HmacSha256(db_key_, nonce_input);
  Slice nonce(nonce_full.data(), crypto::kCtrNonceSize);
  MEDVAULT_ASSIGN_OR_RETURN(std::string ciphertext,
                            ctr_.Crypt(nonce, content));
  std::string row;
  PutFixed32(&row, generation);
  row.append(ciphertext);
  return row;
}

Result<std::string> EncryptedDbStore::Put(
    const Slice& content, const std::vector<std::string>& keywords) {
  // The id the inner store will assign is deterministic; encrypt for it.
  std::string id;
  {
    char buf[24];
    snprintf(buf, sizeof(buf), "%010llu",
             static_cast<unsigned long long>(inner_.next_id_));
    id = buf;
  }
  MEDVAULT_ASSIGN_OR_RETURN(std::string row, Encrypt(id, content, 0));
  // Keywords stay in plaintext so search keeps working — the commercial
  // shortcut the paper criticizes.
  MEDVAULT_ASSIGN_OR_RETURN(std::string assigned,
                            inner_.Put(row, keywords));
  if (assigned != id) {
    return Status::Corruption("id assignment out of sync");
  }
  generations_[id] = 0;
  return id;
}

Result<std::string> EncryptedDbStore::Get(const std::string& id) {
  MEDVAULT_ASSIGN_OR_RETURN(std::string row, inner_.Get(id));
  Slice in = row;
  uint32_t generation = 0;
  if (!GetFixed32(&in, &generation)) {
    return Status::Corruption("row too short for generation");
  }
  std::string nonce_input = "row-nonce:" + id + ":";
  PutFixed32(&nonce_input, generation);
  std::string nonce_full = crypto::HmacSha256(db_key_, nonce_input);
  Slice nonce(nonce_full.data(), crypto::kCtrNonceSize);
  // CTR without a MAC: tampered ciphertext decrypts to garbage with no
  // error — deliberately faithful to the encryption-only model.
  return ctr_.Crypt(nonce, in);
}

Status EncryptedDbStore::Update(const std::string& id,
                                const Slice& new_content,
                                const std::string& reason) {
  MEDVAULT_ASSIGN_OR_RETURN(std::string row, inner_.Get(id));
  Slice in = row;
  uint32_t generation = 0;
  if (!GetFixed32(&in, &generation)) {
    return Status::Corruption("row too short for generation");
  }
  MEDVAULT_ASSIGN_OR_RETURN(std::string new_row,
                            Encrypt(id, new_content, generation + 1));
  return inner_.Update(id, new_row, reason);
}

Status EncryptedDbStore::SecureDelete(const std::string& id) {
  // One shared database key: destroying *this record's* key is
  // impossible, so deletion degenerates to the inner overwrite-and-
  // unlink (stale relocated copies survive).
  return inner_.SecureDelete(id);
}

Result<std::vector<std::string>> EncryptedDbStore::Search(
    const std::string& term) {
  return inner_.Search(term);
}

Status EncryptedDbStore::VerifyIntegrity() { return inner_.VerifyIntegrity(); }

std::vector<std::string> EncryptedDbStore::DataFiles() {
  return inner_.DataFiles();
}

}  // namespace medvault::baselines
