#include "baselines/object_store.h"

#include <algorithm>

#include "common/coding.h"
#include "common/hex.h"
#include "crypto/sha256.h"
#include "storage/log_reader.h"

namespace medvault::baselines {

ObjectStore::ObjectStore(storage::Env* env, std::string dir)
    : env_(env), dir_(std::move(dir)) {}

std::string ObjectStore::ObjectPath(const std::string& id) const {
  return dir_ + "/obj-" + id;
}

Status ObjectStore::Open() {
  MEDVAULT_RETURN_IF_ERROR(env_->CreateDirIfMissing(dir_));
  const std::string index_path = dir_ + "/keywords.log";
  uint64_t existing_size = 0;
  if (env_->FileExists(index_path)) {
    MEDVAULT_RETURN_IF_ERROR(env_->GetFileSize(index_path, &existing_size));
    std::unique_ptr<storage::SequentialFile> src;
    MEDVAULT_RETURN_IF_ERROR(env_->NewSequentialFile(index_path, &src));
    storage::log::Reader reader(std::move(src));
    std::string record;
    while (reader.ReadRecord(&record)) {
      Slice in = record;
      std::string term, id;
      if (!GetLengthPrefixedString(&in, &term) ||
          !GetLengthPrefixedString(&in, &id) || !in.empty()) {
        return Status::Corruption("malformed keyword entry");
      }
      keyword_map_[term].push_back(id);
    }
    MEDVAULT_RETURN_IF_ERROR(reader.status());
  }
  std::vector<std::string> children;
  MEDVAULT_RETURN_IF_ERROR(env_->GetChildren(dir_, &children));
  for (const std::string& name : children) {
    if (name.rfind("obj-", 0) == 0) object_ids_.push_back(name.substr(4));
  }
  std::sort(object_ids_.begin(), object_ids_.end());

  std::unique_ptr<storage::WritableFile> dest;
  MEDVAULT_RETURN_IF_ERROR(env_->NewAppendableFile(index_path, &dest));
  index_writer_ = std::make_unique<storage::log::Writer>(std::move(dest),
                                                         existing_size);
  open_ = true;
  return Status::OK();
}

Result<std::string> ObjectStore::Put(
    const Slice& content, const std::vector<std::string>& keywords) {
  if (!open_) return Status::FailedPrecondition("store not open");
  // Content addressing: the id IS the hash.
  std::string id = HexEncode(crypto::Sha256Digest(content));
  if (!env_->FileExists(ObjectPath(id))) {
    MEDVAULT_RETURN_IF_ERROR(
        storage::WriteStringToFile(env_, content, ObjectPath(id), false));
    object_ids_.push_back(id);
  }
  for (const std::string& term : keywords) {
    std::string entry;
    PutLengthPrefixed(&entry, term);
    PutLengthPrefixed(&entry, id);
    MEDVAULT_RETURN_IF_ERROR(index_writer_->AddRecord(entry));
    keyword_map_[term].push_back(id);
  }
  return id;
}

Result<std::string> ObjectStore::Get(const std::string& id) {
  if (!open_) return Status::FailedPrecondition("store not open");
  std::string content;
  MEDVAULT_RETURN_IF_ERROR(
      storage::ReadFileToString(env_, ObjectPath(id), &content));
  return content;
}

Status ObjectStore::Update(const std::string& id, const Slice& new_content,
                           const std::string& reason) {
  // Changing content changes the address; every existing reference to
  // `id` would dangle. The model cannot express in-place correction.
  return Status::NotSupported(
      "content-addressed objects are immutable; corrections unsupported");
}

Status ObjectStore::SecureDelete(const std::string& id) {
  if (!open_) return Status::FailedPrecondition("store not open");
  MEDVAULT_RETURN_IF_ERROR(env_->RemoveFile(ObjectPath(id)));
  object_ids_.erase(
      std::remove(object_ids_.begin(), object_ids_.end(), id),
      object_ids_.end());
  // No retention gate, no disposal proof, keyword entries linger.
  return Status::OK();
}

Result<std::vector<std::string>> ObjectStore::Search(
    const std::string& term) {
  if (!open_) return Status::FailedPrecondition("store not open");
  std::vector<std::string> out;
  auto it = keyword_map_.find(term);
  if (it == keyword_map_.end()) return out;
  for (const std::string& id : it->second) {
    if (env_->FileExists(ObjectPath(id)) &&
        std::find(out.begin(), out.end(), id) == out.end()) {
      out.push_back(id);
    }
  }
  return out;
}

Status ObjectStore::VerifyIntegrity() {
  if (!open_) return Status::FailedPrecondition("store not open");
  // The keyword log carries frame CRCs; re-read it from disk.
  {
    std::unique_ptr<storage::SequentialFile> src;
    MEDVAULT_RETURN_IF_ERROR(
        env_->NewSequentialFile(dir_ + "/keywords.log", &src));
    storage::log::Reader reader(std::move(src));
    std::string record;
    while (reader.ReadRecord(&record)) {
    }
    if (!reader.status().ok()) {
      return Status::TamperDetected("keyword log corrupted: " +
                                    reader.status().message());
    }
  }
  for (const std::string& id : object_ids_) {
    if (!env_->FileExists(ObjectPath(id))) continue;  // deleted
    std::string content;
    MEDVAULT_RETURN_IF_ERROR(
        storage::ReadFileToString(env_, ObjectPath(id), &content));
    if (HexEncode(crypto::Sha256Digest(content)) != id) {
      return Status::TamperDetected("object content does not match its id");
    }
  }
  return Status::OK();
}

std::vector<std::string> ObjectStore::DataFiles() {
  std::vector<std::string> files;
  for (const std::string& id : object_ids_) {
    if (env_->FileExists(ObjectPath(id))) files.push_back(ObjectPath(id));
  }
  files.push_back(dir_ + "/keywords.log");
  return files;
}

}  // namespace medvault::baselines
