#ifndef MEDVAULT_BASELINES_OBJECT_STORE_H_
#define MEDVAULT_BASELINES_OBJECT_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/record_store.h"
#include "storage/log_writer.h"

namespace medvault::baselines {

/// The object/content-addressed storage model of paper §4 (Mesnier et
/// al.): object id = SHA-256 of content, stored in per-object files.
///
/// Faithful strengths: "information integrity can be easily assured" —
/// VerifyIntegrity re-hashes every object, so tampering is detected.
/// Faithful weaknesses: "appends and writes ... are difficult" —
/// Update() is kNotSupported (changing content changes the address,
/// breaking every reference); no history semantics; plaintext content
/// and keyword map; deletion is just file removal.
class ObjectStore : public RecordStore {
 public:
  ObjectStore(storage::Env* env, std::string dir);

  std::string Name() const override { return "object-store"; }
  Status Open() override;
  Result<std::string> Put(const Slice& content,
                          const std::vector<std::string>& keywords) override;
  Result<std::string> Get(const std::string& id) override;
  Status Update(const std::string& id, const Slice& new_content,
                const std::string& reason) override;
  Status SecureDelete(const std::string& id) override;
  Result<std::vector<std::string>> Search(const std::string& term) override;
  Status VerifyIntegrity() override;
  std::vector<std::string> DataFiles() override;

  bool EncryptsAtRest() const override { return false; }
  bool IndexLeaksKeywords() const override { return true; }
  bool KeepsHistory() const override { return false; }
  bool HasProvenance() const override { return false; }
  bool HasAuditTrail() const override { return false; }

 private:
  std::string ObjectPath(const std::string& id) const;

  storage::Env* env_;
  std::string dir_;
  std::map<std::string, std::vector<std::string>> keyword_map_;
  std::vector<std::string> object_ids_;
  std::unique_ptr<storage::log::Writer> index_writer_;
  bool open_ = false;
};

}  // namespace medvault::baselines

#endif  // MEDVAULT_BASELINES_OBJECT_STORE_H_
