#ifndef MEDVAULT_BASELINES_VAULT_STORE_H_
#define MEDVAULT_BASELINES_VAULT_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/record_store.h"
#include "core/vault.h"

namespace medvault::baselines {

/// Drives a core::Vault through the uniform RecordStore interface so the
/// compliance matrix and benches compare MedVault head-to-head with the
/// §4 baselines. Sets up a minimal cast (one clinician, one patient, one
/// admin) and performs operations as the clinician (disposal as admin).
class VaultStore : public RecordStore {
 public:
  /// `clock` must outlive the store. Retention defaults to "short-1y" so
  /// disposal tests can advance a ManualClock past expiry.
  VaultStore(storage::Env* env, std::string dir, const Clock* clock,
             std::string retention_policy = "short-1y", int signer_height = 4);

  std::string Name() const override { return "medvault"; }
  Status Open() override;
  Result<std::string> Put(const Slice& content,
                          const std::vector<std::string>& keywords) override;
  Result<std::string> Get(const std::string& id) override;
  Status Update(const std::string& id, const Slice& new_content,
                const std::string& reason) override;
  Result<std::string> GetVersion(const std::string& id,
                                 uint32_t version) override;
  Status SecureDelete(const std::string& id) override;
  Result<std::vector<std::string>> Search(const std::string& term) override;
  Status VerifyIntegrity() override;
  std::vector<std::string> DataFiles() override;

  bool EncryptsAtRest() const override { return true; }
  bool IndexLeaksKeywords() const override { return false; }
  bool KeepsHistory() const override { return true; }
  bool HasProvenance() const override { return true; }
  bool HasAuditTrail() const override { return true; }

  core::Vault* vault() { return vault_.get(); }

  static constexpr const char* kClinician = "dr-alice";
  static constexpr const char* kPatient = "patient-bob";
  static constexpr const char* kAdmin = "admin-root";

 private:
  storage::Env* env_;
  std::string dir_;
  const Clock* clock_;
  std::string retention_policy_;
  int signer_height_;
  std::unique_ptr<core::Vault> vault_;
};

}  // namespace medvault::baselines

#endif  // MEDVAULT_BASELINES_VAULT_STORE_H_
