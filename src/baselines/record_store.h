#ifndef MEDVAULT_BASELINES_RECORD_STORE_H_
#define MEDVAULT_BASELINES_RECORD_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/env.h"

namespace medvault::baselines {

/// Uniform driver interface over the storage models the paper analyzes
/// in §4 — relational DB, encryption-only store, object storage,
/// compliance WORM — plus MedVault itself. The compliance-matrix harness
/// and the performance benches exercise every model through this one
/// API; a model that cannot support an operation returns the honest
/// Status (kNotSupported / kWormViolation), which is exactly the
/// paper's point.
class RecordStore {
 public:
  virtual ~RecordStore() = default;

  virtual std::string Name() const = 0;
  virtual Status Open() = 0;

  /// Stores a new record; returns its id.
  virtual Result<std::string> Put(const Slice& content,
                                  const std::vector<std::string>& keywords)
      = 0;

  /// Reads the current content of a record.
  virtual Result<std::string> Get(const std::string& id) = 0;

  /// Applies a correction. Stores without correction support return
  /// kNotSupported/kWormViolation.
  virtual Status Update(const std::string& id, const Slice& new_content,
                        const std::string& reason) = 0;

  /// Reads a historical version (1-based). Stores without history
  /// return kNotSupported.
  virtual Result<std::string> GetVersion(const std::string& id,
                                         uint32_t version) {
    return Status::NotSupported(Name() + " keeps no version history");
  }

  /// Disposes of a record such that its content is unrecoverable.
  virtual Status SecureDelete(const std::string& id) = 0;

  /// Keyword search.
  virtual Result<std::vector<std::string>> Search(const std::string& term)
      = 0;

  /// Checks whether stored data still matches what was written
  /// (kTamperDetected if not, OK if intact, OK-but-blind stores simply
  /// always return OK — that *is* their failure mode).
  virtual Status VerifyIntegrity() = 0;

  /// Files that hold record content/index data — the attack surface the
  /// insider adversary tampers with. Implementations flush any caches
  /// first so the returned files are the *complete* on-disk state.
  virtual std::vector<std::string> DataFiles() = 0;

  /// Capability flags used by the compliance matrix.
  virtual bool EncryptsAtRest() const = 0;
  virtual bool IndexLeaksKeywords() const = 0;
  virtual bool KeepsHistory() const = 0;
  virtual bool HasProvenance() const = 0;
  virtual bool HasAuditTrail() const = 0;
};

/// Splits free text into lowercase keywords (benches index record bodies
/// the same way across stores).
std::vector<std::string> TokenizeKeywords(const Slice& text,
                                          size_t max_terms = 16);

}  // namespace medvault::baselines

#endif  // MEDVAULT_BASELINES_RECORD_STORE_H_
