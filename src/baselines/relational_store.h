#ifndef MEDVAULT_BASELINES_RELATIONAL_STORE_H_
#define MEDVAULT_BASELINES_RELATIONAL_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/record_store.h"
#include "storage/bptree.h"
#include "storage/env.h"

namespace medvault::baselines {

/// The relational-database model of paper §4: a heap file with
/// update-in-place rows and a B+tree primary index, plus a plaintext
/// inverted keyword index ("geared more towards performance rather than
/// security").
///
/// Deliberate (faithful) limitations:
///  - rows are plaintext, rewritten in place; no history
///  - no cryptographic integrity: VerifyIntegrity() checks only
///    structural invariants, so a malicious insider edit passes unseen
///  - keyword index stores terms in the clear (privacy leak of §3)
///  - deletion unlinks the row; bytes may linger in the heap file
class RelationalStore : public RecordStore {
 public:
  RelationalStore(storage::Env* env, std::string dir);

  std::string Name() const override { return "relational"; }
  Status Open() override;
  Result<std::string> Put(const Slice& content,
                          const std::vector<std::string>& keywords) override;
  Result<std::string> Get(const std::string& id) override;
  Status Update(const std::string& id, const Slice& new_content,
                const std::string& reason) override;
  Status SecureDelete(const std::string& id) override;
  Result<std::vector<std::string>> Search(const std::string& term) override;
  Status VerifyIntegrity() override;
  std::vector<std::string> DataFiles() override;

  bool EncryptsAtRest() const override { return false; }
  bool IndexLeaksKeywords() const override { return true; }
  bool KeepsHistory() const override { return false; }
  bool HasProvenance() const override { return false; }
  bool HasAuditTrail() const override { return false; }

 private:
  friend class EncryptedDbStore;

  Result<std::pair<uint64_t, uint32_t>> LookupRow(const std::string& id);

  storage::Env* env_;
  std::string dir_;
  std::unique_ptr<storage::BpTree> primary_;  // id -> row locator
  std::unique_ptr<storage::BpTree> keyword_;  // "term\0id" -> ""
  std::unique_ptr<storage::RandomRWFile> heap_;
  uint64_t heap_end_ = 0;
  uint64_t next_id_ = 1;
  bool open_ = false;
};

}  // namespace medvault::baselines

#endif  // MEDVAULT_BASELINES_RELATIONAL_STORE_H_
