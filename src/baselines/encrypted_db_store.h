#ifndef MEDVAULT_BASELINES_ENCRYPTED_DB_STORE_H_
#define MEDVAULT_BASELINES_ENCRYPTED_DB_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/relational_store.h"
#include "crypto/ctr.h"

namespace medvault::baselines {

/// The "commercial encryption-only" model of paper §4: a relational
/// store whose rows are encrypted at rest with a single database key.
///
/// What it fixes: confidentiality of bytes on disk.
/// What it does not fix (the paper's critique, reproduced here):
///  - no integrity: AES-CTR without a MAC — an insider flips ciphertext
///    bits and reads come back silently garbled, never flagged
///  - the keyword index stays in *plaintext* so that search still works
///    (the standard commercial shortcut), leaking terms
///  - no history, provenance, or audit trail
class EncryptedDbStore : public RecordStore {
 public:
  /// `db_key` is 32 bytes (one key for the whole database — the
  /// coarse-grained design that makes per-record secure deletion
  /// impossible).
  EncryptedDbStore(storage::Env* env, std::string dir, const Slice& db_key);

  std::string Name() const override { return "encrypted-db"; }
  Status Open() override;
  Result<std::string> Put(const Slice& content,
                          const std::vector<std::string>& keywords) override;
  Result<std::string> Get(const std::string& id) override;
  Status Update(const std::string& id, const Slice& new_content,
                const std::string& reason) override;
  Status SecureDelete(const std::string& id) override;
  Result<std::vector<std::string>> Search(const std::string& term) override;
  Status VerifyIntegrity() override;
  std::vector<std::string> DataFiles() override;

  bool EncryptsAtRest() const override { return true; }
  bool IndexLeaksKeywords() const override { return true; }
  bool KeepsHistory() const override { return false; }
  bool HasProvenance() const override { return false; }
  bool HasAuditTrail() const override { return false; }

 private:
  Result<std::string> Encrypt(const std::string& id, const Slice& content,
                              uint32_t generation) const;

  RelationalStore inner_;
  crypto::AesCtr ctr_;
  std::string db_key_;
  std::map<std::string, uint32_t> generations_;  // id -> update count
};

}  // namespace medvault::baselines

#endif  // MEDVAULT_BASELINES_ENCRYPTED_DB_STORE_H_
