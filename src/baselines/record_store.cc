#include "baselines/record_store.h"

#include <cctype>

namespace medvault::baselines {

std::vector<std::string> TokenizeKeywords(const Slice& text,
                                          size_t max_terms) {
  std::vector<std::string> terms;
  std::string current;
  for (size_t i = 0; i < text.size() && terms.size() < max_terms; i++) {
    auto c = static_cast<unsigned char>(text[i]);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      if (current.size() >= 3) terms.push_back(current);
      current.clear();
    }
  }
  if (!current.empty() && current.size() >= 3 && terms.size() < max_terms) {
    terms.push_back(current);
  }
  return terms;
}

}  // namespace medvault::baselines
