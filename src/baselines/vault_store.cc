#include "baselines/vault_store.h"

namespace medvault::baselines {

VaultStore::VaultStore(storage::Env* env, std::string dir, const Clock* clock,
                       std::string retention_policy, int signer_height)
    : env_(env),
      dir_(std::move(dir)),
      clock_(clock),
      retention_policy_(std::move(retention_policy)),
      signer_height_(signer_height) {}

Status VaultStore::Open() {
  core::VaultOptions options;
  options.env = env_;
  options.dir = dir_;
  options.clock = clock_;
  options.master_key = std::string(32, 'K');
  options.entropy = "vault-store-entropy:" + dir_;
  options.signer_height = signer_height_;
  MEDVAULT_ASSIGN_OR_RETURN(vault_, core::Vault::Open(options));

  // Fresh vault: install the standard cast. Reopened vault: they exist.
  if (!vault_->access()->GetPrincipal(kAdmin).ok()) {
    MEDVAULT_RETURN_IF_ERROR(vault_->RegisterPrincipal(
        kAdmin, {kAdmin, core::Role::kAdmin, "Root Admin"}));
    MEDVAULT_RETURN_IF_ERROR(vault_->RegisterPrincipal(
        kAdmin, {kClinician, core::Role::kPhysician, "Dr. Alice"}));
    MEDVAULT_RETURN_IF_ERROR(vault_->RegisterPrincipal(
        kAdmin, {kPatient, core::Role::kPatient, "Bob"}));
    MEDVAULT_RETURN_IF_ERROR(
        vault_->AssignCare(kAdmin, kClinician, kPatient));
  }
  return Status::OK();
}

Result<std::string> VaultStore::Put(const Slice& content,
                                    const std::vector<std::string>& keywords) {
  return vault_->CreateRecord(kClinician, kPatient, "text/plain", content,
                              keywords, retention_policy_);
}

Result<std::string> VaultStore::Get(const std::string& id) {
  MEDVAULT_ASSIGN_OR_RETURN(core::RecordVersion version,
                            vault_->ReadRecord(kClinician, id));
  return version.plaintext;
}

Status VaultStore::Update(const std::string& id, const Slice& new_content,
                          const std::string& reason) {
  return vault_
      ->CorrectRecord(kClinician, id, new_content, reason,
                      std::vector<std::string>())
      .status();
}

Result<std::string> VaultStore::GetVersion(const std::string& id,
                                           uint32_t version) {
  MEDVAULT_ASSIGN_OR_RETURN(core::RecordVersion v,
                            vault_->ReadRecordVersion(kClinician, id,
                                                      version));
  return v.plaintext;
}

Status VaultStore::SecureDelete(const std::string& id) {
  return vault_->DisposeRecord(kAdmin, id).status();
}

Result<std::vector<std::string>> VaultStore::Search(const std::string& term) {
  return vault_->SearchKeyword(kClinician, term);
}

Status VaultStore::VerifyIntegrity() { return vault_->VerifyEverything(); }

std::vector<std::string> VaultStore::DataFiles() {
  std::vector<std::string> files;
  for (uint64_t id : vault_->versions()->segments()->SegmentIds()) {
    std::string name = vault_->versions()->segments()->SegmentFileName(id);
    if (env_->FileExists(name)) files.push_back(name);
  }
  files.push_back(dir_ + "/index.log");
  files.push_back(dir_ + "/audit.log");
  return files;
}

}  // namespace medvault::baselines
