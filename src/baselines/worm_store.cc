#include "baselines/worm_store.h"

#include <algorithm>

#include "common/coding.h"
#include "crypto/sha256.h"
#include "storage/log_reader.h"

namespace medvault::baselines {

WormStore::WormStore(storage::Env* env, std::string dir)
    : env_(env), dir_(std::move(dir)) {
  storage::SegmentStore::Options options;
  segments_ = std::make_unique<storage::SegmentStore>(
      env, dir_ + "/segments", options);
}

Status WormStore::Open() {
  MEDVAULT_RETURN_IF_ERROR(env_->CreateDirIfMissing(dir_));
  MEDVAULT_RETURN_IF_ERROR(segments_->Open());

  const std::string catalog_path = dir_ + "/catalog.log";
  uint64_t existing_size = 0;
  if (env_->FileExists(catalog_path)) {
    MEDVAULT_RETURN_IF_ERROR(env_->GetFileSize(catalog_path, &existing_size));
    std::unique_ptr<storage::SequentialFile> src;
    MEDVAULT_RETURN_IF_ERROR(env_->NewSequentialFile(catalog_path, &src));
    storage::log::Reader reader(std::move(src));
    std::string record;
    while (reader.ReadRecord(&record)) {
      Slice in = record;
      std::string id, handle_bytes, hash, term;
      uint32_t term_count = 0;
      if (!GetLengthPrefixedString(&in, &id) ||
          !GetLengthPrefixedString(&in, &handle_bytes) ||
          !GetLengthPrefixedString(&in, &hash) ||
          !GetVarint32(&in, &term_count)) {
        return Status::Corruption("malformed WORM catalog entry");
      }
      MEDVAULT_ASSIGN_OR_RETURN(storage::EntryHandle handle,
                                storage::EntryHandle::Decode(handle_bytes));
      for (uint32_t i = 0; i < term_count; i++) {
        if (!GetLengthPrefixedString(&in, &term)) {
          return Status::Corruption("malformed WORM keyword");
        }
        keyword_map_[term].push_back(id);
      }
      catalog_[id] = Entry{handle, hash};
      next_id_ = std::max<uint64_t>(
          next_id_, strtoull(id.c_str(), nullptr, 10) + 1);
    }
    MEDVAULT_RETURN_IF_ERROR(reader.status());
  }
  std::unique_ptr<storage::WritableFile> dest;
  MEDVAULT_RETURN_IF_ERROR(env_->NewAppendableFile(catalog_path, &dest));
  catalog_writer_ = std::make_unique<storage::log::Writer>(std::move(dest),
                                                           existing_size);
  open_ = true;
  return Status::OK();
}

Result<std::string> WormStore::Put(const Slice& content,
                                   const std::vector<std::string>& keywords) {
  if (!open_) return Status::FailedPrecondition("store not open");
  std::string id = std::to_string(next_id_++);
  MEDVAULT_ASSIGN_OR_RETURN(storage::EntryHandle handle,
                            segments_->Append(content));
  std::string hash = crypto::Sha256Digest(content);

  std::string record;
  PutLengthPrefixed(&record, id);
  PutLengthPrefixed(&record, handle.Encode());
  PutLengthPrefixed(&record, hash);
  PutVarint32(&record, static_cast<uint32_t>(keywords.size()));
  for (const std::string& term : keywords) {
    PutLengthPrefixed(&record, term);
    keyword_map_[term].push_back(id);
  }
  MEDVAULT_RETURN_IF_ERROR(catalog_writer_->AddRecord(record));
  catalog_[id] = Entry{handle, hash};
  return id;
}

Result<std::string> WormStore::Get(const std::string& id) {
  if (!open_) return Status::FailedPrecondition("store not open");
  auto it = catalog_.find(id);
  if (it == catalog_.end()) return Status::NotFound("unknown record");
  auto content = segments_->Read(it->second.handle);
  if (!content.ok()) {
    if (content.status().IsCorruption()) {
      return Status::TamperDetected("WORM entry bytes corrupted");
    }
    return content.status();
  }
  if (crypto::Sha256Digest(*content) != it->second.content_hash) {
    return Status::TamperDetected("WORM entry hash mismatch");
  }
  return content;
}

Status WormStore::Update(const std::string& id, const Slice& new_content,
                         const std::string& reason) {
  // The paper's core critique of this model: "trustworthy WORM storage
  // systems do not support such corrections."
  return Status::WormViolation(
      "WORM media is write-once; corrections are not supported");
}

Status WormStore::SecureDelete(const std::string& id) {
  // Plain WORM cannot erase; without per-record keys there is nothing
  // to shred either.
  return Status::WormViolation(
      "WORM media cannot be erased; secure deletion unsupported");
}

Result<std::vector<std::string>> WormStore::Search(const std::string& term) {
  if (!open_) return Status::FailedPrecondition("store not open");
  std::vector<std::string> out;
  auto it = keyword_map_.find(term);
  if (it == keyword_map_.end()) return out;
  for (const std::string& id : it->second) {
    if (std::find(out.begin(), out.end(), id) == out.end()) {
      out.push_back(id);
    }
  }
  return out;
}

Status WormStore::VerifyIntegrity() {
  if (!open_) return Status::FailedPrecondition("store not open");
  // Catalog bytes on disk must still parse (frame CRCs catch flips).
  {
    std::unique_ptr<storage::SequentialFile> src;
    MEDVAULT_RETURN_IF_ERROR(
        env_->NewSequentialFile(dir_ + "/catalog.log", &src));
    storage::log::Reader reader(std::move(src));
    std::string record;
    while (reader.ReadRecord(&record)) {
    }
    if (!reader.status().ok()) {
      return Status::TamperDetected("WORM catalog corrupted: " +
                                    reader.status().message());
    }
  }
  for (const auto& [id, entry] : catalog_) {
    auto content = segments_->Read(entry.handle);
    if (!content.ok()) {
      return Status::TamperDetected("WORM entry unreadable: " + id);
    }
    if (crypto::Sha256Digest(*content) != entry.content_hash) {
      return Status::TamperDetected("WORM entry hash mismatch: " + id);
    }
  }
  return Status::OK();
}

std::vector<std::string> WormStore::DataFiles() {
  std::vector<std::string> files;
  for (uint64_t id : segments_->SegmentIds()) {
    std::string name = segments_->SegmentFileName(id);
    if (env_->FileExists(name)) files.push_back(name);
  }
  files.push_back(dir_ + "/catalog.log");
  return files;
}

}  // namespace medvault::baselines
