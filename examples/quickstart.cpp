// Quickstart: open a vault, store a record, read it back, verify the
// audit trail. The minimal end-to-end tour of the public API.

#include <cstdio>
#include <string>

#include "common/clock.h"
#include "core/vault.h"
#include "storage/mem_env.h"

using medvault::core::Role;
using medvault::core::Vault;
using medvault::core::VaultOptions;

int main() {
  // A vault needs an Env (filesystem), a clock, a 32-byte master key,
  // and an entropy seed (in production: from an HSM / OS entropy).
  medvault::storage::MemEnv env;
  medvault::SystemClock clock;

  VaultOptions options;
  options.env = &env;
  options.dir = "demo-vault";
  options.clock = &clock;
  options.master_key = std::string(32, 'K');  // demo only!
  options.entropy = "quickstart-entropy-seed";
  options.signer_height = 4;

  auto vault_or = Vault::Open(options);
  if (!vault_or.ok()) {
    fprintf(stderr, "open failed: %s\n",
            vault_or.status().ToString().c_str());
    return 1;
  }
  auto vault = std::move(vault_or).value();
  printf("vault opened; signer public key fingerprint: %02x%02x%02x...\n",
         static_cast<unsigned char>(vault->SignerPublicKey()[0]),
         static_cast<unsigned char>(vault->SignerPublicKey()[1]),
         static_cast<unsigned char>(vault->SignerPublicKey()[2]));

  // Register a minimal cast: one admin, one physician, one patient.
  (void)vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "Admin"});
  (void)vault->RegisterPrincipal("admin",
                                 {"dr-lee", Role::kPhysician, "Dr. Lee"});
  (void)vault->RegisterPrincipal("admin",
                                 {"pat-44", Role::kPatient, "Patient 44"});
  (void)vault->AssignCare("admin", "dr-lee", "pat-44");

  // Store a record (encrypted, versioned, indexed, audited).
  auto id = vault->CreateRecord(
      "dr-lee", "pat-44", "text/plain",
      "Patient presents with seasonal influenza; rest and fluids.",
      {"influenza"}, "hipaa-6y");
  if (!id.ok()) {
    fprintf(stderr, "create failed: %s\n", id.status().ToString().c_str());
    return 1;
  }
  printf("created record %s\n", id->c_str());

  // Read it back.
  auto record = vault->ReadRecord("dr-lee", *id);
  printf("read back: \"%s\"\n", record->plaintext.c_str());

  // Keyword search goes through the blinded index.
  auto hits = vault->SearchKeyword("dr-lee", "influenza");
  printf("search 'influenza' -> %zu hit(s)\n", hits->size());

  // The patient may read their own record; a stranger may not.
  (void)vault->RegisterPrincipal("admin",
                                 {"dr-who", Role::kPhysician, "Dr. Who"});
  auto denied = vault->ReadRecord("dr-who", *id);
  printf("unrelated physician read -> %s\n",
         denied.status().ToString().c_str());

  // Everything above — including the denial — is in the audit trail.
  (void)vault->RegisterPrincipal("admin",
                                 {"auditor", Role::kAuditor, "Auditor"});
  auto trail = vault->ReadAuditTrail("auditor", "");
  printf("audit trail has %zu events; verification: %s\n", trail->size(),
         vault->VerifyAudit().ToString().c_str());

  // Full integrity check: records + audit + custody chains.
  printf("verify everything: %s\n",
         vault->VerifyEverything().ToString().c_str());
  return 0;
}
