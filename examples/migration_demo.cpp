// Migration & retention demo: a record with 30-year retention survives
// a hardware refresh via verifiable migration, is backed up off-site,
// and is finally disposed of with a signed certificate.

#include <cstdio>
#include <string>

#include "common/clock.h"
#include "common/hex.h"
#include "core/backup.h"
#include "core/migration.h"
#include "core/vault.h"
#include "storage/mem_env.h"

using medvault::HexEncode;
using medvault::ManualClock;
using medvault::Slice;
using medvault::core::BackupManager;
using medvault::core::Migrator;
using medvault::core::RetentionManager;
using medvault::core::Role;
using medvault::core::Vault;
using medvault::core::VaultOptions;

namespace {

std::unique_ptr<Vault> OpenVault(medvault::storage::Env* env,
                                 const ManualClock* clock,
                                 const std::string& system,
                                 const std::string& entropy) {
  VaultOptions options;
  options.env = env;
  options.dir = "vault";
  options.clock = clock;
  options.master_key = std::string(32, 'G');
  options.entropy = entropy;
  options.signer_height = 4;
  options.system_id = system;
  auto vault = std::move(Vault::Open(options)).value();
  (void)vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "IT"});
  (void)vault->RegisterPrincipal("admin",
                                 {"dr-a", Role::kPhysician, "Dr A"});
  (void)vault->RegisterPrincipal("admin",
                                 {"aud", Role::kAuditor, "Auditor"});
  (void)vault->RegisterPrincipal("admin",
                                 {"worker-9", Role::kPatient, "Worker 9"});
  (void)vault->AssignCare("admin", "dr-a", "worker-9");
  return vault;
}

}  // namespace

int main() {
  ManualClock clock(0);
  medvault::storage::MemEnv gen1_disk, gen2_disk, offsite;

  // Year 0: an OSHA exposure record — must be kept 30 years.
  auto gen1 = OpenVault(&gen1_disk, &clock, "ehr-gen1", "entropy-gen1");
  auto id = gen1->CreateRecord(
      "dr-a", "worker-9", "text/plain",
      "Occupational exposure: asbestos, 2.1 f/cc, duration 6h.",
      {"asbestos", "exposure"}, "osha-30y");
  printf("year 0: created %s under osha-30y\n", id->c_str());

  // Year 3: off-site backup.
  clock.AdvanceYears(3);
  auto manifest = BackupManager::Backup(gen1.get(), "admin", &offsite,
                                        "offsite");
  printf("year 3: off-site backup %s (%zu files), verify: %s\n",
         manifest->backup_id.c_str(), manifest->files.size(),
         BackupManager::Verify(&offsite, "offsite", *manifest)
             .ToString()
             .c_str());

  // Year 10: early disposal attempt is refused.
  clock.AdvanceYears(7);
  auto early = gen1->DisposeRecord("admin", *id);
  printf("year 10: disposal attempt -> %s\n",
         early.status().ToString().c_str());

  // Year 12: hardware refresh. Verifiable migration to gen2.
  clock.AdvanceYears(2);
  auto gen2 = OpenVault(&gen2_disk, &clock, "ehr-gen2", "entropy-gen2");
  auto receipt = Migrator::Migrate(gen1.get(), gen2.get(), "admin");
  printf("year 12: migrated %llu records / %llu versions, root=%s...\n",
         static_cast<unsigned long long>(receipt->record_count),
         static_cast<unsigned long long>(receipt->version_count),
         HexEncode(Slice(receipt->content_root.data(), 6)).c_str());
  printf("         dual-signed receipt verifies: %s\n",
         Migrator::VerifyReceipt(*receipt, gen1.get(), gen2.get())
             .ToString()
             .c_str());

  // The record reads identically on the new system; custody continues.
  auto record = gen2->ReadRecord("dr-a", *id);
  printf("         gen2 serves: \"%.40s...\"\n",
         record->plaintext.c_str());
  auto chain = gen2->GetCustodyChain("aud", *id);
  printf("         custody chain: %zu events across 2 systems\n",
         chain->size());

  // Year 31: retention expired. Disposal succeeds with a certificate.
  clock.AdvanceYears(19);
  auto cert = gen2->DisposeRecord("admin", *id);
  printf("year 31: disposed. certificate by %s under %s, verifies: %s\n",
         cert->authorizer.c_str(), cert->policy.c_str(),
         RetentionManager::VerifyCertificate(
             *cert, gen2->SignerPublicKey(), gen2->SignerPublicSeed(),
             gen2->SignerHeight())
             .ToString()
             .c_str());
  printf("         read after disposal -> %s\n",
         gen2->ReadRecord("dr-a", *id).status().ToString().c_str());
  printf("         remaining state verifies: %s\n",
         gen2->VerifyEverything().ToString().c_str());
  return 0;
}
