// Compliance audit: an external auditor retains signed checkpoints,
// later proves individual events, and catches a malicious insider who
// edits raw storage bytes and attempts to rewrite the audit history.

#include <cstdio>
#include <string>

#include "common/clock.h"
#include "common/hex.h"
#include "core/vault.h"
#include "sim/adversary.h"
#include "storage/mem_env.h"

using medvault::HexEncode;
using medvault::ManualClock;
using medvault::Slice;
using medvault::core::AuditLog;
using medvault::core::Role;
using medvault::core::Vault;
using medvault::core::VaultOptions;

int main() {
  medvault::storage::MemEnv env;
  ManualClock clock(1000000);

  VaultOptions options;
  options.env = &env;
  options.dir = "vault";
  options.clock = &clock;
  options.master_key = std::string(32, 'C');
  options.entropy = "audit-demo-entropy";
  options.signer_height = 4;
  auto vault = std::move(Vault::Open(options)).value();

  (void)vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "IT"});
  (void)vault->RegisterPrincipal("admin",
                                 {"dr-a", Role::kPhysician, "Dr A"});
  (void)vault->RegisterPrincipal("admin",
                                 {"auditor", Role::kAuditor, "Auditor"});
  (void)vault->RegisterPrincipal("admin", {"pat-1", Role::kPatient, "P1"});
  (void)vault->AssignCare("admin", "dr-a", "pat-1");

  // Normal operation: records accumulate, the auditor periodically
  // retains signed tree heads (off-site — here: a local variable).
  for (int i = 0; i < 5; i++) {
    (void)vault->CreateRecord("dr-a", "pat-1", "text/plain",
                              "visit note " + std::to_string(i),
                              {"checkup"}, "hipaa-6y");
  }
  auto retained = vault->CheckpointAudit();  // the auditor keeps this
  printf("auditor retains checkpoint: size=%llu root=%s...\n",
         static_cast<unsigned long long>(retained->tree_size),
         HexEncode(Slice(retained->root.data(), 6)).c_str());

  for (int i = 5; i < 9; i++) {
    (void)vault->CreateRecord("dr-a", "pat-1", "text/plain",
                              "visit note " + std::to_string(i),
                              {"checkup"}, "hipaa-6y");
  }

  // 1. Routine verification: on-disk bytes, hash chain, signatures.
  printf("\n[1] full audit verification:   %s\n",
         vault->VerifyAudit().ToString().c_str());
  // 2. Append-only proof against the retained head.
  printf("[2] consistency vs checkpoint: %s\n",
         vault->VerifyAuditAgainstTrusted(*retained).ToString().c_str());

  // 3. Prove one specific event to a third party (O(log n) proof).
  auto proof = vault->audit()->ProveEvent(3);
  printf("[3] inclusion proof for event #3: %zu hashes, verifies: %s\n",
         proof->path.size(),
         AuditLog::VerifyEventProof(*proof, vault->audit()->Root())
             .ToString()
             .c_str());

  // --- Attack 1: insider flips bytes in the audit log -------------------
  medvault::sim::InsiderAdversary insider(&env, 99);
  (void)insider.TamperRandomBytes({"vault/audit.log"}, 3);
  printf("\n[attack] insider flips 3 bytes in audit.log\n");
  printf("detection: %s\n", vault->VerifyAudit().ToString().c_str());

  // --- Attack 2: insider rewrites the whole log shorter ------------------
  // (Simulate with a fresh vault whose log lacks the retained history.)
  medvault::storage::MemEnv env2;
  VaultOptions options2 = options;
  options2.env = &env2;
  auto rewritten = std::move(Vault::Open(options2)).value();
  (void)rewritten->RegisterPrincipal("boot",
                                     {"admin", Role::kAdmin, "IT"});
  printf("\n[attack] insider replaces the log with a clean, shorter one\n");
  printf("internal verification of forged log: %s  <- looks clean!\n",
         rewritten->VerifyAudit().ToString().c_str());
  printf("against auditor's retained head:     %s\n",
         rewritten->VerifyAuditAgainstTrusted(*retained)
             .ToString()
             .c_str());
  printf("\n=> externally retained checkpoints are what make the trail "
         "trustworthy.\n");
  return 0;
}
