// Hospital workflow: admission, progress notes, a patient-requested
// correction (HIPAA right to amend), an emergency break-glass access,
// and the resulting audit/custody story.

#include <cstdio>
#include <string>

#include "common/clock.h"
#include "core/vault.h"
#include "storage/mem_env.h"

using medvault::ManualClock;
using medvault::kMicrosPerDay;
using medvault::kMicrosPerSecond;
using medvault::core::AuditActionName;
using medvault::core::Role;
using medvault::core::Vault;
using medvault::core::VaultOptions;

int main() {
  medvault::storage::MemEnv env;
  ManualClock clock(1700000000LL * 1000000);  // a fixed "today"

  VaultOptions options;
  options.env = &env;
  options.dir = "hospital-vault";
  options.clock = &clock;
  options.master_key = std::string(32, 'H');
  options.entropy = "hospital-entropy";
  options.signer_height = 4;
  options.system_id = "st-elsewhere-ehr";
  auto vault = std::move(Vault::Open(options)).value();

  // --- Staff & patient registration -----------------------------------
  (void)vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "IT"});
  (void)vault->RegisterPrincipal(
      "admin", {"dr-grey", Role::kPhysician, "Dr. Grey"});
  (void)vault->RegisterPrincipal(
      "admin", {"dr-house", Role::kPhysician, "Dr. House"});
  (void)vault->RegisterPrincipal(
      "admin", {"nurse-joy", Role::kNurse, "Nurse Joy"});
  (void)vault->RegisterPrincipal(
      "admin", {"clerk-kim", Role::kClerk, "Clerk Kim"});
  (void)vault->RegisterPrincipal(
      "admin", {"auditor-ann", Role::kAuditor, "Auditor Ann"});
  (void)vault->RegisterPrincipal("admin",
                                 {"pat-007", Role::kPatient, "J. Bond"});

  // Admission: Dr. Grey becomes the treating physician.
  (void)vault->AssignCare("admin", "dr-grey", "pat-007");
  (void)vault->AssignCare("admin", "nurse-joy", "pat-007");
  printf("== admission complete ==\n");

  // --- Clinical documentation ------------------------------------------
  auto admission = vault->CreateRecord(
      "dr-grey", "pat-007", "text/plain",
      "Admission note: chest pain, ECG normal, troponin pending.",
      {"chest-pain", "cardiology"}, "hipaa-6y");
  printf("admission note: %s\n", admission->c_str());

  clock.Advance(kMicrosPerDay);
  auto progress = vault->CreateRecord(
      "dr-grey", "pat-007", "text/plain",
      "Progress note: troponin negative. Diagnosis: costochondritis.",
      {"costochondritis"}, "hipaa-6y");
  printf("progress note: %s\n", progress->c_str());

  // The nurse reads (allowed), Dr. House does not treat this patient.
  auto nurse_read = vault->ReadRecord("nurse-joy", *admission);
  printf("nurse read: %s\n", nurse_read.status().ToString().c_str());
  auto house_read = vault->ReadRecord("dr-house", *admission);
  printf("dr-house read: %s\n", house_read.status().ToString().c_str());

  // --- Patient-requested correction -------------------------------------
  // The patient notices the admission note lists the wrong onset time.
  clock.Advance(kMicrosPerDay);
  auto amended = vault->CorrectRecord(
      "pat-007", *admission,
      "Admission note: chest pain since 06:00 (patient amendment), "
      "ECG normal, troponin pending.",
      "patient reports onset 06:00 not 09:00", {"chest-pain"});
  printf("patient amendment -> version %u\n", amended->version);

  // History is preserved: both versions verifiable and readable.
  auto history = vault->RecordHistory("dr-grey", *admission);
  printf("record %s has %zu versions:\n", admission->c_str(),
         history->size());
  for (const auto& h : *history) {
    printf("  v%u by %-8s %s\n", h.version, h.author.c_str(),
           h.reason.empty() ? "(original)" : h.reason.c_str());
  }

  // --- Emergency: break-glass --------------------------------------------
  // Dr. House covers the night shift; the patient crashes.
  clock.Advance(kMicrosPerDay / 3);
  auto grant = vault->BreakGlass("dr-house", "pat-007",
                                 "code blue, treating physician offsite",
                                 3600 * kMicrosPerSecond);
  printf("break-glass grant: %s\n", grant->c_str());
  auto emergency_read = vault->ReadRecord("dr-house", *admission);
  printf("dr-house read under break-glass: %s\n",
         emergency_read.ok() ? "OK" : "denied");

  // --- The compliance story ------------------------------------------------
  printf("\n== auditor view ==\n");
  auto trail = vault->ReadAuditTrail("auditor-ann", *admission);
  printf("%zu audit events touch %s:\n", trail->size(), admission->c_str());
  for (const auto& e : *trail) {
    printf("  #%llu %-13s by %s %s\n",
           static_cast<unsigned long long>(e.seq),
           AuditActionName(e.action), e.actor.c_str(),
           e.details.substr(0, 48).c_str());
  }
  auto checkpoint = vault->CheckpointAudit();
  printf("audit checkpoint signed over %llu events\n",
         static_cast<unsigned long long>(checkpoint->tree_size));
  printf("verify everything: %s\n",
         vault->VerifyEverything().ToString().c_str());
  return 0;
}
