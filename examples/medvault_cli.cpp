// medvault_cli — a small administration shell over a PosixEnv vault.
//
//   medvault_cli <vault-dir> <command> [args...]
//
// The master key and entropy seed come from MEDVAULT_MASTER_KEY /
// MEDVAULT_ENTROPY (any strings; the key is padded/truncated to 32
// bytes). Demo-grade key handling — production puts these in a KMS.
//
// Commands:
//   init <admin-id>
//   register <actor> <id> <role> <display-name>
//   assign-care <actor> <clinician> <patient>
//   create <actor> <patient> <policy> <text> [keyword...]
//   read <actor> <record> [version]
//   history <actor> <record>
//   correct <actor> <record> <reason> <text> [keyword...]
//   search <actor> <term>
//   dispose <actor> <record>
//   break-glass <clinician> <patient> <minutes> <justification>
//   audit <actor> [record]
//   custody <actor> <record>
//   disclosures <actor> <patient>
//   checkpoint
//   verify

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/hex.h"
#include "core/audit.h"
#include "core/vault.h"
#include "storage/posix_env.h"

namespace {

using medvault::HexEncode;
using medvault::Slice;
using medvault::Status;
using medvault::core::AuditActionName;
using medvault::core::AuditEvent;
using medvault::core::CustodyEventTypeName;
using medvault::core::Role;
using medvault::core::Vault;
using medvault::core::VaultOptions;

int Usage() {
  fprintf(stderr,
          "usage: medvault_cli <vault-dir> <command> [args...]\n"
          "commands: init register assign-care create read history "
          "correct\n          search dispose break-glass audit custody "
          "disclosures checkpoint verify\n");
  return 2;
}

int Fail(const Status& status) {
  fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::string EnvOr(const char* name, const std::string& fallback) {
  const char* value = getenv(name);
  return value != nullptr ? value : fallback;
}

medvault::Result<Role> ParseRole(const std::string& name) {
  if (name == "physician") return Role::kPhysician;
  if (name == "nurse") return Role::kNurse;
  if (name == "clerk") return Role::kClerk;
  if (name == "auditor") return Role::kAuditor;
  if (name == "patient") return Role::kPatient;
  if (name == "admin") return Role::kAdmin;
  return Status::InvalidArgument(
      "role must be physician|nurse|clerk|auditor|patient|admin");
}

void PrintEvents(const std::vector<AuditEvent>& events) {
  for (const AuditEvent& e : events) {
    printf("#%-6llu %-14s actor=%-12s record=%-8s %s\n",
           static_cast<unsigned long long>(e.seq), AuditActionName(e.action),
           e.actor.c_str(), e.record_id.empty() ? "-" : e.record_id.c_str(),
           e.details.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string dir = argv[1];
  const std::string command = argv[2];
  std::vector<std::string> args(argv + 3, argv + argc);

  static medvault::SystemClock clock;
  std::string master = EnvOr("MEDVAULT_MASTER_KEY", "demo-master-key");
  master.resize(32, '#');
  VaultOptions options;
  options.env = medvault::storage::PosixEnv::Default();
  options.dir = dir;
  options.clock = &clock;
  options.master_key = master;
  options.entropy = EnvOr("MEDVAULT_ENTROPY", "demo-entropy:" + dir);
  options.signer_height = 8;

  auto vault_or = Vault::Open(options);
  if (!vault_or.ok()) return Fail(vault_or.status());
  auto vault = std::move(vault_or).value();

  if (command == "init") {
    if (args.size() != 1) return Usage();
    Status s = vault->RegisterPrincipal(
        "bootstrap", {args[0], Role::kAdmin, "Administrator"});
    if (!s.ok()) return Fail(s);
    printf("vault at %s initialized; admin '%s' registered\n", dir.c_str(),
           args[0].c_str());
  } else if (command == "register") {
    if (args.size() != 4) return Usage();
    auto role = ParseRole(args[2]);
    if (!role.ok()) return Fail(role.status());
    Status s = vault->RegisterPrincipal(args[0], {args[1], *role, args[3]});
    if (!s.ok()) return Fail(s);
    printf("registered %s (%s)\n", args[1].c_str(), args[2].c_str());
  } else if (command == "assign-care") {
    if (args.size() != 3) return Usage();
    Status s = vault->AssignCare(args[0], args[1], args[2]);
    if (!s.ok()) return Fail(s);
    printf("%s now treats %s\n", args[1].c_str(), args[2].c_str());
  } else if (command == "create") {
    if (args.size() < 4) return Usage();
    std::vector<std::string> keywords(args.begin() + 4, args.end());
    auto id = vault->CreateRecord(args[0], args[1], "text/plain", args[3],
                                  keywords, args[2]);
    if (!id.ok()) return Fail(id.status());
    printf("%s\n", id->c_str());
  } else if (command == "read") {
    if (args.size() != 2 && args.size() != 3) return Usage();
    auto record =
        args.size() == 3
            ? vault->ReadRecordVersion(args[0], args[1],
                                       strtoul(args[2].c_str(), nullptr, 10))
            : vault->ReadRecord(args[0], args[1]);
    if (!record.ok()) return Fail(record.status());
    printf("record %s v%u by %s:\n%s\n", args[1].c_str(),
           record->header.version, record->header.author.c_str(),
           record->plaintext.c_str());
  } else if (command == "history") {
    if (args.size() != 2) return Usage();
    auto history = vault->RecordHistory(args[0], args[1]);
    if (!history.ok()) return Fail(history.status());
    for (const auto& h : *history) {
      printf("v%-3u by %-12s %s\n", h.version, h.author.c_str(),
             h.reason.empty() ? "(original)" : h.reason.c_str());
    }
  } else if (command == "correct") {
    if (args.size() < 4) return Usage();
    std::vector<std::string> keywords(args.begin() + 4, args.end());
    auto header =
        vault->CorrectRecord(args[0], args[1], args[3], args[2], keywords);
    if (!header.ok()) return Fail(header.status());
    printf("corrected to v%u\n", header->version);
  } else if (command == "search") {
    if (args.size() != 2) return Usage();
    auto hits = vault->SearchKeyword(args[0], args[1]);
    if (!hits.ok()) return Fail(hits.status());
    for (const auto& id : *hits) printf("%s\n", id.c_str());
  } else if (command == "dispose") {
    if (args.size() != 2) return Usage();
    auto cert = vault->DisposeRecord(args[0], args[1]);
    if (!cert.ok()) return Fail(cert.status());
    printf("disposed %s; certificate %s\n", args[1].c_str(),
           HexEncode(Slice(cert->Encode().data(), 8)).c_str());
  } else if (command == "break-glass") {
    if (args.size() != 4) return Usage();
    auto grant = vault->BreakGlass(
        args[0], args[1],
        args[3], strtoll(args[2].c_str(), nullptr, 10) * 60 *
                     medvault::kMicrosPerSecond);
    if (!grant.ok()) return Fail(grant.status());
    printf("grant %s active for %s minutes\n", grant->c_str(),
           args[2].c_str());
  } else if (command == "audit") {
    if (args.size() != 1 && args.size() != 2) return Usage();
    auto trail = vault->ReadAuditTrail(args[0],
                                       args.size() == 2 ? args[1] : "");
    if (!trail.ok()) return Fail(trail.status());
    PrintEvents(*trail);
  } else if (command == "custody") {
    if (args.size() != 2) return Usage();
    auto chain = vault->GetCustodyChain(args[0], args[1]);
    if (!chain.ok()) return Fail(chain.status());
    for (const auto& e : *chain) {
      printf("%-18s by %-14s at %-20s %s\n", CustodyEventTypeName(e.type),
             e.actor.c_str(), e.system_id.c_str(), e.details.c_str());
    }
  } else if (command == "disclosures") {
    if (args.size() != 2) return Usage();
    auto events = vault->AccountingOfDisclosures(args[0], args[1]);
    if (!events.ok()) return Fail(events.status());
    PrintEvents(*events);
  } else if (command == "checkpoint") {
    auto cp = vault->CheckpointAudit();
    if (!cp.ok()) return Fail(cp.status());
    printf("checkpoint: size=%llu root=%s (retain this off-site)\n",
           static_cast<unsigned long long>(cp->tree_size),
           HexEncode(cp->root).c_str());
  } else if (command == "verify") {
    Status s = vault->VerifyEverything();
    printf("%s\n", s.ToString().c_str());
    return s.ok() ? 0 : 1;
  } else {
    return Usage();
  }
  return 0;
}
