// Verified replication matrix: Merkle-checked log shipping from a
// primary vault to warm standbys, under fault injection.
//
// The contract under test (DESIGN.md, "Replication & promotion"):
//   (a) a replica never exposes a record the primary didn't durably
//       commit — killed at EVERY I/O boundary of a replicated
//       workload, in both crash modes, the recovered primary always
//       serves at least what the replica's read view serves;
//   (b) a tampered batch (bit flips anywhere: header, chunk payload,
//       torn encoding) is refused with tamper evidence naming the
//       chunk, and the replica quarantines — sticky, like a bad shard;
//   (c) promotion after a primary kill is a crash-recovery open behind
//       a scrub gate: at most one kRecovery audit event, identical
//       content roots, and a structurally damaged replica quarantines
//       instead of promoting;
//   (d) a lagging / partitioned replica catches up to byte equality
//       from its own cursor — no handshake, no replay log.
//
// Batches are cut at group-commit window boundaries (under the vault's
// exclusive lock after a full sync wave), so every shipped byte is
// durable on the primary by construction; the matrix checks that the
// implementation actually upholds this when the power goes out.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/replication.h"
#include "core/shard_router.h"
#include "core/sharded_vault.h"
#include "core/vault.h"
#include "obs/json.h"
#include "server/http_client.h"
#include "server/server.h"
#include "storage/fault_env.h"
#include "storage/mem_env.h"

namespace medvault {
namespace {

using core::ReplicaApplier;
using core::ReplicationCursor;
using core::ReplicationSource;
using core::Role;
using core::ShardedReplicaApplier;
using core::ShardedReplicationSource;
using core::ShardedVault;
using core::ShardedVaultOptions;
using core::ShippedBatch;
using core::Vault;
using core::VaultOptions;

constexpr char kEntropy[] = "repl-test-entropy";

VaultOptions PrimaryOptions(storage::Env* env, const Clock* clock,
                            const std::string& dir = "primary") {
  VaultOptions options;
  options.env = env;
  options.dir = dir;
  options.clock = clock;
  options.master_key = std::string(32, 'M');
  options.entropy = kEntropy;
  options.signer_height = 4;
  return options;
}

ReplicaApplier::Options ApplierOptions(storage::Env* env,
                                       const std::string& dir = "replica") {
  ReplicaApplier::Options options;
  options.env = env;
  options.dir = dir;
  options.entropy = kEntropy;
  return options;
}

/// One pull round: cursor from the replica, cut on the primary, apply.
Status Ship(ReplicationSource* source, ReplicaApplier* applier) {
  auto cursor = applier->Cursor();
  if (!cursor.ok()) return cursor.status();
  auto batch = source->CutBatch(*cursor);
  if (!batch.ok()) return batch.status();
  return applier->Apply(*batch);
}

/// Byte equality between two vault directories, by authenticated
/// cursor: same artifact files, same sizes, same prefix hashes.
void ExpectDirsEqual(storage::Env* env_a, const std::string& dir_a,
                     storage::Env* env_b, const std::string& dir_b) {
  const std::string key = core::DeriveReplicationAuthKey(kEntropy);
  auto a = core::CursorForVaultDir(env_a, dir_a, key);
  auto b = core::CursorForVaultDir(env_b, dir_b, key);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  for (const auto& [rel, state] : a->files) {
    auto it = b->files.find(rel);
    ASSERT_NE(it, b->files.end())
        << rel << " (" << state.size << " bytes) missing from " << dir_b;
    EXPECT_EQ(state.size, it->second.size) << rel;
    EXPECT_EQ(state.prefix_hash, it->second.prefix_hash) << rel;
  }
  for (const auto& [rel, state] : b->files) {
    EXPECT_NE(a->files.find(rel), a->files.end())
        << rel << " (" << state.size << " bytes) only in " << dir_b;
  }
}

int RecoveryEvents(Vault* vault) {
  auto trail = vault->ReadAuditTrail("admin", "");
  if (!trail.ok()) {
    ADD_FAILURE() << "audit trail unreadable: " << trail.status().ToString();
    return -1;
  }
  int events = 0;
  for (const core::AuditEvent& event : *trail) {
    if (event.action == core::AuditAction::kRecovery) events++;
  }
  return events;
}

/// Registers the cast and ingests three records; returns their ids.
/// Bails (empty) on the first error, crash-workload style.
std::vector<std::string> SeedPrimary(Vault* vault) {
  if (!vault->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"}).ok())
    return {};
  if (!vault->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"}).ok())
    return {};
  if (!vault->RegisterPrincipal("admin", {"p", Role::kPatient, "P"}).ok())
    return {};
  if (!vault->AssignCare("admin", "dr", "p").ok()) return {};
  std::vector<std::string> ids;
  for (const char* text : {"alpha note", "beta result", "gamma scan"}) {
    auto id = vault->CreateRecord("dr", "p", "text/plain", text,
                                  {"shared"}, "hipaa-6y");
    if (!id.ok()) return {};
    ids.push_back(*id);
  }
  if (!vault->SyncAll().ok()) return {};
  return ids;
}

// ---------------------------------------------------------------------------
// Convergence and authenticated reads
// ---------------------------------------------------------------------------

TEST(ReplicationTest, ReplicaConvergesToByteEqualityAndServesReads) {
  storage::MemEnv env;
  ManualClock clock(1000000);
  auto opened = Vault::Open(PrimaryOptions(&env, &clock));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Vault* primary = opened->get();
  const std::vector<std::string> ids = SeedPrimary(primary);
  ASSERT_EQ(ids.size(), 3u);

  ReplicationSource source(primary);
  auto applier = ReplicaApplier::Open(ApplierOptions(&env));
  ASSERT_TRUE(applier.ok()) << applier.status().ToString();

  ASSERT_TRUE(Ship(&source, applier->get()).ok());
  EXPECT_EQ((*applier)->lag_bytes(), 0u);
  EXPECT_EQ((*applier)->applied_batches(), 1u);
  EXPECT_EQ((*applier)->last_applied_seq(), 1u);
  ExpectDirsEqual(&env, "primary", &env, "replica");

  // The replica holds the primary's audit head as of the cut.
  EXPECT_EQ((*applier)->last_audit_root(), primary->audit()->Root());
  EXPECT_EQ((*applier)->last_audit_size(), primary->audit()->size());

  // Authenticated reads through a read view — the replica dir itself
  // stays byte-exact (views are copies; reads append audit events).
  auto view = (*applier)->OpenReadView(PrimaryOptions(&env, &clock), "view1");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto read = (*view)->ReadRecord("dr", ids[0]);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->plaintext, "alpha note");
  EXPECT_TRUE((*view)->VerifyAudit().ok());
  ExpectDirsEqual(&env, "primary", &env, "replica");

  // Steady state: an empty delta still advances the stream cheaply.
  ASSERT_TRUE(Ship(&source, applier->get()).ok());
  EXPECT_EQ((*applier)->applied_batches(), 2u);
  EXPECT_EQ((*applier)->lag_bytes(), 0u);

  // Incremental: a correction ships as appends, not a re-clone.
  ASSERT_TRUE(primary
                  ->CorrectRecord("dr", ids[0], "alpha note, corrected",
                                  "typo", {"shared"})
                  .ok());
  ASSERT_TRUE(primary->SyncAll().ok());
  ASSERT_TRUE(Ship(&source, applier->get()).ok());
  ExpectDirsEqual(&env, "primary", &env, "replica");
  auto view2 =
      (*applier)->OpenReadView(PrimaryOptions(&env, &clock), "view2");
  ASSERT_TRUE(view2.ok());
  auto corrected = (*view2)->ReadRecord("dr", ids[0]);
  ASSERT_TRUE(corrected.ok());
  EXPECT_EQ(corrected->header.version, 2u);
  EXPECT_EQ(corrected->plaintext, "alpha note, corrected");
}

TEST(ReplicationTest, CryptoShredReplicates) {
  storage::MemEnv env;
  ManualClock clock(1000000);
  auto opened = Vault::Open(PrimaryOptions(&env, &clock));
  ASSERT_TRUE(opened.ok());
  Vault* primary = opened->get();
  ASSERT_EQ(SeedPrimary(primary).size(), 3u);
  auto doomed = primary->CreateRecord("dr", "p", "text/plain",
                                      "short-lived", {"delta"}, "short-1y");
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(primary->SyncAll().ok());

  ReplicationSource source(primary);
  auto applier = ReplicaApplier::Open(ApplierOptions(&env));
  ASSERT_TRUE(applier.ok());
  ASSERT_TRUE(Ship(&source, applier->get()).ok());

  // Shred on the primary: the key-log rewrite ships as a verified
  // whole-file replacement (rewrite generation invalidates the prefix).
  clock.AdvanceYears(2);
  ASSERT_TRUE(primary->DisposeRecord("admin", *doomed).ok());
  ASSERT_TRUE(primary->SyncAll().ok());
  ASSERT_TRUE(Ship(&source, applier->get()).ok());
  ExpectDirsEqual(&env, "primary", &env, "replica");

  auto view = (*applier)->OpenReadView(PrimaryOptions(&env, &clock), "view");
  ASSERT_TRUE(view.ok());
  auto read = (*view)->ReadRecord("p", *doomed);
  EXPECT_TRUE(read.status().IsKeyDestroyed())
      << "shredded record still readable on the replica: "
      << read.status().ToString();
}

// ---------------------------------------------------------------------------
// (b) Tamper evidence and quarantine
// ---------------------------------------------------------------------------

TEST(ReplicationTest, TamperedChunkRefusedWithPinpointedEvidence) {
  storage::MemEnv env;
  ManualClock clock(1000000);
  auto opened = Vault::Open(PrimaryOptions(&env, &clock));
  ASSERT_TRUE(opened.ok());
  ASSERT_EQ(SeedPrimary(opened->get()).size(), 3u);
  ReplicationSource source(opened->get());

  auto applier = ReplicaApplier::Open(ApplierOptions(&env));
  ASSERT_TRUE(applier.ok());
  auto cursor = (*applier)->Cursor();
  ASSERT_TRUE(cursor.ok());
  auto batch = source.CutBatch(*cursor);
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch->chunks.empty());

  // Flip one bit in one chunk's payload: the per-chunk leaf hash names
  // the exact chunk, and the replica quarantines.
  ShippedBatch tampered = *batch;
  tampered.chunks[1].data[0] ^= 0x01;
  Status refused = (*applier)->Apply(tampered);
  EXPECT_TRUE(refused.IsTamperDetected()) << refused.ToString();
  EXPECT_NE(refused.message().find("chunk 1"), std::string::npos)
      << "tamper evidence does not pinpoint the chunk: " << refused.ToString();
  EXPECT_NE(refused.message().find(tampered.chunks[1].path),
            std::string::npos)
      << refused.ToString();
  EXPECT_TRUE((*applier)->quarantined());
  EXPECT_FALSE((*applier)->quarantine_reason().empty());
  EXPECT_EQ((*applier)->applied_batches(), 0u);

  // Quarantine is sticky: even the CLEAN batch is refused now.
  Status still = (*applier)->Apply(*batch);
  EXPECT_TRUE(still.IsFailedPrecondition()) << still.ToString();

  // Operator override after investigation: the clean batch applies.
  (*applier)->ClearQuarantine();
  ASSERT_TRUE((*applier)->Apply(*batch).ok());
  EXPECT_EQ((*applier)->lag_bytes(), 0u);
  ExpectDirsEqual(&env, "primary", &env, "replica");
}

TEST(ReplicationTest, BitFlippedAndTornTransportsRefused) {
  storage::MemEnv env;
  storage::FaultInjectionEnv fault(&env);
  ManualClock clock(1000000);
  auto opened = Vault::Open(PrimaryOptions(&env, &clock));
  ASSERT_TRUE(opened.ok());
  ASSERT_EQ(SeedPrimary(opened->get()).size(), 3u);
  ReplicationSource source(opened->get());

  auto fresh_batch = [&](const std::string& dir)
      -> std::pair<std::unique_ptr<ReplicaApplier>, std::string> {
    auto applier = ReplicaApplier::Open(ApplierOptions(&env, dir));
    EXPECT_TRUE(applier.ok());
    auto cursor = (*applier)->Cursor();
    EXPECT_TRUE(cursor.ok());
    auto batch = source.CutBatch(*cursor);
    EXPECT_TRUE(batch.ok());
    return {std::move(*applier), batch->Encode()};
  };

  {
    // Bit rot in transit, injected through the adversary channel: the
    // encoded batch rests on disk (a spool file), FlipBit rots it, and
    // the applier must refuse what it reads back.
    auto [applier, encoded] = fresh_batch("replica-rot");
    ASSERT_TRUE(storage::WriteStringToFile(&fault, Slice(encoded),
                                           "spool.batch", /*sync=*/true)
                    .ok());
    ASSERT_TRUE(fault.FlipBit("spool.batch", encoded.size() / 2, 3).ok());
    std::string rotted;
    ASSERT_TRUE(storage::ReadFileToString(&fault, "spool.batch", &rotted).ok());
    Status refused = applier->ApplyEncoded(Slice(rotted));
    EXPECT_TRUE(refused.IsTamperDetected()) << refused.ToString();
    EXPECT_TRUE(applier->quarantined());
  }
  {
    // Torn transfer: a truncated encoding is refused as tamper, not
    // misapplied as a shorter batch.
    auto [applier, encoded] = fresh_batch("replica-torn");
    Status refused =
        applier->ApplyEncoded(Slice(encoded.data(), encoded.size() / 2));
    EXPECT_TRUE(refused.IsTamperDetected()) << refused.ToString();
    EXPECT_NE(refused.message().find("torn or tampered"), std::string::npos);
    EXPECT_TRUE(applier->quarantined());
  }
  {
    // Header forgery: a flipped audit-root bit fails the HMAC before
    // any chunk is even considered.
    auto [applier, encoded] = fresh_batch("replica-forge");
    auto batch = ShippedBatch::Decode(Slice(encoded));
    ASSERT_TRUE(batch.ok());
    batch->audit_root[0] ^= 0x01;
    Status refused = applier->Apply(*batch);
    EXPECT_TRUE(refused.IsTamperDetected()) << refused.ToString();
    EXPECT_NE(refused.message().find("authentication"), std::string::npos);
    EXPECT_TRUE(applier->quarantined());
  }
}

TEST(ReplicationTest, CutEndpointRefusesUnauthenticatedCursors) {
  storage::MemEnv env;
  ManualClock clock(1000000);
  auto opened = Vault::Open(PrimaryOptions(&env, &clock));
  ASSERT_TRUE(opened.ok());
  ASSERT_EQ(SeedPrimary(opened->get()).size(), 3u);
  ReplicationSource source(opened->get());

  // A cursor signed with the WRONG secret never learns vault bytes.
  auto forged = core::CursorForVaultDir(
      &env, "replica-none", core::DeriveReplicationAuthKey("wrong-secret"));
  ASSERT_TRUE(forged.ok());
  auto refused = source.HandleCutRequest(Slice(forged->Encode()));
  EXPECT_TRUE(refused.status().IsPermissionDenied())
      << refused.status().ToString();

  // The properly derived key is accepted.
  auto genuine = core::CursorForVaultDir(
      &env, "replica-none", core::DeriveReplicationAuthKey(kEntropy));
  ASSERT_TRUE(genuine.ok());
  auto batch = source.HandleCutRequest(Slice(genuine->Encode()));
  EXPECT_TRUE(batch.ok()) << batch.status().ToString();
}

// ---------------------------------------------------------------------------
// Satellite regression: a failed mid-batch apply must not advance the
// replica's applied-offset cursor (the AppendBatch partial-append class
// of bug, observed at the replication layer).
// ---------------------------------------------------------------------------

TEST(ReplicationTest, FailedMidBatchApplyDoesNotAdvanceCursor) {
  storage::MemEnv primary_env;
  storage::MemEnv replica_mem;
  storage::FaultInjectionEnv replica_env(&replica_mem);
  ManualClock clock(1000000);
  auto opened = Vault::Open(PrimaryOptions(&primary_env, &clock));
  ASSERT_TRUE(opened.ok());
  ASSERT_EQ(SeedPrimary(opened->get()).size(), 3u);
  ReplicationSource source(opened->get());

  auto applier = ReplicaApplier::Open(ApplierOptions(&replica_env));
  ASSERT_TRUE(applier.ok());
  auto cursor = (*applier)->Cursor();
  ASSERT_TRUE(cursor.ok());
  auto batch = source.CutBatch(*cursor);
  ASSERT_TRUE(batch.ok());
  ASSERT_GT(batch->chunks.size(), 1u);

  // The first chunk lands, everything after fails cleanly: some chunks
  // landed, the batch did not.
  replica_env.FailAfterWrites(1);
  Status failed = (*applier)->Apply(*batch);
  replica_env.Reset();
  ASSERT_FALSE(failed.ok());
  EXPECT_FALSE(failed.IsTamperDetected()) << failed.ToString();
  EXPECT_FALSE((*applier)->quarantined())
      << "an I/O failure is lag, not tamper";

  // The batch cursor did NOT advance...
  EXPECT_EQ((*applier)->applied_batches(), 0u);
  EXPECT_EQ((*applier)->last_applied_seq(), 0u);

  // ...and the same batch re-applies idempotently from on-disk truth.
  ASSERT_TRUE((*applier)->Apply(*batch).ok()) << "resume failed";
  EXPECT_EQ((*applier)->applied_batches(), 1u);
  EXPECT_EQ((*applier)->lag_bytes(), 0u);
  ExpectDirsEqual(&primary_env, "primary", &replica_env, "replica");
}

// ---------------------------------------------------------------------------
// (d) Lag and partition: catch-up from the replica's own cursor
// ---------------------------------------------------------------------------

TEST(ReplicationTest, LaggingReplicaCatchesUpToRootEquality) {
  storage::MemEnv env;
  ManualClock clock(1000000);
  auto opened = Vault::Open(PrimaryOptions(&env, &clock));
  ASSERT_TRUE(opened.ok());
  Vault* primary = opened->get();
  const std::vector<std::string> ids = SeedPrimary(primary);
  ASSERT_EQ(ids.size(), 3u);
  ReplicationSource source(primary);

  auto applier = ReplicaApplier::Open(ApplierOptions(&env));
  ASSERT_TRUE(applier.ok());
  ASSERT_TRUE(Ship(&source, applier->get()).ok());
  EXPECT_EQ((*applier)->lag_bytes(), 0u);

  // Partition: the primary keeps committing while the replica hears
  // nothing — several whole batches are simply never pulled.
  for (int round = 0; round < 4; round++) {
    auto id = primary->CreateRecord("dr", "p", "text/plain",
                                    "during partition " + std::to_string(round),
                                    {"shared"}, "hipaa-6y");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(primary->SyncAll().ok());
  }

  // The source's view of the backlog is visible at the next cut; one
  // pull round heals the whole partition (cursor protocol, no replay).
  auto cursor = (*applier)->Cursor();
  ASSERT_TRUE(cursor.ok());
  auto batch = source.CutBatch(*cursor);
  ASSERT_TRUE(batch.ok());
  EXPECT_GT(batch->lag_at_cut, 0u) << "backlog invisible at the cut";
  ASSERT_TRUE((*applier)->Apply(*batch).ok());
  EXPECT_EQ((*applier)->lag_bytes(), 0u);
  ExpectDirsEqual(&env, "primary", &env, "replica");
}

// ---------------------------------------------------------------------------
// (c) Promotion: crash-recovery open behind a scrub gate
// ---------------------------------------------------------------------------

TEST(ReplicationTest, PromotionAfterPrimaryKillPreservesContent) {
  storage::MemEnv env;
  ManualClock clock(1000000);
  std::string content_root;
  std::vector<std::string> ids;
  {
    auto opened = Vault::Open(PrimaryOptions(&env, &clock));
    ASSERT_TRUE(opened.ok());
    Vault* primary = opened->get();
    ids = SeedPrimary(primary);
    ASSERT_EQ(ids.size(), 3u);
    ReplicationSource source(primary);
    auto applier = ReplicaApplier::Open(ApplierOptions(&env));
    ASSERT_TRUE(applier.ok());
    ASSERT_TRUE(Ship(&source, applier->get()).ok());
    content_root = primary->ContentRoot();
    // Primary killed here: the vault object goes away and nothing more
    // is shipped.
  }

  auto applier = ReplicaApplier::Open(ApplierOptions(&env));
  ASSERT_TRUE(applier.ok());
  auto promoted = (*applier)->Promote(PrimaryOptions(&env, &clock));
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();

  // The promoted vault is the old primary, bit for bit where it counts.
  EXPECT_EQ((*promoted)->ContentRoot(), content_root);
  EXPECT_LE(RecoveryEvents(promoted->get()), 1)
      << "promotion recovery must be a single audited repair";
  EXPECT_TRUE((*promoted)->VerifyAudit().ok());
  for (const std::string& id : ids) {
    EXPECT_TRUE((*promoted)->ReadRecord("dr", id).ok()) << id;
  }

  // It serves as the NEW primary: fresh ingest and onward shipping.
  auto fresh = (*promoted)->CreateRecord("dr", "p", "text/plain",
                                         "post-promotion note", {"fresh"},
                                         "hipaa-6y");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ASSERT_TRUE((*promoted)->SyncAll().ok());

  // The applier's shipping role is over: applying to a promoted
  // replica would fork it from its own served state.
  ShippedBatch stale;
  Status refused = (*applier)->Apply(stale);
  EXPECT_TRUE(refused.IsFailedPrecondition()) << refused.ToString();
}

TEST(ReplicationTest, StructurallyDamagedReplicaQuarantinesInsteadOfPromoting) {
  storage::MemEnv env;
  storage::FaultInjectionEnv fault(&env);
  ManualClock clock(1000000);
  {
    auto opened = Vault::Open(PrimaryOptions(&env, &clock));
    ASSERT_TRUE(opened.ok());
    ASSERT_EQ(SeedPrimary(opened->get()).size(), 3u);
    ReplicationSource source(opened->get());
    auto applier = ReplicaApplier::Open(ApplierOptions(&env));
    ASSERT_TRUE(applier.ok());
    ASSERT_TRUE(Ship(&source, applier->get()).ok());
  }

  // Silent media damage on the REPLICA between apply and promotion —
  // the window replication cannot vouch for, only the scrub gate can.
  std::vector<std::string> segments;
  ASSERT_TRUE(env.GetChildren("replica/segments", &segments).ok());
  ASSERT_FALSE(segments.empty());
  std::sort(segments.begin(), segments.end());
  ASSERT_TRUE(
      fault.FlipBit("replica/segments/" + segments.back(), 40, 2).ok());

  auto applier = ReplicaApplier::Open(ApplierOptions(&env));
  ASSERT_TRUE(applier.ok());
  auto promoted = (*applier)->Promote(PrimaryOptions(&env, &clock));
  EXPECT_FALSE(promoted.ok())
      << "a damaged replica must never become the primary";
  EXPECT_TRUE((*applier)->quarantined());
  EXPECT_FALSE((*applier)->quarantine_reason().empty());
}

// ---------------------------------------------------------------------------
// (a) Primary crash matrix: the replica is never ahead of the
// recovered primary, at every I/O boundary, in both crash modes.
// ---------------------------------------------------------------------------

/// The replicated workload: mutate, sync, ship — four rounds. Bails on
/// the first error (the planned power cut kills everything after it).
void RunReplicatedWorkload(storage::Env* primary_env, ManualClock* clock,
                           ReplicaApplier* applier) {
  auto opened = Vault::Open(PrimaryOptions(primary_env, clock));
  if (!opened.ok()) return;
  Vault* primary = opened->get();
  ReplicationSource source(primary);

  if (SeedPrimary(primary).empty()) return;
  if (!Ship(&source, applier).ok()) return;

  auto r = primary->CreateRecord("dr", "p", "text/plain", "round two",
                                 {"shared"}, "hipaa-6y");
  if (!r.ok()) return;
  if (!primary->SyncAll().ok()) return;
  if (!Ship(&source, applier).ok()) return;

  if (!primary
           ->CorrectRecord("dr", *r, "round two, corrected", "typo",
                           {"shared"})
           .ok())
    return;
  if (!primary->SyncAll().ok()) return;
  if (!Ship(&source, applier).ok()) return;

  auto last = primary->CreateRecord("dr", "p", "text/plain", "round four",
                                    {"shared"}, "hipaa-6y");
  if (!last.ok()) return;
  if (!primary->SyncAll().ok()) return;
  (void)Ship(&source, applier);
}

/// Post-crash contract: everything the replica's read view serves, the
/// recovered primary serves at >= that version — then the recovered
/// primary ships the replica back to byte equality.
void CheckReplicaNotAhead(storage::MemEnv* primary_env, ManualClock* clock,
                          storage::Env* replica_env,
                          const std::string& label) {
  SCOPED_TRACE(label);
  auto reopened = Vault::Open(PrimaryOptions(primary_env, clock));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Vault* primary = reopened->get();
  EXPECT_TRUE(primary->VerifyAudit().ok());

  // A fresh applier rebuilds the applied-offset cursor from disk (the
  // old process died with the primary's power supply, as far as this
  // scenario cares).
  auto applier = ReplicaApplier::Open(ApplierOptions(replica_env));
  ASSERT_TRUE(applier.ok()) << applier.status().ToString();
  auto view =
      (*applier)->OpenReadView(PrimaryOptions(replica_env, clock), "view");
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  for (const std::string& id : (*view)->ListRecordIds()) {
    auto meta = (*view)->GetRecordMeta(id);
    ASSERT_TRUE(meta.ok()) << id;
    auto replica_read = (*view)->ReadRecord(meta->patient_id, id);
    ASSERT_TRUE(replica_read.ok()) << id << ": "
                                   << replica_read.status().ToString();
    auto primary_read = primary->ReadRecord(meta->patient_id, id);
    ASSERT_TRUE(primary_read.ok())
        << "replica exposes " << id
        << ", which the recovered primary cannot serve: "
        << primary_read.status().ToString();
    EXPECT_GE(primary_read->header.version, replica_read->header.version)
        << "replica ahead of the recovered primary on " << id;
  }

  // Catch-up: the recovered primary resumes shipping from the replica's
  // cursor (full-file fallback where recovery rewrote artifacts).
  ReplicationSource source(primary);
  for (int i = 0; i < 3 && (*applier)->lag_bytes() != 0; i++) {
    Status shipped = Ship(&source, applier->get());
    ASSERT_TRUE(shipped.ok()) << shipped.ToString();
  }
  Status final_ship = Ship(&source, applier->get());
  ASSERT_TRUE(final_ship.ok()) << final_ship.ToString();
  EXPECT_EQ((*applier)->lag_bytes(), 0u);
  ExpectDirsEqual(primary_env, "primary", replica_env, "replica");
}

uint64_t CountReplicatedBoundaries() {
  storage::MemEnv primary_mem;
  primary_mem.SetCrashTrackingEnabled(true);
  storage::FaultInjectionEnv fault(&primary_mem);
  storage::MemEnv replica_env;
  ManualClock clock(1000000);
  auto applier = ReplicaApplier::Open(ApplierOptions(&replica_env));
  EXPECT_TRUE(applier.ok());
  RunReplicatedWorkload(&fault, &clock, applier->get());
  // The dry run must converge, or the matrix tests a truncated stream.
  EXPECT_EQ((*applier)->lag_bytes(), 0u);
  EXPECT_EQ((*applier)->applied_batches(), 4u);
  return fault.ops();
}

void RunPrimaryCrashMatrix(storage::CrashMode mode) {
  const uint64_t boundaries = CountReplicatedBoundaries();
  ASSERT_GT(boundaries, 0u);
  for (uint64_t k = 0; k < boundaries; k++) {
    storage::MemEnv primary_mem;
    primary_mem.SetCrashTrackingEnabled(true);
    storage::FaultInjectionEnv fault(&primary_mem);
    storage::MemEnv replica_env;
    ManualClock clock(1000000);
    fault.PlanCrash(k);

    auto applier = ReplicaApplier::Open(ApplierOptions(&replica_env));
    ASSERT_TRUE(applier.ok());
    RunReplicatedWorkload(&fault, &clock, applier->get());
    ASSERT_TRUE(fault.crashed()) << "boundary " << k << " never reached";
    ASSERT_FALSE((*applier)->quarantined())
        << "a primary crash must read as lag on the replica, never tamper";

    primary_mem.CrashAndRecover(mode, /*seed=*/static_cast<uint32_t>(k));
    CheckReplicaNotAhead(&primary_mem, &clock, &replica_env,
                         "primary crash at boundary " + std::to_string(k));
  }
}

TEST(ReplicatedCrashMatrixTest, PrimaryKilledAtEveryBoundaryDropUnsynced) {
  RunPrimaryCrashMatrix(storage::CrashMode::kDropUnsynced);
}

TEST(ReplicatedCrashMatrixTest, PrimaryKilledAtEveryBoundaryKeepPartial) {
  RunPrimaryCrashMatrix(storage::CrashMode::kKeepPartial);
}

// ---------------------------------------------------------------------------
// Replica crash matrix: the APPLIER dies at every I/O boundary of its
// own apply stream, and a fresh applier resumes from disk — torn local
// tails are lag, never quarantine.
// ---------------------------------------------------------------------------

/// Pulls until converged against a fixed primary; bails on error.
void PullUntilConverged(ReplicationSource* source, ReplicaApplier* applier) {
  for (int i = 0; i < 6; i++) {
    if (!Ship(source, applier).ok()) return;
    if (applier->lag_bytes() == 0 && applier->applied_batches() > 0) return;
  }
}

void RunReplicaCrashMatrix(storage::CrashMode mode) {
  // Fixed primary, built once: pulls never mutate it.
  storage::MemEnv primary_env;
  ManualClock clock(1000000);
  auto opened = Vault::Open(PrimaryOptions(&primary_env, &clock));
  ASSERT_TRUE(opened.ok());
  ASSERT_EQ(SeedPrimary(opened->get()).size(), 3u);
  ReplicationSource source(opened->get());

  // Dry run on a pristine replica env to count apply-side boundaries.
  uint64_t boundaries = 0;
  {
    storage::MemEnv replica_mem;
    replica_mem.SetCrashTrackingEnabled(true);
    storage::FaultInjectionEnv fault(&replica_mem);
    auto applier = ReplicaApplier::Open(ApplierOptions(&fault));
    ASSERT_TRUE(applier.ok());
    PullUntilConverged(&source, applier->get());
    ASSERT_EQ((*applier)->lag_bytes(), 0u);
    boundaries = fault.ops();
  }
  ASSERT_GT(boundaries, 0u);

  for (uint64_t k = 0; k < boundaries; k++) {
    SCOPED_TRACE("replica crash at boundary " + std::to_string(k));
    storage::MemEnv replica_mem;
    replica_mem.SetCrashTrackingEnabled(true);
    storage::FaultInjectionEnv fault(&replica_mem);
    fault.PlanCrash(k);
    {
      auto applier = ReplicaApplier::Open(ApplierOptions(&fault));
      if (applier.ok()) PullUntilConverged(&source, applier->get());
    }
    ASSERT_TRUE(fault.crashed()) << "boundary " << k << " never reached";
    replica_mem.CrashAndRecover(mode, /*seed=*/static_cast<uint32_t>(k));
    fault.Reset();

    // A fresh applier (fresh process) resumes from whatever survived.
    auto resumed = ReplicaApplier::Open(ApplierOptions(&fault));
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_FALSE((*resumed)->quarantined())
        << "a torn local tail must read as lag, not tamper: "
        << (*resumed)->quarantine_reason();
    PullUntilConverged(&source, resumed->get());
    EXPECT_EQ((*resumed)->lag_bytes(), 0u);
    ExpectDirsEqual(&primary_env, "primary", &fault, "replica");
  }
}

TEST(ReplicatedCrashMatrixTest, ReplicaKilledAtEveryBoundaryDropUnsynced) {
  RunReplicaCrashMatrix(storage::CrashMode::kDropUnsynced);
}

TEST(ReplicatedCrashMatrixTest, ReplicaKilledAtEveryBoundaryKeepPartial) {
  RunReplicaCrashMatrix(storage::CrashMode::kKeepPartial);
}

// ---------------------------------------------------------------------------
// Sharded topology: per-shard streams, sharded promotion
// ---------------------------------------------------------------------------

ShardedVaultOptions ShardedPrimaryOptions(storage::Env* env,
                                          const Clock* clock) {
  ShardedVaultOptions options;
  options.env = env;
  options.dir = "sharded-primary";
  options.clock = clock;
  options.master_key = std::string(32, 'M');
  options.entropy = kEntropy;
  options.num_shards = 2;
  options.signer_height = 4;
  options.ingest_threads = 1;
  return options;
}

/// Two patient ids that hash to shard 0 and shard 1 respectively.
std::vector<std::string> PatientsPerShard() {
  core::ShardRouter router(2);
  std::vector<std::string> patients(2);
  std::vector<bool> found(2, false);
  for (int i = 0; !(found[0] && found[1]); ++i) {
    std::string candidate = "pat-" + std::to_string(i);
    uint32_t shard = router.ShardOf(candidate);
    if (!found[shard]) {
      patients[shard] = candidate;
      found[shard] = true;
    }
  }
  return patients;
}

TEST(ShardedReplicationTest, PerShardStreamsConvergeAndPromote) {
  storage::MemEnv env;
  ManualClock clock(1000000);
  auto opened = ShardedVault::Open(ShardedPrimaryOptions(&env, &clock));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ShardedVault* primary = opened->get();
  const std::vector<std::string> patients = PatientsPerShard();

  ASSERT_TRUE(
      primary->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"}).ok());
  ASSERT_TRUE(
      primary->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"})
          .ok());
  std::vector<std::string> ids;
  for (const std::string& patient : patients) {
    ASSERT_TRUE(primary
                    ->RegisterPrincipal("admin",
                                        {patient, Role::kPatient, patient})
                    .ok());
    ASSERT_TRUE(primary->AssignCare("admin", "dr", patient).ok());
    auto id = primary->CreateRecord("dr", patient, "text/plain",
                                    "note for " + patient, {"shared"},
                                    "hipaa-6y");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(primary->SyncAll().ok());

  ShardedReplicationSource source(primary);
  ShardedReplicaApplier::Options applier_options;
  applier_options.env = &env;
  applier_options.dir = "sharded-replica";
  applier_options.entropy = kEntropy;
  applier_options.num_shards = 2;
  applier_options.apply_threads = 1;  // deterministic
  auto applier = ShardedReplicaApplier::Open(applier_options);
  ASSERT_TRUE(applier.ok()) << applier.status().ToString();

  auto cursors = (*applier)->Cursors();
  ASSERT_TRUE(cursors.ok());
  auto batches = source.CutAll(*cursors);
  ASSERT_TRUE(batches.ok()) << batches.status().ToString();
  ASSERT_EQ(batches->size(), 2u);
  ASSERT_TRUE((*applier)->ApplyAll(*batches).ok());
  EXPECT_EQ((*applier)->lag_bytes(), 0u);
  EXPECT_EQ((*applier)->quarantined_shards(), 0u);
  for (uint32_t k = 0; k < 2; k++) {
    ExpectDirsEqual(&env, "sharded-primary/shard-" + std::to_string(k), &env,
                    "sharded-replica/shard-" + std::to_string(k));
  }

  // Tamper one shard's stream: only that shard quarantines; the other
  // keeps applying.
  auto cursors2 = (*applier)->Cursors();
  ASSERT_TRUE(cursors2.ok());
  auto batches2 = source.CutAll(*cursors2);
  ASSERT_TRUE(batches2.ok());
  (*batches2)[1].audit_root[0] ^= 0x01;
  Status partial = (*applier)->ApplyAll(*batches2);
  EXPECT_TRUE(partial.IsTamperDetected()) << partial.ToString();
  EXPECT_EQ((*applier)->quarantined_shards(), 1u);
  EXPECT_TRUE((*applier)->any_quarantined());

  // Operator clears it; a clean round reconverges both shards.
  (*applier)->shard(1)->ClearQuarantine();
  auto cursors3 = (*applier)->Cursors();
  ASSERT_TRUE(cursors3.ok());
  auto batches3 = source.CutAll(*cursors3);
  ASSERT_TRUE(batches3.ok());
  ASSERT_TRUE((*applier)->ApplyAll(*batches3).ok());
  EXPECT_EQ((*applier)->quarantined_shards(), 0u);
  EXPECT_EQ((*applier)->lag_bytes(), 0u);

  // Sharded promotion: scrub gate per shard, then a degraded-capable
  // open; the promoted vault serves every record.
  std::string root0 = primary->shard(0)->ContentRoot();
  std::string root1 = primary->shard(1)->ContentRoot();
  auto promoted = (*applier)->Promote(ShardedPrimaryOptions(&env, &clock));
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ((*promoted)->num_shards(), 2u);
  EXPECT_EQ((*promoted)->shard(0)->ContentRoot(), root0);
  EXPECT_EQ((*promoted)->shard(1)->ContentRoot(), root1);
  for (const std::string& id : ids) {
    EXPECT_TRUE((*promoted)->ReadRecord("dr", id).ok()) << id;
  }
  for (uint32_t k = 0; k < 2; k++) {
    EXPECT_LE(RecoveryEvents((*promoted)->shard(k)), 1) << "shard " << k;
  }
}

// ---------------------------------------------------------------------------
// The wire: /v1/replication status + the cursor-authenticated cut
// endpoint, end to end over real sockets.
// ---------------------------------------------------------------------------

TEST(ReplicationServerTest, ReplicaPullsOverHttpAndHealthReportsPosture) {
  storage::MemEnv env;
  ManualClock clock(1000000);
  obs::MetricsRegistry registry;
  ShardedVaultOptions vault_options = ShardedPrimaryOptions(&env, &clock);
  vault_options.metrics = &registry;
  auto opened = ShardedVault::Open(vault_options);
  ASSERT_TRUE(opened.ok());
  ShardedVault* primary = opened->get();
  const std::vector<std::string> patients = PatientsPerShard();
  ASSERT_TRUE(
      primary->RegisterPrincipal("boot", {"admin", Role::kAdmin, "A"}).ok());
  ASSERT_TRUE(
      primary->RegisterPrincipal("admin", {"dr", Role::kPhysician, "D"})
          .ok());
  ASSERT_TRUE(primary
                  ->RegisterPrincipal(
                      "admin", {patients[0], Role::kPatient, patients[0]})
                  .ok());
  ASSERT_TRUE(primary->AssignCare("admin", "dr", patients[0]).ok());
  auto id = primary->CreateRecord("dr", patients[0], "text/plain",
                                  "wire note", {"shared"}, "hipaa-6y");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(primary->SyncAll().ok());

  ShardedReplicationSource source(primary);
  server::ServerOptions server_options;
  server_options.port = 0;
  server_options.worker_threads = 2;
  server_options.session_entropy = "repl-server-session";
  server_options.clock = &clock;
  server_options.repl_source = &source;
  auto server = server::MedVaultServer::Start(primary, server_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  ShardedReplicaApplier::Options applier_options;
  applier_options.env = &env;
  applier_options.dir = "sharded-replica";
  applier_options.entropy = kEntropy;
  applier_options.num_shards = 2;
  applier_options.apply_threads = 1;
  auto applier = ShardedReplicaApplier::Open(applier_options);
  ASSERT_TRUE(applier.ok());

  server::HttpClient client;
  ASSERT_TRUE(client.Connect((*server)->port()).ok());

  // Status route, unauthenticated (like /v1/health).
  auto status_resp = client.Do("GET", "/v1/replication");
  ASSERT_TRUE(status_resp.ok());
  EXPECT_EQ(status_resp->status, 200);
  auto status_json = obs::json::Value::Parse(status_resp->body);
  ASSERT_TRUE(status_json.ok()) << status_resp->body;
  EXPECT_EQ(status_json->as_object().at("role").as_string(), "primary");

  // The full pull protocol over the wire, per shard.
  for (uint32_t k = 0; k < 2; k++) {
    auto cursor = (*applier)->shard(k)->Cursor();
    ASSERT_TRUE(cursor.ok());
    auto resp = client.Do("POST", "/v1/replication/cut/" + std::to_string(k),
                          cursor->Encode());
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->status, 200) << resp->body;
    ASSERT_TRUE((*applier)->shard(k)->ApplyEncoded(Slice(resp->body)).ok());
  }
  EXPECT_EQ((*applier)->lag_bytes(), 0u);
  EXPECT_EQ((*applier)->applied_batches(), 2u);

  // A caller without the shared secret gets 403 and no vault bytes.
  auto forged = core::CursorForVaultDir(
      &env, "nowhere", core::DeriveReplicationAuthKey("wrong"));
  ASSERT_TRUE(forged.ok());
  auto denied = client.Do("POST", "/v1/replication/cut/0", forged->Encode());
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied->status, 403) << denied->body;

  // Unknown shard and non-numeric indexes are rejected, not crashed.
  auto missing = client.Do("POST", "/v1/replication/cut/7", "");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  auto garbage = client.Do("POST", "/v1/replication/cut/x", "");
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage->status, 400);

  // /v1/health gains the conditional repl section.
  auto health = client.Do("GET", "/v1/health");
  ASSERT_TRUE(health.ok());
  ASSERT_EQ(health->status, 200);
  auto health_json = obs::json::Value::Parse(health->body);
  ASSERT_TRUE(health_json.ok());
  const auto& health_obj = health_json->as_object();
  ASSERT_NE(health_obj.find("repl"), health_obj.end())
      << "health report missing the repl section";
  const auto& repl = health_obj.at("repl").as_object();
  EXPECT_EQ(repl.at("primary").as_int(), 1);
  EXPECT_GE(repl.at("shipped_batches").as_int(), 2);

  (*server)->Stop();
}

}  // namespace
}  // namespace medvault
