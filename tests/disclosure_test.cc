// Accounting-of-disclosures (HIPAA §164.528) and break-glass review
// tests.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/vault.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class DisclosureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    VaultOptions options;
    options.env = &env_;
    options.dir = "vault";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "disclosure-entropy";
    options.signer_height = 4;
    auto vault = Vault::Open(options);
    ASSERT_TRUE(vault.ok());
    vault_ = std::move(vault).value();

    ASSERT_TRUE(
        vault_->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"dr-a", Role::kPhysician, "Dr A"})
                    .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"dr-b", Role::kPhysician, "Dr B"})
                    .ok());
    ASSERT_TRUE(
        vault_
            ->RegisterPrincipal("admin-r",
                                {"aud-x", Role::kAuditor, "Auditor"})
            .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"pat-p", Role::kPatient, "P"})
                    .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"pat-q", Role::kPatient, "Q"})
                    .ok());
    ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-a", "pat-p").ok());
    ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-b", "pat-q").ok());
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  std::unique_ptr<Vault> vault_;
};

TEST_F(DisclosureTest, AccountingListsReadsOfPatientRecordsOnly) {
  auto rp = vault_->CreateRecord("dr-a", "pat-p", "text/plain", "p note",
                                 {}, "hipaa-6y");
  auto rq = vault_->CreateRecord("dr-b", "pat-q", "text/plain", "q note",
                                 {}, "hipaa-6y");
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rq.ok());

  // Three disclosures of p's record, two of q's.
  ASSERT_TRUE(vault_->ReadRecord("dr-a", *rp).ok());
  ASSERT_TRUE(vault_->ReadRecord("dr-a", *rp).ok());
  ASSERT_TRUE(vault_->ReadRecordVersion("dr-a", *rp, 1).ok());
  ASSERT_TRUE(vault_->ReadRecord("dr-b", *rq).ok());
  ASSERT_TRUE(vault_->ReadRecord("dr-b", *rq).ok());

  auto accounting = vault_->AccountingOfDisclosures("aud-x", "pat-p");
  ASSERT_TRUE(accounting.ok());
  EXPECT_EQ(accounting->size(), 3u);
  for (const AuditEvent& e : *accounting) {
    EXPECT_EQ(e.action, AuditAction::kRead);
    EXPECT_EQ(e.record_id, *rp);
    EXPECT_EQ(e.actor, "dr-a");
  }
}

TEST_F(DisclosureTest, PatientMayRequestTheirOwnAccounting) {
  auto rp = vault_->CreateRecord("dr-a", "pat-p", "text/plain", "p note",
                                 {}, "hipaa-6y");
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(vault_->ReadRecord("dr-a", *rp).ok());

  auto own = vault_->AccountingOfDisclosures("pat-p", "pat-p");
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(own->size(), 1u);

  // But not someone else's.
  EXPECT_TRUE(vault_->AccountingOfDisclosures("pat-p", "pat-q")
                  .status()
                  .IsPermissionDenied());
  // And clinicians aren't entitled either.
  EXPECT_TRUE(vault_->AccountingOfDisclosures("dr-a", "pat-p")
                  .status()
                  .IsPermissionDenied());
}

TEST_F(DisclosureTest, BreakGlassAppearsInPatientAccounting) {
  auto rq = vault_->CreateRecord("dr-b", "pat-q", "text/plain", "q note",
                                 {}, "hipaa-6y");
  ASSERT_TRUE(rq.ok());
  ASSERT_TRUE(vault_
                  ->BreakGlass("dr-a", "pat-q", "ER coverage",
                               3600 * kMicrosPerSecond)
                  .ok());
  ASSERT_TRUE(vault_->ReadRecord("dr-a", *rq).ok());

  auto accounting = vault_->AccountingOfDisclosures("aud-x", "pat-q");
  ASSERT_TRUE(accounting.ok());
  ASSERT_EQ(accounting->size(), 2u);  // the grant + the read
  EXPECT_EQ((*accounting)[0].action, AuditAction::kBreakGlass);
  EXPECT_EQ((*accounting)[1].action, AuditAction::kRead);
}

TEST_F(DisclosureTest, AccountingRequestItselfIsAudited) {
  ASSERT_TRUE(vault_->AccountingOfDisclosures("aud-x", "pat-p").ok());
  auto trail = vault_->ReadAuditTrail("aud-x", "");
  ASSERT_TRUE(trail.ok());
  bool found = false;
  for (const AuditEvent& e : *trail) {
    if (e.details.rfind("accounting-of-disclosures", 0) == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(DisclosureTest, DeniedAccessDoesNotCountAsDisclosure) {
  auto rp = vault_->CreateRecord("dr-a", "pat-p", "text/plain", "p note",
                                 {}, "hipaa-6y");
  ASSERT_TRUE(rp.ok());
  // dr-b has no relation to pat-p: denied, so nothing was disclosed.
  ASSERT_FALSE(vault_->ReadRecord("dr-b", *rp).ok());
  auto accounting = vault_->AccountingOfDisclosures("aud-x", "pat-p");
  ASSERT_TRUE(accounting.ok());
  EXPECT_TRUE(accounting->empty());
}

TEST_F(DisclosureTest, BreakGlassReviewListsAllGrants) {
  ASSERT_TRUE(vault_
                  ->BreakGlass("dr-a", "pat-q", "night shift",
                               kMicrosPerSecond)
                  .ok());
  ASSERT_TRUE(vault_
                  ->BreakGlass("dr-b", "pat-p", "code blue",
                               kMicrosPerSecond)
                  .ok());
  auto review = vault_->ListBreakGlassEvents("aud-x");
  ASSERT_TRUE(review.ok());
  ASSERT_EQ(review->size(), 2u);
  EXPECT_NE((*review)[0].details.find("night shift"), std::string::npos);
  EXPECT_NE((*review)[1].details.find("code blue"), std::string::npos);

  // Only auditors/admins review.
  EXPECT_TRUE(
      vault_->ListBreakGlassEvents("dr-a").status().IsPermissionDenied());
  EXPECT_TRUE(vault_->ListBreakGlassEvents("admin-r").ok());
}

}  // namespace
}  // namespace medvault::core
