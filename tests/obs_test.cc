// Observability layer tests: histogram bucket math, registry
// cardinality bounds, slow-op tracing, concurrent metric recording
// (the TSan target for this module), the InstrumentedEnv I/O tallies,
// the deterministic JSON value, and the HealthReport golden round-trip.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/record_cache.h"
#include "core/vault.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "storage/instrumented_env.h"
#include "storage/mem_env.h"

namespace medvault::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucket math.
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly {0}; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);

  // Every power-of-two edge up to the clamp: 2^i - 1 lands in bucket i,
  // 2^i in bucket i+1.
  for (size_t i = 1; i + 1 < Histogram::kNumBuckets; i++) {
    uint64_t edge = 1ULL << i;
    EXPECT_EQ(Histogram::BucketIndex(edge - 1), i) << "edge 2^" << i << "-1";
    EXPECT_EQ(Histogram::BucketIndex(edge), i + 1) << "edge 2^" << i;
  }

  // The last bucket absorbs everything too wide to classify.
  EXPECT_EQ(Histogram::BucketIndex(1ULL << 31), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(~0ULL), Histogram::kNumBuckets - 1);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
}

TEST(HistogramTest, RecordAggregatesCountSumMax) {
  Histogram hist;
  hist.Record(0);
  hist.Record(5);
  hist.Record(1000);
  Histogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 1005u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.buckets[0], 1u);                           // the 0
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(5)], 1u);
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(1000)], 1u);
}

TEST(HistogramTest, PercentileUpperBound) {
  Histogram hist;
  EXPECT_EQ(hist.TakeSnapshot().PercentileUpperBound(50), 0u);

  // 90 fast samples (~hundreds of micros), 10 slow ones (~100k micros):
  // p50 sits in the fast bucket, p99 in the slow one.
  for (int i = 0; i < 90; i++) hist.Record(300);
  for (int i = 0; i < 10; i++) hist.Record(100000);
  Histogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.PercentileUpperBound(50),
            Histogram::BucketUpperBound(Histogram::BucketIndex(300)));
  EXPECT_EQ(snap.PercentileUpperBound(90),
            Histogram::BucketUpperBound(Histogram::BucketIndex(300)));
  EXPECT_EQ(snap.PercentileUpperBound(99),
            Histogram::BucketUpperBound(Histogram::BucketIndex(100000)));
  EXPECT_EQ(snap.PercentileUpperBound(100),
            Histogram::BucketUpperBound(Histogram::BucketIndex(100000)));
}

// ---------------------------------------------------------------------------
// MetricsRegistry.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameSamePointer) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("ingest.records");
  Counter* c2 = registry.GetCounter("ingest.records");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, registry.GetCounter("ingest.bytes"));
  EXPECT_EQ(registry.GetHistogram("vault.read"),
            registry.GetHistogram("vault.read"));
}

TEST(MetricsRegistryTest, SnapshotReflectsRecordedValues) {
  MetricsRegistry registry;
  registry.GetCounter("a")->Increment(3);
  registry.GetGauge("depth")->Set(-7);
  registry.GetHistogram("h")->Record(10);
  MetricsRegistry::RegistrySnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("a"), 3u);
  EXPECT_EQ(snap.gauges.at("depth"), -7);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  EXPECT_EQ(snap.series_dropped, 0u);
}

TEST(MetricsRegistryTest, CardinalityCapRoutesToOverflowSeries) {
  MetricsRegistry registry;
  // Exhaust the per-kind budget with distinct names (the overflow
  // series itself occupies one slot, so cap-1 distinct real series).
  for (size_t i = 0; i < MetricsRegistry::kMaxSeriesPerKind + 10; i++) {
    registry.GetCounter("series-" + std::to_string(i))->Increment();
  }
  MetricsRegistry::RegistrySnapshot snap = registry.TakeSnapshot();
  // The cap bounds real series; the shared "_overflow" series rides on
  // top of it, so the map never exceeds cap + 1.
  EXPECT_LE(snap.counters.size(), MetricsRegistry::kMaxSeriesPerKind + 1);
  EXPECT_GT(snap.series_dropped, 0u);
  ASSERT_TRUE(snap.counters.count("_overflow"));
  EXPECT_GT(snap.counters.at("_overflow"), 0u);
  // Past the cap, every unknown name shares the overflow series.
  EXPECT_EQ(registry.GetCounter("another-new-name"),
            registry.GetCounter("yet-another-new-name"));
  // Pre-existing series are unaffected by the cap.
  registry.GetCounter("series-0")->Increment();
  EXPECT_EQ(registry.TakeSnapshot().counters.at("series-0"), 2u);
}

TEST(MetricsRegistryTest, SlowOpTracingThresholdAndSink) {
  MetricsRegistry registry;
  std::vector<SlowOp> traced;
  registry.SetSlowOpSink([&](const SlowOp& op) { traced.push_back(op); });
  registry.SetSlowOpThresholdMicros(1000);

  registry.MaybeTraceSlowOp("vault.read", 999);     // under: not traced
  registry.MaybeTraceSlowOp("vault.read", 1000);    // at: traced
  registry.MaybeTraceSlowOp("vault.verify", 50000); // over: traced
  ASSERT_EQ(traced.size(), 2u);
  EXPECT_EQ(traced[0].op, "vault.read");
  EXPECT_EQ(traced[0].micros, 1000u);
  EXPECT_EQ(traced[0].threshold_micros, 1000u);
  EXPECT_EQ(traced[1].op, "vault.verify");
  EXPECT_EQ(registry.TakeSnapshot().slow_ops, 2u);

  // Threshold 0 disables tracing outright.
  registry.SetSlowOpThresholdMicros(0);
  registry.MaybeTraceSlowOp("vault.read", 1 << 30);
  EXPECT_EQ(traced.size(), 2u);
  EXPECT_EQ(registry.TakeSnapshot().slow_ops, 2u);
}

TEST(MetricsRegistryTest, ScopedOpTimerRecordsAndNullsAreInert) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("op");
  { ScopedOpTimer timer(&registry, hist, "op"); }
  EXPECT_EQ(hist->TakeSnapshot().count, 1u);
  // Null histogram / registry: no crash, nothing recorded.
  { ScopedOpTimer timer(nullptr, nullptr, "op"); }
  { ScopedOpTimer timer(nullptr, hist, "op"); }
  EXPECT_EQ(hist->TakeSnapshot().count, 2u);
}

TEST(MetricsRegistryTest, VaultOpMetricsCachesNamedHistograms) {
  MetricsRegistry registry;
  VaultOpMetrics ops = VaultOpMetrics::For(&registry, "vault");
  EXPECT_EQ(ops.read, registry.GetHistogram("vault.read"));
  EXPECT_EQ(ops.batch_ingest, registry.GetHistogram("vault.batch_ingest"));
  EXPECT_EQ(ops.recover, registry.GetHistogram("vault.recover"));
  VaultOpMetrics sharded = VaultOpMetrics::For(&registry, "sharded");
  EXPECT_EQ(sharded.read, registry.GetHistogram("sharded.read"));
  EXPECT_NE(sharded.read, ops.read);
}

// The TSan target: concurrent recording into shared series plus
// concurrent name lookups and snapshots must be race-free, and
// counters must not lose increments.
TEST(MetricsRegistryTest, ConcurrentRecordingIsRaceFreeAndExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Counter* shared = registry.GetCounter("shared");
      Histogram* hist = registry.GetHistogram("latency");
      Gauge* gauge = registry.GetGauge("depth");
      for (int i = 0; i < kOpsPerThread; ++i) {
        shared->Increment();
        hist->Record(static_cast<uint64_t>(i));
        gauge->Add(1);
        gauge->Add(-1);
        if (i % 1000 == 0) {
          // Lookups and snapshots race the recorders on purpose.
          registry.GetCounter("thread-" + std::to_string(t))->Increment();
          (void)registry.TakeSnapshot();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  MetricsRegistry::RegistrySnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("shared"),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(snap.histograms.at("latency").count,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(snap.gauges.at("depth"), 0);
}

// ---------------------------------------------------------------------------
// InstrumentedEnv.
// ---------------------------------------------------------------------------

TEST(InstrumentedEnvTest, CountsCallsAndBytes) {
  storage::MemEnv base;
  storage::IoStats stats;
  storage::InstrumentedEnv env(&base, &stats);

  ASSERT_TRUE(storage::WriteStringToFile(&env, Slice("hello world"),
                                         "f", /*sync=*/true)
                  .ok());
  std::string back;
  ASSERT_TRUE(storage::ReadFileToString(&env, "f", &back).ok());
  EXPECT_EQ(back, "hello world");

  storage::IoStatsSnapshot snap = stats.TakeSnapshot();
  EXPECT_GE(snap.file_opens, 2u);  // one write handle + one read handle
  EXPECT_GE(snap.writes, 1u);
  EXPECT_EQ(snap.write_bytes, 11u);
  EXPECT_GE(snap.reads, 1u);
  EXPECT_GE(snap.read_bytes, 11u);
  EXPECT_GE(snap.syncs, 1u);

  ASSERT_TRUE(env.RenameFile("f", "g").ok());
  ASSERT_TRUE(env.RemoveFile("g").ok());
  snap = stats.TakeSnapshot();
  EXPECT_EQ(snap.renames, 1u);
  EXPECT_EQ(snap.deletes, 1u);

  // The underlying env saw the traffic (pass-through, not interception).
  EXPECT_FALSE(base.FileExists("f"));
}

TEST(InstrumentedEnvTest, SharedStatsAccumulateAcrossEnvs) {
  storage::MemEnv base1, base2;
  storage::IoStats stats;
  storage::InstrumentedEnv env1(&base1, &stats);
  storage::InstrumentedEnv env2(&base2, &stats);
  ASSERT_TRUE(
      storage::WriteStringToFile(&env1, Slice("aa"), "f", false).ok());
  ASSERT_TRUE(
      storage::WriteStringToFile(&env2, Slice("bbbb"), "f", false).ok());
  EXPECT_EQ(stats.TakeSnapshot().write_bytes, 6u);
}

// ---------------------------------------------------------------------------
// Deterministic JSON.
// ---------------------------------------------------------------------------

TEST(JsonTest, DumpIsDeterministicAndSorted) {
  json::Value::Object obj;
  obj["zeta"] = json::Value(1);
  obj["alpha"] = json::Value(true);
  obj["mid"] = json::Value("s");
  EXPECT_EQ(json::Value(std::move(obj)).Dump(),
            "{\"alpha\":true,\"mid\":\"s\",\"zeta\":1}");
}

TEST(JsonTest, RoundTripsAllTypes) {
  json::Value::Array arr;
  arr.push_back(json::Value(nullptr));
  arr.push_back(json::Value(false));
  arr.push_back(json::Value(int64_t{-42}));
  const uint64_t kMaxU64 = ~uint64_t{0};
  arr.push_back(json::Value(kMaxU64));  // full uint64 range survives
  arr.push_back(json::Value("esc \"quotes\" \\ and \n tab \t"));
  json::Value::Object obj;
  obj["nested"] = json::Value(std::move(arr));
  obj["empty_obj"] = json::Value(json::Value::Object{});
  obj["empty_arr"] = json::Value(json::Value::Array{});
  std::string text = json::Value(std::move(obj)).Dump();

  auto parsed = json::Value::Parse(Slice(text));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), text) << "Dump(Parse(x)) != x";
  EXPECT_EQ(parsed->as_object().at("nested").as_array()[3].as_uint(),
            kMaxU64);
  EXPECT_EQ(parsed->as_object().at("nested").as_array()[2].as_int(), -42);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(json::Value::Parse(Slice("")).ok());
  EXPECT_FALSE(json::Value::Parse(Slice("{\"a\":1")).ok());      // truncated
  EXPECT_FALSE(json::Value::Parse(Slice("1 trailing")).ok());    // garbage
  EXPECT_FALSE(json::Value::Parse(Slice("1.5")).ok());           // float
  EXPECT_FALSE(json::Value::Parse(Slice("1e9")).ok());           // float
  EXPECT_FALSE(json::Value::Parse(Slice("nul")).ok());
  EXPECT_FALSE(json::Value::Parse(Slice("\"bad \\x escape\"")).ok());
  // Nesting bomb past the depth limit.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json::Value::Parse(Slice(deep)).ok());
}

// ---------------------------------------------------------------------------
// HealthReport.
// ---------------------------------------------------------------------------

TEST(HealthReportTest, EmptyReportGoldenDump) {
  HealthReport report;
  report.generated_at = 42;
  EXPECT_EQ(report.Dump(),
            "{\"counters\":{},\"gauges\":{},\"generated_at\":42,"
            "\"ops\":{},\"series_dropped\":0,\"shards\":[],"
            "\"slow_ops\":0}");
}

TEST(HealthReportTest, GoldenJsonRoundTrip) {
  // A fully-populated synthetic report: every field deterministic, so
  // the dumped text must survive Parse -> Dump byte-identically and
  // re-dump to the same string on every platform.
  MetricsRegistry registry;
  registry.GetCounter("ingest.records")->Increment(12);
  registry.GetGauge("queue.depth")->Set(3);
  Histogram* hist = registry.GetHistogram("vault.read");
  hist->Record(100);
  hist->Record(100);
  hist->Record(90000);

  HealthReport report;
  report.generated_at = 1700000000000000;
  report.metrics = registry.TakeSnapshot();
  report.has_env_io = true;
  report.env_io.reads = 5;
  report.env_io.read_bytes = 4096;
  report.env_io.writes = 7;
  report.env_io.write_bytes = 8192;
  report.env_io.syncs = 2;
  report.has_cache = true;
  report.cache.hits = 10;
  report.cache.misses = 4;
  report.cache.bypasses = 1;
  report.cache_entries = 4;
  report.cache_charge_bytes = 2048;
  report.cache_capacity_bytes = 1 << 20;
  ShardHealth shard;
  shard.shard = 0;
  shard.records = 9;
  shard.disposed = 1;
  shard.retention_backlog = 2;
  shard.signer_leaves_used = 13;
  shard.signer_leaves_remaining = 243;
  report.shards.push_back(shard);

  std::string text = report.Dump();
  auto parsed = json::Value::Parse(Slice(text));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), text);

  const auto& root = parsed->as_object();
  EXPECT_EQ(root.at("generated_at").as_int(), 1700000000000000);
  EXPECT_EQ(root.at("counters").as_object().at("ingest.records").as_uint(),
            12u);
  const auto& read_op = root.at("ops").as_object().at("vault.read")
                            .as_object();
  EXPECT_EQ(read_op.at("count").as_uint(), 3u);
  EXPECT_EQ(read_op.at("sum").as_uint(), 90200u);
  EXPECT_EQ(read_op.at("max").as_uint(), 90000u);
  EXPECT_EQ(read_op.at("p50").as_uint(),
            Histogram::BucketUpperBound(Histogram::BucketIndex(100)));
  EXPECT_EQ(read_op.at("p99").as_uint(),
            Histogram::BucketUpperBound(Histogram::BucketIndex(90000)));
  EXPECT_EQ(root.at("env_io").as_object().at("write_bytes").as_uint(),
            8192u);
  EXPECT_EQ(root.at("cache").as_object().at("bypasses").as_uint(), 1u);
  EXPECT_EQ(root.at("shards").as_array()[0].as_object()
                .at("signer_leaves_remaining").as_uint(), 243u);
}

// End-to-end against a real vault: op timers fired, health stats and
// cache figures populated, report parses, and a second snapshot after
// more work is monotone in op counts.
TEST(HealthReportTest, CollectHealthFromLiveVault) {
  storage::MemEnv base;
  storage::IoStats io;
  storage::InstrumentedEnv env(&base, &io);
  ManualClock clock(1000000);
  MetricsRegistry registry;
  core::RecordCache cache(1 << 20);

  core::VaultOptions options;
  options.env = &env;
  options.dir = "vault";
  options.clock = &clock;
  options.master_key = std::string(32, 'M');
  options.entropy = "obs-test-entropy";
  options.signer_height = 4;
  options.cache = &cache;
  options.metrics = &registry;
  auto vault = core::Vault::Open(options);
  ASSERT_TRUE(vault.ok()) << vault.status().ToString();

  ASSERT_TRUE((*vault)
                  ->RegisterPrincipal("boot",
                                      {"admin", core::Role::kAdmin, "A"})
                  .ok());
  ASSERT_TRUE((*vault)
                  ->RegisterPrincipal("admin",
                                      {"dr", core::Role::kPhysician, "D"})
                  .ok());
  ASSERT_TRUE((*vault)
                  ->RegisterPrincipal("admin",
                                      {"pat", core::Role::kPatient, "P"})
                  .ok());
  ASSERT_TRUE((*vault)->AssignCare("admin", "dr", "pat").ok());
  auto id = (*vault)->CreateRecord("dr", "pat", "text/plain", "note",
                                   {"kw"}, "short-1y");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*vault)->ReadRecord("dr", *id).ok());
  ASSERT_TRUE((*vault)->ReadRecord("dr", *id).ok());
  // XMSS leaves are spent only by signing operations (checkpoints,
  // disposal certificates) — issue one so leaves_used is non-zero.
  ASSERT_TRUE((*vault)->CheckpointAudit().ok());

  HealthReport report = CollectHealth(**vault, &io);
  EXPECT_EQ(report.generated_at, clock.Now());
  EXPECT_EQ(report.metrics.histograms.at("vault.create").count, 1u);
  EXPECT_EQ(report.metrics.histograms.at("vault.read").count, 2u);
  ASSERT_EQ(report.shards.size(), 1u);
  EXPECT_EQ(report.shards[0].records, 1u);
  EXPECT_EQ(report.shards[0].disposed, 0u);
  EXPECT_GT(report.shards[0].signer_leaves_used, 0u);
  EXPECT_GT(report.shards[0].signer_leaves_remaining, 0u);
  ASSERT_TRUE(report.has_cache);
  EXPECT_GE(report.cache.hits, 1u);
  ASSERT_TRUE(report.has_env_io);
  EXPECT_GT(report.env_io.write_bytes, 0u);
  EXPECT_GT(report.env_io.syncs, 0u);

  auto parsed = json::Value::Parse(Slice(report.Dump()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), report.Dump());

  // More work, new snapshot: strictly more reads recorded.
  ASSERT_TRUE((*vault)->ReadRecord("dr", *id).ok());
  HealthReport later = CollectHealth(**vault, &io);
  EXPECT_EQ(later.metrics.histograms.at("vault.read").count, 3u);
}

TEST(HealthReportTest, WriteHealthFileAppendsNewline) {
  storage::MemEnv env;
  HealthReport report;
  report.generated_at = 7;
  ASSERT_TRUE(WriteHealthFile(&env, report, "HEALTH_test.json").ok());
  std::string text;
  ASSERT_TRUE(storage::ReadFileToString(&env, "HEALTH_test.json", &text).ok());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  text.pop_back();
  EXPECT_EQ(text, report.Dump());
}

}  // namespace
}  // namespace medvault::obs
