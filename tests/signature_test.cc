// WOTS+ and XMSS-style hash-based signature tests: correctness,
// forgery resistance, state discipline, serialization.

#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.h"
#include "crypto/wots.h"
#include "crypto/xmss.h"

namespace medvault::crypto {
namespace {

constexpr char kSecretSeed[] = "wots-secret-seed-for-tests";
constexpr char kPublicSeed[] = "wots-public-seed-for-tests";

// ---- WOTS -------------------------------------------------------------------

TEST(WotsTest, SignVerifyRoundTrip) {
  Wots wots(kSecretSeed, kPublicSeed, 0);
  std::string digest = Sha256Digest("message");
  auto sig = wots.Sign(digest);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->size(), static_cast<size_t>(Wots::kLen));
  EXPECT_TRUE(
      Wots::Verify(digest, *sig, wots.PublicKey(), kPublicSeed, 0).ok());
}

TEST(WotsTest, WrongMessageFails) {
  Wots wots(kSecretSeed, kPublicSeed, 0);
  auto sig = wots.Sign(Sha256Digest("message"));
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(Wots::Verify(Sha256Digest("other"), *sig, wots.PublicKey(),
                           kPublicSeed, 0)
                  .IsTamperDetected());
}

TEST(WotsTest, WrongLeafIndexFails) {
  Wots wots(kSecretSeed, kPublicSeed, 3);
  std::string digest = Sha256Digest("message");
  auto sig = wots.Sign(digest);
  ASSERT_TRUE(sig.ok());
  EXPECT_FALSE(
      Wots::Verify(digest, *sig, wots.PublicKey(), kPublicSeed, 4).ok());
}

TEST(WotsTest, TamperedChainValueFails) {
  Wots wots(kSecretSeed, kPublicSeed, 0);
  std::string digest = Sha256Digest("message");
  auto sig = wots.Sign(digest);
  ASSERT_TRUE(sig.ok());
  (*sig)[10][0] ^= 1;
  EXPECT_TRUE(Wots::Verify(digest, *sig, wots.PublicKey(), kPublicSeed, 0)
                  .IsTamperDetected());
}

TEST(WotsTest, ChecksumPreventsDigitIncreaseForgery) {
  // The classic Winternitz attack: advancing a signature chain signs a
  // "larger digit" message. The checksum chains must catch this: a
  // forged signature built by hashing sig chains forward must fail.
  Wots wots(kSecretSeed, kPublicSeed, 0);
  std::string digest = Sha256Digest("target");
  auto sig = wots.Sign(digest);
  ASSERT_TRUE(sig.ok());
  // "Advance" chain 0 by one step (what an attacker can compute freely).
  Sha256 h;
  h.Update("wots-chain");
  h.Update(kPublicSeed);
  // (we don't know the exact digit; just perturb with a hash)
  (*sig)[0] = Sha256Digest((*sig)[0]);
  EXPECT_FALSE(
      Wots::Verify(digest, *sig, wots.PublicKey(), kPublicSeed, 0).ok());
}

TEST(WotsTest, SignatureSerializationRoundTrip) {
  Wots wots(kSecretSeed, kPublicSeed, 7);
  auto sig = wots.Sign(Sha256Digest("message"));
  ASSERT_TRUE(sig.ok());
  std::string encoded = Wots::EncodeSignature(*sig);
  EXPECT_EQ(encoded.size(), static_cast<size_t>(Wots::kLen) * Wots::kN);
  auto decoded = Wots::DecodeSignature(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, *sig);
  EXPECT_TRUE(
      Wots::DecodeSignature("too short").status().IsInvalidArgument());
}

TEST(WotsTest, RejectsNonDigestMessages) {
  Wots wots(kSecretSeed, kPublicSeed, 0);
  EXPECT_TRUE(wots.Sign("not 32 bytes").status().IsInvalidArgument());
}

TEST(WotsTest, DifferentLeavesHaveDifferentKeys) {
  Wots a(kSecretSeed, kPublicSeed, 0);
  Wots b(kSecretSeed, kPublicSeed, 1);
  EXPECT_NE(a.PublicKey(), b.PublicKey());
}

// ---- XMSS -------------------------------------------------------------------

class XmssTest : public ::testing::Test {
 protected:
  static constexpr int kHeight = 3;  // 8 signatures
  XmssSigner signer_{kSecretSeed, kPublicSeed, kHeight};
};

TEST_F(XmssTest, SignVerifyRoundTrip) {
  auto sig = signer_.Sign("audit checkpoint 1");
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(XmssSigner::Verify("audit checkpoint 1", *sig,
                                 signer_.public_key(), kPublicSeed, kHeight)
                  .ok());
}

TEST_F(XmssTest, EachSignatureUsesFreshLeaf) {
  auto s1 = signer_.Sign("m1");
  auto s2 = signer_.Sign("m2");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->leaf_index, 0u);
  EXPECT_EQ(s2->leaf_index, 1u);
  EXPECT_EQ(signer_.SignaturesUsed(), 2u);
  EXPECT_EQ(signer_.SignaturesRemaining(), 6u);
}

TEST_F(XmssTest, ExhaustionRefusesToSign) {
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(signer_.Sign("m" + std::to_string(i)).ok());
  }
  EXPECT_TRUE(signer_.Sign("one too many").status().IsFailedPrecondition());
}

TEST_F(XmssTest, AllLeavesVerify) {
  for (int i = 0; i < 8; i++) {
    std::string msg = "message-" + std::to_string(i);
    auto sig = signer_.Sign(msg);
    ASSERT_TRUE(sig.ok());
    EXPECT_TRUE(XmssSigner::Verify(msg, *sig, signer_.public_key(),
                                   kPublicSeed, kHeight)
                    .ok())
        << "leaf " << i;
  }
}

TEST_F(XmssTest, WrongMessageFails) {
  auto sig = signer_.Sign("genuine");
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(XmssSigner::Verify("forged", *sig, signer_.public_key(),
                                 kPublicSeed, kHeight)
                  .IsTamperDetected());
}

TEST_F(XmssTest, TamperedAuthPathFails) {
  auto sig = signer_.Sign("msg");
  ASSERT_TRUE(sig.ok());
  for (size_t i = 0; i < sig->auth_path.size(); i++) {
    XmssSignature tampered = *sig;
    tampered.auth_path[i][0] ^= 1;
    EXPECT_FALSE(XmssSigner::Verify("msg", tampered, signer_.public_key(),
                                    kPublicSeed, kHeight)
                     .ok())
        << "auth path level " << i;
  }
}

TEST_F(XmssTest, WrongPublicKeyFails) {
  auto sig = signer_.Sign("msg");
  ASSERT_TRUE(sig.ok());
  XmssSigner other("other-secret", kPublicSeed, kHeight);
  EXPECT_TRUE(XmssSigner::Verify("msg", *sig, other.public_key(),
                                 kPublicSeed, kHeight)
                  .IsTamperDetected());
}

TEST_F(XmssTest, WrongHeightRejected) {
  auto sig = signer_.Sign("msg");
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(XmssSigner::Verify("msg", *sig, signer_.public_key(),
                                 kPublicSeed, kHeight + 1)
                  .IsTamperDetected());
}

TEST_F(XmssTest, StateRestoreNeverRewinds) {
  ASSERT_TRUE(signer_.Sign("m0").ok());
  ASSERT_TRUE(signer_.Sign("m1").ok());
  // Rewinding would reuse one-time keys — must be refused.
  EXPECT_TRUE(signer_.RestoreState(1).IsInvalidArgument());
  EXPECT_TRUE(signer_.RestoreState(2).ok());   // no-op
  EXPECT_TRUE(signer_.RestoreState(5).ok());   // skip ahead is safe
  auto sig = signer_.Sign("m5");
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->leaf_index, 5u);
  EXPECT_TRUE(signer_.RestoreState(100).IsInvalidArgument());  // beyond cap
}

TEST_F(XmssTest, DeterministicKeyGeneration) {
  // Same seeds -> same public key: a vault reopened later keeps its
  // signer identity.
  XmssSigner again(kSecretSeed, kPublicSeed, kHeight);
  EXPECT_EQ(again.public_key(), signer_.public_key());
}

TEST_F(XmssTest, SignatureSerializationRoundTrip) {
  auto sig = signer_.Sign("serialize me");
  ASSERT_TRUE(sig.ok());
  std::string encoded = sig->Encode();
  auto decoded = XmssSignature::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->leaf_index, sig->leaf_index);
  EXPECT_EQ(decoded->wots_signature, sig->wots_signature);
  EXPECT_EQ(decoded->auth_path, sig->auth_path);
  EXPECT_TRUE(XmssSigner::Verify("serialize me", *decoded,
                                 signer_.public_key(), kPublicSeed, kHeight)
                  .ok());
}

TEST_F(XmssTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(XmssSignature::Decode("").ok());
  EXPECT_FALSE(XmssSignature::Decode("garbage bytes here").ok());
  auto sig = signer_.Sign("x");
  ASSERT_TRUE(sig.ok());
  std::string enc = sig->Encode();
  enc += "trailing";
  EXPECT_FALSE(XmssSignature::Decode(enc).ok());
}

}  // namespace
}  // namespace medvault::crypto
