// RecordCache tests: the cache must behave like an LRU for performance
// accounting (hits/misses/evictions observable), and like a security
// component for everything else — never serve an entry whose hash the
// catalog no longer vouches for, and never serve a record after its
// secure deletion, even to readers racing the disposal.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/record_cache.h"
#include "core/vault.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

RecordVersion MakeVersion(const RecordId& id, uint32_t version,
                          const std::string& plaintext) {
  RecordVersion value;
  value.header.record_id = id;
  value.header.version = version;
  value.header.author = "dr-a";
  value.header.content_type = "text/plain";
  value.plaintext = plaintext;
  return value;
}

TEST(RecordCacheTest, HitMissAndCountersObservable) {
  RecordCache cache(1 << 20);
  EXPECT_FALSE(cache.Get("r-1", 1, "h1").has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  cache.Put("r-1", 1, "h1", MakeVersion("r-1", 1, "payload"));
  auto hit = cache.Get("r-1", 1, "h1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->plaintext, "payload");
  EXPECT_EQ(hit->header.version, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.entry_count(), 1u);

  // A different version of the same record is its own entry.
  EXPECT_FALSE(cache.Get("r-1", 2, "h2").has_value());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(RecordCacheTest, EmptyExpectedHashBypassesWithoutEvicting) {
  // A caller with no authoritative hash (e.g. a path that could not
  // consult the catalog) cannot authenticate a cached entry, so the
  // lookup must miss — but that is a BYPASS, not evidence the entry is
  // stale. The regression this pins down: the old code treated the
  // empty hash as a mismatch, counted a rejection, and evicted a
  // perfectly valid entry, so one unauthenticated probe would wipe the
  // cache behind every authenticated reader.
  RecordCache cache(1 << 20);
  cache.Put("r-1", 1, "h1", MakeVersion("r-1", 1, "payload"));

  EXPECT_FALSE(cache.Get("r-1", 1, "").has_value());
  EXPECT_EQ(cache.stats().bypasses, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().rejections, 0u) << "bypass miscounted as rejection";
  EXPECT_EQ(cache.entry_count(), 1u) << "bypass evicted a valid entry";

  // The entry is still served to an authenticated reader afterwards.
  auto hit = cache.Get("r-1", 1, "h1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->plaintext, "payload");
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(RecordCacheTest, MismatchedHashIsRejectedAndDropped) {
  RecordCache cache(1 << 20);
  cache.Put("r-1", 1, "stale-hash", MakeVersion("r-1", 1, "old plaintext"));
  // The caller's authoritative hash disagrees: the entry must not be
  // served, and must not linger either (it is provably stale).
  EXPECT_FALSE(cache.Get("r-1", 1, "current-hash").has_value());
  EXPECT_EQ(cache.stats().rejections, 1u);
  EXPECT_EQ(cache.entry_count(), 0u);
  // Even asking with the original hash now misses — the entry is gone.
  EXPECT_FALSE(cache.Get("r-1", 1, "stale-hash").has_value());
}

TEST(RecordCacheTest, LruEvictionUnderCapacityPressure) {
  // Capacity fits roughly two of the three values; inserting the third
  // must evict the least recently used, not the most.
  const std::string payload(400, 'x');
  RecordCache cache(1000);
  cache.Put("r-1", 1, "h1", MakeVersion("r-1", 1, payload));
  cache.Put("r-2", 1, "h2", MakeVersion("r-2", 1, payload));
  // Touch r-1 so r-2 is the LRU victim.
  EXPECT_TRUE(cache.Get("r-1", 1, "h1").has_value());
  cache.Put("r-3", 1, "h3", MakeVersion("r-3", 1, payload));

  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Get("r-1", 1, "h1").has_value());
  EXPECT_FALSE(cache.Get("r-2", 1, "h2").has_value()) << "LRU not evicted";
  EXPECT_TRUE(cache.Get("r-3", 1, "h3").has_value());
  EXPECT_LE(cache.charge_bytes(), cache.capacity_bytes());
}

TEST(RecordCacheTest, OversizedValuesAreNotCached) {
  RecordCache cache(64);
  cache.Put("r-1", 1, "h1", MakeVersion("r-1", 1, std::string(1000, 'x')));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_FALSE(cache.Get("r-1", 1, "h1").has_value());
}

TEST(RecordCacheTest, PurgeRemovesEveryVersionOfTheRecord) {
  RecordCache cache(1 << 20);
  cache.Put("r-1", 1, "h1", MakeVersion("r-1", 1, "v1"));
  cache.Put("r-1", 2, "h2", MakeVersion("r-1", 2, "v2"));
  cache.Put("r-2", 1, "h3", MakeVersion("r-2", 1, "other"));
  cache.PurgeRecord("r-1");
  EXPECT_EQ(cache.stats().purges, 2u);
  EXPECT_FALSE(cache.Get("r-1", 1, "h1").has_value());
  EXPECT_FALSE(cache.Get("r-1", 2, "h2").has_value());
  EXPECT_TRUE(cache.Get("r-2", 1, "h3").has_value());
}

// ---------------------------------------------------------------------------
// Vault integration: the purge paths that make caching safe.
// ---------------------------------------------------------------------------

class CachedVaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_ = std::make_unique<RecordCache>(1 << 20);
    VaultOptions options;
    options.env = &env_;
    options.dir = "vault";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "cache-test-entropy";
    options.signer_height = 4;
    options.cache = cache_.get();
    auto vault = Vault::Open(options);
    ASSERT_TRUE(vault.ok()) << vault.status().ToString();
    vault_ = std::move(vault).value();

    ASSERT_TRUE(
        vault_->RegisterPrincipal("boot", {"admin-r", Role::kAdmin, "Root"})
            .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"dr-a", Role::kPhysician, "Dr A"})
                    .ok());
    ASSERT_TRUE(vault_
                    ->RegisterPrincipal("admin-r",
                                        {"pat-p", Role::kPatient, "P"})
                    .ok());
    ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-a", "pat-p").ok());
  }

  RecordId MustCreate(const std::string& note,
                      const std::string& policy = "short-1y") {
    auto id = vault_->CreateRecord("dr-a", "pat-p", "text/plain", note, {},
                                   policy);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  std::unique_ptr<RecordCache> cache_;
  std::unique_ptr<Vault> vault_;
};

TEST_F(CachedVaultTest, RepeatReadsAreServedFromCache) {
  RecordId id = MustCreate("cached payload");
  auto first = vault_->ReadRecord("dr-a", id);
  ASSERT_TRUE(first.ok());
  uint64_t misses_after_first = cache_->stats().misses;
  auto second = vault_->ReadRecord("dr-a", id);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->plaintext, "cached payload");
  EXPECT_GE(cache_->stats().hits, 1u);
  EXPECT_EQ(cache_->stats().misses, misses_after_first)
      << "second read should not miss";
}

TEST_F(CachedVaultTest, CorrectionPurgesCachedVersions) {
  RecordId id = MustCreate("original");
  ASSERT_TRUE(vault_->ReadRecord("dr-a", id).ok());  // warm the cache
  ASSERT_GE(cache_->entry_count(), 1u);
  ASSERT_TRUE(vault_
                  ->CorrectRecord("dr-a", id, "amended", "typo", {})
                  .ok());
  // The correction invalidated the record's cached entries; the next
  // read must return the NEW latest from disk, never a stale cached v1.
  auto read = vault_->ReadRecord("dr-a", id);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->plaintext, "amended");
  EXPECT_EQ(read->header.version, 2u);
  // Historical v1 still readable (from disk) — purge, not corruption.
  auto v1 = vault_->ReadRecordVersion("dr-a", id, 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->plaintext, "original");
}

TEST_F(CachedVaultTest, DisposalPurgesCacheReadAfterSecureDeleteFails) {
  RecordId id = MustCreate("to be shredded", "short-1y");
  ASSERT_TRUE(vault_->ReadRecord("dr-a", id).ok());  // plaintext now cached
  ASSERT_GE(cache_->entry_count(), 1u);

  clock_.Advance(400LL * 24 * 3600 * kMicrosPerSecond);  // past 1y retention
  auto cert = vault_->DisposeRecord("admin-r", id);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();

  // Crypto-shredding must extend into memory: the cached plaintext is
  // gone, and the read fails exactly as it would with a cold cache.
  uint64_t hits_before = cache_->stats().hits;
  auto read = vault_->ReadRecord("dr-a", id);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(cache_->stats().hits, hits_before)
      << "disposed record served from cache";
}

TEST_F(CachedVaultTest, ConcurrentReadersNeverSeeDisposedPlaintext) {
  RecordId id = MustCreate("hot record", "short-1y");
  ASSERT_TRUE(vault_->ReadRecord("dr-a", id).ok());
  clock_.Advance(400LL * 24 * 3600 * kMicrosPerSecond);

  // Readers hammer the record while an admin disposes it mid-stream.
  // Every read must be all-or-nothing: full plaintext before the
  // disposal commits, a clean failure after — never a zeroized or
  // partially-wiped buffer (which would indicate the purge races the
  // cache's own copies).
  constexpr int kReaders = 4;
  std::atomic<bool> go{false};
  std::atomic<int> bad_payloads{0};
  std::atomic<int> reads_after_dispose_ok{0};
  std::atomic<bool> disposed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 200; ++i) {
        bool disposed_before_read = disposed.load();
        auto read = vault_->ReadRecord("dr-a", id);
        if (read.ok()) {
          if (read->plaintext != "hot record") bad_payloads++;
          if (disposed_before_read) reads_after_dispose_ok++;
        }
      }
    });
  }
  std::thread disposer([&] {
    while (!go.load()) std::this_thread::yield();
    auto cert = vault_->DisposeRecord("admin-r", id);
    ASSERT_TRUE(cert.ok()) << cert.status().ToString();
    disposed = true;
  });
  go = true;
  for (auto& reader : readers) reader.join();
  disposer.join();

  EXPECT_EQ(bad_payloads.load(), 0);
  EXPECT_EQ(reads_after_dispose_ok.load(), 0)
      << "read succeeded after disposal was acknowledged";
  // And the terminal state: the record stays unreadable.
  EXPECT_FALSE(vault_->ReadRecord("dr-a", id).ok());
  EXPECT_TRUE(vault_->VerifyEverything().ok());
}

TEST_F(CachedVaultTest, TamperedCatalogHashRejectsCachedEntry) {
  // Direct cache-poisoning scenario: an entry stored under a hash the
  // catalog no longer vouches for must be rejected by the read path.
  RecordId id = MustCreate("authentic");
  ASSERT_TRUE(vault_->ReadRecord("dr-a", id).ok());
  // Poison: replace the cached entry under a wrong hash.
  cache_->PurgeRecord(id);
  RecordVersion forged;
  forged.header.record_id = id;
  forged.header.version = 1;
  forged.plaintext = "forged plaintext";
  cache_->Put(id, 1, "not-the-catalog-hash", forged);
  auto read = vault_->ReadRecord("dr-a", id);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->plaintext, "authentic") << "forged cache entry served";
  EXPECT_GE(cache_->stats().rejections, 1u);
}

}  // namespace
}  // namespace medvault::core
