// Tests for litigation holds (disposal blocked regardless of retention)
// and conjunctive blinded keyword search.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/vault.h"
#include "storage/mem_env.h"

namespace medvault::core {
namespace {

class HoldSearchTest : public ::testing::Test {
 protected:
  void SetUp() override { OpenVault(); }

  void OpenVault() {
    VaultOptions options;
    options.env = &env_;
    options.dir = "vault";
    options.clock = &clock_;
    options.master_key = std::string(32, 'M');
    options.entropy = "hold-search-entropy";
    options.signer_height = 4;
    auto vault = Vault::Open(options);
    ASSERT_TRUE(vault.ok());
    vault_ = std::move(vault).value();
    if (!vault_->access()->GetPrincipal("admin-r").ok()) {
      ASSERT_TRUE(vault_
                      ->RegisterPrincipal("boot",
                                          {"admin-r", Role::kAdmin, "Root"})
                      .ok());
      ASSERT_TRUE(
          vault_
              ->RegisterPrincipal("admin-r",
                                  {"dr-a", Role::kPhysician, "Dr A"})
              .ok());
      ASSERT_TRUE(vault_
                      ->RegisterPrincipal("admin-r",
                                          {"pat-p", Role::kPatient, "P"})
                      .ok());
      ASSERT_TRUE(vault_->AssignCare("admin-r", "dr-a", "pat-p").ok());
    }
  }

  Result<RecordId> Create(const std::vector<std::string>& keywords) {
    return vault_->CreateRecord("dr-a", "pat-p", "text/plain", "note",
                                keywords, "short-1y");
  }

  storage::MemEnv env_;
  ManualClock clock_{1000000};
  std::unique_ptr<Vault> vault_;
};

// ---- Legal holds ------------------------------------------------------------

TEST_F(HoldSearchTest, HoldBlocksDisposalPastRetention) {
  auto id = Create({"kw"});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(
      vault_->PlaceLegalHold("admin-r", *id, "Doe v. Hospital").ok());
  clock_.AdvanceYears(5);  // far past short-1y
  Status s = vault_->DisposeRecord("admin-r", *id).status();
  EXPECT_TRUE(s.IsRetentionViolation());
  EXPECT_NE(s.message().find("legal hold"), std::string::npos);

  ASSERT_TRUE(
      vault_->ReleaseLegalHold("admin-r", *id, "case settled").ok());
  EXPECT_TRUE(vault_->DisposeRecord("admin-r", *id).ok());
}

TEST_F(HoldSearchTest, HoldRequiresAdminAndReason) {
  auto id = Create({"kw"});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(vault_->PlaceLegalHold("dr-a", *id, "reason")
                  .IsPermissionDenied());
  EXPECT_TRUE(
      vault_->PlaceLegalHold("admin-r", *id, "").IsInvalidArgument());
  ASSERT_TRUE(vault_->PlaceLegalHold("admin-r", *id, "case").ok());
  EXPECT_TRUE(
      vault_->PlaceLegalHold("admin-r", *id, "case").IsAlreadyExists());
  EXPECT_TRUE(vault_->ReleaseLegalHold("dr-a", *id, "r")
                  .IsPermissionDenied());
}

TEST_F(HoldSearchTest, ReleaseWithoutHoldFails) {
  auto id = Create({"kw"});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(vault_->ReleaseLegalHold("admin-r", *id, "r")
                  .IsFailedPrecondition());
}

TEST_F(HoldSearchTest, HoldSurvivesReopen) {
  auto id = Create({"kw"});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(vault_->PlaceLegalHold("admin-r", *id, "case").ok());
  vault_.reset();
  OpenVault();
  clock_.AdvanceYears(5);
  EXPECT_TRUE(vault_->DisposeRecord("admin-r", *id)
                  .status()
                  .IsRetentionViolation());
}

TEST_F(HoldSearchTest, HoldEventsAreAudited) {
  auto id = Create({"kw"});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(
      vault_->RegisterPrincipal("admin-r", {"aud-x", Role::kAuditor, "X"})
          .ok());
  ASSERT_TRUE(vault_->PlaceLegalHold("admin-r", *id, "Doe v. H").ok());
  ASSERT_TRUE(vault_->ReleaseLegalHold("admin-r", *id, "settled").ok());
  auto trail = vault_->ReadAuditTrail("aud-x", *id);
  ASSERT_TRUE(trail.ok());
  int hold_events = 0;
  for (const AuditEvent& e : *trail) {
    if (e.details.find("legal-hold") != std::string::npos) hold_events++;
  }
  EXPECT_EQ(hold_events, 2);
}

// ---- Conjunctive search -------------------------------------------------------

TEST_F(HoldSearchTest, ConjunctiveSearchIntersects) {
  auto r1 = Create({"cancer", "chemo"});
  auto r2 = Create({"cancer"});
  auto r3 = Create({"chemo"});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());

  auto both = vault_->SearchKeywordsAll("dr-a", {"cancer", "chemo"});
  ASSERT_TRUE(both.ok());
  ASSERT_EQ(both->size(), 1u);
  EXPECT_EQ((*both)[0], *r1);

  auto single = vault_->SearchKeywordsAll("dr-a", {"cancer"});
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->size(), 2u);
}

TEST_F(HoldSearchTest, ConjunctiveSearchEmptyCases) {
  auto r1 = Create({"cancer"});
  ASSERT_TRUE(r1.ok());
  auto none = vault_->SearchKeywordsAll("dr-a", {"cancer", "nonexistent"});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  auto empty_query = vault_->SearchKeywordsAll("dr-a", {});
  ASSERT_TRUE(empty_query.ok());
  EXPECT_TRUE(empty_query->empty());
}

TEST_F(HoldSearchTest, ConjunctiveSearchRespectsShredding) {
  auto r1 = Create({"cancer", "chemo"});
  auto r2 = Create({"cancer", "chemo"});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  clock_.AdvanceYears(2);
  ASSERT_TRUE(vault_->DisposeRecord("admin-r", *r1).ok());
  auto hits = vault_->SearchKeywordsAll("dr-a", {"cancer", "chemo"});
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], *r2);
}

TEST_F(HoldSearchTest, ConjunctiveSearchLeaksNoTermsIntoAudit) {
  ASSERT_TRUE(Create({"oncology", "biopsy"}).ok());
  ASSERT_TRUE(
      vault_->SearchKeywordsAll("dr-a", {"oncology", "biopsy"}).ok());
  std::string raw;
  ASSERT_TRUE(
      storage::ReadFileToString(&env_, "vault/audit.log", &raw).ok());
  EXPECT_EQ(raw.find("oncology"), std::string::npos);
  EXPECT_EQ(raw.find("biopsy"), std::string::npos);
}

TEST_F(HoldSearchTest, ConjunctiveSearchScopedByAccess) {
  ASSERT_TRUE(vault_
                  ->RegisterPrincipal("admin-r",
                                      {"dr-b", Role::kPhysician, "B"})
                  .ok());
  ASSERT_TRUE(Create({"cancer", "chemo"}).ok());
  // dr-b treats nobody: sees nothing.
  auto hits = vault_->SearchKeywordsAll("dr-b", {"cancer", "chemo"});
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

// ---- Retention sweep ----------------------------------------------------------

TEST_F(HoldSearchTest, ExpiredRecordSweepHonorsHoldsAndDisposal) {
  ASSERT_TRUE(
      vault_->RegisterPrincipal("admin-r", {"aud-x", Role::kAuditor, "X"})
          .ok());
  auto r1 = Create({"kw"});
  auto r2 = Create({"kw"});
  auto r3 = Create({"kw"});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());

  // Nothing expired yet.
  auto none = vault_->ListExpiredRecords("aud-x");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  clock_.AdvanceYears(2);
  ASSERT_TRUE(vault_->PlaceLegalHold("admin-r", *r2, "case").ok());
  ASSERT_TRUE(vault_->DisposeRecord("admin-r", *r3).ok());

  auto expired = vault_->ListExpiredRecords("admin-r");
  ASSERT_TRUE(expired.ok());
  // r1 expired+free; r2 held; r3 already disposed.
  ASSERT_EQ(expired->size(), 1u);
  EXPECT_EQ((*expired)[0].record_id, *r1);

  // Non-privileged actors cannot sweep.
  EXPECT_TRUE(
      vault_->ListExpiredRecords("dr-a").status().IsPermissionDenied());
}

}  // namespace
}  // namespace medvault::core
